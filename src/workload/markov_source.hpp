// The Markov request source of the paper's Figure 7 experiment.
//
// From the figure caption: "The requests are generated using a 100-state
// Markov source. When going to state i, the Markov source generates a
// request for item i and, after the request is served, it waits for the
// duration of v_i, where 1 <= v_i <= 100, before changing to another
// state. The state transition matrix is constructed such that there are 10
// to 20 possible transitions from any state. Retrieval times for items are
// between 1 and 30."
//
// State i <-> item i (one item per state). Each state carries its viewing
// time v_i; each item carries its retrieval time r_i. Transition rows are
// sparse (out-degree uniform in [out_lo, out_hi]) with Dirichlet(1)
// probabilities over the chosen successors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/item.hpp"
#include "util/rng.hpp"

namespace skp {

struct MarkovSourceConfig {
  std::size_t n_states = 100;
  std::size_t out_degree_lo = 10;
  std::size_t out_degree_hi = 20;
  double v_lo = 1.0, v_hi = 100.0;   // per-state viewing times
  double r_lo = 1.0, r_hi = 30.0;    // per-item retrieval times
  bool integer_times = true;         // draw v, r as integers (paper-style)
  bool allow_self_loop = false;      // a request for the item just viewed
                                     // would always hit; default matches
                                     // "changing to another state"

  // Lockstep batch runners require every lane to share the workload.
  bool operator==(const MarkovSourceConfig&) const = default;
};

class MarkovSource {
 public:
  // Builds the random chain from `rng`; the chain itself is then fixed and
  // stepping uses a separate stream so structure and trajectory are
  // independently reproducible.
  MarkovSource(const MarkovSourceConfig& config, Rng& rng);

  // Explicit-chain constructor: per-state viewing times, per-item
  // retrieval times, and per-state successor lists (ascending ids) with
  // aligned probabilities (each row sums to 1). This is how synthetic
  // sources with a prescribed structure — e.g. workload/zipf_source's
  // rank-1 chain — drop into every simulator that consumes a
  // MarkovSource.
  MarkovSource(std::vector<double> v, std::vector<double> r,
               std::vector<std::vector<ItemId>> successors,
               std::vector<std::vector<double>> probabilities);

  // Redraws the transition structure (successor sets + probabilities)
  // from `rng`, keeping the v/r catalogs and the current state. This is
  // the phase-shift primitive behind drifting workloads: at a
  // changepoint the access pattern changes while the items themselves do
  // not. `config` supplies the out-degree bounds and must describe the
  // same state count.
  void redraw_transitions(const MarkovSourceConfig& config, Rng& rng);

  std::size_t n_states() const noexcept { return v_.size(); }
  std::size_t current_state() const noexcept { return state_; }

  double viewing_time(std::size_t state) const;
  double retrieval_time(ItemId item) const;
  std::span<const double> retrieval_times() const noexcept { return r_; }

  // Dense next-access probability row of `state` (length n_states; zeros
  // for non-successors). This is the oracle P the paper's model
  // presupposes.
  std::span<const double> transition_row(std::size_t state) const;

  // Successor list of `state` (items with positive probability).
  std::span<const ItemId> successors(std::size_t state) const;

  // Samples the next state/request and advances. Returns the new state
  // (== requested item id).
  std::size_t step(Rng& rng);

  // Const counterpart: samples a successor of `state` from `rng` without
  // touching this source. Draw-for-draw identical to step() from the
  // same state and stream — this is what lets many sessions walk private
  // trajectories over ONE shared immutable source (each keeps its own
  // state + walk stream; the chain structure is read-only).
  std::size_t sample_from(std::size_t state, Rng& rng) const;

  // Heap bytes behind the chain (dense rows dominate at n^2 doubles) —
  // the shared-catalog savings the capacity bench measures.
  std::size_t footprint_bytes() const noexcept;

  // Re-seats the chain at `state` without sampling (tests, replays).
  void teleport(std::size_t state);

  // Builds the Instance (P = row of `state`, r = catalog retrieval times,
  // v = viewing_time(state)) the prefetch engine consumes in that state.
  Instance instance_at(std::size_t state) const;

  // Borrowed-view counterpart of instance_at: spans over the source-owned
  // dense row and retrieval-time catalog, copying nothing. This is what
  // the sim hot loops call once per request; the view is invalidated only
  // by destroying the source.
  InstanceView view_at(std::size_t state) const;

 private:
  std::vector<double> v_;                       // per-state viewing time
  std::vector<double> r_;                       // per-item retrieval time
  std::vector<std::vector<ItemId>> succ_;       // successor ids
  std::vector<std::vector<double>> succ_prob_;  // aligned probabilities
  std::vector<std::vector<double>> dense_row_;  // cached dense rows
  std::size_t state_ = 0;
};

}  // namespace skp
