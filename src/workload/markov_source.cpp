#include "workload/markov_source.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace skp {

MarkovSource::MarkovSource(const MarkovSourceConfig& config, Rng& rng) {
  const std::size_t n = config.n_states;
  SKP_REQUIRE(n >= 2, "MarkovSource needs at least 2 states");
  SKP_REQUIRE(config.v_lo >= 1.0 && config.v_lo <= config.v_hi,
              "viewing time range");
  SKP_REQUIRE(config.r_lo > 0.0 && config.r_lo <= config.r_hi,
              "retrieval time range");

  v_.resize(n);
  r_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    v_[i] = rng.uniform_time(config.v_lo, config.v_hi,
                             config.integer_times);
    r_[i] = rng.uniform_time(config.r_lo, config.r_hi,
                             config.integer_times);
  }
  redraw_transitions(config, rng);
}

MarkovSource::MarkovSource(std::vector<double> v, std::vector<double> r,
                           std::vector<std::vector<ItemId>> successors,
                           std::vector<std::vector<double>> probabilities)
    : v_(std::move(v)),
      r_(std::move(r)),
      succ_(std::move(successors)),
      succ_prob_(std::move(probabilities)) {
  const std::size_t n = v_.size();
  SKP_REQUIRE(n >= 2, "MarkovSource needs at least 2 states");
  SKP_REQUIRE(r_.size() == n, "v/r size mismatch");
  SKP_REQUIRE(succ_.size() == n && succ_prob_.size() == n,
              "successor structure size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    SKP_REQUIRE(v_[i] > 0.0, "viewing time of state " << i);
    SKP_REQUIRE(r_[i] > 0.0, "retrieval time of item " << i);
  }
  dense_row_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    SKP_REQUIRE(!succ_[s].empty(), "state " << s << " has no successors");
    SKP_REQUIRE(succ_[s].size() == succ_prob_[s].size(),
                "successor/probability size mismatch at state " << s);
    dense_row_[s].assign(n, 0.0);
    double sum = 0.0;
    for (std::size_t k = 0; k < succ_[s].size(); ++k) {
      const ItemId t = succ_[s][k];
      SKP_REQUIRE(t >= 0 && static_cast<std::size_t>(t) < n,
                  "successor out of range at state " << s);
      SKP_REQUIRE(k == 0 || succ_[s][k - 1] < t,
                  "successors of state " << s << " not ascending");
      SKP_REQUIRE(succ_prob_[s][k] > 0.0,
                  "non-positive transition probability at state " << s);
      dense_row_[s][static_cast<std::size_t>(t)] = succ_prob_[s][k];
      sum += succ_prob_[s][k];
    }
    SKP_REQUIRE(std::abs(sum - 1.0) <= 1e-9,
                "row of state " << s << " sums to " << sum);
  }
}

void MarkovSource::redraw_transitions(const MarkovSourceConfig& config,
                                      Rng& rng) {
  const std::size_t n = v_.size();
  SKP_REQUIRE(config.n_states == n,
              "redraw_transitions: state count mismatch");
  SKP_REQUIRE(config.out_degree_lo >= 1, "out-degree lower bound");
  SKP_REQUIRE(config.out_degree_lo <= config.out_degree_hi,
              "out-degree bounds inverted");

  // The pool of possible successors per state excludes the state itself
  // unless self-loops are allowed.
  const std::size_t pool = config.allow_self_loop ? n : n - 1;
  succ_.resize(n);
  succ_prob_.resize(n);
  dense_row_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::size_t degree = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.out_degree_lo),
        static_cast<std::int64_t>(config.out_degree_hi)));
    degree = std::min(degree, pool);
    // Partial Fisher–Yates over candidate targets.
    std::vector<ItemId> targets;
    targets.reserve(pool);
    for (std::size_t t = 0; t < n; ++t) {
      if (!config.allow_self_loop && t == s) continue;
      targets.push_back(static_cast<ItemId>(t));
    }
    for (std::size_t k = 0; k < degree; ++k) {
      const std::size_t j =
          k + static_cast<std::size_t>(rng.next_below(targets.size() - k));
      std::swap(targets[k], targets[j]);
    }
    targets.resize(degree);
    std::sort(targets.begin(), targets.end());

    // Dirichlet(1) probabilities over the successors.
    std::vector<double> w(degree);
    double sum = 0.0;
    for (auto& x : w) {
      x = rng.exponential(1.0) + 1e-12;
      sum += x;
    }
    dense_row_[s].assign(n, 0.0);
    succ_[s] = targets;
    succ_prob_[s].resize(degree);
    for (std::size_t k = 0; k < degree; ++k) {
      succ_prob_[s][k] = w[k] / sum;
      dense_row_[s][static_cast<std::size_t>(targets[k])] = w[k] / sum;
    }
  }
}

double MarkovSource::viewing_time(std::size_t state) const {
  SKP_REQUIRE(state < v_.size(), "state " << state << " out of range");
  return v_[state];
}

double MarkovSource::retrieval_time(ItemId item) const {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < r_.size(),
              "item " << item << " out of range");
  return r_[static_cast<std::size_t>(item)];
}

std::span<const double> MarkovSource::transition_row(
    std::size_t state) const {
  SKP_REQUIRE(state < dense_row_.size(), "state out of range");
  return dense_row_[state];
}

std::span<const ItemId> MarkovSource::successors(std::size_t state) const {
  SKP_REQUIRE(state < succ_.size(), "state out of range");
  return succ_[state];
}

std::size_t MarkovSource::sample_from(std::size_t state, Rng& rng) const {
  SKP_REQUIRE(state < succ_.size(), "state out of range");
  const auto& probs = succ_prob_[state];
  const auto& targets = succ_[state];
  SKP_ASSERT(!targets.empty());
  const double u = rng.next_double();
  double cum = 0.0;
  std::size_t pick = targets.size() - 1;  // guard against fp round-off
  for (std::size_t k = 0; k < probs.size(); ++k) {
    cum += probs[k];
    if (u < cum) {
      pick = k;
      break;
    }
  }
  return static_cast<std::size_t>(targets[pick]);
}

std::size_t MarkovSource::step(Rng& rng) {
  state_ = sample_from(state_, rng);
  return state_;
}

std::size_t MarkovSource::footprint_bytes() const noexcept {
  std::size_t total = (v_.capacity() + r_.capacity()) * sizeof(double);
  for (const auto& s : succ_) total += s.capacity() * sizeof(ItemId);
  for (const auto& p : succ_prob_) total += p.capacity() * sizeof(double);
  for (const auto& row : dense_row_) total += row.capacity() * sizeof(double);
  total += (succ_.capacity() * sizeof(std::vector<ItemId>)) +
           ((succ_prob_.capacity() + dense_row_.capacity()) *
            sizeof(std::vector<double>));
  return total;
}

void MarkovSource::teleport(std::size_t state) {
  SKP_REQUIRE(state < v_.size(), "state out of range");
  state_ = state;
}

Instance MarkovSource::instance_at(std::size_t state) const {
  SKP_REQUIRE(state < v_.size(), "state out of range");
  Instance inst;
  inst.P = dense_row_[state];
  inst.r = r_;
  inst.v = v_[state];
  return inst;
}

InstanceView MarkovSource::view_at(std::size_t state) const {
  SKP_REQUIRE(state < v_.size(), "state out of range");
  return InstanceView(dense_row_[state], r_, v_[state]);
}

}  // namespace skp
