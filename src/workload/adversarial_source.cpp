#include "workload/adversarial_source.hpp"

#include "util/require.hpp"

namespace skp {

MarkovSource make_adversarial_source(const AdversarialSourceConfig& config,
                                     Rng& rng) {
  const std::size_t n = config.n_items;
  const std::size_t h = config.hot_set;
  SKP_REQUIRE(h >= 2, "AdversarialSource needs hot_set >= 2");
  SKP_REQUIRE(2 * h <= n,
              "AdversarialSource needs n_items >= 2 * hot_set, got n_items="
                  << n << " hot_set=" << h);
  SKP_REQUIRE(config.escape_prob > 0.0 && config.escape_prob < 1.0,
              "escape_prob must be in (0, 1)");
  SKP_REQUIRE(config.v_lo >= 1.0 && config.v_lo <= config.v_hi,
              "viewing time range");
  SKP_REQUIRE(config.r_lo > 0.0 && config.r_lo <= config.r_hi,
              "retrieval time range");

  std::vector<double> v(n), r(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = rng.uniform_time(config.v_lo, config.v_hi, config.integer_times);
    r[i] = rng.uniform_time(config.r_lo, config.r_hi, config.integer_times);
  }

  const double esc = config.escape_prob;
  const double stay = (1.0 - esc) / static_cast<double>(h - 1);
  const double defect = esc / static_cast<double>(h);

  std::vector<std::vector<ItemId>> succ(n);
  std::vector<std::vector<double>> prob(n);
  // Clique members: uniform over the OTHER members of the own clique,
  // escape mass spread uniformly over the rival clique. Successor lists
  // stay in ascending id order because clique A's ids all precede
  // clique B's.
  for (std::size_t s = 0; s < 2 * h; ++s) {
    const bool in_a = s < h;
    const std::size_t own_lo = in_a ? 0 : h;
    const std::size_t rival_lo = in_a ? h : 0;
    auto add_own = [&] {
      for (std::size_t i = own_lo; i < own_lo + h; ++i) {
        if (i == s) continue;
        succ[s].push_back(static_cast<ItemId>(i));
        prob[s].push_back(stay);
      }
    };
    auto add_rival = [&] {
      for (std::size_t i = rival_lo; i < rival_lo + h; ++i) {
        succ[s].push_back(static_cast<ItemId>(i));
        prob[s].push_back(defect);
      }
    };
    if (in_a) {
      add_own();
      add_rival();
    } else {
      add_rival();
      add_own();
    }
  }
  // Cold states: one-shot entry points that drop the walk into clique A.
  for (std::size_t s = 2 * h; s < n; ++s) {
    for (std::size_t i = 0; i < h; ++i) {
      succ[s].push_back(static_cast<ItemId>(i));
      prob[s].push_back(1.0 / static_cast<double>(h));
    }
  }

  return MarkovSource(std::move(v), std::move(r), std::move(succ),
                      std::move(prob));
}

}  // namespace skp
