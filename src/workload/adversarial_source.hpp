// Adversarial request source (extension; ROADMAP "hostile and
// non-stationary worlds").
//
// A workload built to hurt the caching layers instead of flattering
// them: the catalog is split into two disjoint hot cliques sized just
// past the plan/content caches, and the walk ping-pongs between them.
// Within a clique the next access is uniform over the OTHER members
// (no self-loops — every request changes state, so frequency books
// never settle on one item), and with a small escape probability the
// walk defects to the rival clique, evicting everything the caches
// just learned. States outside the cliques are cold entry points that
// drop the walk into clique A.
//
// The result is still a plain MarkovSource — oracle rows, successor
// hints, plan memoization, and the DES all consume it unchanged — but
// its stationary behaviour alternates hot sets of `hot_set` items each,
// so any cache with capacity < hot_set thrashes within a clique and
// any cache with capacity < 2*hot_set thrashes across escapes. Tests
// pin the plan-cache hit-rate ceiling this produces.
#pragma once

#include "util/rng.hpp"
#include "workload/markov_source.hpp"

namespace skp {

struct AdversarialSourceConfig {
  std::size_t n_items = 24;
  std::size_t hot_set = 8;    // clique size; needs 2*hot_set <= n_items
  double escape_prob = 0.02;  // per-step chance of defecting cliques
  double v_lo = 1.0, v_hi = 100.0;  // per-state viewing times
  double r_lo = 1.0, r_hi = 30.0;   // per-item retrieval times
  bool integer_times = true;        // draw v, r as integers (paper-style)
};

// Draws the v/r catalogs from `rng` (deterministic in the stream) and
// assembles the two-clique chain: clique A = items [0, hot_set), clique
// B = items [hot_set, 2*hot_set), cold states = the rest.
MarkovSource make_adversarial_source(const AdversarialSourceConfig& config,
                                     Rng& rng);

}  // namespace skp
