#include "workload/zipf_source.hpp"

#include <numeric>

#include "util/require.hpp"
#include "workload/prob_gen.hpp"

namespace skp {

MarkovSource make_zipf_source(const ZipfSourceConfig& config, Rng& rng) {
  const std::size_t n = config.n_items;
  SKP_REQUIRE(n >= 2, "ZipfSource needs at least 2 items");
  SKP_REQUIRE(config.exponent > 0.0, "Zipf exponent must be positive");
  SKP_REQUIRE(config.v_lo >= 1.0 && config.v_lo <= config.v_hi,
              "viewing time range");
  SKP_REQUIRE(config.r_lo > 0.0 && config.r_lo <= config.r_hi,
              "retrieval time range");

  std::vector<double> v(n), r(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = rng.uniform_time(config.v_lo, config.v_hi,
                            config.integer_times);
    r[i] = rng.uniform_time(config.r_lo, config.r_hi,
                            config.integer_times);
  }

  const std::vector<double> row =
      zipf_probabilities(n, config.exponent, rng, config.shuffle);

  // Rank-1 chain: every state shares the same dense row over all items
  // (every probability is strictly positive, so the successor list is the
  // full catalog in ascending id order).
  std::vector<ItemId> all(n);
  std::iota(all.begin(), all.end(), ItemId{0});
  std::vector<std::vector<ItemId>> succ(n, all);
  std::vector<std::vector<double>> prob(n, row);
  return MarkovSource(std::move(v), std::move(r), std::move(succ),
                      std::move(prob));
}

}  // namespace skp
