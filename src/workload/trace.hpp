// Access-trace recording and replay.
//
// A trace is a sequence of (item, viewing_time) records plus the catalog's
// retrieval times. Traces let experiments decouple workload generation
// from policy evaluation (record once, replay under every policy — the
// paper's Fig. 7 compares five policies on the same request sequence) and
// let examples feed logged real-world sessions to the engine.
//
// Text format (one record per line, '#' comments):
//   header line:  "skptrace v1 <n_items>"
//   r line:       "r <r_0> <r_1> ... <r_{n-1}>"
//   record lines: "<item> <viewing_time>"
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/item.hpp"

namespace skp {

struct TraceRecord {
  ItemId item = kNoItem;
  double viewing_time = 0.0;
};

class Trace {
 public:
  Trace() = default;
  Trace(std::size_t n_items, std::vector<double> retrieval_times);

  std::size_t n_items() const noexcept { return n_items_; }
  const std::vector<double>& retrieval_times() const noexcept { return r_; }
  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  // Appends a record; item must be < n_items, viewing_time >= 0.
  void append(ItemId item, double viewing_time);

  // Serialization.
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);
  void save_file(const std::string& path) const;
  static Trace load_file(const std::string& path);

  bool operator==(const Trace& other) const;

 private:
  std::size_t n_items_ = 0;
  std::vector<double> r_;
  std::vector<TraceRecord> records_;
};

}  // namespace skp
