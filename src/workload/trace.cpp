#include "workload/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/require.hpp"

namespace skp {

Trace::Trace(std::size_t n_items, std::vector<double> retrieval_times)
    : n_items_(n_items), r_(std::move(retrieval_times)) {
  SKP_REQUIRE(n_items_ > 0, "Trace over empty catalog");
  SKP_REQUIRE(r_.size() == n_items_,
              "retrieval_times size " << r_.size() << " != " << n_items_);
  for (std::size_t i = 0; i < r_.size(); ++i) {
    SKP_REQUIRE(r_[i] > 0.0, "r[" << i << "] = " << r_[i]);
  }
}

void Trace::append(ItemId item, double viewing_time) {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < n_items_,
              "trace item " << item << " outside catalog " << n_items_);
  SKP_REQUIRE(viewing_time >= 0.0, "negative viewing time");
  records_.push_back({item, viewing_time});
}

void Trace::save(std::ostream& os) const {
  os << "skptrace v1 " << n_items_ << "\n";
  os << "r";
  os.precision(17);
  for (double x : r_) os << ' ' << x;
  os << "\n";
  for (const auto& rec : records_) {
    os << rec.item << ' ' << rec.viewing_time << "\n";
  }
}

Trace Trace::load(std::istream& is) {
  std::string line;
  SKP_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "trace: missing header");
  std::istringstream hs(line);
  std::string magic, version;
  std::size_t n = 0;
  hs >> magic >> version >> n;
  SKP_REQUIRE(magic == "skptrace" && version == "v1",
              "trace: bad header '" << line << "'");
  SKP_REQUIRE(n > 0, "trace: bad item count");

  SKP_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "trace: missing r line");
  std::istringstream rs(line);
  std::string tag;
  rs >> tag;
  SKP_REQUIRE(tag == "r", "trace: expected r line, got '" << line << "'");
  std::vector<double> r(n);
  for (std::size_t i = 0; i < n; ++i) {
    SKP_REQUIRE(static_cast<bool>(rs >> r[i]), "trace: truncated r line");
  }

  Trace trace(n, std::move(r));
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    long item = -1;
    double vt = 0.0;
    SKP_REQUIRE(static_cast<bool>(ls >> item >> vt),
                "trace: malformed record '" << line << "'");
    trace.append(static_cast<ItemId>(item), vt);
  }
  return trace;
}

void Trace::save_file(const std::string& path) const {
  std::ofstream f(path);
  SKP_REQUIRE(f.good(), "cannot open trace file for write: " << path);
  save(f);
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream f(path);
  SKP_REQUIRE(f.good(), "cannot open trace file for read: " << path);
  return load(f);
}

bool Trace::operator==(const Trace& other) const {
  if (n_items_ != other.n_items_ || r_ != other.r_ ||
      records_.size() != other.records_.size())
    return false;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].item != other.records_[i].item ||
        records_[i].viewing_time != other.records_[i].viewing_time)
      return false;
  }
  return true;
}

}  // namespace skp
