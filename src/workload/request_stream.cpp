#include "workload/request_stream.hpp"

#include <numeric>

namespace skp {

ItemId sample_categorical(std::span<const double> p, Rng& rng) {
  SKP_REQUIRE(!p.empty(), "sample_categorical over empty vector");
  const double u = rng.next_double();
  double cum = 0.0;
  std::size_t last_positive = 0;
  bool any = false;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] > 0.0) {
      last_positive = i;
      any = true;
      cum += p[i];
      if (u < cum) return static_cast<ItemId>(i);
    }
  }
  SKP_REQUIRE(any, "sample_categorical: all probabilities zero");
  return static_cast<ItemId>(last_positive);  // fp round-off fallback
}

IidStream::IidStream(Instance inst) : inst_(std::move(inst)) {
  inst_.validate();
  cdf_.resize(inst_.n());
  std::partial_sum(inst_.P.begin(), inst_.P.end(), cdf_.begin());
}

RequestEvent IidStream::next(Rng& rng) {
  RequestEvent ev;
  ev.instance = inst_;
  ev.item = sample_categorical(inst_.P, rng);
  return ev;
}

MarkovStream::MarkovStream(std::shared_ptr<MarkovSource> source)
    : source_(std::move(source)) {
  SKP_REQUIRE(source_ != nullptr, "MarkovStream requires a source");
}

RequestEvent MarkovStream::next(Rng& rng) {
  RequestEvent ev;
  ev.instance = source_->instance_at(source_->current_state());
  ev.item = static_cast<ItemId>(source_->step(rng));
  return ev;
}

}  // namespace skp
