#include "workload/prob_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/item.hpp"
#include "util/require.hpp"

namespace skp {

namespace {

// In-place normalization with the same checks and arithmetic as
// normalize_probabilities (each entry is divided by the plain left-to-
// right sum, so results are bit-identical).
void normalize_in_place(std::vector<double>& w) {
  SKP_REQUIRE(!w.empty(), "normalize_in_place: empty input");
  double sum = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    SKP_REQUIRE(w[i] >= 0.0 && std::isfinite(w[i]),
                "weight[" << i << "] = " << w[i]);
    sum += w[i];
  }
  SKP_REQUIRE(sum > 0.0, "normalize_in_place: all weights zero");
  for (double& x : w) x /= sum;
}

}  // namespace

void generate_probabilities_into(std::size_t n, ProbMethod method, Rng& rng,
                                 std::vector<double>& out,
                                 double skew_exponent) {
  SKP_REQUIRE(n > 0, "generate_probabilities_into(n=0)");
  out.resize(n);
  switch (method) {
    case ProbMethod::Skewy:
      SKP_REQUIRE(skew_exponent > 0.0, "skew exponent must be positive");
      for (auto& x : out) {
        const double u = rng.next_double();
        x = std::pow(u, skew_exponent) + 1e-12;  // keep strictly positive
      }
      break;
    case ProbMethod::Flat:
      for (auto& x : out) x = rng.exponential(1.0);
      break;
  }
  normalize_in_place(out);
}

std::vector<double> flat_probabilities(std::size_t n, Rng& rng) {
  std::vector<double> p;
  generate_probabilities_into(n, ProbMethod::Flat, rng, p);
  return p;
}

std::vector<double> skewy_probabilities(std::size_t n, Rng& rng,
                                        double exponent) {
  std::vector<double> p;
  generate_probabilities_into(n, ProbMethod::Skewy, rng, p, exponent);
  return p;
}

std::vector<double> generate_probabilities(std::size_t n, ProbMethod method,
                                           Rng& rng, double skew_exponent) {
  std::vector<double> p;
  generate_probabilities_into(n, method, rng, p, skew_exponent);
  return p;
}

std::vector<double> zipf_probabilities(std::size_t n, double s, Rng& rng,
                                       bool shuffle) {
  SKP_REQUIRE(n > 0, "zipf_probabilities(n=0)");
  SKP_REQUIRE(s >= 0.0, "zipf exponent must be >= 0");
  std::vector<double> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  if (shuffle) rng.shuffle(w);
  return normalize_probabilities(w);
}

namespace {

// Marsaglia–Tsang Gamma(alpha, 1) sampler (alpha > 0); for alpha < 1 uses
// the boost trick Gamma(alpha) = Gamma(alpha+1) * U^(1/alpha).
double gamma_draw(double alpha, Rng& rng) {
  if (alpha < 1.0) {
    const double u = std::max(rng.next_double(), 1e-300);
    return gamma_draw(alpha + 1.0, rng) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    // Box–Muller normal draw.
    const double u1 = std::max(rng.next_double(), 1e-300);
    const double u2 = rng.next_double();
    const double x =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double vcub = 1.0 + c * x;
    if (vcub <= 0.0) continue;
    const double v = vcub * vcub * vcub;
    const double u = rng.next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(std::max(u, 1e-300)) <
        0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

}  // namespace

std::vector<double> dirichlet_probabilities(std::size_t n, double alpha,
                                            Rng& rng) {
  SKP_REQUIRE(n > 0, "dirichlet_probabilities(n=0)");
  SKP_REQUIRE(alpha > 0.0, "dirichlet alpha must be positive");
  std::vector<double> w(n);
  for (auto& x : w) x = gamma_draw(alpha, rng) + 1e-300;
  return normalize_probabilities(w);
}

double entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double x : p) {
    if (x > 0.0) h -= x * std::log(x);
  }
  return h;
}

const char* to_string(ProbMethod m) {
  return m == ProbMethod::Skewy ? "skewy" : "flat";
}

}  // namespace skp
