// Next-access probability generators (Section 4.4 of the paper).
//
// The paper evaluates with two unnamed generators: the "skewy method"
// ("generates a situation where the next request is highly predictable")
// and the "flat method" ("a less predictable situation"). Neither is
// specified further, so we define them precisely (DESIGN.md, D2):
//
//   * flat : P = normalized Exp(1) draws — a symmetric Dirichlet(1) sample,
//            the canonical "uniform over the probability simplex".
//   * skewy: P = normalized u_i^k with u_i ~ U(0,1) and skew exponent k
//            (default 8). One item typically carries 60–95 % of the mass.
//
// Zipf and explicit Dirichlet(alpha) generators are provided as extensions
// for sensitivity sweeps.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace skp {

enum class ProbMethod { Skewy, Flat };

// Draws an n-vector of next-access probabilities (sums to 1).
std::vector<double> generate_probabilities(std::size_t n, ProbMethod method,
                                           Rng& rng,
                                           double skew_exponent = 8.0);

// Allocation-free variant: draws into `out` (resized to n, capacity
// reused) and normalizes in place. Bit-identical to
// generate_probabilities; the Monte-Carlo loops that redraw P every
// iteration use this form.
void generate_probabilities_into(std::size_t n, ProbMethod method, Rng& rng,
                                 std::vector<double>& out,
                                 double skew_exponent = 8.0);

std::vector<double> flat_probabilities(std::size_t n, Rng& rng);
std::vector<double> skewy_probabilities(std::size_t n, Rng& rng,
                                        double exponent = 8.0);

// Zipf(s) probabilities over ranks 1..n, optionally shuffled so item id is
// uncorrelated with rank.
std::vector<double> zipf_probabilities(std::size_t n, double s, Rng& rng,
                                       bool shuffle = true);

// Symmetric Dirichlet(alpha) sample via Gamma(alpha, 1) draws
// (Marsaglia–Tsang). alpha = 1 coincides with flat_probabilities.
std::vector<double> dirichlet_probabilities(std::size_t n, double alpha,
                                            Rng& rng);

// Entropy (nats) of a probability vector — the predictability measure used
// by tests to verify that skewy is materially more predictable than flat.
double entropy(const std::vector<double>& p);

const char* to_string(ProbMethod m);

}  // namespace skp
