// Zipf request source (extension; ROADMAP "as many scenarios as you can
// imagine").
//
// Web/file-access traces are classically Zipf-distributed: the k-th most
// popular item draws probability proportional to k^-s. This builds that
// workload as a rank-1 Markov chain — every state carries the SAME dense
// next-access row, the Zipf distribution itself — so it drops unchanged
// into every simulator that consumes a MarkovSource (oracle rows,
// successor hints, plan memoization, the DES). Requests are therefore
// i.i.d. Zipf draws, but with a persistent item catalog (fixed per-item
// retrieval times and per-state viewing times), unlike the
// flush-per-iteration prefetch-only protocol.
//
// With `shuffle` (default) item id is decorrelated from popularity rank;
// with shuffle off item 0 is the most popular, which tests use to check
// the tail exponent directly.
#pragma once

#include "util/rng.hpp"
#include "workload/markov_source.hpp"

namespace skp {

struct ZipfSourceConfig {
  std::size_t n_items = 100;
  double exponent = 1.1;  // tail exponent s: P(rank k) proportional to k^-s
  bool shuffle = true;    // decouple item id from popularity rank
  double v_lo = 1.0, v_hi = 100.0;  // per-state viewing times
  double r_lo = 1.0, r_hi = 30.0;   // per-item retrieval times
  bool integer_times = true;        // draw v, r as integers (paper-style)
};

// Draws the v/r catalogs and the Zipf row from `rng` (deterministic in the
// stream) and assembles the rank-1 chain. Self-transitions are allowed —
// an i.i.d. draw may repeat the current item.
MarkovSource make_zipf_source(const ZipfSourceConfig& config, Rng& rng);

}  // namespace skp
