// Request streams: common interface for sources of (request, instance)
// pairs consumed by simulators, predictors and examples.
//
// Two concrete streams live here:
//   * IidStream   — each request drawn i.i.d. from a fixed P (the
//                   prefetch-only world of Section 4.4, but with a stable
//                   catalog across iterations).
//   * MarkovStream — adapter over MarkovSource (the Fig. 7 world).
// Trace-backed replay lives in workload/trace.hpp.
#pragma once

#include <memory>

#include "core/item.hpp"
#include "util/rng.hpp"
#include "workload/markov_source.hpp"

namespace skp {

// One user-visible request cycle: the item requested next and the model
// parameters (P, r, v) that were in force while it was awaited.
struct RequestEvent {
  ItemId item = kNoItem;
  Instance instance;  // P/r/v the prefetcher saw before this request
};

class RequestStream {
 public:
  virtual ~RequestStream() = default;
  // Produces the next request cycle.
  virtual RequestEvent next(Rng& rng) = 0;
  // Catalog size.
  virtual std::size_t n_items() const = 0;
};

// I.i.d. draws from a fixed catalog (P, r, v all constant).
class IidStream final : public RequestStream {
 public:
  explicit IidStream(Instance inst);
  RequestEvent next(Rng& rng) override;
  std::size_t n_items() const override { return inst_.n(); }

 private:
  Instance inst_;
  std::vector<double> cdf_;
};

// Markov-source adapter: the instance of each event is the transition row
// and viewing time of the state *before* the step (what the prefetcher
// knew), and `item` is the state stepped into.
class MarkovStream final : public RequestStream {
 public:
  explicit MarkovStream(std::shared_ptr<MarkovSource> source);
  RequestEvent next(Rng& rng) override;
  std::size_t n_items() const override { return source_->n_states(); }
  const MarkovSource& source() const { return *source_; }

 private:
  std::shared_ptr<MarkovSource> source_;
};

// Samples an index from a dense probability vector (shared helper).
ItemId sample_categorical(std::span<const double> p, Rng& rng);

}  // namespace skp
