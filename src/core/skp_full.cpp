#include "core/skp_full.hpp"

#include <algorithm>
#include <numeric>

#include "core/access_model.hpp"
#include "core/kp_solver.hpp"

namespace skp {

namespace {

// DFS for the fixed-z subproblem. Items are the canonical-order candidates
// excluding z; K must keep sum r strictly below v.
class FixedZSearch {
 public:
  FixedZSearch(const Instance& inst, std::span<const ItemId> order,
               ItemId z, double total_mass)
      : inst_(inst),
        order_(order.begin(), order.end()),
        z_(z),
        mass_(total_mass),
        rz_(inst.r[Instance::idx(z)]),
        profit_z_(inst.profit(z)) {
    chosen_.assign(order_.size(), false);
    best_chosen_ = chosen_;
  }

  // Runs the search; returns the best objective (gain of prefetching
  // K ++ <z>), with the best K recoverable via best_list().
  double run(std::uint64_t* steps) {
    best_ = -1e300;
    dfs(0, 0.0, 0.0, 0.0);
    *steps += steps_;
    return best_;
  }

  PrefetchList best_list() const {
    PrefetchList F;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (best_chosen_[i]) F.push_back(order_[i]);
    }
    F.push_back(z_);
    return F;
  }

 private:
  double objective(double profit, double prob, double weight) const {
    const double st = std::max(0.0, weight + rz_ - inst_.v);
    return profit + profit_z_ - (mass_ - prob) * st;
  }

  void dfs(std::size_t depth, double profit, double prob, double weight) {
    ++steps_;
    const double value = objective(profit, prob, weight);
    if (value > best_) {
      best_ = value;
      best_chosen_ = chosen_;
    }
    if (depth == order_.size()) return;
    // Bound: remaining profit is at most the Dantzig fill of the residual
    // K capacity; the stretch penalty is at least P_z * current stretch
    // (pen >= P_z always, and st only grows with additions).
    const double residual = inst_.v - weight;
    const double st_now = std::max(0.0, weight + rz_ - inst_.v);
    const double ub = profit + profit_z_ +
                      dantzig_bound(inst_, order_, depth, residual) -
                      inst_.P[Instance::idx(z_)] * st_now;
    if (ub <= best_) return;
    const ItemId id = order_[depth];
    const double w = inst_.r[Instance::idx(id)];
    if (weight + w < inst_.v) {  // Eq. (1): K strictly within v
      chosen_[depth] = true;
      dfs(depth + 1, profit + inst_.profit(id),
          prob + inst_.P[Instance::idx(id)], weight + w);
      chosen_[depth] = false;
    }
    dfs(depth + 1, profit, prob, weight);
  }

  const Instance& inst_;
  std::vector<ItemId> order_;
  ItemId z_;
  double mass_;
  double rz_;
  double profit_z_;
  std::vector<char> chosen_;
  std::vector<char> best_chosen_;
  double best_ = -1e300;
  std::uint64_t steps_ = 0;
};

}  // namespace

SkpSolution solve_skp_full(const Instance& inst,
                           std::span<const ItemId> candidates,
                           double total_prob_mass) {
  inst.validate();
  SKP_REQUIRE(total_prob_mass > 0.0,
              "total_prob_mass = " << total_prob_mass);
  SkpSolution best;  // empty list, g = 0
  if (inst.v <= 0.0) return best;
  const auto order = canonical_order(inst, candidates);
  for (const ItemId z : order) {
    if (inst.P[Instance::idx(z)] <= 0.0) {
      // K must fit strictly within v, so K standalone has zero stretch
      // and dominates K ++ <z> whenever P_z = 0: skip such z.
      continue;
    }
    std::vector<ItemId> rest;
    rest.reserve(order.size() - 1);
    for (const ItemId i : order) {
      if (i != z) rest.push_back(i);
    }
    FixedZSearch search(inst, rest, z, total_prob_mass);
    const double g = search.run(&best.forward_steps);
    if (g > best.g) {
      best.g = g;
      best.F = search.best_list();
    }
  }
  best.stretch = stretch_time(inst, best.F);
  return best;
}

SkpSolution solve_skp_full(const Instance& inst, double total_prob_mass) {
  std::vector<ItemId> ids(inst.n());
  std::iota(ids.begin(), ids.end(), ItemId{0});
  return solve_skp_full(inst, ids, total_prob_mass);
}

}  // namespace skp
