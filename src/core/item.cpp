#include "core/item.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace skp {

namespace {
constexpr double kProbEps = 1e-9;
}

void Instance::validate() const {
  SKP_REQUIRE(!P.empty(), "empty catalog");
  SKP_REQUIRE(P.size() == r.size(),
              "P/r size mismatch: " << P.size() << " vs " << r.size());
  SKP_REQUIRE(v >= 0.0, "viewing time v = " << v << " must be >= 0");
  double sum = 0.0;
  for (std::size_t i = 0; i < P.size(); ++i) {
    SKP_REQUIRE(P[i] >= 0.0 && std::isfinite(P[i]),
                "P[" << i << "] = " << P[i]);
    SKP_REQUIRE(r[i] > 0.0 && std::isfinite(r[i]),
                "r[" << i << "] = " << r[i] << " must be > 0");
    sum += P[i];
  }
  SKP_REQUIRE(sum <= 1.0 + kProbEps,
              "probabilities sum to " << sum << " > 1");
}

bool canonical_before(const Instance& inst, ItemId a, ItemId b) {
  const std::size_t ia = Instance::idx(a), ib = Instance::idx(b);
  if (inst.P[ia] != inst.P[ib]) return inst.P[ia] > inst.P[ib];
  if (inst.r[ia] != inst.r[ib]) return inst.r[ia] < inst.r[ib];
  return a < b;
}

std::vector<ItemId> canonical_order(const Instance& inst,
                                    std::span<const ItemId> candidates) {
  std::vector<ItemId> order(candidates.begin(), candidates.end());
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    return canonical_before(inst, a, b);
  });
  return order;
}

std::vector<ItemId> canonical_order(const Instance& inst) {
  std::vector<ItemId> all(inst.n());
  std::iota(all.begin(), all.end(), ItemId{0});
  return canonical_order(inst, all);
}

bool is_canonically_sorted(const Instance& inst,
                           std::span<const ItemId> list) {
  for (std::size_t i = 1; i < list.size(); ++i) {
    if (canonical_before(inst, list[i], list[i - 1])) return false;
  }
  return true;
}

std::vector<double> normalize_probabilities(std::span<const double> weights) {
  SKP_REQUIRE(!weights.empty(), "normalize_probabilities: empty input");
  double sum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    SKP_REQUIRE(weights[i] >= 0.0 && std::isfinite(weights[i]),
                "weight[" << i << "] = " << weights[i]);
    sum += weights[i];
  }
  SKP_REQUIRE(sum > 0.0, "normalize_probabilities: all weights zero");
  std::vector<double> p(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) p[i] = weights[i] / sum;
  return p;
}

}  // namespace skp
