#include "core/item.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace skp {

namespace {
constexpr double kProbEps = 1e-9;
}

void InstanceView::validate() const {
  SKP_REQUIRE(!P.empty(), "empty catalog");
  SKP_REQUIRE(P.size() == r.size(),
              "P/r size mismatch: " << P.size() << " vs " << r.size());
  SKP_REQUIRE(v >= 0.0, "viewing time v = " << v << " must be >= 0");
  // Hot path: one branch-free scan. A non-finite P_i is caught without an
  // explicit isfinite() — NaN fails `>= 0`, +inf blows the sum check — and
  // `r_i < inf` together with `r_i > 0` excludes NaN and both infinities.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double sum = 0.0;
  int ok = 1;
  for (std::size_t i = 0; i < P.size(); ++i) {
    ok &= static_cast<int>(P[i] >= 0.0) & static_cast<int>(r[i] > 0.0) &
          static_cast<int>(r[i] < kInf);
    sum += P[i];
  }
  if (!ok) {
    // Slow path only on failure: re-scan for the precise message.
    for (std::size_t i = 0; i < P.size(); ++i) {
      SKP_REQUIRE(P[i] >= 0.0 && std::isfinite(P[i]),
                  "P[" << i << "] = " << P[i]);
      SKP_REQUIRE(r[i] > 0.0 && std::isfinite(r[i]),
                  "r[" << i << "] = " << r[i] << " must be > 0");
    }
  }
  SKP_REQUIRE(sum <= 1.0 + kProbEps,
              "probabilities sum to " << sum << " > 1");
}

void Instance::validate() const { InstanceView(*this).validate(); }

bool canonical_before(InstanceView inst, ItemId a, ItemId b) {
  const std::size_t ia = InstanceView::idx(a), ib = InstanceView::idx(b);
  if (inst.P[ia] != inst.P[ib]) return inst.P[ia] > inst.P[ib];
  if (inst.r[ia] != inst.r[ib]) return inst.r[ia] < inst.r[ib];
  return a < b;
}

void canonical_order_into(InstanceView inst,
                          std::span<const ItemId> candidates,
                          std::vector<ItemId>& out) {
  out.assign(candidates.begin(), candidates.end());
  std::sort(out.begin(), out.end(), [&](ItemId a, ItemId b) {
    return canonical_before(inst, a, b);
  });
}

void canonical_order_into(InstanceView inst,
                          std::span<const ItemId> candidates,
                          std::vector<CanonKey>& keys,
                          std::vector<ItemId>& out) {
  keys.clear();
  for (const ItemId c : candidates) {
    const std::size_t i = InstanceView::idx(c);
    keys.push_back({inst.P[i], inst.r[i], c});
  }
  std::sort(keys.begin(), keys.end(),
            [](const CanonKey& a, const CanonKey& b) {
              if (a.P != b.P) return a.P > b.P;
              if (a.r != b.r) return a.r < b.r;
              return a.id < b.id;
            });
  out.clear();
  for (const CanonKey& k : keys) out.push_back(k.id);
}

std::vector<ItemId> canonical_order(InstanceView inst,
                                    std::span<const ItemId> candidates) {
  std::vector<ItemId> order;
  canonical_order_into(inst, candidates, order);
  return order;
}

std::vector<ItemId> canonical_order(InstanceView inst) {
  std::vector<ItemId> all(inst.n());
  std::iota(all.begin(), all.end(), ItemId{0});
  return canonical_order(inst, all);
}

bool is_canonically_sorted(InstanceView inst, std::span<const ItemId> list) {
  for (std::size_t i = 1; i < list.size(); ++i) {
    if (canonical_before(inst, list[i], list[i - 1])) return false;
  }
  return true;
}

std::vector<double> normalize_probabilities(std::span<const double> weights) {
  SKP_REQUIRE(!weights.empty(), "normalize_probabilities: empty input");
  double sum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    SKP_REQUIRE(weights[i] >= 0.0 && std::isfinite(weights[i]),
                "weight[" << i << "] = " << weights[i]);
    sum += weights[i];
  }
  SKP_REQUIRE(sum > 0.0, "normalize_probabilities: all weights zero");
  std::vector<double> p(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) p[i] = weights[i] / sum;
  return p;
}

}  // namespace skp
