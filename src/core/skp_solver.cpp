#include "core/skp_solver.hpp"

#include <algorithm>
#include <numeric>

#include "core/access_model.hpp"
#include "core/kp_solver.hpp"

namespace skp {

namespace {

// Iterative transcription of the paper's Figure 3. The three goto targets
// (2: bound, 3: forward, 5: backtrack) become phases of one loop; the
// selection stack records (index, delta) so backtracking reverses g-hat
// exactly (the paper recomputes delta, which is identical in real
// arithmetic; storing it avoids floating-point drift).
class SkpSearch {
 public:
  SkpSearch(const Instance& inst, std::vector<ItemId> order,
            const SkpOptions& opts)
      : inst_(inst), order_(std::move(order)), opts_(opts) {
    const std::size_t m = order_.size();
    // suffix_prob_[j] = sum of P over order_[j..m-1]  (Figure 3's tail sum;
    // the P_{n+1} = 0 sentinel is the final 0 entry).
    suffix_prob_.assign(m + 1, 0.0);
    for (std::size_t j = m; j-- > 0;) {
      suffix_prob_[j] =
          suffix_prob_[j + 1] + inst_.P[Instance::idx(order_[j])];
    }
    selected_.assign(m, false);
    best_selected_ = selected_;
  }

  SkpSolution run() {
    const std::size_t m = order_.size();
    std::size_t j = 0;
    double residual = inst_.v;     // v-hat
    double g_cur = 0.0;            // g-hat
    double prob_selected = 0.0;    // sum of P over currently selected items

    enum class Phase { Bound, Forward, Backtrack };
    Phase phase = Phase::Bound;

    for (;;) {
      if (opts_.max_nodes && sol_.forward_steps >= opts_.max_nodes) {
        sol_.node_limit_hit = true;
        break;
      }
      switch (phase) {
        case Phase::Bound: {  // Figure 3, step 2
          const double ub =
              dantzig_bound(inst_, order_, j, std::max(0.0, residual));
          if (best_g_ >= g_cur + ub) {
            ++sol_.bound_prunes;
            phase = Phase::Backtrack;
          } else {
            phase = Phase::Forward;
          }
          break;
        }
        case Phase::Forward: {  // Figure 3, step 3 (+ step 4 at the end)
          bool rebound = false;
          while (j < m && residual > 0.0) {
            const ItemId id = order_[j];
            const double rj = inst_.r[Instance::idx(id)];
            const double st = std::max(0.0, rj - residual);
            const double penalty = penalty_mass(j, prob_selected);
            const double delta =
                inst_.profit(id) - penalty * st;
            ++sol_.forward_steps;
            if (delta <= 0.0) {
              selected_[j] = false;
              ++j;
              // Figure 3: "if j < n then goto 2" — refresh the bound
              // unless the *last* item is next.
              if (j + 1 < m) {
                rebound = true;
                break;
              }
            } else {
              residual -= rj;
              g_cur += delta;
              selected_[j] = true;
              prob_selected += inst_.P[Instance::idx(id)];
              stack_.push_back({j, delta, rj, inst_.P[Instance::idx(id)]});
              ++j;
            }
          }
          if (rebound) {
            phase = Phase::Bound;
            break;
          }
          // Step 4: solution complete (stretched, exact fit, or exhausted).
          if (g_cur > best_g_) {
            best_g_ = g_cur;
            best_selected_ = selected_;
          }
          phase = Phase::Backtrack;
          break;
        }
        case Phase::Backtrack: {  // Figure 3, step 5
          if (stack_.empty()) {
            finish();
            return sol_;
          }
          ++sol_.backtracks;
          const Move mv = stack_.back();
          stack_.pop_back();
          selected_[mv.index] = false;
          residual += mv.r;
          prob_selected -= mv.P;
          g_cur -= mv.delta;
          j = mv.index + 1;
          phase = Phase::Bound;
          break;
        }
      }
    }
    finish();  // node-limit exit: report the incumbent
    return sol_;
  }

 private:
  struct Move {
    std::size_t index;
    double delta;
    double r;
    double P;
  };

  double penalty_mass(std::size_t j, double prob_selected) const {
    switch (opts_.delta_rule) {
      case DeltaRule::PaperTail:
        return suffix_prob_[j];
      case DeltaRule::ExactComplement:
        return opts_.total_prob_mass - prob_selected;
    }
    return opts_.total_prob_mass - prob_selected;  // unreachable
  }

  void finish() {
    sol_.g = best_g_;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (best_selected_[i]) sol_.F.push_back(order_[i]);
    }
    sol_.stretch = stretch_time(inst_, sol_.F);
  }

  const Instance& inst_;
  std::vector<ItemId> order_;
  SkpOptions opts_;
  std::vector<double> suffix_prob_;
  std::vector<char> selected_;
  std::vector<char> best_selected_;
  std::vector<Move> stack_;
  double best_g_ = 0.0;
  SkpSolution sol_;
};

}  // namespace

SkpSolution solve_skp(const Instance& inst,
                      std::span<const ItemId> candidates,
                      const SkpOptions& opts) {
  inst.validate();
  SKP_REQUIRE(opts.total_prob_mass > 0.0,
              "total_prob_mass = " << opts.total_prob_mass);
  SkpSearch search(inst, canonical_order(inst, candidates), opts);
  return search.run();
}

SkpSolution solve_skp(const Instance& inst, const SkpOptions& opts) {
  std::vector<ItemId> ids(inst.n());
  std::iota(ids.begin(), ids.end(), ItemId{0});
  return solve_skp(inst, ids, opts);
}

double skp_upper_bound(const Instance& inst,
                       std::span<const ItemId> candidates) {
  inst.validate();
  const auto order = canonical_order(inst, candidates);
  return dantzig_bound(inst, order, 0, inst.v);
}

double skp_upper_bound(const Instance& inst) {
  std::vector<ItemId> ids(inst.n());
  std::iota(ids.begin(), ids.end(), ItemId{0});
  return skp_upper_bound(inst, ids);
}

}  // namespace skp
