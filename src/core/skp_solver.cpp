#include "core/skp_solver.hpp"

#include <algorithm>
#include <numeric>

#include "core/access_model.hpp"
#include "core/kp_solver.hpp"
#include "util/simd.hpp"

namespace skp {

namespace {

// Iterative transcription of the paper's Figure 3. The three goto targets
// (2: bound, 3: forward, 5: backtrack) become phases of one loop; the
// selection stack records (index, delta) so backtracking reverses g-hat
// exactly (the paper recomputes delta, which is identical in real
// arithmetic; storing it avoids floating-point drift). All working memory
// is borrowed from an SkpWorkspace so repeated solves never allocate.
class SkpSearch {
 public:
  // `suffix_prob`, when non-empty, is a caller-precomputed Figure-3 tail
  // sum over `order` (size m + 1, trailing 0 sentinel — e.g. a
  // CanonicalOrderTable row) and is borrowed instead of rebuilt. It is
  // only consulted by the PaperTail delta rule, so with ExactComplement
  // and no precomputed span the setup is skipped entirely.
  SkpSearch(InstanceView inst, std::span<const ItemId> order,
            const SkpOptions& opts, SkpWorkspace& ws, SkpSolution& sol,
            std::span<const double> suffix_prob)
      : inst_(inst), order_(order), opts_(opts), ws_(ws), sol_(sol) {
    const std::size_t m = order_.size();
    if (!suffix_prob.empty()) {
      SKP_ASSERT(suffix_prob.size() == m + 1);
      suffix_ = suffix_prob;
    } else if (opts_.delta_rule == DeltaRule::PaperTail) {
      // suffix_prob[j] = sum of P over order_[j..m-1]  (Figure 3's tail
      // sum; the P_{n+1} = 0 sentinel is the final 0 entry). Vectorized
      // gather + scalar-order accumulation (util/simd.hpp) — bit-exact.
      ws_.suffix_prob.resize(m + 1);
      simd::suffix_sums(inst_.P, order_, ws_.suffix_prob.data());
      suffix_ = ws_.suffix_prob;
    }
    ws_.selected.assign(m, 0);
    ws_.best_selected.assign(m, 0);
    ws_.stack.clear();
  }

  void run() {
    const std::size_t m = order_.size();
    std::size_t j = 0;
    double residual = inst_.v;     // v-hat
    double g_cur = 0.0;            // g-hat
    double prob_selected = 0.0;    // sum of P over currently selected items

    enum class Phase { Bound, Forward, Backtrack };
    Phase phase = Phase::Bound;

    for (;;) {
      if (opts_.max_nodes && sol_.forward_steps >= opts_.max_nodes) {
        sol_.node_limit_hit = true;
        break;
      }
      switch (phase) {
        case Phase::Bound: {  // Figure 3, step 2
          const double ub =
              dantzig_bound(inst_, order_, j, std::max(0.0, residual));
          if (best_g_ >= g_cur + ub) {
            ++sol_.bound_prunes;
            phase = Phase::Backtrack;
          } else {
            phase = Phase::Forward;
          }
          break;
        }
        case Phase::Forward: {  // Figure 3, step 3 (+ step 4 at the end)
          bool rebound = false;
          while (j < m && residual > 0.0) {
            // Ids come from the validated canonical order; index
            // unchecked (this is the innermost loop of the search).
            const auto id_i = static_cast<std::size_t>(order_[j]);
            const double rj = inst_.r[id_i];
            const double st = std::max(0.0, rj - residual);
            const double penalty = penalty_mass(j, prob_selected);
            const double delta = inst_.P[id_i] * rj - penalty * st;
            ++sol_.forward_steps;
            if (delta <= 0.0) {
              ws_.selected[j] = 0;
              ++j;
              // Figure 3: "if j < n then goto 2" — refresh the bound
              // unless the *last* item is next.
              if (j + 1 < m) {
                rebound = true;
                break;
              }
            } else {
              residual -= rj;
              g_cur += delta;
              ws_.selected[j] = 1;
              prob_selected += inst_.P[id_i];
              ws_.stack.push_back({j, delta, rj, inst_.P[id_i]});
              ++j;
            }
          }
          if (rebound) {
            phase = Phase::Bound;
            break;
          }
          // Step 4: solution complete (stretched, exact fit, or exhausted).
          if (g_cur > best_g_) {
            best_g_ = g_cur;
            std::copy(ws_.selected.begin(), ws_.selected.end(),
                      ws_.best_selected.begin());
          }
          phase = Phase::Backtrack;
          break;
        }
        case Phase::Backtrack: {  // Figure 3, step 5
          if (ws_.stack.empty()) {
            finish();
            return;
          }
          ++sol_.backtracks;
          const SkpMove mv = ws_.stack.back();
          ws_.stack.pop_back();
          ws_.selected[mv.index] = 0;
          residual += mv.r;
          prob_selected -= mv.P;
          g_cur -= mv.delta;
          j = mv.index + 1;
          phase = Phase::Bound;
          break;
        }
      }
    }
    finish();  // node-limit exit: report the incumbent
  }

 private:
  double penalty_mass(std::size_t j, double prob_selected) const {
    switch (opts_.delta_rule) {
      case DeltaRule::PaperTail:
        return suffix_[j];
      case DeltaRule::ExactComplement:
        return opts_.total_prob_mass - prob_selected;
    }
    return opts_.total_prob_mass - prob_selected;  // unreachable
  }

  void finish() {
    sol_.g = best_g_;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (ws_.best_selected[i]) sol_.F.push_back(order_[i]);
    }
    sol_.stretch = stretch_time(inst_, sol_.F);
  }

  InstanceView inst_;
  std::span<const ItemId> order_;
  SkpOptions opts_;
  SkpWorkspace& ws_;
  SkpSolution& sol_;
  std::span<const double> suffix_;  // PaperTail tail sums (may be empty)
  double best_g_ = 0.0;
};

}  // namespace

void SkpSolution::clear() {
  F.clear();
  g = 0.0;
  stretch = 0.0;
  forward_steps = 0;
  backtracks = 0;
  bound_prunes = 0;
  node_limit_hit = false;
}

void solve_skp_into(InstanceView inst, std::span<const ItemId> candidates,
                    const SkpOptions& opts, SkpWorkspace& ws,
                    SkpSolution& sol) {
  canonical_order_into(inst, candidates, ws.order_keys, ws.order);
  solve_skp_sorted_into(inst, ws.order, opts, ws, sol);
}

void solve_skp_sorted_into(InstanceView inst, std::span<const ItemId> order,
                           const SkpOptions& opts, SkpWorkspace& ws,
                           SkpSolution& sol,
                           std::span<const double> suffix_prob) {
  SKP_REQUIRE(opts.total_prob_mass > 0.0,
              "total_prob_mass = " << opts.total_prob_mass);
  sol.clear();
  SkpSearch search(inst, order, opts, ws, sol, suffix_prob);
  search.run();
}

void solve_skp_batch_into(std::span<const SkpBatchItem> items,
                          std::span<const ItemId> order,
                          const SkpOptions& opts, SkpWorkspace& ws) {
  SKP_REQUIRE(opts.total_prob_mass > 0.0,
              "total_prob_mass = " << opts.total_prob_mass);
  if (items.empty()) return;
  // One suffix build for the whole batch (PaperTail only; ExactComplement
  // needs no tail sums). The sums are a function of P over `order`, which
  // every lane shares, so lane 0's row serves them all.
  std::span<const double> suffix;
  if (opts.delta_rule == DeltaRule::PaperTail) {
    ws.suffix_prob.resize(order.size() + 1);
    simd::suffix_sums(items[0].inst.P, order, ws.suffix_prob.data());
    suffix = ws.suffix_prob;
  }
  for (const SkpBatchItem& item : items) {
    item.sol->clear();
    SkpSearch search(item.inst, order, opts, ws, *item.sol, suffix);
    search.run();
  }
}

SkpSolution solve_skp(InstanceView inst, std::span<const ItemId> candidates,
                      const SkpOptions& opts) {
  inst.validate();
  SkpWorkspace ws;
  SkpSolution sol;
  solve_skp_into(inst, candidates, opts, ws, sol);
  return sol;
}

SkpSolution solve_skp(InstanceView inst, const SkpOptions& opts) {
  std::vector<ItemId> ids(inst.n());
  std::iota(ids.begin(), ids.end(), ItemId{0});
  return solve_skp(inst, ids, opts);
}

double skp_upper_bound(InstanceView inst,
                       std::span<const ItemId> candidates) {
  inst.validate();
  const auto order = canonical_order(inst, candidates);
  return dantzig_bound(inst, order, 0, inst.v);
}

double skp_upper_bound(InstanceView inst) {
  std::vector<ItemId> ids(inst.n());
  std::iota(ids.begin(), ids.end(), ItemId{0});
  return skp_upper_bound(inst, ids);
}

}  // namespace skp
