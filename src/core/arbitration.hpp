// Pr-arbitration and sub-arbitration (Section 5.2 of the paper).
//
// Pr-arbitration: a prefetch candidate f may evict a cached victim d only
// if d has the minimal Pr value P_d * r_d in the cache and (per the
// Figure-6 listing) P_f r_f is not smaller than P_d r_d. Demand-fetched
// items must always find a victim and need only the minimality condition.
//
// Sub-arbitration breaks ties among victims with equal Pr value:
//   * None — lowest item id (deterministic).
//   * LFU  — least frequently used.
//   * DS   — lowest delay-saving profit freq_i * r_i (WATCHMAN-style).
//
// DESIGN.md D4: the paper's prose demands strict P_f r_f > P_d r_d while
// the listing breaks only on '<' (ties admit the prefetch). `strict_ties`
// selects the prose behaviour; the default follows the listing.
#pragma once

#include <span>
#include <vector>

#include "cache/freq_tracker.hpp"
#include "cache/sized_cache.hpp"
#include "core/item.hpp"

namespace skp {

enum class SubArbitration { None, LFU, DS };

struct ArbitrationConfig {
  SubArbitration sub = SubArbitration::None;
  bool strict_ties = false;  // true = prose rule, false = Figure-6 listing
};

// Chooses the eviction victim among `cached` (non-empty): minimal
// P_d * r_d, ties resolved by `cfg.sub` (then by lowest id). `freq` may be
// null only when cfg.sub == None.
ItemId choose_victim(InstanceView inst, std::span<const ItemId> cached,
                     const FreqTracker* freq, const ArbitrationConfig& cfg);

// True when prefetch candidate `f` is allowed to displace victim `d`
// (Pr-arbitration admission test).
bool admits_prefetch(InstanceView inst, ItemId f, ItemId d,
                     const ArbitrationConfig& cfg);

// Size-aware generalization (extension; the paper's Section-6 open item).
// Greedily gathers victims from `cache` by ascending Pr *density*
// (P_d r_d per size unit, ties by sub-arbitration then id) until
// `needed_free` space is available (counting current free space).
// Returns the victim list; `ok` is false when even evicting everything
// would not make room.
struct VictimSet {
  std::vector<ItemId> victims;
  double freed = 0.0;     // space the victims release
  double total_pr = 0.0;  // sum of P_d r_d over the victims
  bool ok = false;

  // Resets to the empty set, keeping `victims`' capacity (hot-path reuse).
  void clear();
};
VictimSet gather_victims_by_density(InstanceView inst,
                                    const SizedCache& cache,
                                    const FreqTracker* freq,
                                    const ArbitrationConfig& cfg,
                                    double needed_free);

// Allocation-free variant: the candidate pool is staged in `pool` and the
// result written into `out` (both cleared first, capacity reused).
// Bit-identical to gather_victims_by_density.
void gather_victims_by_density_into(InstanceView inst,
                                    const SizedCache& cache,
                                    const FreqTracker* freq,
                                    const ArbitrationConfig& cfg,
                                    double needed_free,
                                    std::vector<ItemId>& pool,
                                    VictimSet& out);

}  // namespace skp
