// Classic 0/1 knapsack machinery for the KP-prefetch baseline.
//
// In the knapsack view of Section 4 of the paper, item i has profit
// P_i * r_i, weight r_i, and the knapsack capacity is the viewing time v.
// Unlike the SKP, the KP never stretches: sum of selected weights <= v.
//
// Solvers provided:
//   * solve_kp_bb   — Horowitz–Sahni branch-and-bound with Dantzig bound;
//                     works with real-valued weights (the general case).
//   * solve_kp_dp   — integer-weight dynamic program; used for cross checks
//                     and as an independent oracle in property tests.
//   * greedy_kp     — Dantzig greedy (profit-density order, skip misfits).
//   * dantzig_bound — LP-relaxation upper bound (Dantzig's theorem), the
//                     bound that both KP and SKP searches prune with.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/item.hpp"

namespace skp {

struct KpSolution {
  // Selected items in canonical order.
  std::vector<ItemId> items;
  // Total profit sum(P_i r_i) of the selection.
  double value = 0.0;
  // Total weight sum(r_i) of the selection.
  double weight = 0.0;
  // Search statistics (branch-and-bound only; zero for DP/greedy).
  std::uint64_t nodes = 0;
  std::uint64_t pruned = 0;

  // Resets to the empty solution, keeping `items`' capacity (hot-path
  // reuse).
  void clear();
};

// Reusable buffers for solve_kp_bb_into: one per sim loop / thread,
// allocated once and grown on demand.
struct KpWorkspace {
  std::vector<ItemId> order;
  std::vector<CanonKey> order_keys;
  std::vector<char> chosen;
  std::vector<char> best_chosen;
};

// Exact B&B over the given candidates (defaults to the whole catalog when
// `candidates` is empty and `use_all` is true via the convenience overload).
KpSolution solve_kp_bb(InstanceView inst, std::span<const ItemId> candidates);
KpSolution solve_kp_bb(InstanceView inst);

// Allocation-free B&B: working memory comes from `ws`, the result is
// written into `sol` (cleared first, capacity reused). The caller must
// have validated `inst`. Bit-identical to solve_kp_bb.
void solve_kp_bb_into(InstanceView inst, std::span<const ItemId> candidates,
                      KpWorkspace& ws, KpSolution& sol);

// Presorted B&B: `order` must already be the canonical order of the
// candidate set (skips the per-solve sort). Bit-identical to
// solve_kp_bb_into over the same candidate set.
void solve_kp_bb_sorted_into(InstanceView inst,
                             std::span<const ItemId> order, KpWorkspace& ws,
                             KpSolution& sol);

// Exact DP. Requires every r_i (over candidates) and v to be integral;
// throws std::invalid_argument otherwise. O(n * floor(v)) time/space.
KpSolution solve_kp_dp(InstanceView inst,
                       std::span<const ItemId> candidates);
KpSolution solve_kp_dp(InstanceView inst);

// Dantzig greedy: scan in profit-density (== probability) order, take every
// item that still fits. Not exact; used as a fast baseline.
KpSolution greedy_kp(InstanceView inst, std::span<const ItemId> candidates);

// Dantzig LP-relaxation bound for the subproblem consisting of
// `order[from..]` with residual capacity `capacity`: fill whole items in
// order until one does not fit, then add its fractional profit (Eq. 7 of
// the paper with j = from). `order` must be canonically sorted.
double dantzig_bound(InstanceView inst, std::span<const ItemId> order,
                     std::size_t from, double capacity);

}  // namespace skp
