// Cross-request plan memoization (the "amortize work across solves"
// ROADMAP rung).
//
// The Markov-driven simulators re-solve the same planning instance
// thousands of times: in oracle mode the (P, r, v) triple is fully
// determined by the current source state, so a completed plan is
// reusable whenever the same (state, cache contents) pair recurs — which
// is constantly under every stationary workload. Two substrates live
// here; PrefetchEngine's plan*_cached overloads consume them via a
// PlanMemo:
//
//  * PlanCache — a bounded, LRU-evicted map from (64-bit key, Zobrist
//    fingerprint, generation) to a stored plan, pinned to one engine
//    configuration by a digest checked on every use. The engine runs two
//    memoization tiers over separate PlanCache instances:
//      - the *plan* tier keys completed Figure-6 plans by (state, cache
//        contents) — a hit skips the whole pipeline, but exact cache
//        sets only recur once the cache stabilizes;
//      - the *selection* tier keys the solver stage by (state, candidate
//        set = support \ cache). The (S)KP solve is the dominant
//        per-request cost and depends on nothing else — in particular
//        not on LFU/DS frequencies — so this tier hits constantly even
//        while the cache churns, and serves every sub-arbitration mode.
//    The generation tag is the invalidation hook for context a key does
//    not capture: learned predictors bump both tiers on every
//    observation, LFU/DS sub-arbitration bumps the plan tier on every
//    recorded access, so entries that depended on that context become
//    unreachable instead of wrong.
//  * CanonicalOrderTable — the per-state canonical solve order (Eq. 5
//    density sort) plus the Figure-3/Dantzig suffix probability sums,
//    built once per state and reused by every cache-miss solve (the
//    filtered candidate list of a canonically sorted support is itself
//    canonically sorted, so the per-solve sort disappears). Rows are
//    generation-tagged and lazily rebuilt after invalidate_all() — the
//    hook that keeps the table usable under learned predictors, whose
//    rows change as they observe.
//
// Both are plain per-simulation state, not thread-safe: parallel sweeps
// give each sweep point its own (which also keeps results independent of
// thread count). Correctness contract: a stored plan is replayed only
// for keys under which the planning inputs are provably identical, so
// cached and uncached runs are bit-identical on every simulator counter
// (tests/test_prefetch_cache_sim.cpp pins this at fixed seeds).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/item.hpp"
#include "util/arena.hpp"

namespace skp {

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  // Insertions the doorkeeper turned away (first sighting of a key).
  std::uint64_t door_rejects = 0;

  std::uint64_t lookups() const noexcept { return hits + misses; }
  double hit_rate() const noexcept {
    const std::uint64_t n = lookups();
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
  void merge(const PlanCacheStats& other) noexcept;
};

// Counters for both memoization tiers, as reported by the simulators.
struct PlanMemoStats {
  PlanCacheStats plans;       // completed-plan tier: (state, cache set)
  PlanCacheStats selections;  // solver tier: (state, candidate set)

  void merge(const PlanMemoStats& other) noexcept {
    plans.merge(other.plans);
    selections.merge(other.selections);
  }
};

// The memoized planning payload — and the base of
// core/prefetch_engine.hpp's PrefetchPlan, which derives from it (one
// definition of the replayable fields, so the cache can never drift out
// of sync with the plan type). Replay and store are plain assignments
// of this slice.
struct StoredPlan {
  // Items to fetch, in fetch order (the last element may stretch).
  PrefetchList fetch;
  // Victims to evict. For slot-cache plans, aligned with `fetch`
  // (evict[k] makes room for fetch[k], empty while free slots remain);
  // for sized-cache plans, the flat victim set.
  std::vector<ItemId> evict;
  // Predicted access improvement (solver objective; Eq. 3 / Eq. 9
  // consistent for SKP with ExactComplement). Diagnostic only — no
  // simulator consumes it, and EngineConfig::evaluate_plan_g can skip
  // its cache-aware evaluation entirely. A memoized replay returns the
  // value as computed at store time, whose Eq.-(9) summation followed
  // the cache's *then-current* iteration order; same-set caches reached
  // through different histories can disagree in its last fp bits.
  double predicted_g = 0.0;
  double stretch = 0.0;
  // Solver statistics (SKP/KP searches).
  std::uint64_t solver_nodes = 0;
};

class PlanCache {
 public:
  // `config_digest` pins the cache to one engine configuration (see
  // engine_config_digest in core/prefetch_engine.hpp); the engine
  // refuses to consult a cache built for a different config. `capacity`
  // bounds the entry count; the least recently used entry is evicted on
  // overflow (its buffers are recycled for the incoming plan).
  //
  // `doorkeeper` (TinyLFU-style admission filter): a key's FIRST insert
  // is recorded in a small hash sketch and turned away; only a key seen
  // again is stored for real. Workload phases whose keys never recur
  // (e.g. a churning cache fingerprint) then cost two array writes per
  // miss instead of a map insert + LRU eviction, while phases with
  // genuine reuse lose exactly one hit per key. Purely an overhead
  // valve: lookups are unaffected and results never change.
  explicit PlanCache(std::uint64_t config_digest,
                     std::size_t capacity = kDefaultCapacity,
                     bool doorkeeper = false);

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 13;

  std::uint64_t config_digest() const noexcept { return config_digest_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return nodes_.size(); }
  const PlanCacheStats& stats() const noexcept { return stats_; }
  // Heap bytes currently held (node pool + probe table + doorkeeper +
  // stored plan payloads) — the capacity bench's bytes/session input. An
  // idle session pays only the 16-slot starter table; the structures
  // grow lazily with actual use.
  std::size_t footprint_bytes() const noexcept;

  // Current generation; entries are only reachable under the generation
  // they were inserted at. Bump whenever planning context outside the
  // (state, fingerprint) key changes (predictor observation, freq record
  // under LFU/DS sub-arbitration); stale entries age out via LRU.
  std::uint64_t generation() const noexcept { return generation_; }
  void bump_generation() noexcept { ++generation_; }

  // Overload rung kStrictAdmission (core/overload.hpp): while frozen,
  // insert() admits nothing — every attempt is turned away like a
  // doorkeeper first-sighting (counted in door_rejects) — but existing
  // entries keep hitting. Degraded operation sheds the map-maintenance
  // cost of memoizing plans that may never recur, without giving up the
  // hits already earned.
  void set_admission_frozen(bool frozen) noexcept {
    admission_frozen_ = frozen;
  }
  bool admission_frozen() const noexcept { return admission_frozen_; }

  // Looks up (state_key, fingerprint) at the current generation. On a
  // hit the entry is refreshed to most-recently-used and returned (the
  // pointer is valid until the next mutating call); nullptr on a miss.
  // Counts hits/misses.
  const StoredPlan* find(std::uint64_t state_key, std::uint64_t fingerprint);

  // Inserts (state_key, fingerprint) at the current generation and
  // returns the slot to fill. The slot may hold a recycled evicted
  // plan — the caller overwrites every field. Inserting a key that is
  // already present overwrites it. With the doorkeeper enabled, a
  // first-sighted key is turned away with nullptr (the caller skips the
  // copy entirely; find() will miss until the key is inserted again).
  StoredPlan* insert(std::uint64_t state_key, std::uint64_t fingerprint);

  void clear();

 private:
  struct Key {
    std::uint64_t state;
    std::uint64_t fingerprint;
    std::uint64_t generation;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  // Storage is a flat open-addressing table (power-of-two, linear probe,
  // backshift deletion) over an index-linked node pool that doubles as
  // the intrusive LRU list — one cache-friendly probe run per lookup
  // instead of std::unordered_map's bucket-pointer chase plus a
  // std::list splice. Same keys, same LRU/doorkeeper/eviction order,
  // same stats; only where the bytes live changed.
  static constexpr std::uint32_t kNil = 0xffffffffu;
  struct Node {
    Key key;
    std::uint64_t hash = 0;  // KeyHash of `key` (probe/backshift reuse)
    StoredPlan plan;
    std::uint32_t prev = kNil;  // intrusive LRU links (node-pool indices)
    std::uint32_t next = kNil;
  };

  void unlink(std::uint32_t idx) noexcept;
  void push_front(std::uint32_t idx) noexcept;
  // Probes for `key` with hash `h`; returns the node index or kNil, and
  // leaves the first empty slot of the run in `empty_slot` on a miss.
  std::uint32_t probe(const Key& key, std::uint64_t h,
                      std::uint32_t& empty_slot) const noexcept;
  void table_erase(std::uint32_t idx) noexcept;
  // Doubles the probe table when the next node would push the load
  // factor past 1/2 (lookup results are table-size independent, so lazy
  // growth changes where the bytes live, never what find/insert return).
  void maybe_grow_table();

  std::uint64_t config_digest_;
  std::size_t capacity_;
  bool admission_frozen_ = false;
  bool door_enabled_ = false;
  std::uint64_t generation_ = 0;
  PlanCacheStats stats_;
  std::vector<Node> nodes_;          // grows to capacity_, then recycles
  std::vector<std::uint32_t> table_; // node index + 1; 0 = empty slot
  std::uint32_t mask_ = 0;           // table_.size() - 1
  std::uint32_t head_ = kNil;        // most recently used
  std::uint32_t tail_ = kNil;        // least recently used
  // Doorkeeper sketch (allocated on first insert when enabled):
  // slot = tagged key hash.
  std::vector<std::uint64_t> door_;
};

class CanonicalOrderTable {
 public:
  explicit CanonicalOrderTable(std::size_t n_states);

  std::size_t n_states() const noexcept { return entries_.size(); }
  std::uint64_t generation() const noexcept { return generation_; }
  // Heap bytes behind the table (capacity bench).
  std::size_t footprint_bytes() const noexcept {
    return entries_.capacity() * sizeof(Entry) +
           order_pool_.footprint_bytes() + suffix_pool_.footprint_bytes() +
           stage_.capacity() * sizeof(ItemId) +
           built_.capacity() * sizeof(ItemId) +
           keys_.capacity() * sizeof(CanonKey);
  }

  // Marks every row stale; rows rebuild lazily on next access. The
  // invalidation hook for probability sources that change over time
  // (learned predictors call this after observing).
  void invalidate_all() noexcept { ++generation_; }

  struct Row {
    // The state's positive-probability support in canonical (Eq. 5)
    // order, and the Figure-3 tail sums over it (size order.size() + 1,
    // trailing 0 sentinel — directly consumable by solve_skp_sorted_into
    // when the candidate filter removed nothing).
    std::span<const ItemId> order;
    std::span<const double> suffix_prob;
    // Zobrist XOR over `order`: a candidate filter derives its
    // candidate-set fingerprint as support_fp ^ key(each skipped item)
    // — O(#skipped) instead of O(#candidates).
    std::uint64_t support_fp = 0;
  };

  // Returns the row for `state`, rebuilding it from (inst, positive)
  // when its generation tag is stale. `positive` must cover every item
  // with inst.P > 0 (zero-probability entries are permitted and
  // skipped); `inst` must be the exact instance this state plans with —
  // the row caches a P-dependent order, which is why mutable predictors
  // must invalidate_all() between observations.
  Row row(std::size_t state, InstanceView inst,
          std::span<const ItemId> positive);

 private:
  // Row storage lives in stable pools (util/arena.hpp): rebuilding one
  // state's row never moves another's, so a Row span handed out earlier
  // stays valid, and a rebuild whose support fits the old block reuses
  // it in place — per-state heap churn only when the support grows.
  struct Entry {
    ItemId* order = nullptr;       // block of `cap` ids in order_pool_
    double* suffix = nullptr;      // block of `cap` + 1 tail sums
    std::uint32_t size = 0;        // current row length
    std::uint32_t cap = 0;         // block capacity (ids)
    std::uint64_t fp = 0;          // Zobrist XOR over the order
    std::uint64_t generation = 0;  // 0 = never built (generations start at 1)
  };
  std::vector<Entry> entries_;
  StablePool<ItemId> order_pool_;
  StablePool<double> suffix_pool_;
  std::vector<ItemId> stage_;   // positive-support staging across rebuilds
  std::vector<ItemId> built_;   // canonical-order staging across rebuilds
  std::vector<CanonKey> keys_;  // sort scratch shared across rebuilds
  std::uint64_t generation_ = 1;
};

// A selection-stage solution pre-solved off the critical path (the
// pipelined simulator's workers produce these against a predicted state
// and a cache snapshot). select_memoized consumes one only when BOTH the
// state key and the live candidate-set fingerprint match — the same
// identity contract as the selection memo tier — so a stale speculation
// is silently discarded and the solve runs inline, never changing the
// result. `plan` carries the solver's stats (solver_nodes) exactly as an
// inline solve would report them.
struct SpeculativeSelection {
  std::uint64_t state_key = 0;
  std::uint64_t candidates_fp = 0;
  StoredPlan plan;
};

// Memoization context threaded through PrefetchEngine::plan*_cached. All
// pointers optional: a default PlanMemo makes the cached overloads behave
// exactly like their uncached counterparts. `state_key` must uniquely
// identify the planning inputs (P, r, v) within the respective cache's
// current generation — e.g. a Markov state id; when `canon` is set, it
// doubles as the row index and must be < canon->n_states(). `plans` and
// `selections` must be distinct PlanCache instances (their fingerprints
// hash different sets) built for the same engine config.
struct PlanMemo {
  PlanCache* plans = nullptr;       // completed-plan tier
  PlanCache* selections = nullptr;  // solver-selection tier
  CanonicalOrderTable* canon = nullptr;
  std::uint64_t state_key = 0;
  // Optional pre-solved selection for this exact planning round (see
  // SpeculativeSelection); consulted only after a selection-tier miss.
  const SpeculativeSelection* speculative = nullptr;
};

}  // namespace skp
