// Exhaustive reference solvers. Exponential; intended only for tests and
// for the bound-quality / ablation benches on small instances.
//
// For a fixed *set* S of prefetched items, g*(S ordered with last element z)
// depends only on S and z (Eq. 3), so enumerating subsets x feasible last
// elements covers every list the Eq.-(1) construction admits — a much
// smaller space than all permutations, but provably equivalent (the test
// suite cross-checks against full permutation enumeration on tiny n).
#pragma once

#include <span>

#include "core/skp_solver.hpp"

namespace skp {

struct BruteForceResult {
  PrefetchList F;   // best list found (ordered; last element is z)
  double g = 0.0;   // g*(F) per Eq. (3); 0 when prefetching nothing is best
  std::uint64_t evaluated = 0;  // candidate (subset, z) pairs scored
};

// Exhaustive SKP over subsets x last-element choices. Throws if more than
// `max_items` candidates (guard against accidental exponential blowups).
BruteForceResult brute_force_skp(const Instance& inst,
                                 std::span<const ItemId> candidates,
                                 double total_prob_mass = 1.0,
                                 std::size_t max_items = 22);
BruteForceResult brute_force_skp(const Instance& inst,
                                 double total_prob_mass = 1.0,
                                 std::size_t max_items = 22);

// Exhaustive SKP restricted to the canonical-order subspace the paper's
// Figure-3 algorithm searches: each subset is fetched in Eq.-(5) order, so
// its last element is its minimal-probability member and validity demands
// the other members fit strictly within v. This is the exact reference for
// solve_skp. (DESIGN.md D8: Theorem 1's swap argument silently assumes the
// swapped list stays Eq.-(1)-valid, which can fail; the full-space optimum
// of brute_force_skp can therefore exceed this one.)
BruteForceResult brute_force_skp_canonical(const Instance& inst,
                                           std::span<const ItemId> candidates,
                                           double total_prob_mass = 1.0,
                                           std::size_t max_items = 22);
BruteForceResult brute_force_skp_canonical(const Instance& inst,
                                           double total_prob_mass = 1.0,
                                           std::size_t max_items = 22);

// Exhaustive SKP over *all permutations* of all subsets — the raw search
// space described in Section 4.1. Only for tiny n (<= 8); used to verify
// that restricting to (subset, z) pairs loses nothing.
BruteForceResult brute_force_skp_permutations(const Instance& inst,
                                              double total_prob_mass = 1.0,
                                              std::size_t max_items = 8);

// Exhaustive 0/1 knapsack (profit P*r, weight r, capacity v).
BruteForceResult brute_force_kp(const Instance& inst,
                                std::span<const ItemId> candidates,
                                std::size_t max_items = 22);

}  // namespace skp
