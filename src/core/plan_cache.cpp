#include "core/plan_cache.hpp"

#include <algorithm>

#include "cache/zobrist.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace skp {

void PlanCacheStats::merge(const PlanCacheStats& other) noexcept {
  hits += other.hits;
  misses += other.misses;
  inserts += other.inserts;
  evictions += other.evictions;
  door_rejects += other.door_rejects;
}

std::size_t PlanCache::KeyHash::operator()(const Key& k) const noexcept {
  // SplitMix64 finalization over the XOR-folded words: the fingerprint
  // is already uniform, but state/generation are small counters — one
  // mixer pass spreads them across the table.
  SplitMix64 sm(k.state ^ (k.fingerprint * 0x9e3779b97f4a7c15ULL) ^
                (k.generation << 32));
  return static_cast<std::size_t>(sm.next());
}

namespace {
// Doorkeeper sketch size: power of two, sized so phase-local key sets
// (hundreds to a few thousand live keys) rarely collide.
constexpr std::size_t kDoorSlots = 4096;

// Probe-table load factor <= 0.5: the table holds 2x the entry capacity
// (rounded up to a power of two), keeping linear-probe runs short.
std::size_t table_slots_for(std::size_t capacity) {
  std::size_t slots = 16;
  while (slots < capacity * 2) slots <<= 1;
  return slots;
}
}  // namespace

PlanCache::PlanCache(std::uint64_t config_digest, std::size_t capacity,
                     bool doorkeeper)
    : config_digest_(config_digest),
      capacity_(capacity),
      door_enabled_(doorkeeper) {
  SKP_REQUIRE(capacity_ >= 1, "PlanCache capacity must be >= 1");
  SKP_REQUIRE(capacity_ < kNil, "PlanCache capacity must fit 32-bit links");
  // Lazy footprint: a fresh cache owns one 16-slot starter table and
  // nothing else. The node pool grows geometrically with real inserts,
  // the probe table doubles with it (maybe_grow_table), and the
  // doorkeeper sketch materializes on the first admission decision — so
  // the ~100k idle daemon sessions of the capacity work pay bytes for
  // plans they actually store, not for kDefaultCapacity. Lookup results
  // are table-size independent: same keys, same LRU/doorkeeper/eviction
  // order, same stats at every growth point.
  table_.assign(16, 0);
  mask_ = static_cast<std::uint32_t>(table_.size() - 1);
}

void PlanCache::maybe_grow_table() {
  if ((nodes_.size() + 1) * 2 <= table_.size()) return;
  // The pool recycles nodes once it reaches capacity_, so the table
  // never needs to outgrow the old eager allocation.
  const std::size_t target =
      std::min(table_.size() * 2, table_slots_for(capacity_));
  if (target <= table_.size()) return;
  std::vector<std::uint32_t> old = std::move(table_);
  table_.assign(target, 0);
  mask_ = static_cast<std::uint32_t>(table_.size() - 1);
  for (std::uint32_t idx = 0; idx < nodes_.size(); ++idx) {
    std::uint32_t slot =
        static_cast<std::uint32_t>(nodes_[idx].hash) & mask_;
    while (table_[slot] != 0) slot = (slot + 1) & mask_;
    table_[slot] = idx + 1;
  }
}

std::size_t PlanCache::footprint_bytes() const noexcept {
  std::size_t total = nodes_.capacity() * sizeof(Node) +
                      table_.capacity() * sizeof(std::uint32_t) +
                      door_.capacity() * sizeof(std::uint64_t);
  for (const Node& n : nodes_) {
    total += n.plan.fetch.capacity() * sizeof(ItemId) +
             n.plan.evict.capacity() * sizeof(ItemId);
  }
  return total;
}

void PlanCache::unlink(std::uint32_t idx) noexcept {
  Node& n = nodes_[idx];
  if (n.prev != kNil) nodes_[n.prev].next = n.next; else head_ = n.next;
  if (n.next != kNil) nodes_[n.next].prev = n.prev; else tail_ = n.prev;
}

void PlanCache::push_front(std::uint32_t idx) noexcept {
  Node& n = nodes_[idx];
  n.prev = kNil;
  n.next = head_;
  if (head_ != kNil) nodes_[head_].prev = idx;
  head_ = idx;
  if (tail_ == kNil) tail_ = idx;
}

std::uint32_t PlanCache::probe(const Key& key, std::uint64_t h,
                               std::uint32_t& empty_slot) const noexcept {
  std::uint32_t slot = static_cast<std::uint32_t>(h) & mask_;
  while (table_[slot] != 0) {
    const std::uint32_t idx = table_[slot] - 1;
    const Node& n = nodes_[idx];
    if (n.hash == h && n.key == key) return idx;
    slot = (slot + 1) & mask_;
  }
  empty_slot = slot;
  return kNil;
}

void PlanCache::table_erase(std::uint32_t idx) noexcept {
  // Locate the victim's slot, then close the probe run with standard
  // backshift deletion: each follower whose home position lies at or
  // before the hole (cyclically) slides back into it.
  std::uint32_t slot = static_cast<std::uint32_t>(nodes_[idx].hash) & mask_;
  while (table_[slot] != idx + 1) slot = (slot + 1) & mask_;
  std::uint32_t hole = slot;
  std::uint32_t next = (hole + 1) & mask_;
  while (table_[next] != 0) {
    const std::uint32_t home =
        static_cast<std::uint32_t>(nodes_[table_[next] - 1].hash) & mask_;
    if (((next - home) & mask_) >= ((next - hole) & mask_)) {
      table_[hole] = table_[next];
      hole = next;
    }
    next = (next + 1) & mask_;
  }
  table_[hole] = 0;
}

const StoredPlan* PlanCache::find(std::uint64_t state_key,
                                  std::uint64_t fingerprint) {
  const Key key{state_key, fingerprint, generation_};
  std::uint32_t empty_slot = 0;
  const std::uint32_t idx = probe(key, KeyHash{}(key), empty_slot);
  if (idx == kNil) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  if (head_ != idx) {  // refresh to MRU
    unlink(idx);
    push_front(idx);
  }
  return &nodes_[idx].plan;
}

StoredPlan* PlanCache::insert(std::uint64_t state_key,
                              std::uint64_t fingerprint) {
  if (admission_frozen_) {
    ++stats_.door_rejects;
    return nullptr;
  }
  const Key key{state_key, fingerprint, generation_};
  const std::uint64_t h = KeyHash{}(key);
  if (door_enabled_) {
    if (door_.empty()) door_.assign(kDoorSlots, 0);
    // Admission: the first sighting of a key parks its tag in the sketch
    // and is not stored; a matching tag means the key recurred and has
    // earned a real slot. Index with the raw hash but tag with hash|1
    // (0 marks empty slots) so forcing the tag's low bit does not halve
    // the addressable slots.
    const std::uint64_t tag = h | 1;
    std::uint64_t& slot = door_[h & (door_.size() - 1)];
    if (slot != tag) {
      slot = tag;
      ++stats_.door_rejects;
      return nullptr;
    }
  }
  ++stats_.inserts;
  std::uint32_t empty_slot = 0;
  if (const std::uint32_t idx = probe(key, h, empty_slot); idx != kNil) {
    if (head_ != idx) {
      unlink(idx);
      push_front(idx);
    }
    return &nodes_[idx].plan;  // overwrite in place
  }
  if (nodes_.size() >= capacity_) {
    // Recycle the LRU node: unlink its key, keep its plan's vector
    // capacity for the incoming entry.
    const std::uint32_t victim = tail_;
    table_erase(victim);
    ++stats_.evictions;
    unlink(victim);
    push_front(victim);
    nodes_[victim].key = key;
    nodes_[victim].hash = h;
    // Backshift may have reshaped the run; re-probe for the slot.
    probe(key, h, empty_slot);
    table_[empty_slot] = victim + 1;
    return &nodes_[victim].plan;
  }
  // Admitting a brand-new node: grow the probe table first if this node
  // would push the load factor past 1/2, then re-locate the run's empty
  // slot in the (possibly reshaped) table.
  maybe_grow_table();
  probe(key, h, empty_slot);
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[idx].key = key;
  nodes_[idx].hash = h;
  push_front(idx);
  table_[empty_slot] = idx + 1;
  return &nodes_[idx].plan;
}

void PlanCache::clear() {
  nodes_.clear();
  std::fill(table_.begin(), table_.end(), 0);
  head_ = tail_ = kNil;
  if (!door_.empty()) std::fill(door_.begin(), door_.end(), 0);
}

CanonicalOrderTable::CanonicalOrderTable(std::size_t n_states)
    : entries_(n_states) {
  SKP_REQUIRE(n_states >= 1, "CanonicalOrderTable over empty state space");
}

CanonicalOrderTable::Row CanonicalOrderTable::row(
    std::size_t state, InstanceView inst, std::span<const ItemId> positive) {
  SKP_REQUIRE(state < entries_.size(),
              "state " << state << " outside table of " << entries_.size());
  Entry& e = entries_[state];
  if (e.generation != generation_) {
    // Rebuild: canonical order of the positive support, then the
    // Figure-3 tail sums sum_{j..m-1} P (with the P_{m+1} = 0 sentinel)
    // that the SKP search's PaperTail rule and bound setup consume.
    stage_.clear();
    for (const ItemId id : positive) {
      if (inst.P[InstanceView::idx(id)] > 0.0) stage_.push_back(id);
    }
    canonical_order_into(inst, stage_, keys_, built_);
    const std::size_t m = built_.size();
    if (e.suffix == nullptr || m > e.cap) {
      // New or outgrown row: take fresh stable blocks (the old block, if
      // any, stays put — spans into other rows never move).
      e.order = order_pool_.alloc(m);
      e.suffix = suffix_pool_.alloc(m + 1);
      e.cap = static_cast<std::uint32_t>(m);
    }
    e.size = static_cast<std::uint32_t>(m);
    std::copy(built_.begin(), built_.end(), e.order);
    simd::suffix_sums(inst.P, std::span<const ItemId>(e.order, m),
                      e.suffix);
    e.fp = 0;
    for (std::size_t j = m; j-- > 0;) e.fp ^= zobrist_item_key(e.order[j]);
    e.generation = generation_;
  }
  return Row{std::span<const ItemId>(e.order, e.size),
             std::span<const double>(e.suffix, e.size + 1), e.fp};
}

}  // namespace skp
