#include "core/plan_cache.hpp"

#include <algorithm>

#include "cache/zobrist.hpp"
#include "util/rng.hpp"

namespace skp {

void PlanCacheStats::merge(const PlanCacheStats& other) noexcept {
  hits += other.hits;
  misses += other.misses;
  inserts += other.inserts;
  evictions += other.evictions;
  door_rejects += other.door_rejects;
}

std::size_t PlanCache::KeyHash::operator()(const Key& k) const noexcept {
  // SplitMix64 finalization over the XOR-folded words: the fingerprint
  // is already uniform, but state/generation are small counters — one
  // mixer pass spreads them across the table.
  SplitMix64 sm(k.state ^ (k.fingerprint * 0x9e3779b97f4a7c15ULL) ^
                (k.generation << 32));
  return static_cast<std::size_t>(sm.next());
}

namespace {
// Doorkeeper sketch size: power of two, sized so phase-local key sets
// (hundreds to a few thousand live keys) rarely collide.
constexpr std::size_t kDoorSlots = 4096;
}  // namespace

PlanCache::PlanCache(std::uint64_t config_digest, std::size_t capacity,
                     bool doorkeeper)
    : config_digest_(config_digest), capacity_(capacity) {
  SKP_REQUIRE(capacity_ >= 1, "PlanCache capacity must be >= 1");
  index_.reserve(capacity_ + 1);
  if (doorkeeper) door_.assign(kDoorSlots, 0);
}

const StoredPlan* PlanCache::find(std::uint64_t state_key,
                                  std::uint64_t fingerprint) {
  const Key key{state_key, fingerprint, generation_};
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh to MRU
  return &it->second->plan;
}

StoredPlan* PlanCache::insert(std::uint64_t state_key,
                              std::uint64_t fingerprint) {
  if (admission_frozen_) {
    ++stats_.door_rejects;
    return nullptr;
  }
  const Key key{state_key, fingerprint, generation_};
  if (!door_.empty()) {
    // Admission: the first sighting of a key parks its tag in the sketch
    // and is not stored; a matching tag means the key recurred and has
    // earned a real slot. Index with the raw hash but tag with hash|1
    // (0 marks empty slots) so forcing the tag's low bit does not halve
    // the addressable slots.
    const std::uint64_t h = KeyHash{}(key);
    const std::uint64_t tag = h | 1;
    std::uint64_t& slot = door_[h & (door_.size() - 1)];
    if (slot != tag) {
      slot = tag;
      ++stats_.door_rejects;
      return nullptr;
    }
  }
  ++stats_.inserts;
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->plan;  // overwrite in place
  }
  if (index_.size() >= capacity_) {
    // Recycle the LRU node: unlink its key, keep its plan's vector
    // capacity for the incoming entry.
    auto victim = std::prev(lru_.end());
    index_.erase(victim->key);
    ++stats_.evictions;
    lru_.splice(lru_.begin(), lru_, victim);
    victim->key = key;
    index_.emplace(key, victim);
    return &victim->plan;
  }
  lru_.push_front(Node{key, {}});
  index_.emplace(key, lru_.begin());
  return &lru_.front().plan;
}

void PlanCache::clear() {
  lru_.clear();
  index_.clear();
  if (!door_.empty()) std::fill(door_.begin(), door_.end(), 0);
}

CanonicalOrderTable::CanonicalOrderTable(std::size_t n_states)
    : entries_(n_states) {
  SKP_REQUIRE(n_states >= 1, "CanonicalOrderTable over empty state space");
}

CanonicalOrderTable::Row CanonicalOrderTable::row(
    std::size_t state, InstanceView inst, std::span<const ItemId> positive) {
  SKP_REQUIRE(state < entries_.size(),
              "state " << state << " outside table of " << entries_.size());
  Entry& e = entries_[state];
  if (e.generation != generation_) {
    // Rebuild: canonical order of the positive support, then the
    // Figure-3 tail sums sum_{j..m-1} P (with the P_{m+1} = 0 sentinel)
    // that the SKP search's PaperTail rule and bound setup consume.
    stage_.clear();
    for (const ItemId id : positive) {
      if (inst.P[InstanceView::idx(id)] > 0.0) stage_.push_back(id);
    }
    canonical_order_into(inst, stage_, keys_, e.order);
    const std::size_t m = e.order.size();
    e.suffix.assign(m + 1, 0.0);
    e.fp = 0;
    for (std::size_t j = m; j-- > 0;) {
      e.suffix[j] =
          e.suffix[j + 1] + inst.P[static_cast<std::size_t>(e.order[j])];
      e.fp ^= zobrist_item_key(e.order[j]);
    }
    e.generation = generation_;
  }
  return Row{e.order, e.suffix, e.fp};
}

}  // namespace skp
