// Model parameters of the paper (Section 2).
//
// An Instance bundles the speculative parameters (P_i, the probability that
// the next access is item i) and the resource parameters (r_i, the retrieval
// time of item i; v, the viewing time available for prefetching). Items are
// identified by their index in the catalog ("Items that might be accessed
// are uniquely numbered", Section 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/require.hpp"

namespace skp {

using ItemId = std::int32_t;
constexpr ItemId kNoItem = -1;

// An ordered prefetch list F = K ++ <z> (Eq. 1): items are fetched in list
// order; the last element z is the only one allowed to stretch past v.
using PrefetchList = std::vector<ItemId>;

// The (P, r, v) triple of Section 2 for a catalog of n items.
//
// Invariants established by validate():
//   * P.size() == r.size() == n, n >= 1
//   * P_i >= 0 and sum(P) <= 1 + eps  (strictly == 1 for a full catalog;
//     < 1 is allowed because cache-aware planning restricts to N \ C while
//     penalties still span the full probability mass — see Section 5)
//   * r_i > 0, v >= 0
struct Instance {
  std::vector<double> P;
  std::vector<double> r;
  double v = 0.0;

  std::size_t n() const noexcept { return P.size(); }

  // Throws std::invalid_argument when any invariant is violated.
  void validate() const;

  // Profit of item i in the knapsack view: P_i * r_i.
  double profit(ItemId i) const { return P[idx(i)] * r[idx(i)]; }

  // Bounds-checked index helper.
  static std::size_t idx(ItemId i) {
    SKP_REQUIRE(i >= 0, "negative ItemId " << i);
    return static_cast<std::size_t>(i);
  }
};

// Borrowed view of an instance: spans over storage owned elsewhere (an
// Instance, a MarkovSource's transition row + catalog retrieval times, a
// predictor's output buffer). The planning hot path runs entirely on views
// so per-request planning copies nothing; an owning Instance converts
// implicitly, so every solver/model entry point accepts either. The view
// must not outlive the storage it borrows.
struct InstanceView {
  std::span<const double> P;
  std::span<const double> r;
  double v = 0.0;

  InstanceView() = default;
  InstanceView(std::span<const double> P_, std::span<const double> r_,
               double v_) noexcept
      : P(P_), r(r_), v(v_) {}
  // NOLINTNEXTLINE(google-explicit-constructor): intentional — every
  // Instance call site keeps working unchanged through this conversion.
  InstanceView(const Instance& inst) noexcept
      : P(inst.P), r(inst.r), v(inst.v) {}

  std::size_t n() const noexcept { return P.size(); }

  // Throws std::invalid_argument when any Instance invariant is violated.
  void validate() const;

  // O(1) structural subset of validate() — sizes and v only. The
  // scratch-based planning overloads use this once per request and trust
  // the caller for the per-element invariants (their P/r rows come from
  // validated sources: Markov rows, normalized predictor output); the
  // convenience overloads still run the full validate().
  void validate_shape() const {
    SKP_REQUIRE(!P.empty(), "empty catalog");
    SKP_REQUIRE(P.size() == r.size(),
                "P/r size mismatch: " << P.size() << " vs " << r.size());
    SKP_REQUIRE(v >= 0.0, "viewing time v = " << v << " must be >= 0");
  }

  double profit(ItemId i) const { return P[idx(i)] * r[idx(i)]; }

  static std::size_t idx(ItemId i) {
    SKP_REQUIRE(i >= 0, "negative ItemId " << i);
    return static_cast<std::size_t>(i);
  }
};

// The canonical order of Eq. (5): probability descending; ties broken by
// retrieval time ascending; remaining ties by item id ascending so the
// order is a deterministic total order. Theorem 1 licenses restricting the
// SKP search to lists sorted this way.
std::vector<ItemId> canonical_order(InstanceView inst);

// Same, but restricted to a candidate subset (used by cache-aware planning,
// which solves the SKP over N \ C).
std::vector<ItemId> canonical_order(InstanceView inst,
                                    std::span<const ItemId> candidates);

// Allocation-free variant: writes the order into `out` (cleared first,
// capacity reused). `candidates` must not alias `out`.
void canonical_order_into(InstanceView inst,
                          std::span<const ItemId> candidates,
                          std::vector<ItemId>& out);

// Key-cached variant for the planning hot path: stages one (P, r, id)
// triple per candidate in `keys` and sorts those flat records, touching
// the instance once per candidate instead of twice per comparison. The
// order is a strict total order (ids are unique), so the result is
// identical to canonical_order_into.
struct CanonKey {
  double P;
  double r;
  ItemId id;
};
void canonical_order_into(InstanceView inst,
                          std::span<const ItemId> candidates,
                          std::vector<CanonKey>& keys,
                          std::vector<ItemId>& out);

// True when `a` precedes (or ties) `b` in the canonical order.
bool canonical_before(InstanceView inst, ItemId a, ItemId b);

// True when `list` is sorted per Eq. (5).
bool is_canonically_sorted(InstanceView inst, std::span<const ItemId> list);

// Normalizes a non-negative weight vector into probabilities (sum == 1).
// Throws if all weights are zero or any is negative.
std::vector<double> normalize_probabilities(std::span<const double> weights);

}  // namespace skp
