// Model parameters of the paper (Section 2).
//
// An Instance bundles the speculative parameters (P_i, the probability that
// the next access is item i) and the resource parameters (r_i, the retrieval
// time of item i; v, the viewing time available for prefetching). Items are
// identified by their index in the catalog ("Items that might be accessed
// are uniquely numbered", Section 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/require.hpp"

namespace skp {

using ItemId = std::int32_t;
constexpr ItemId kNoItem = -1;

// An ordered prefetch list F = K ++ <z> (Eq. 1): items are fetched in list
// order; the last element z is the only one allowed to stretch past v.
using PrefetchList = std::vector<ItemId>;

// The (P, r, v) triple of Section 2 for a catalog of n items.
//
// Invariants established by validate():
//   * P.size() == r.size() == n, n >= 1
//   * P_i >= 0 and sum(P) <= 1 + eps  (strictly == 1 for a full catalog;
//     < 1 is allowed because cache-aware planning restricts to N \ C while
//     penalties still span the full probability mass — see Section 5)
//   * r_i > 0, v >= 0
struct Instance {
  std::vector<double> P;
  std::vector<double> r;
  double v = 0.0;

  std::size_t n() const noexcept { return P.size(); }

  // Throws std::invalid_argument when any invariant is violated.
  void validate() const;

  // Profit of item i in the knapsack view: P_i * r_i.
  double profit(ItemId i) const { return P[idx(i)] * r[idx(i)]; }

  // Bounds-checked index helper.
  static std::size_t idx(ItemId i) {
    SKP_REQUIRE(i >= 0, "negative ItemId " << i);
    return static_cast<std::size_t>(i);
  }
};

// The canonical order of Eq. (5): probability descending; ties broken by
// retrieval time ascending; remaining ties by item id ascending so the
// order is a deterministic total order. Theorem 1 licenses restricting the
// SKP search to lists sorted this way.
std::vector<ItemId> canonical_order(const Instance& inst);

// Same, but restricted to a candidate subset (used by cache-aware planning,
// which solves the SKP over N \ C).
std::vector<ItemId> canonical_order(const Instance& inst,
                                    std::span<const ItemId> candidates);

// True when `a` precedes (or ties) `b` in the canonical order.
bool canonical_before(const Instance& inst, ItemId a, ItemId b);

// True when `list` is sorted per Eq. (5).
bool is_canonically_sorted(const Instance& inst,
                           std::span<const ItemId> list);

// Normalizes a non-negative weight vector into probabilities (sum == 1).
// Throws if all weights are zero or any is negative.
std::vector<double> normalize_probabilities(std::span<const double> weights);

}  // namespace skp
