#include "core/prefetch_engine.hpp"

#include <algorithm>
#include <bit>

#include "cache/zobrist.hpp"
#include "core/access_model.hpp"
#include "core/kp_solver.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace skp {

std::uint64_t engine_config_digest(const EngineConfig& config) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi, as good a seed as any
  const auto fold = [&h](std::uint64_t x) {
    h = SplitMix64(h ^ x).next();
  };
  fold(static_cast<std::uint64_t>(config.policy));
  fold(static_cast<std::uint64_t>(config.delta_rule));
  fold(static_cast<std::uint64_t>(config.arbitration.sub));
  fold(config.arbitration.strict_ties ? 1 : 0);
  fold(std::bit_cast<std::uint64_t>(config.min_profit_threshold));
  fold(config.max_solver_nodes);
  fold(config.evaluate_plan_g ? 1 : 0);
  return h;
}

std::string to_string(PrefetchPolicy policy) {
  switch (policy) {
    case PrefetchPolicy::None: return "none";
    case PrefetchPolicy::KP: return "KP";
    case PrefetchPolicy::SKP: return "SKP";
    case PrefetchPolicy::Perfect: return "perfect";
  }
  return "?";
}

std::string to_string(SubArbitration sub) {
  switch (sub) {
    case SubArbitration::None: return "none";
    case SubArbitration::LFU: return "LFU";
    case SubArbitration::DS: return "DS";
  }
  return "?";
}

namespace {

// Candidate filter shared by the planners: an item is worth considering
// only if it is not cached, has positive probability, and clears the
// network-usage threshold (extension knob; 0 = paper behaviour). The
// `cached` predicate abstracts over slot and sized caches.
template <typename CachedFn>
void viable_candidates_into(InstanceView inst, CachedFn cached,
                            double min_profit, std::vector<ItemId>& out,
                            std::span<const ItemId> positive_hint = {}) {
  out.clear();
  if (!positive_hint.empty()) {
    // Sparse support scan: the hint lists every positive-P item in
    // ascending id order, so iterating it reproduces the catalog scan.
    for (const ItemId id : positive_hint) {
      const std::size_t i = InstanceView::idx(id);
      if (inst.P[i] <= 0.0) continue;
      if (cached(id)) continue;
      if (min_profit > 0.0 && inst.P[i] * inst.r[i] < min_profit) continue;
      out.push_back(id);
    }
    return;
  }
  if (min_profit <= 0.0) {  // paper behaviour: no threshold to evaluate
    for (std::size_t i = 0; i < inst.n(); ++i) {
      const auto id = static_cast<ItemId>(i);
      if (inst.P[i] <= 0.0) continue;
      if (cached(id)) continue;
      out.push_back(id);
    }
    return;
  }
  for (std::size_t i = 0; i < inst.n(); ++i) {
    const auto id = static_cast<ItemId>(i);
    if (inst.P[i] <= 0.0) continue;
    if (cached(id)) continue;
    if (inst.P[i] * inst.r[i] < min_profit) continue;
    out.push_back(id);
  }
}

// Sorts the proposal into the Figure-6 admission order: descending
// P_f r_f, ties by canonical order. Keys are staged once per item so the
// comparator reads flat records instead of recomputing the profit (and
// the cross-TU Eq.-5 tie-break) per comparison; ids are unique, so the
// flat (pr desc, P desc, r asc, id asc) order is the same total order.
void profit_order_into(InstanceView inst, std::span<const ItemId> fetch,
                       std::vector<PlanScratch::AdmitKey>& keys,
                       std::vector<ItemId>& out) {
  keys.clear();
  for (const ItemId f : fetch) {
    const std::size_t i = InstanceView::idx(f);
    keys.push_back({inst.P[i] * inst.r[i], inst.P[i], inst.r[i], f});
  }
  std::sort(keys.begin(), keys.end(),
            [](const PlanScratch::AdmitKey& a,
               const PlanScratch::AdmitKey& b) {
              if (a.pr != b.pr) return a.pr > b.pr;
              if (a.P != b.P) return a.P > b.P;
              if (a.r != b.r) return a.r < b.r;
              return a.id < b.id;
            });
  out.clear();
  for (const auto& k : keys) out.push_back(k.id);
}

// Caches every cached item's eviction rank — (Pr, sub-arbitration score,
// id) — for one planning round. The scores are fixed while one plan is
// built, so victim k is simply the k-th smallest rank; extract_victim
// pulls them lazily (selection-scan over the cached keys), which matches
// repeated choose_victim + removal bit-for-bit while computing each Pr
// product once instead of once per scan (the fixed-seed equivalence tests
// pin the equality).
void rank_victims(InstanceView inst, std::span<const ItemId> cached,
                  const FreqTracker* freq, const ArbitrationConfig& cfg,
                  PlanScratch& scratch) {
  SKP_REQUIRE(cfg.sub == SubArbitration::None || freq != nullptr,
              "sub-arbitration requires a FreqTracker");
  std::vector<PlanScratch::VictimRank>& ranked = scratch.ranked;
  ranked.clear();
  if (cached.empty()) return;
  // Bulk-gather the per-victim scores (util/simd.hpp). Every lane is an
  // exact IEEE load or single product, so the ranks match the one-call-
  // per-item loop bit-for-bit:
  //   pr  = P_d * r_d               (all modes)
  //   sub = freq_d                  (LFU: a plain gather)
  //   sub = freq_d * r_d            (DS: delay_saving_profit)
  scratch.gather_a.resize(cached.size());
  simd::gather_products(inst.P, inst.r, cached, scratch.gather_a.data());
  const double* sub = nullptr;
  if (cfg.sub != SubArbitration::None) {
    SKP_REQUIRE(freq->n() >= inst.n(),
                "FreqTracker over " << freq->n()
                                    << " items vs catalog of " << inst.n());
    scratch.gather_b.resize(cached.size());
    if (cfg.sub == SubArbitration::LFU) {
      simd::gather_values(freq->counts(), cached, scratch.gather_b.data());
    } else {
      simd::gather_products(freq->counts(), inst.r, cached,
                            scratch.gather_b.data());
    }
    sub = scratch.gather_b.data();
  }
  for (std::size_t k = 0; k < cached.size(); ++k) {
    ranked.push_back(
        {scratch.gather_a[k], sub != nullptr ? sub[k] : 0.0, cached[k]});
  }
}

// Eviction order: ascending (Pr, sub score, id) — choose_victim's exact
// tie chain. Ids are unique, so this is a TOTAL order: the k-th victim is
// determined by the order alone, independent of the algorithm that
// extracts it (admit_slot_into partial_sorts the consumable prefix).
bool victim_rank_less(const PlanScratch::VictimRank& a,
                      const PlanScratch::VictimRank& b) {
  if (a.pr != b.pr) return a.pr < b.pr;
  if (a.sub != b.sub) return a.sub < b.sub;
  return a.id < b.id;
}

// Engine-internal Eq.-(9) evaluation over the committed plan: the same
// floating-point operation order as
// access_improvement_cached(inst, F, D, C) — g*(F) first, then the
// anti-improvement of the evictions — but with the D-membership test as an
// O(1) epoch mark and without re-verifying the engine-guaranteed
// preconditions (F valid and disjoint from C, D ⊆ C). Reuses the scratch
// mark epoch, so call it only after the committed marks are consumed.
double predicted_g_cached(InstanceView inst, const PrefetchPlan& out,
                          std::span<const ItemId> C, PlanScratch& scratch) {
  const std::span<const ItemId> F(out.fetch);
  const double st = stretch_time(inst, F);
  double gain = 0.0;
  for (const ItemId i : F) gain += inst.profit(i);
  double prob_K = 0.0;
  for (std::size_t k = 0; k + 1 < F.size(); ++k) {
    prob_K += inst.P[static_cast<std::size_t>(F[k])];
  }
  const double g_star = gain - (1.0 - prob_K) * st;

  scratch.begin_epoch(inst.n());  // marks = eviction membership
  for (const ItemId d : out.evict) scratch.set_mark(d);
  double anti_g = 0.0;
  for (const ItemId d : out.evict) anti_g += inst.profit(d);
  for (const ItemId c : C) {
    if (!scratch.marked(c)) {
      anti_g -= inst.P[static_cast<std::size_t>(c)] * st;
    }
  }
  return g_star - anti_g;
}

// Compacts `out.fetch` down to the items marked committed in `scratch`,
// preserving the selector's fetch order (canonical, stretching item last)
// so the Eq.-(1) construction stays valid; evictions are re-aligned with
// their fetches via `scratch.victim_of`.
void emit_committed(PlanScratch& scratch, PrefetchPlan& out) {
  out.evict.clear();
  std::size_t w = 0;
  for (std::size_t k = 0; k < out.fetch.size(); ++k) {
    const ItemId f = out.fetch[k];
    if (!scratch.marked(f)) continue;
    out.fetch[w++] = f;
    for (const auto& fv : scratch.victim_of) {
      if (fv.first == f) {
        out.evict.push_back(fv.second);
        break;
      }
    }
  }
  out.fetch.resize(w);
}

// Builds the candidate list by filtering a precomputed canonical row —
// a subsequence of a canonically sorted list is canonically sorted, so
// the per-solve sort disappears. `skip(id)` is the cached/uncacheable
// predicate; the min-profit threshold applies as in
// viable_candidates_into. The candidate fingerprint is derived from the
// row fingerprint by XORing away the (few) skipped items, and `suffix`
// borrows the precomputed Figure-3 tail sums when nothing was filtered.
template <typename SkipFn>
std::uint64_t filter_canonical_candidates(
    InstanceView inst, const CanonicalOrderTable::Row& row, SkipFn skip,
    double min_profit, std::vector<ItemId>& out,
    std::span<const double>& suffix) {
  out.clear();
  std::uint64_t fp = row.support_fp;
  for (const ItemId id : row.order) {
    const std::size_t i = InstanceView::idx(id);
    if (skip(id) ||
        (min_profit > 0.0 && inst.P[i] * inst.r[i] < min_profit)) {
      fp ^= zobrist_item_key(id);
      continue;
    }
    out.push_back(id);
  }
  if (out.size() == row.order.size()) suffix = row.suffix_prob;
  return fp;
}

// Memoized payload transfer: PrefetchPlan IS-A StoredPlan, so replay and
// store are slicing assignments (vector operator= reuses the
// destination's capacity on both sides).
void copy_plan(const StoredPlan& from, PrefetchPlan& to) {
  static_cast<StoredPlan&>(to) = from;
}

void copy_plan(const StoredPlan& from, StoredPlan& to) { to = from; }

}  // namespace

void PrefetchPlan::clear() {
  fetch.clear();
  evict.clear();
  predicted_g = 0.0;
  stretch = 0.0;
  solver_nodes = 0;
}

void PrefetchEngine::select_into(InstanceView inst,
                                 std::span<const ItemId> candidates,
                                 std::optional<ItemId> oracle_next,
                                 PlanScratch& scratch, PrefetchPlan& out,
                                 bool candidates_canonical,
                                 std::span<const double> suffix_prob) const {
  out.clear();
  switch (config_.policy) {
    case PrefetchPolicy::None:
      break;
    case PrefetchPolicy::Perfect: {
      if (oracle_next.has_value()) {
        const ItemId next = *oracle_next;
        if (std::find(candidates.begin(), candidates.end(), next) !=
            candidates.end()) {
          out.fetch.push_back(next);
          out.stretch = stretch_time(inst, out.fetch);
          // access_improvement(inst, {z}) specialized to the singleton
          // list: g* = P_z r_z - 1.0 * st (K is empty, full penalty
          // mass) — identical arithmetic. The Eq.-(1) validity check
          // reduces to 0 < v for a singleton; keep it (only this branch
          // can emit a non-empty plan when v == 0).
          SKP_REQUIRE(inst.v > 0.0, "invalid prefetch list");
          out.predicted_g = inst.profit(next) - out.stretch;
        }
      }
      break;
    }
    case PrefetchPolicy::KP: {
      if (candidates_canonical) {
        solve_kp_bb_sorted_into(inst, candidates, scratch.kp,
                                scratch.kp_sol);
      } else {
        solve_kp_bb_into(inst, candidates, scratch.kp, scratch.kp_sol);
      }
      out.fetch.assign(scratch.kp_sol.items.begin(),
                       scratch.kp_sol.items.end());
      out.predicted_g = scratch.kp_sol.value;
      out.solver_nodes = scratch.kp_sol.nodes;
      out.stretch = 0.0;  // KP never stretches by construction
      break;
    }
    case PrefetchPolicy::SKP: {
      SkpOptions opts;
      opts.delta_rule = config_.delta_rule;
      opts.max_nodes = config_.max_solver_nodes;
      if (candidates_canonical) {
        solve_skp_sorted_into(inst, candidates, opts, scratch.skp,
                              scratch.skp_sol, suffix_prob);
      } else {
        solve_skp_into(inst, candidates, opts, scratch.skp,
                       scratch.skp_sol);
      }
      out.fetch.assign(scratch.skp_sol.F.begin(), scratch.skp_sol.F.end());
      out.predicted_g = scratch.skp_sol.g;
      out.stretch = scratch.skp_sol.stretch;
      out.solver_nodes = scratch.skp_sol.forward_steps;
      break;
    }
  }
}

void PrefetchEngine::plan(InstanceView inst, PlanScratch& scratch,
                          PrefetchPlan& out,
                          std::optional<ItemId> oracle_next) const {
  inst.validate_shape();
  viable_candidates_into(
      inst, [](ItemId) { return false; }, config_.min_profit_threshold,
      scratch.candidates);
  select_into(inst, scratch.candidates, oracle_next, scratch, out);
}

PrefetchPlan PrefetchEngine::plan(InstanceView inst,
                                  std::optional<ItemId> oracle_next) const {
  inst.validate();
  PlanScratch scratch;
  PrefetchPlan out;
  plan(inst, scratch, out, oracle_next);
  return out;
}

void PrefetchEngine::plan_cached(InstanceView inst, const PlanMemo& memo,
                                 PlanScratch& scratch, PrefetchPlan& out,
                                 std::optional<ItemId> oracle_next) const {
  // Empty-cache planning has no cache fingerprint; 0 stands in (the key
  // space is per-PlanCache, and a cache-aware caller always has a
  // non-degenerate fingerprint from its SlotCache/SizedCache). Only the
  // plan tier applies: with no cache the selection IS the plan.
  if (memo.plans != nullptr && memoizable_policy()) {
    SKP_REQUIRE(memo.plans->config_digest() == digest_,
                "PlanCache built for a different engine config");
    if (const StoredPlan* stored = memo.plans->find(memo.state_key, 0)) {
      copy_plan(*stored, out);
      return;
    }
    plan(inst, scratch, out, oracle_next);
    if (StoredPlan* slot = memo.plans->insert(memo.state_key, 0)) {
      copy_plan(out, *slot);
    }
    return;
  }
  plan(inst, scratch, out, oracle_next);
}

void PrefetchEngine::plan_with_cache(
    InstanceView inst, const SlotCache& cache, const FreqTracker* freq,
    PlanScratch& scratch, PrefetchPlan& out,
    std::optional<ItemId> oracle_next,
    std::span<const ItemId> positive_hint) const {
  inst.validate_shape();
  // The instance and cache must describe the same catalog: the victim
  // ranking and Eq.-(9) evaluation below index P/r (and the scratch mark
  // array, sized to inst.n()) with cached item ids, so a larger cache
  // catalog would read — and mark — out of bounds.
  const std::span<const char> present = cache.presence();
  SKP_REQUIRE(inst.n() == present.size(),
              "catalog of " << inst.n() << " items vs cache catalog of "
                            << present.size());
  viable_candidates_into(
      inst,
      [present](ItemId id) {
        return present[static_cast<std::size_t>(id)] != 0;
      },
      config_.min_profit_threshold, scratch.candidates, positive_hint);
  select_into(inst, scratch.candidates, oracle_next, scratch, out);
  admit_slot_into(inst, cache, freq, scratch, out);
}

void PrefetchEngine::select_memoized(
    InstanceView inst, const PlanMemo& memo,
    std::optional<ItemId> oracle_next, PlanScratch& scratch,
    PrefetchPlan& out, bool candidates_canonical,
    std::span<const double> suffix_prob,
    std::optional<std::uint64_t> candidates_fp) const {
  if (memo.selections == nullptr || !memoizable_policy()) {
    select_into(inst, scratch.candidates, oracle_next, scratch, out,
                candidates_canonical, suffix_prob);
    return;
  }
  SKP_REQUIRE(memo.selections->config_digest() == digest_,
              "selection PlanCache built for a different engine config");
  std::uint64_t fp = 0;
  if (candidates_fp) {
    fp = *candidates_fp;
  } else {
    for (const ItemId id : scratch.candidates) fp ^= zobrist_item_key(id);
  }
  if (const StoredPlan* stored = memo.selections->find(memo.state_key, fp)) {
    copy_plan(*stored, out);
    return;
  }
  if (memo.speculative != nullptr &&
      memo.speculative->state_key == memo.state_key &&
      memo.speculative->candidates_fp == fp) {
    // A pipeline worker already solved this exact selection (same state,
    // same candidate set) against a cache snapshot; adopt its result
    // instead of re-solving. The stored plan carries the worker's solver
    // stats, so every simulator counter matches the inline solve.
    copy_plan(memo.speculative->plan, out);
  } else {
    select_into(inst, scratch.candidates, oracle_next, scratch, out,
                candidates_canonical, suffix_prob);
  }
  if (StoredPlan* slot = memo.selections->insert(memo.state_key, fp)) {
    copy_plan(out, *slot);
  }
}

void PrefetchEngine::plan_with_cache_cached(
    InstanceView inst, const SlotCache& cache, const FreqTracker* freq,
    const PlanMemo& memo, PlanScratch& scratch, PrefetchPlan& out,
    std::optional<ItemId> oracle_next,
    std::span<const ItemId> positive_hint) const {
  inst.validate_shape();
  const std::span<const char> present = cache.presence();
  SKP_REQUIRE(inst.n() == present.size(),
              "catalog of " << inst.n() << " items vs cache catalog of "
                            << present.size());
  const bool memoized = memo.plans != nullptr && memoizable_policy();
  if (memoized) {
    SKP_REQUIRE(memo.plans->config_digest() == digest_,
                "PlanCache built for a different engine config");
    if (const StoredPlan* stored =
            memo.plans->find(memo.state_key, cache.fingerprint())) {
      copy_plan(*stored, out);
      return;
    }
  }
  bool canonical = false;
  std::span<const double> suffix;
  std::optional<std::uint64_t> candidates_fp;
  if (memo.canon != nullptr && !positive_hint.empty()) {
    canonical = true;
    candidates_fp = filter_canonical_candidates(
        inst, memo.canon->row(memo.state_key, inst, positive_hint),
        [present](ItemId id) {
          return present[static_cast<std::size_t>(id)] != 0;
        },
        config_.min_profit_threshold, scratch.candidates, suffix);
  } else {
    viable_candidates_into(
        inst,
        [present](ItemId id) {
          return present[static_cast<std::size_t>(id)] != 0;
        },
        config_.min_profit_threshold, scratch.candidates, positive_hint);
  }
  select_memoized(inst, memo, oracle_next, scratch, out, canonical, suffix,
                  candidates_fp);
  admit_slot_into(inst, cache, freq, scratch, out);
  if (memoized) {
    if (StoredPlan* slot =
            memo.plans->insert(memo.state_key, cache.fingerprint())) {
      copy_plan(out, *slot);
    }
  }
}

void PrefetchEngine::plan_with_cache_batch(
    InstanceView inst, std::span<PlanBatchLane> lanes,
    std::optional<ItemId> oracle_next,
    std::span<const ItemId> positive_hint) const {
  inst.validate_shape();
  SKP_REQUIRE(!positive_hint.empty(),
              "batched planning requires a positive-support hint");
  // Per-lane progress through the plan_with_cache_cached stages. Kept in
  // lane-local scalars (no per-call allocation on this hot path).
  enum : unsigned char { kStageDone, kStageAdmit, kStageSolve, kStageGrouped };
  const bool memoized = memoizable_policy();

  // Stage 1: plan-tier lookup + canonical candidate staging — the exact
  // prefix of the solo planner, per lane. All lanes share the state, so
  // the canonical row builds once and every later lane reuses it.
  for (PlanBatchLane& lane : lanes) {
    const SlotCache& cache = *lane.cache;
    const std::span<const char> present = cache.presence();
    SKP_REQUIRE(inst.n() == present.size(),
                "catalog of " << inst.n() << " items vs cache catalog of "
                              << present.size());
    if (memoized && lane.memo.plans != nullptr) {
      SKP_REQUIRE(lane.memo.plans->config_digest() == digest_,
                  "PlanCache built for a different engine config");
      if (const StoredPlan* stored =
              lane.memo.plans->find(lane.memo.state_key,
                                    cache.fingerprint())) {
        copy_plan(*stored, *lane.out);
        lane.stage = kStageDone;
        continue;
      }
    }
    SKP_REQUIRE(lane.memo.canon != nullptr,
                "batched planning requires a canonical-order table");
    lane.suffix = {};
    lane.candidates_fp = filter_canonical_candidates(
        inst, lane.memo.canon->row(lane.memo.state_key, inst, positive_hint),
        [present](ItemId id) {
          return present[static_cast<std::size_t>(id)] != 0;
        },
        config_.min_profit_threshold, lane.scratch->candidates, lane.suffix);
    lane.stage = kStageSolve;
  }

  // Stage 2: selection tier — find per lane, then solve the misses. SKP
  // misses sharing a candidate set are grouped and run through
  // solve_skp_batch_into (one Figure-3 setup per group); each lane's
  // selection insert follows its solve, exactly as select_memoized does.
  for (PlanBatchLane& lane : lanes) {
    if (lane.stage != kStageSolve) continue;
    if (memoized && lane.memo.selections != nullptr) {
      SKP_REQUIRE(lane.memo.selections->config_digest() == digest_,
                  "selection PlanCache built for a different engine config");
      if (const StoredPlan* stored = lane.memo.selections->find(
              lane.memo.state_key, lane.candidates_fp)) {
        copy_plan(*stored, *lane.out);
        lane.stage = kStageAdmit;
      }
    }
  }
  if (config_.policy == PrefetchPolicy::SKP) {
    SkpOptions opts;
    opts.delta_rule = config_.delta_rule;
    opts.max_nodes = config_.max_solver_nodes;
    // Mirrors select_into's SKP branch, then the selection-tier insert —
    // the tail of select_memoized after a miss.
    const auto assemble = [&](PlanBatchLane& lane) {
      const SkpSolution& sol = lane.scratch->skp_sol;
      lane.out->clear();
      lane.out->fetch.assign(sol.F.begin(), sol.F.end());
      lane.out->predicted_g = sol.g;
      lane.out->stretch = sol.stretch;
      lane.out->solver_nodes = sol.forward_steps;
      if (memoized && lane.memo.selections != nullptr) {
        if (StoredPlan* slot = lane.memo.selections->insert(
                lane.memo.state_key, lane.candidates_fp)) {
          copy_plan(*lane.out, *slot);
        }
      }
      lane.stage = kStageAdmit;
    };
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i].stage != kStageSolve) continue;
      PlanScratch& lead = *lanes[i].scratch;
      lead.batch_items.clear();
      lead.batch_items.push_back({inst, &lead.skp_sol});
      for (std::size_t j = i + 1; j < lanes.size(); ++j) {
        // Group on the true candidate set (fingerprint as prefilter,
        // then element equality — cheap next to a solve, and immune to
        // fingerprint collisions merging distinct sets).
        if (lanes[j].stage != kStageSolve) continue;
        if (lanes[j].candidates_fp != lanes[i].candidates_fp) continue;
        if (lanes[j].scratch->candidates != lead.candidates) continue;
        lead.batch_items.push_back({inst, &lanes[j].scratch->skp_sol});
        lanes[j].stage = kStageGrouped;
      }
      solve_skp_batch_into(lead.batch_items, lead.candidates, opts,
                           lead.skp);
      assemble(lanes[i]);
      for (std::size_t j = i + 1; j < lanes.size(); ++j) {
        if (lanes[j].stage == kStageGrouped) assemble(lanes[j]);
      }
    }
  } else {
    for (PlanBatchLane& lane : lanes) {
      if (lane.stage != kStageSolve) continue;
      select_into(inst, lane.scratch->candidates, oracle_next,
                  *lane.scratch, *lane.out, /*candidates_canonical=*/true,
                  lane.suffix);
      if (memoized && lane.memo.selections != nullptr) {
        if (StoredPlan* slot = lane.memo.selections->insert(
                lane.memo.state_key, lane.candidates_fp)) {
          copy_plan(*lane.out, *slot);
        }
      }
      lane.stage = kStageAdmit;
    }
  }

  // Stage 3: Figure-6 admission + plan-tier insert, per lane.
  for (PlanBatchLane& lane : lanes) {
    if (lane.stage == kStageDone) continue;
    admit_slot_into(inst, *lane.cache, lane.freq, *lane.scratch, *lane.out);
    if (memoized && lane.memo.plans != nullptr) {
      if (StoredPlan* slot = lane.memo.plans->insert(
              lane.memo.state_key, lane.cache->fingerprint())) {
        copy_plan(*lane.out, *slot);
      }
    }
  }
}

void PrefetchEngine::speculate_selection(InstanceView inst,
                                         std::uint64_t state_key,
                                         const CanonicalOrderTable::Row& row,
                                         std::span<const char> present,
                                         PlanScratch& scratch,
                                         SpeculativeSelection& out) const {
  SKP_REQUIRE(config_.policy == PrefetchPolicy::SKP,
              "speculative selection is SKP-only");
  SKP_REQUIRE(present.size() == inst.n(),
              "presence bitmap of " << present.size()
                                    << " vs catalog of " << inst.n());
  std::span<const double> suffix;
  out.state_key = state_key;
  out.candidates_fp = filter_canonical_candidates(
      inst, row,
      [present](ItemId id) {
        return present[static_cast<std::size_t>(id)] != 0;
      },
      config_.min_profit_threshold, scratch.candidates, suffix);
  SkpOptions opts;
  opts.delta_rule = config_.delta_rule;
  opts.max_nodes = config_.max_solver_nodes;
  solve_skp_sorted_into(inst, scratch.candidates, opts, scratch.skp,
                        scratch.skp_sol, suffix);
  // Mirror select_into's SKP branch into the stored-plan slice (evict
  // stays empty: the selection stage precedes admission).
  out.plan.fetch.assign(scratch.skp_sol.F.begin(), scratch.skp_sol.F.end());
  out.plan.evict.clear();
  out.plan.predicted_g = scratch.skp_sol.g;
  out.plan.stretch = scratch.skp_sol.stretch;
  out.plan.solver_nodes = scratch.skp_sol.forward_steps;
}

void PrefetchEngine::admit_slot_into(InstanceView inst,
                                     const SlotCache& cache,
                                     const FreqTracker* freq,
                                     PlanScratch& scratch,
                                     PrefetchPlan& out) const {
  if (out.fetch.empty()) {
    out.clear();  // an empty proposal reports no solver stats (pre-refactor
                  // behaviour, kept for bit-identical metrics)
    return;
  }

  // Figure 6: process candidates in descending P_f r_f; each must find a
  // minimal-Pr victim that Pr-arbitration lets it displace. Free slots are
  // uncontested. The Perfect oracle bypasses the admission test (it knows
  // its item is the next access) but still evicts the minimal-Pr victim.
  //
  // Victim extraction: the eviction order is ascending (Pr, sub, id) with
  // Pr = P_d r_d == 0 exactly when P_d == 0 (r is positive). Without
  // sub-arbitration that order is "cached items with P == 0 by ascending
  // id, then positive-Pr items by rank" — the zero-Pr group falls
  // straight out of the cache's id-sorted index, so the common case
  // (sparse P rows, few victims) never builds the O(|C|) ranking; only
  // the positive-Pr tail ranks, and only if reached. LFU/DS tie-breaks
  // depend on frequencies, so sub-arbitration keeps the full ranking.
  profit_order_into(inst, out.fetch, scratch.admit_keys, scratch.by_profit);
  const bool fast_victims =
      config_.arbitration.sub == SubArbitration::None;
  const std::span<const ItemId> sorted = cache.sorted_contents();
  std::size_t zero_cursor = 0;  // cursor over the id-sorted cached items
  bool ranked_built = false;    // rank lazily: uncontested rounds skip it
  std::size_t next_victim = 0;
  std::size_t free_slots = cache.capacity() - cache.size();
  scratch.begin_epoch(inst.n());  // marks = committed membership
  scratch.victim_of.clear();
  for (ItemId f : scratch.by_profit) {
    if (free_slots > 0) {
      --free_slots;
      scratch.set_mark(f);
      continue;
    }
    double victim_pr = 0.0;
    ItemId victim_id = kNoItem;
    if (fast_victims) {
      while (zero_cursor < sorted.size() &&
             inst.P[static_cast<std::size_t>(sorted[zero_cursor])] != 0.0) {
        ++zero_cursor;
      }
      if (zero_cursor < sorted.size()) {
        victim_id = sorted[zero_cursor++];  // Pr == 0, minimal id first
      }
    }
    if (victim_id == kNoItem) {
      if (!ranked_built) {
        if (fast_victims) {
          // Zero-Pr pool exhausted: rank the remaining (positive-Pr)
          // cached items. Every zero-Pr item was already consumed, so
          // restricting the ranking to P > 0 reproduces the tail of the
          // full ranking exactly.
          scratch.ranked.clear();
          for (const ItemId c : sorted) {
            const auto ci = static_cast<std::size_t>(c);
            if (inst.P[ci] == 0.0) continue;
            scratch.ranked.push_back({inst.P[ci] * inst.r[ci], 0.0, c});
          }
        } else {
          rank_victims(inst, cache.contents(), freq, config_.arbitration,
                       scratch);
        }
        // At most one victim per remaining fetch candidate can be
        // consumed, so sorting that prefix replaces the per-victim
        // selection scans of extract_victim — (pr, sub, id) is a total
        // order (ids are unique), so ANY algorithm extracting ascending
        // ranks yields the same victim sequence bit for bit.
        const std::size_t need =
            std::min(scratch.by_profit.size(), scratch.ranked.size());
        std::partial_sort(scratch.ranked.begin(),
                          scratch.ranked.begin() +
                              static_cast<std::ptrdiff_t>(need),
                          scratch.ranked.end(), victim_rank_less);
        ranked_built = true;
      }
      if (next_victim >= scratch.ranked.size()) break;  // nothing to
                                                        // displace
      const PlanScratch::VictimRank& vr = scratch.ranked[next_victim];
      ++next_victim;
      victim_pr = vr.pr;
      victim_id = vr.id;
    }
    if (config_.policy != PrefetchPolicy::Perfect) {
      // Pr-arbitration admission test (admits_prefetch, inlined on the
      // ranked Pr value).
      const double pf = inst.profit(f);
      const bool admit = config_.arbitration.strict_ties
                             ? (pf > victim_pr)
                             : (pf >= victim_pr);
      if (!admit) break;  // Figure 6 stops at the first rejected candidate
    }
    scratch.set_mark(f);
    scratch.victim_of.emplace_back(f, victim_id);
  }

  emit_committed(scratch, out);
  if (out.fetch.empty()) {
    out.predicted_g = 0.0;
    out.stretch = 0.0;
    return;
  }
  out.stretch = stretch_time(inst, out.fetch);
  out.predicted_g =
      config_.evaluate_plan_g
          ? predicted_g_cached(inst, out, cache.contents(), scratch)
          : 0.0;
}

PrefetchPlan PrefetchEngine::plan_with_cache(
    InstanceView inst, const SlotCache& cache, const FreqTracker* freq,
    std::optional<ItemId> oracle_next) const {
  inst.validate();
  PlanScratch scratch;
  PrefetchPlan out;
  plan_with_cache(inst, cache, freq, scratch, out, oracle_next);
  return out;
}

void PrefetchEngine::plan_with_sized_cache(
    InstanceView inst, const SizedCache& cache, const FreqTracker* freq,
    PlanScratch& scratch, PrefetchPlan& out,
    std::optional<ItemId> oracle_next) const {
  inst.validate_shape();
  // Same catalog contract as the slot planner: cached ids index P/r and
  // the scratch mark array (sized to inst.n()) below.
  SKP_REQUIRE(inst.n() == cache.catalog_size(),
              "catalog of " << inst.n() << " items vs cache catalog of "
                            << cache.catalog_size());
  viable_candidates_into(
      inst,
      [&cache](ItemId id) {
        return cache.contains(id) || !cache.cacheable(id);
      },
      config_.min_profit_threshold, scratch.candidates);
  select_into(inst, scratch.candidates, oracle_next, scratch, out);
  admit_sized_into(inst, cache, freq, scratch, out);
}

void PrefetchEngine::plan_with_sized_cache_cached(
    InstanceView inst, const SizedCache& cache, const FreqTracker* freq,
    const PlanMemo& memo, PlanScratch& scratch, PrefetchPlan& out,
    std::optional<ItemId> oracle_next,
    std::span<const ItemId> positive_hint) const {
  inst.validate_shape();
  SKP_REQUIRE(inst.n() == cache.catalog_size(),
              "catalog of " << inst.n() << " items vs cache catalog of "
                            << cache.catalog_size());
  const bool memoized = memo.plans != nullptr && memoizable_policy();
  if (memoized) {
    SKP_REQUIRE(memo.plans->config_digest() == digest_,
                "PlanCache built for a different engine config");
    if (const StoredPlan* stored =
            memo.plans->find(memo.state_key, cache.fingerprint())) {
      copy_plan(*stored, out);
      return;
    }
  }
  bool canonical = false;
  std::span<const double> suffix;
  std::optional<std::uint64_t> candidates_fp;
  if (memo.canon != nullptr && !positive_hint.empty()) {
    canonical = true;
    candidates_fp = filter_canonical_candidates(
        inst, memo.canon->row(memo.state_key, inst, positive_hint),
        [&cache](ItemId id) {
          return cache.contains(id) || !cache.cacheable(id);
        },
        config_.min_profit_threshold, scratch.candidates, suffix);
  } else {
    viable_candidates_into(
        inst,
        [&cache](ItemId id) {
          return cache.contains(id) || !cache.cacheable(id);
        },
        config_.min_profit_threshold, scratch.candidates, positive_hint);
  }
  select_memoized(inst, memo, oracle_next, scratch, out, canonical, suffix,
                  candidates_fp);
  admit_sized_into(inst, cache, freq, scratch, out);
  if (memoized) {
    if (StoredPlan* slot =
            memo.plans->insert(memo.state_key, cache.fingerprint())) {
      copy_plan(out, *slot);
    }
  }
}

void PrefetchEngine::admit_sized_into(InstanceView inst,
                                      const SizedCache& cache,
                                      const FreqTracker* freq,
                                      PlanScratch& scratch,
                                      PrefetchPlan& out) const {
  if (out.fetch.empty()) {
    out.clear();
    return;
  }

  profit_order_into(inst, out.fetch, scratch.admit_keys, scratch.by_profit);

  // Victim searches run on a scratch copy from which victims are removed
  // as they are claimed (copy-assignment reuses the scratch cache's
  // storage); committed prefetches are accounted as *reserved* space
  // rather than inserted, so a later candidate can never evict an earlier
  // one.
  if (scratch.sized.has_value()) {
    *scratch.sized = cache;
  } else {
    scratch.sized.emplace(cache);
  }
  SizedCache& working = *scratch.sized;
  double reserved = 0.0;
  scratch.begin_epoch(inst.n());  // marks = committed membership
  out.evict.clear();
  for (const ItemId f : scratch.by_profit) {
    gather_victims_by_density_into(inst, working, freq, config_.arbitration,
                                   reserved + working.size_of(f),
                                   scratch.pool, scratch.victims);
    if (!scratch.victims.ok) break;  // cannot make room evicting everything
    // Generalized Pr admission: the candidate must beat the combined Pr
    // of everything it displaces (Figure-6 tie semantics).
    const bool admit =
        config_.policy == PrefetchPolicy::Perfect ||
        (config_.arbitration.strict_ties
             ? inst.profit(f) > scratch.victims.total_pr
             : inst.profit(f) >= scratch.victims.total_pr);
    if (!admit) break;
    for (const ItemId d : scratch.victims.victims) {
      working.erase(d);
      out.evict.push_back(d);
    }
    reserved += working.size_of(f);
    scratch.set_mark(f);
  }

  // Keep committed items in the selector's fetch order; `evict` stays the
  // flat victim list accumulated above (|evict| != |fetch| in general).
  std::size_t w = 0;
  for (std::size_t k = 0; k < out.fetch.size(); ++k) {
    const ItemId f = out.fetch[k];
    if (scratch.marked(f)) out.fetch[w++] = f;
  }
  out.fetch.resize(w);
  if (out.fetch.empty()) {
    out.predicted_g = 0.0;
    out.stretch = 0.0;
    return;
  }
  out.stretch = stretch_time(inst, out.fetch);
  out.predicted_g =
      config_.evaluate_plan_g
          ? predicted_g_cached(inst, out, cache.contents(), scratch)
          : 0.0;
}

PrefetchPlan PrefetchEngine::plan_with_sized_cache(
    InstanceView inst, const SizedCache& cache, const FreqTracker* freq,
    std::optional<ItemId> oracle_next) const {
  inst.validate();
  PlanScratch scratch;
  PrefetchPlan out;
  plan_with_sized_cache(inst, cache, freq, scratch, out, oracle_next);
  return out;
}

}  // namespace skp
