#include "core/prefetch_engine.hpp"

#include <algorithm>

#include "core/access_model.hpp"
#include "core/kp_solver.hpp"

namespace skp {

std::string to_string(PrefetchPolicy policy) {
  switch (policy) {
    case PrefetchPolicy::None: return "none";
    case PrefetchPolicy::KP: return "KP";
    case PrefetchPolicy::SKP: return "SKP";
    case PrefetchPolicy::Perfect: return "perfect";
  }
  return "?";
}

std::string to_string(SubArbitration sub) {
  switch (sub) {
    case SubArbitration::None: return "none";
    case SubArbitration::LFU: return "LFU";
    case SubArbitration::DS: return "DS";
  }
  return "?";
}

namespace {

// Candidate filter shared by the planners: an item is worth considering
// only if it is not cached, has positive probability, and clears the
// network-usage threshold (extension knob; 0 = paper behaviour). The
// `cached` predicate abstracts over slot and sized caches.
template <typename CachedFn>
std::vector<ItemId> viable_candidates_if(const Instance& inst,
                                         CachedFn cached,
                                         double min_profit) {
  std::vector<ItemId> out;
  out.reserve(inst.n());
  for (std::size_t i = 0; i < inst.n(); ++i) {
    const auto id = static_cast<ItemId>(i);
    if (inst.P[i] <= 0.0) continue;
    if (cached(id)) continue;
    if (inst.profit(id) < min_profit) continue;
    out.push_back(id);
  }
  return out;
}

std::vector<ItemId> viable_candidates(const Instance& inst,
                                      const SlotCache* cache,
                                      double min_profit) {
  return viable_candidates_if(
      inst,
      [cache](ItemId id) {
        return cache != nullptr && cache->contains(id);
      },
      min_profit);
}

}  // namespace

PrefetchPlan PrefetchEngine::select(const Instance& inst,
                                    std::span<const ItemId> candidates,
                                    std::optional<ItemId> oracle_next) const {
  PrefetchPlan plan;
  switch (config_.policy) {
    case PrefetchPolicy::None:
      break;
    case PrefetchPolicy::Perfect: {
      if (oracle_next.has_value()) {
        const ItemId next = *oracle_next;
        if (std::find(candidates.begin(), candidates.end(), next) !=
            candidates.end()) {
          plan.fetch.push_back(next);
          plan.stretch = stretch_time(inst, plan.fetch);
          plan.predicted_g = access_improvement(inst, plan.fetch);
        }
      }
      break;
    }
    case PrefetchPolicy::KP: {
      const KpSolution sol = solve_kp_bb(inst, candidates);
      plan.fetch = sol.items;
      plan.predicted_g = sol.value;
      plan.solver_nodes = sol.nodes;
      plan.stretch = 0.0;  // KP never stretches by construction
      break;
    }
    case PrefetchPolicy::SKP: {
      SkpOptions opts;
      opts.delta_rule = config_.delta_rule;
      opts.max_nodes = config_.max_solver_nodes;
      const SkpSolution sol = solve_skp(inst, candidates, opts);
      plan.fetch = sol.F;
      plan.predicted_g = sol.g;
      plan.stretch = sol.stretch;
      plan.solver_nodes = sol.forward_steps;
      break;
    }
  }
  return plan;
}

PrefetchPlan PrefetchEngine::plan(const Instance& inst,
                                  std::optional<ItemId> oracle_next) const {
  inst.validate();
  const auto candidates =
      viable_candidates(inst, nullptr, config_.min_profit_threshold);
  return select(inst, candidates, oracle_next);
}

PrefetchPlan PrefetchEngine::plan_with_cache(
    const Instance& inst, const SlotCache& cache, const FreqTracker* freq,
    std::optional<ItemId> oracle_next) const {
  inst.validate();
  const auto candidates =
      viable_candidates(inst, &cache, config_.min_profit_threshold);
  PrefetchPlan proposal = select(inst, candidates, oracle_next);
  if (proposal.fetch.empty()) return {};

  // Figure 6: process candidates in descending P_f r_f; each must find a
  // minimal-Pr victim that Pr-arbitration lets it displace. Free slots are
  // uncontested. The Perfect oracle bypasses the admission test (it knows
  // its item is the next access) but still evicts the minimal-Pr victim.
  std::vector<ItemId> by_profit = proposal.fetch;
  std::sort(by_profit.begin(), by_profit.end(), [&](ItemId a, ItemId b) {
    const double pa = inst.profit(a), pb = inst.profit(b);
    if (pa != pb) return pa > pb;
    return canonical_before(inst, a, b);
  });

  std::vector<ItemId> remaining(cache.contents().begin(),
                                cache.contents().end());
  std::size_t free_slots = cache.capacity() - cache.size();
  std::vector<ItemId> committed;
  std::vector<std::pair<ItemId, ItemId>> victim_of;  // (fetch, victim)
  for (ItemId f : by_profit) {
    if (free_slots > 0) {
      --free_slots;
      committed.push_back(f);
      continue;
    }
    if (remaining.empty()) break;  // nothing left to displace
    const ItemId d = choose_victim(inst, remaining, freq,
                                   config_.arbitration);
    if (config_.policy != PrefetchPolicy::Perfect &&
        !admits_prefetch(inst, f, d, config_.arbitration)) {
      break;  // Figure 6 stops at the first rejected candidate
    }
    committed.push_back(f);
    victim_of.emplace_back(f, d);
    remaining.erase(std::find(remaining.begin(), remaining.end(), d));
  }

  // Re-emit the committed items in the selector's fetch order (canonical,
  // stretching item last) so the Eq.-(1) construction stays valid; align
  // the evictions with their fetches.
  PrefetchPlan plan;
  plan.solver_nodes = proposal.solver_nodes;
  for (ItemId f : proposal.fetch) {
    if (std::find(committed.begin(), committed.end(), f) == committed.end())
      continue;
    plan.fetch.push_back(f);
    const auto it = std::find_if(
        victim_of.begin(), victim_of.end(),
        [f](const auto& pr) { return pr.first == f; });
    if (it != victim_of.end()) plan.evict.push_back(it->second);
  }
  if (plan.fetch.empty()) return plan;
  plan.stretch = stretch_time(inst, plan.fetch);
  plan.predicted_g = access_improvement_cached(inst, plan.fetch, plan.evict,
                                               cache.contents());
  return plan;
}

PrefetchPlan PrefetchEngine::plan_with_sized_cache(
    const Instance& inst, const SizedCache& cache, const FreqTracker* freq,
    std::optional<ItemId> oracle_next) const {
  inst.validate();
  const auto candidates = viable_candidates_if(
      inst,
      [&cache](ItemId id) {
        return cache.contains(id) || !cache.cacheable(id);
      },
      config_.min_profit_threshold);
  PrefetchPlan proposal = select(inst, candidates, oracle_next);
  if (proposal.fetch.empty()) return {};

  std::vector<ItemId> by_profit = proposal.fetch;
  std::sort(by_profit.begin(), by_profit.end(), [&](ItemId a, ItemId b) {
    const double pa = inst.profit(a), pb = inst.profit(b);
    if (pa != pb) return pa > pb;
    return canonical_before(inst, a, b);
  });

  // Victim searches run on a scratch copy from which victims are removed
  // as they are claimed; committed prefetches are accounted as *reserved*
  // space rather than inserted, so a later candidate can never evict an
  // earlier one.
  SizedCache scratch = cache;
  double reserved = 0.0;
  std::vector<ItemId> committed;
  std::vector<ItemId> victims_all;
  for (const ItemId f : by_profit) {
    const VictimSet vs = gather_victims_by_density(
        inst, scratch, freq, config_.arbitration,
        reserved + scratch.size_of(f));
    if (!vs.ok) break;  // cannot make room even evicting everything
    // Generalized Pr admission: the candidate must beat the combined Pr
    // of everything it displaces (Figure-6 tie semantics).
    const bool admit =
        config_.policy == PrefetchPolicy::Perfect ||
        (config_.arbitration.strict_ties
             ? inst.profit(f) > vs.total_pr
             : inst.profit(f) >= vs.total_pr);
    if (!admit) break;
    for (const ItemId d : vs.victims) {
      scratch.erase(d);
      victims_all.push_back(d);
    }
    reserved += scratch.size_of(f);
    committed.push_back(f);
  }

  PrefetchPlan plan;
  plan.solver_nodes = proposal.solver_nodes;
  for (const ItemId f : proposal.fetch) {
    if (std::find(committed.begin(), committed.end(), f) !=
        committed.end()) {
      plan.fetch.push_back(f);
    }
  }
  plan.evict = std::move(victims_all);
  if (plan.fetch.empty()) return plan;
  plan.stretch = stretch_time(inst, plan.fetch);
  plan.predicted_g = access_improvement_cached(inst, plan.fetch, plan.evict,
                                               cache.contents());
  return plan;
}

}  // namespace skp
