#include "core/arbitration.hpp"

#include <algorithm>

#include "util/simd.hpp"

namespace skp {

ItemId choose_victim(InstanceView inst, std::span<const ItemId> cached,
                     const FreqTracker* freq, const ArbitrationConfig& cfg) {
  SKP_REQUIRE(!cached.empty(), "choose_victim over empty cache");
  SKP_REQUIRE(cfg.sub == SubArbitration::None || freq != nullptr,
              "sub-arbitration requires a FreqTracker");
  if (cfg.sub == SubArbitration::None) {
    // Fast path (every demand miss lands here under the paper's default):
    // plain (Pr, id) minimum, no score indirection. The Pr products are
    // bulk-gathered a chunk at a time (util/simd.hpp — each lane an exact
    // IEEE multiply), then the minimum scan runs over the chunk in the
    // original ascending-k order, so the winner matches the one-at-a-time
    // loop bit-for-bit. All sub scores are 0, so ties fall straight
    // through to the id rule of the general loop.
    constexpr std::size_t kChunk = 64;
    double pr_buf[kChunk];
    ItemId victim = kNoItem;
    double victim_pr = 0.0;
    for (std::size_t base = 0; base < cached.size(); base += kChunk) {
      const std::size_t len = std::min(kChunk, cached.size() - base);
      simd::gather_products(inst.P, inst.r, cached.subspan(base, len),
                            pr_buf);
      for (std::size_t j = 0; j < len; ++j) {
        const ItemId i = cached[base + j];
        if (victim == kNoItem || pr_buf[j] < victim_pr ||
            (pr_buf[j] == victim_pr && i < victim)) {
          victim = i;
          victim_pr = pr_buf[j];
        }
      }
    }
    return victim;
  }
  auto sub_score = [&](ItemId i) {
    switch (cfg.sub) {
      case SubArbitration::LFU:
        return freq->frequency(i);
      case SubArbitration::DS:
        return freq->delay_saving_profit(i, inst.r[InstanceView::idx(i)]);
      case SubArbitration::None:
        return 0.0;
    }
    return 0.0;  // unreachable
  };
  // Sub-arbitrated path: the Pr products still bulk-gather (the dominant
  // per-item cost); sub scores stay lazy — computed only when an item
  // becomes the running minimum or ties it, exactly when the one-at-a-
  // time loop computed them. Every score is an exact IEEE load or single
  // product, so the winner matches that loop bit-for-bit.
  constexpr std::size_t kChunk = 64;
  double pr_buf[kChunk];
  ItemId victim = kNoItem;
  double victim_pr = 0.0;
  double victim_sub = 0.0;
  for (std::size_t base = 0; base < cached.size(); base += kChunk) {
    const std::size_t len = std::min(kChunk, cached.size() - base);
    simd::gather_products(inst.P, inst.r, cached.subspan(base, len),
                          pr_buf);
    for (std::size_t j = 0; j < len; ++j) {
      const ItemId i = cached[base + j];
      const double pr = pr_buf[j];
      if (victim == kNoItem || pr < victim_pr) {
        victim = i;
        victim_pr = pr;
        victim_sub = sub_score(i);
        continue;
      }
      if (pr > victim_pr) continue;
      // Pr tie: sub-arbitration, then lowest id for determinism.
      const double s = sub_score(i);
      if (s < victim_sub || (s == victim_sub && i < victim)) {
        victim = i;
        victim_sub = s;
      }
    }
  }
  return victim;
}

bool admits_prefetch(InstanceView inst, ItemId f, ItemId d,
                     const ArbitrationConfig& cfg) {
  const double pf = inst.profit(f);
  const double pd = inst.profit(d);
  return cfg.strict_ties ? (pf > pd) : (pf >= pd);
}

void VictimSet::clear() {
  victims.clear();
  freed = 0.0;
  total_pr = 0.0;
  ok = false;
}

VictimSet gather_victims_by_density(InstanceView inst,
                                    const SizedCache& cache,
                                    const FreqTracker* freq,
                                    const ArbitrationConfig& cfg,
                                    double needed_free) {
  VictimSet out;
  std::vector<ItemId> pool;
  gather_victims_by_density_into(inst, cache, freq, cfg, needed_free, pool,
                                 out);
  return out;
}

void gather_victims_by_density_into(InstanceView inst,
                                    const SizedCache& cache,
                                    const FreqTracker* freq,
                                    const ArbitrationConfig& cfg,
                                    double needed_free,
                                    std::vector<ItemId>& pool,
                                    VictimSet& out) {
  SKP_REQUIRE(needed_free >= 0.0, "negative space request");
  SKP_REQUIRE(cfg.sub == SubArbitration::None || freq != nullptr,
              "sub-arbitration requires a FreqTracker");
  out.clear();
  double available = cache.free_space();
  if (available >= needed_free) {
    out.ok = true;
    return;
  }
  pool.assign(cache.contents().begin(), cache.contents().end());
  auto sub_score = [&](ItemId i) {
    switch (cfg.sub) {
      case SubArbitration::LFU:
        return freq->frequency(i);
      case SubArbitration::DS:
        return freq->delay_saving_profit(i, inst.r[InstanceView::idx(i)]);
      case SubArbitration::None:
        return 0.0;
    }
    return 0.0;
  };
  auto density = [&](ItemId i) {
    return inst.profit(i) / cache.size_of(i);
  };
  std::sort(pool.begin(), pool.end(), [&](ItemId a, ItemId b) {
    const double da = density(a), db = density(b);
    if (da != db) return da < db;
    const double sa = sub_score(a), sb = sub_score(b);
    if (sa != sb) return sa < sb;
    return a < b;
  });
  for (const ItemId d : pool) {
    if (available >= needed_free) break;
    out.victims.push_back(d);
    out.freed += cache.size_of(d);
    out.total_pr += inst.profit(d);
    available += cache.size_of(d);
  }
  out.ok = available >= needed_free;
}

}  // namespace skp
