// Multi-access lookahead (extension; paper Section 6).
//
// "The SKP algorithm considers only one access ahead. Obviously, looking
// ahead deeper will improve the performance. However, the complexity of
// the problem can be daunting." This module implements the tractable
// middle ground the paper gestures at: keep the one-access SKP machinery
// but feed it a *horizon-blended* probability vector
//
//   P_h = (1 - w) * P^(1) + w * P^(2),   P^(2)[j] = sum_k P^(1)[k] R[k][j]
//
// (and so on for deeper horizons with geometric weights), where R is the
// source's transition matrix. Items likely needed within the next few
// accesses get prefetched now and survive in the cache until used — the
// benefit deep lookahead buys — while planning stays a single SKP solve.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "workload/markov_source.hpp"

namespace skp {

// Blends transition probabilities over `horizon` future steps starting
// from `state`. horizon == 1 returns the plain row (the paper's setting).
// `decay` in (0, 1] geometrically down-weights deeper steps: step d gets
// weight decay^(d-1); weights are normalized to sum to 1.
std::vector<double> horizon_probabilities(const MarkovSource& source,
                                          std::size_t state,
                                          std::size_t horizon,
                                          double decay = 0.5);

// Buffer-reusing variant: writes the blended distribution into `out`
// (resized to n, capacity reused) so per-request lookahead planning does
// not discard the caller's buffer. The horizon-step temporaries still
// allocate; horizon is small and the mode is an extension.
void horizon_probabilities_into(const MarkovSource& source,
                                std::size_t state, std::size_t horizon,
                                double decay, std::vector<double>& out);

// Same computation from an explicit dense transition matrix (row-major,
// n x n); `first_row` is the step-1 distribution.
std::vector<double> horizon_probabilities(
    const std::vector<std::vector<double>>& matrix,
    const std::vector<double>& first_row, std::size_t horizon,
    double decay = 0.5);

}  // namespace skp
