// Exact SKP over the *full* Eq.-(1) space (extension; DESIGN.md D8).
//
// Theorem 1 licenses restricting the search to canonical-order lists, but
// its exchange argument assumes the swapped list stays valid, which fails
// on instances like P = {.6, .4}, r = {10, 1}, v = 5 (optimal order
// <1, 0>, g = 2.8, vs the best canonical list's g = 1). This solver closes
// the gap: it forces each candidate z to be the last (possibly stretching)
// element in turn and solves the induced subproblem over K exactly:
//
//   maximize  sum_K P r + P_z r_z - (M - sum_K P) * (sum_K r + r_z - v)^+
//   over      K subseteq candidates \ {z},  sum_K r < v
//
// where M = total_prob_mass. Within a fixed z the order of K is
// irrelevant (only the set enters the objective), so DFS over canonical
// order with a Dantzig-style bound is exact. Worst case is exponential,
// like all exact knapsack search, but the bound keeps realistic catalog
// sizes (tens of items) fast; property tests pin equality with
// brute_force_skp.
#pragma once

#include <span>

#include "core/skp_solver.hpp"

namespace skp {

// Exact full-space SKP. Returns the best list (order matters: the last
// element is the forced z) or an empty list when prefetching nothing is
// optimal. `forward_steps` counts DFS nodes across all z subproblems.
SkpSolution solve_skp_full(const Instance& inst,
                           std::span<const ItemId> candidates,
                           double total_prob_mass = 1.0);
SkpSolution solve_skp_full(const Instance& inst,
                           double total_prob_mass = 1.0);

}  // namespace skp
