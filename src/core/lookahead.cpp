#include "core/lookahead.hpp"

#include <span>

#include "util/require.hpp"

namespace skp {

namespace {

// One chain step: next[j] = sum_k cur[k] * R[k][j], with R supplied as a
// row-accessor callback so both overloads share the kernel.
template <typename RowFn>
std::vector<double> step_distribution(const std::vector<double>& cur,
                                      RowFn row, std::size_t n) {
  std::vector<double> next(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    if (cur[k] <= 0.0) continue;
    const auto r = row(k);
    for (std::size_t j = 0; j < n; ++j) {
      if (r[j] > 0.0) next[j] += cur[k] * r[j];
    }
  }
  return next;
}

template <typename RowFn>
void blend_into(std::span<const double> first_row, std::size_t horizon,
                double decay, RowFn row, std::vector<double>& out) {
  SKP_REQUIRE(horizon >= 1, "horizon must be >= 1");
  SKP_REQUIRE(decay > 0.0 && decay <= 1.0, "decay in (0, 1]");
  const std::size_t n = first_row.size();
  out.assign(n, 0.0);
  std::vector<double> cur(first_row.begin(), first_row.end());
  double weight = 1.0;
  double weight_sum = 0.0;
  for (std::size_t d = 1; d <= horizon; ++d) {
    for (std::size_t j = 0; j < n; ++j) out[j] += weight * cur[j];
    weight_sum += weight;
    if (d < horizon) {
      cur = step_distribution(cur, row, n);
      weight *= decay;
    }
  }
  for (double& x : out) x /= weight_sum;
}

}  // namespace

void horizon_probabilities_into(const MarkovSource& source,
                                std::size_t state, std::size_t horizon,
                                double decay, std::vector<double>& out) {
  SKP_REQUIRE(state < source.n_states(), "state out of range");
  blend_into(source.transition_row(state), horizon, decay,
             [&](std::size_t k) { return source.transition_row(k); }, out);
}

std::vector<double> horizon_probabilities(const MarkovSource& source,
                                          std::size_t state,
                                          std::size_t horizon,
                                          double decay) {
  std::vector<double> out;
  horizon_probabilities_into(source, state, horizon, decay, out);
  return out;
}

std::vector<double> horizon_probabilities(
    const std::vector<std::vector<double>>& matrix,
    const std::vector<double>& first_row, std::size_t horizon,
    double decay) {
  const std::size_t n = first_row.size();
  SKP_REQUIRE(matrix.size() == n, "matrix/row size mismatch");
  for (const auto& r : matrix) {
    SKP_REQUIRE(r.size() == n, "matrix must be square");
  }
  std::vector<double> out;
  blend_into(first_row, horizon, decay,
             [&](std::size_t k) { return std::span<const double>(matrix[k]); },
             out);
  return out;
}

}  // namespace skp
