// Reusable workspace for the per-request planning hot path.
//
// The paper-scale sweeps (Figure 7: 5 policies x 100 cache sizes x 50 000
// requests = 25M planning rounds) spend a measurable fraction of their
// wall-clock allocating and freeing the same dozen small vectors per round.
// A PlanScratch owns every buffer the planning stack needs — candidate
// shortlist, canonical order, solver stacks, Figure-6 admission state, a
// predictor output row — so a sim loop allocates once and every subsequent
// `PrefetchEngine::plan*` call runs allocation-free (amortized: vectors
// only grow, never shrink).
//
// A PlanScratch is plain state, not thread-safe: give each sim loop /
// worker thread its own. Results are bit-identical to the scratch-free
// overloads — the buffers change where intermediates live, never their
// values (tests/test_prefetch_cache_sim.cpp pins this at fixed seeds).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "cache/sized_cache.hpp"
#include "core/arbitration.hpp"
#include "core/item.hpp"
#include "core/kp_solver.hpp"
#include "core/skp_solver.hpp"

namespace skp {

struct PlanScratch {
  // Candidate shortlist (N \ C with positive probability) fed to the
  // selector, and the Figure-6 admission loop's working sets.
  std::vector<ItemId> candidates;
  std::vector<ItemId> by_profit;
  std::vector<std::pair<ItemId, ItemId>> victim_of;  // (fetch, victim)

  // Eviction candidates ranked once per planning round: Pr values and
  // sub-arbitration scores are fixed while one plan is built, so
  // consuming this ascending (Pr, sub, id) order left-to-right replays
  // repeated minimal-Pr victim extraction exactly.
  struct VictimRank {
    double pr;   // P_d * r_d
    double sub;  // sub-arbitration score (0 when sub == None)
    ItemId id;
  };
  std::vector<VictimRank> ranked;

  // Figure-6 admission sort keys, staged once per round so the sort
  // comparator reads flat records instead of re-deriving P_f r_f (and the
  // Eq.-5 tie-break) per comparison.
  struct AdmitKey {
    double pr;  // P_f * r_f (primary, descending)
    double P;   // Eq.-5 tie-break: P desc, r asc, id asc
    double r;
    ItemId id;
  };
  std::vector<AdmitKey> admit_keys;

  // Bulk-gather staging rows (util/simd.hpp): Pr products and
  // sub-arbitration scores over the cached set, one lane per victim.
  std::vector<double> gather_a;
  std::vector<double> gather_b;

  // Solver workspaces + reusable solution slots (their internal vectors
  // are cleared, not freed, between solves).
  SkpWorkspace skp;
  SkpSolution skp_sol;
  KpWorkspace kp;
  KpSolution kp_sol;

  // Batched planning (plan_with_cache_batch): the group leader's staging
  // row of same-candidate-set lanes handed to solve_skp_batch_into.
  std::vector<SkpBatchItem> batch_items;

  // Sized-cache planning: victim-gathering pool + result, and a scratch
  // copy of the cache that victim searches mutate (copy-assigned from the
  // real cache each round, reusing its storage).
  std::vector<ItemId> pool;
  VictimSet victims;
  std::optional<SizedCache> sized;

  // Probability row for predictor / lookahead planning: predictors write
  // their distribution here instead of returning a fresh vector.
  std::vector<double> P;

  // ---- Epoch-tagged membership marks over the catalog ------------------
  // A reusable "bitset": set/test are O(1) and begin_epoch is O(1)
  // amortized (a full clear only happens when the 32-bit epoch wraps).
  // Replaces the O(n) std::find membership tests in the Figure-6
  // admission loop.
  void begin_epoch(std::size_t n) {
    if (mark_.size() < n) mark_.resize(n, 0);
    if (++epoch_ == 0) {  // wrapped: stale tags could alias the new epoch
      std::fill(mark_.begin(), mark_.end(), 0);
      epoch_ = 1;
    }
  }
  bool marked(ItemId i) const {
    return mark_[InstanceView::idx(i)] == epoch_;
  }
  void set_mark(ItemId i) { mark_[InstanceView::idx(i)] = epoch_; }

 private:
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
};

}  // namespace skp
