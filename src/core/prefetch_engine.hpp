// The prefetch engine: policy selection + cache-aware planning (Figure 6).
//
// A PrefetchEngine turns an InstanceView (the current P, r, v — typically
// borrowed straight from a MarkovSource row or a predictor's output
// buffer) plus the cache state into a PrefetchPlan: an ordered list of
// items to fetch and the victims they displace. Supported selection
// policies:
//   * None    — never prefetch (the "no prefetch" baseline).
//   * KP      — classic 0/1 knapsack selection (never stretches).
//   * SKP     — the paper's stretch-knapsack selection.
//   * Perfect — oracle: prefetch exactly the item that will be requested
//               (supplied by the simulator; used for the Fig. 5 bound).
//
// With a non-empty cache the engine follows the Figure-6 algorithm:
// solve the (S)KP over N \ C, then admit candidates in descending
// P_f r_f order against minimal-Pr victims (Pr-arbitration), optionally
// tie-breaking victims by LFU or delay-saving profit (sub-arbitration).
//
// Each planner comes in three forms: a convenience overload returning a
// fresh PrefetchPlan, an allocation-free overload taking a PlanScratch
// (every working buffer) plus an output plan to refill, and a *_cached
// overload that additionally consults a PlanMemo (core/plan_cache.hpp)
// for cross-request memoization and per-state canonical solve orders.
// All three are bit-identical; sim hot loops use the memoized scratch
// form so paper-scale sweeps (25M planning rounds for Figure 7) never
// touch the allocator and never re-solve a recurring (state, cache)
// pair.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "cache/sized_cache.hpp"
#include "core/arbitration.hpp"
#include "core/plan_cache.hpp"
#include "core/plan_scratch.hpp"
#include "core/skp_solver.hpp"

namespace skp {

enum class PrefetchPolicy { None, KP, SKP, Perfect };

std::string to_string(PrefetchPolicy policy);
std::string to_string(SubArbitration sub);

struct EngineConfig {
  PrefetchPolicy policy = PrefetchPolicy::SKP;
  DeltaRule delta_rule = DeltaRule::ExactComplement;
  ArbitrationConfig arbitration;
  // Extension (paper Section 6 "further work"): suppress prefetches whose
  // marginal contribution P_f r_f falls below this threshold, trading
  // access improvement for network usage. 0 reproduces the paper.
  double min_profit_threshold = 0.0;
  // Node budget forwarded to the SKP search (0 = unlimited).
  std::uint64_t max_solver_nodes = 0;
  // Evaluate the cache-aware plan's Eq.-(9) improvement into
  // PrefetchPlan::predicted_g (an O(|cache|) diagnostic per planning
  // round that no decision in the pipeline consumes — Figure 6 commits
  // on local Pr-arbitration tests). Monte-Carlo hot loops turn it off;
  // with false, predicted_g is reported as 0 on cache-aware plans.
  bool evaluate_plan_g = true;
};

// A prefetch plan: exactly the memoized payload fields (see
// core/plan_cache.hpp's StoredPlan for the field semantics — fetch
// order, evictions, the Eq.-9 diagnostic, solver stats). Deriving from
// the stored form keeps the plan cache structurally in sync with the
// plan type by construction.
struct PrefetchPlan : StoredPlan {
  // Resets to the empty plan, keeping vector capacities (hot-path reuse).
  void clear();
};

// 64-bit digest of every EngineConfig field that influences planning.
// A PlanCache is pinned to the digest of the engine that fills it; the
// *_cached planners refuse to consult a cache built for another config.
std::uint64_t engine_config_digest(const EngineConfig& config);

class PrefetchEngine {
 public:
  explicit PrefetchEngine(EngineConfig config)
      : config_(config), digest_(engine_config_digest(config)) {}

  const EngineConfig& config() const noexcept { return config_; }
  std::uint64_t config_digest() const noexcept { return digest_; }

  // Empty-cache planning (Section 3): selects F from the full catalog.
  // `oracle_next` feeds the Perfect policy and is ignored otherwise.
  PrefetchPlan plan(InstanceView inst,
                    std::optional<ItemId> oracle_next = std::nullopt) const;
  void plan(InstanceView inst, PlanScratch& scratch, PrefetchPlan& out,
            std::optional<ItemId> oracle_next = std::nullopt) const;

  // Cache-aware planning (Section 5, Figure 6). When the cache has free
  // slots, candidates fill them without arbitration (nothing contests);
  // once full, Pr-arbitration decides. `freq` is required for LFU/DS
  // sub-arbitration.
  // `positive_hint`, when non-empty, must list (in ascending id order)
  // every item with P_i > 0 — e.g. a Markov source's successor list. The
  // candidate filter then scans those entries instead of the whole
  // catalog; entries with P_i == 0 are permitted and skipped, so any
  // ascending superset of the support is valid. The result is identical
  // to the unhinted call.
  PrefetchPlan plan_with_cache(InstanceView inst, const SlotCache& cache,
                               const FreqTracker* freq,
                               std::optional<ItemId> oracle_next
                               = std::nullopt) const;
  void plan_with_cache(InstanceView inst, const SlotCache& cache,
                       const FreqTracker* freq, PlanScratch& scratch,
                       PrefetchPlan& out,
                       std::optional<ItemId> oracle_next = std::nullopt,
                       std::span<const ItemId> positive_hint = {}) const;

  // Size-aware planning (extension; DESIGN.md D6 / paper Section 6): the
  // Figure-6 loop generalized to heterogeneous item sizes. Each candidate
  // (descending P_f r_f) gathers victims by ascending Pr *density* until
  // it fits and is admitted only if P_f r_f beats the total Pr it
  // displaces (Figure-6 tie semantics apply). Unlike the slot planner,
  // `evict` here is the flat victim set — |evict| generally differs from
  // |fetch|.
  PrefetchPlan plan_with_sized_cache(InstanceView inst,
                                     const SizedCache& cache,
                                     const FreqTracker* freq,
                                     std::optional<ItemId> oracle_next
                                     = std::nullopt) const;
  void plan_with_sized_cache(InstanceView inst, const SizedCache& cache,
                             const FreqTracker* freq, PlanScratch& scratch,
                             PrefetchPlan& out,
                             std::optional<ItemId> oracle_next
                             = std::nullopt) const;

  // ---- Memoized planning (core/plan_cache.hpp) --------------------------
  // Each *_cached overload consults memo.plans (completed plans, keyed by
  // state + cache fingerprint) before running the pipeline above — a hit
  // copies the stored plan into `out` and solves nothing. On a plan-tier
  // miss, memo.selections (keyed by state + candidate-set fingerprint)
  // can still replay the solver stage, so only the cheap Figure-6
  // admission runs; the selection tier is deliberately blind to the full
  // cache set and to LFU/DS frequencies, which the solve does not read.
  // When memo.canon is set (and, for the cache-aware planners, a
  // positive hint identifies the support) even a full miss skips the
  // per-solve Eq.-5 sort by filtering the precomputed per-state
  // canonical order against the cache. With a default PlanMemo these are
  // exactly the scratch overloads above. Results are bit-identical
  // either way.
  //
  // Memoization requires the stored value to be a pure function of its
  // key: the caller must bump memo.plans' generation whenever planning
  // context outside (state_key, cache contents) changes — a learned
  // predictor observing, or (under LFU/DS sub-arbitration) a frequency
  // being recorded — and memo.selections' whenever (P, r, v) for a
  // state_key changes (predictor observation only; frequencies never
  // reach the solver). None-policy plans are trivially empty and
  // Perfect-policy plans depend on the oracle item, so both bypass
  // memoization entirely (consulting it would cost more than planning).
  void plan_cached(InstanceView inst, const PlanMemo& memo,
                   PlanScratch& scratch, PrefetchPlan& out,
                   std::optional<ItemId> oracle_next = std::nullopt) const;
  void plan_with_cache_cached(InstanceView inst, const SlotCache& cache,
                              const FreqTracker* freq, const PlanMemo& memo,
                              PlanScratch& scratch, PrefetchPlan& out,
                              std::optional<ItemId> oracle_next
                              = std::nullopt,
                              std::span<const ItemId> positive_hint
                              = {}) const;
  void plan_with_sized_cache_cached(InstanceView inst,
                                    const SizedCache& cache,
                                    const FreqTracker* freq,
                                    const PlanMemo& memo,
                                    PlanScratch& scratch, PrefetchPlan& out,
                                    std::optional<ItemId> oracle_next
                                    = std::nullopt,
                                    std::span<const ItemId> positive_hint
                                    = {}) const;

  // ---- Batched planning (lockstep cache-size sweeps) --------------------
  // One independent planning lane of plan_with_cache_batch: its own cache,
  // frequency state, memo tiers, scratch, and output plan. The memo's
  // `canon` pointers may be shared across lanes (rows depend only on the
  // instance); `plans`/`selections` must be per-lane.
  struct PlanBatchLane {
    const SlotCache* cache = nullptr;
    const FreqTracker* freq = nullptr;
    PlanMemo memo;
    PlanScratch* scratch = nullptr;
    PrefetchPlan* out = nullptr;
    // Transient per-call staging, written by plan_with_cache_batch
    // (kept in the lane so the hot path never allocates side arrays).
    std::uint64_t candidates_fp = 0;
    std::span<const double> suffix;
    unsigned char stage = 0;
  };

  // Plans the SAME instance (state) against k independent cache lanes in
  // one call — the lockstep sweep's inner step. Per lane this is
  // bit-identical to plan_with_cache_cached (the per-lane memo find /
  // solve / insert order is preserved, so even the PlanCache stats
  // match); across lanes, SKP selection-stage misses that share a
  // candidate set are grouped and solved through solve_skp_batch_into,
  // amortizing the canonical-row filtering and Figure-3 tail-sum build
  // that dominate per-solve setup. Requires memo.canon set and a
  // non-empty positive hint on every lane (the batched path exists for
  // the canonical-order fast path; the solo planner handles the rest).
  void plan_with_cache_batch(InstanceView inst,
                             std::span<PlanBatchLane> lanes,
                             std::optional<ItemId> oracle_next,
                             std::span<const ItemId> positive_hint) const;

  // ---- Speculative selection (pipelined execution) ----------------------
  // Pre-solves the selection stage for `state_key` against a cache
  // *snapshot* (presence bitmap over the catalog), producing a
  // SpeculativeSelection that select_memoized can later consume if the
  // live candidate fingerprint still matches. Mirrors the canonical-row
  // cached path exactly: filter `row` against the snapshot (and the
  // min-profit threshold), solve, record the solver's stats. SKP policy
  // only (the pipelined simulator's contract); `row` must be this
  // state's CanonicalOrderTable row for the same instance. Thread-safe
  // for concurrent calls with distinct `scratch`/`out` (the engine is
  // read-only here).
  void speculate_selection(InstanceView inst, std::uint64_t state_key,
                           const CanonicalOrderTable::Row& row,
                           std::span<const char> present,
                           PlanScratch& scratch,
                           SpeculativeSelection& out) const;

 private:
  // Runs the configured selector over `candidates`, refilling `out` with
  // the ordered F (solver buffers from `scratch`). `candidates_canonical`
  // promises the candidates are already in canonical (Eq. 5) order, so
  // the solvers skip their sort; `suffix_prob`, when non-empty, is the
  // matching precomputed Figure-3 tail-sum row.
  void select_into(InstanceView inst, std::span<const ItemId> candidates,
                   std::optional<ItemId> oracle_next, PlanScratch& scratch,
                   PrefetchPlan& out, bool candidates_canonical = false,
                   std::span<const double> suffix_prob = {}) const;

  // Selector stage over the staged candidates, replaying memo.selections
  // when it can (see the *_cached contract above). `candidates_fp`, when
  // engaged, is the caller-precomputed Zobrist XOR of scratch.candidates
  // (e.g. derived from a CanonicalOrderTable row); otherwise it is
  // computed here.
  void select_memoized(InstanceView inst, const PlanMemo& memo,
                       std::optional<ItemId> oracle_next,
                       PlanScratch& scratch, PrefetchPlan& out,
                       bool candidates_canonical,
                       std::span<const double> suffix_prob,
                       std::optional<std::uint64_t> candidates_fp
                       = std::nullopt) const;

  // The Figure-6 admission pipelines, consuming the selector's proposal
  // in `out` (select_into / select_memoized must have run).
  void admit_slot_into(InstanceView inst, const SlotCache& cache,
                       const FreqTracker* freq, PlanScratch& scratch,
                       PrefetchPlan& out) const;
  void admit_sized_into(InstanceView inst, const SizedCache& cache,
                        const FreqTracker* freq, PlanScratch& scratch,
                        PrefetchPlan& out) const;

  // True when memoization applies under the current policy (None plans
  // trivially, Perfect depends on the oracle item).
  bool memoizable_policy() const noexcept {
    return config_.policy != PrefetchPolicy::None &&
           config_.policy != PrefetchPolicy::Perfect;
  }

  EngineConfig config_;
  std::uint64_t digest_;
};

}  // namespace skp
