// The prefetch engine: policy selection + cache-aware planning (Figure 6).
//
// A PrefetchEngine turns an InstanceView (the current P, r, v — typically
// borrowed straight from a MarkovSource row or a predictor's output
// buffer) plus the cache state into a PrefetchPlan: an ordered list of
// items to fetch and the victims they displace. Supported selection
// policies:
//   * None    — never prefetch (the "no prefetch" baseline).
//   * KP      — classic 0/1 knapsack selection (never stretches).
//   * SKP     — the paper's stretch-knapsack selection.
//   * Perfect — oracle: prefetch exactly the item that will be requested
//               (supplied by the simulator; used for the Fig. 5 bound).
//
// With a non-empty cache the engine follows the Figure-6 algorithm:
// solve the (S)KP over N \ C, then admit candidates in descending
// P_f r_f order against minimal-Pr victims (Pr-arbitration), optionally
// tie-breaking victims by LFU or delay-saving profit (sub-arbitration).
//
// Each planner comes in two forms: a convenience overload returning a
// fresh PrefetchPlan, and an allocation-free overload taking a PlanScratch
// (every working buffer) plus an output plan to refill. The two are
// bit-identical; sim hot loops use the scratch form so paper-scale sweeps
// (25M planning rounds for Figure 7) never touch the allocator.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "cache/sized_cache.hpp"
#include "core/arbitration.hpp"
#include "core/plan_scratch.hpp"
#include "core/skp_solver.hpp"

namespace skp {

enum class PrefetchPolicy { None, KP, SKP, Perfect };

std::string to_string(PrefetchPolicy policy);
std::string to_string(SubArbitration sub);

struct EngineConfig {
  PrefetchPolicy policy = PrefetchPolicy::SKP;
  DeltaRule delta_rule = DeltaRule::ExactComplement;
  ArbitrationConfig arbitration;
  // Extension (paper Section 6 "further work"): suppress prefetches whose
  // marginal contribution P_f r_f falls below this threshold, trading
  // access improvement for network usage. 0 reproduces the paper.
  double min_profit_threshold = 0.0;
  // Node budget forwarded to the SKP search (0 = unlimited).
  std::uint64_t max_solver_nodes = 0;
};

struct PrefetchPlan {
  // Items to fetch, in fetch order (the last element may stretch).
  PrefetchList fetch;
  // Victims to evict, aligned with `fetch` (evict[k] makes room for
  // fetch[k]). Empty when the cache has free slots or is absent.
  std::vector<ItemId> evict;
  // Predicted access improvement of the plan (solver's objective; for SKP
  // with ExactComplement this is Eq. 3 / Eq. 9 consistent).
  double predicted_g = 0.0;
  double stretch = 0.0;
  // Solver statistics (SKP/KP searches).
  std::uint64_t solver_nodes = 0;

  // Resets to the empty plan, keeping vector capacities (hot-path reuse).
  void clear();
};

class PrefetchEngine {
 public:
  explicit PrefetchEngine(EngineConfig config) : config_(config) {}

  const EngineConfig& config() const noexcept { return config_; }

  // Empty-cache planning (Section 3): selects F from the full catalog.
  // `oracle_next` feeds the Perfect policy and is ignored otherwise.
  PrefetchPlan plan(InstanceView inst,
                    std::optional<ItemId> oracle_next = std::nullopt) const;
  void plan(InstanceView inst, PlanScratch& scratch, PrefetchPlan& out,
            std::optional<ItemId> oracle_next = std::nullopt) const;

  // Cache-aware planning (Section 5, Figure 6). When the cache has free
  // slots, candidates fill them without arbitration (nothing contests);
  // once full, Pr-arbitration decides. `freq` is required for LFU/DS
  // sub-arbitration.
  // `positive_hint`, when non-empty, must list (in ascending id order)
  // every item with P_i > 0 — e.g. a Markov source's successor list. The
  // candidate filter then scans those entries instead of the whole
  // catalog; entries with P_i == 0 are permitted and skipped, so any
  // ascending superset of the support is valid. The result is identical
  // to the unhinted call.
  PrefetchPlan plan_with_cache(InstanceView inst, const SlotCache& cache,
                               const FreqTracker* freq,
                               std::optional<ItemId> oracle_next
                               = std::nullopt) const;
  void plan_with_cache(InstanceView inst, const SlotCache& cache,
                       const FreqTracker* freq, PlanScratch& scratch,
                       PrefetchPlan& out,
                       std::optional<ItemId> oracle_next = std::nullopt,
                       std::span<const ItemId> positive_hint = {}) const;

  // Size-aware planning (extension; DESIGN.md D6 / paper Section 6): the
  // Figure-6 loop generalized to heterogeneous item sizes. Each candidate
  // (descending P_f r_f) gathers victims by ascending Pr *density* until
  // it fits and is admitted only if P_f r_f beats the total Pr it
  // displaces (Figure-6 tie semantics apply). Unlike the slot planner,
  // `evict` here is the flat victim set — |evict| generally differs from
  // |fetch|.
  PrefetchPlan plan_with_sized_cache(InstanceView inst,
                                     const SizedCache& cache,
                                     const FreqTracker* freq,
                                     std::optional<ItemId> oracle_next
                                     = std::nullopt) const;
  void plan_with_sized_cache(InstanceView inst, const SizedCache& cache,
                             const FreqTracker* freq, PlanScratch& scratch,
                             PrefetchPlan& out,
                             std::optional<ItemId> oracle_next
                             = std::nullopt) const;

 private:
  // Runs the configured selector over `candidates`, refilling `out` with
  // the ordered F (solver buffers from `scratch`).
  void select_into(InstanceView inst, std::span<const ItemId> candidates,
                   std::optional<ItemId> oracle_next, PlanScratch& scratch,
                   PrefetchPlan& out) const;

  EngineConfig config_;
};

}  // namespace skp
