#include "core/brute_force.hpp"

#include <algorithm>
#include <numeric>

#include "core/access_model.hpp"

namespace skp {

namespace {

std::vector<ItemId> all_items(const Instance& inst) {
  std::vector<ItemId> ids(inst.n());
  std::iota(ids.begin(), ids.end(), ItemId{0});
  return ids;
}

// g* of the ordered list `K ++ <z>` given precomputed sums, per Eq. (3).
double g_of(double profit_sum, double prob_K, double stretch,
            double total_prob_mass) {
  return profit_sum - (total_prob_mass - prob_K) * stretch;
}

}  // namespace

BruteForceResult brute_force_skp(const Instance& inst,
                                 std::span<const ItemId> candidates,
                                 double total_prob_mass,
                                 std::size_t max_items) {
  inst.validate();
  const std::size_t m = candidates.size();
  SKP_REQUIRE(m <= max_items,
              "brute_force_skp over " << m << " items (cap " << max_items
                                      << ")");
  BruteForceResult best;  // g = 0, empty list: prefetch nothing
  const std::uint64_t limit = 1ULL << m;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    // Set totals.
    double r_sum = 0.0, p_sum = 0.0, profit_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1ULL << i)) {
        const ItemId id = candidates[i];
        r_sum += inst.r[Instance::idx(id)];
        p_sum += inst.P[Instance::idx(id)];
        profit_sum += inst.profit(id);
      }
    }
    // Try every member as the last element z; Eq. (1) requires the rest to
    // fit strictly within v.
    for (std::size_t zi = 0; zi < m; ++zi) {
      if (!(mask & (1ULL << zi))) continue;
      const ItemId z = candidates[zi];
      const double r_K = r_sum - inst.r[Instance::idx(z)];
      if (!(r_K < inst.v)) continue;  // violates the construction
      ++best.evaluated;
      const double stretch = std::max(0.0, r_sum - inst.v);
      const double prob_K = p_sum - inst.P[Instance::idx(z)];
      const double g = g_of(profit_sum, prob_K, stretch, total_prob_mass);
      if (g > best.g) {
        best.g = g;
        best.F.clear();
        for (std::size_t i = 0; i < m; ++i) {
          if ((mask & (1ULL << i)) && i != zi)
            best.F.push_back(candidates[i]);
        }
        best.F.push_back(z);
      }
      if (stretch == 0.0) break;  // without stretch, z is irrelevant
    }
  }
  return best;
}

BruteForceResult brute_force_skp(const Instance& inst,
                                 double total_prob_mass,
                                 std::size_t max_items) {
  const auto ids = all_items(inst);
  return brute_force_skp(inst, ids, total_prob_mass, max_items);
}

BruteForceResult brute_force_skp_canonical(
    const Instance& inst, std::span<const ItemId> candidates,
    double total_prob_mass, std::size_t max_items) {
  inst.validate();
  const std::size_t m = candidates.size();
  SKP_REQUIRE(m <= max_items, "brute_force_skp_canonical over " << m
                                                                << " items");
  const auto order = canonical_order(inst, candidates);
  BruteForceResult best;
  const std::uint64_t limit = 1ULL << m;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    double r_sum = 0.0, p_sum = 0.0, profit_sum = 0.0;
    // order[] is canonical, so the last set bit is the list's z.
    double r_z = 0.0, p_z = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (!(mask & (1ULL << i))) continue;
      const ItemId id = order[i];
      r_sum += inst.r[Instance::idx(id)];
      p_sum += inst.P[Instance::idx(id)];
      profit_sum += inst.profit(id);
      r_z = inst.r[Instance::idx(id)];
      p_z = inst.P[Instance::idx(id)];
    }
    if (!(r_sum - r_z < inst.v)) continue;  // Eq. (1) in canonical order
    ++best.evaluated;
    const double stretch = std::max(0.0, r_sum - inst.v);
    const double g =
        g_of(profit_sum, p_sum - p_z, stretch, total_prob_mass);
    if (g > best.g) {
      best.g = g;
      best.F.clear();
      for (std::size_t i = 0; i < m; ++i) {
        if (mask & (1ULL << i)) best.F.push_back(order[i]);
      }
    }
  }
  return best;
}

BruteForceResult brute_force_skp_canonical(const Instance& inst,
                                           double total_prob_mass,
                                           std::size_t max_items) {
  const auto ids = all_items(inst);
  return brute_force_skp_canonical(inst, ids, total_prob_mass, max_items);
}

BruteForceResult brute_force_skp_permutations(const Instance& inst,
                                              double total_prob_mass,
                                              std::size_t max_items) {
  inst.validate();
  const std::size_t m = inst.n();
  SKP_REQUIRE(m <= max_items, "permutation brute force over " << m
                                                              << " items");
  BruteForceResult best;
  const auto ids = all_items(inst);
  const std::uint64_t limit = 1ULL << m;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    std::vector<ItemId> subset;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1ULL << i)) subset.push_back(ids[i]);
    }
    std::sort(subset.begin(), subset.end());
    do {
      if (!is_valid_prefetch_list(inst, subset)) continue;
      ++best.evaluated;
      const double g = access_improvement(inst, subset, total_prob_mass);
      if (g > best.g) {
        best.g = g;
        best.F = subset;
      }
    } while (std::next_permutation(subset.begin(), subset.end()));
  }
  return best;
}

BruteForceResult brute_force_kp(const Instance& inst,
                                std::span<const ItemId> candidates,
                                std::size_t max_items) {
  inst.validate();
  const std::size_t m = candidates.size();
  SKP_REQUIRE(m <= max_items, "brute_force_kp over " << m << " items");
  BruteForceResult best;
  const std::uint64_t limit = 1ULL << m;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    double r_sum = 0.0, profit_sum = 0.0;
    std::vector<ItemId> subset;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1ULL << i)) {
        const ItemId id = candidates[i];
        r_sum += inst.r[Instance::idx(id)];
        profit_sum += inst.profit(id);
        subset.push_back(id);
      }
    }
    if (r_sum > inst.v) continue;
    ++best.evaluated;
    if (profit_sum > best.g) {
      best.g = profit_sum;
      best.F = std::move(subset);
    }
  }
  return best;
}

}  // namespace skp
