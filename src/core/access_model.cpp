#include "core/access_model.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/simd.hpp"

namespace skp {

namespace {

double sum_r(InstanceView inst, std::span<const ItemId> items) {
  double s = 0.0;
  for (ItemId i : items) s += inst.r[InstanceView::idx(i)];
  return s;
}

double sum_P(InstanceView inst, std::span<const ItemId> items) {
  double s = 0.0;
  for (ItemId i : items) s += inst.P[InstanceView::idx(i)];
  return s;
}

bool contains(std::span<const ItemId> items, ItemId x) {
  return std::find(items.begin(), items.end(), x) != items.end();
}

}  // namespace

double stretch_time(InstanceView inst, std::span<const ItemId> F) {
  if (F.empty()) return 0.0;
  return std::max(0.0, sum_r(inst, F) - inst.v);
}

bool is_valid_prefetch_list(InstanceView inst, std::span<const ItemId> F) {
  if (F.empty()) return true;
  std::unordered_set<ItemId> seen;
  for (ItemId i : F) {
    if (i < 0 || static_cast<std::size_t>(i) >= inst.n()) return false;
    if (!seen.insert(i).second) return false;  // duplicate
  }
  // Eq. (1): all items except the last must fit strictly within v.
  const double r_K = sum_r(inst, F.subspan(0, F.size() - 1));
  return r_K < inst.v;
}

double expected_access_time_no_prefetch(InstanceView inst) {
  double s = 0.0;
  for (std::size_t i = 0; i < inst.n(); ++i) s += inst.P[i] * inst.r[i];
  return s;
}

double expected_access_time_prefetch(InstanceView inst,
                                     std::span<const ItemId> F) {
  if (F.empty()) return expected_access_time_no_prefetch(inst);
  SKP_REQUIRE(is_valid_prefetch_list(inst, F), "invalid prefetch list");
  const double st = stretch_time(inst, F);
  const ItemId z = F.back();
  double e = inst.P[InstanceView::idx(z)] * st;
  for (std::size_t i = 0; i < inst.n(); ++i) {
    const auto id = static_cast<ItemId>(i);
    if (!contains(F, id)) e += inst.P[i] * (inst.r[i] + st);
  }
  return e;
}

double access_improvement(InstanceView inst, std::span<const ItemId> F,
                          double total_prob_mass) {
  if (F.empty()) return 0.0;
  SKP_REQUIRE(is_valid_prefetch_list(inst, F), "invalid prefetch list");
  const double st = stretch_time(inst, F);
  double gain = 0.0;
  for (ItemId i : F) gain += inst.profit(i);
  // Penalty mass: everything outside K = F \ {z} pays st(F).
  const double prob_K = sum_P(inst, F.subspan(0, F.size() - 1));
  return gain - (total_prob_mass - prob_K) * st;
}

double theorem3_delta(InstanceView inst, ItemId z, double prob_in_K,
                      double stretch, double total_prob_mass) {
  return inst.profit(z) - (total_prob_mass - prob_in_K) * stretch;
}

double realized_access_time(InstanceView inst, std::span<const ItemId> F,
                            ItemId requested) {
  SKP_REQUIRE(requested >= 0 &&
                  static_cast<std::size_t>(requested) < inst.n(),
              "requested item out of range");
  if (F.empty()) return inst.r[InstanceView::idx(requested)];
  const double st = stretch_time(inst, F);
  const ItemId z = F.back();
  if (requested == z) return st;
  if (contains(F.subspan(0, F.size() - 1), requested)) return 0.0;
  return st + inst.r[InstanceView::idx(requested)];
}

double expected_access_time_no_prefetch_cached(InstanceView inst,
                                               std::span<const ItemId> C) {
  double s = 0.0;
  for (std::size_t i = 0; i < inst.n(); ++i) {
    const auto id = static_cast<ItemId>(i);
    if (!contains(C, id)) s += inst.P[i] * inst.r[i];
  }
  return s;
}

double expected_access_time_no_prefetch_cached(
    InstanceView inst, std::span<const char> cache_presence) {
  SKP_REQUIRE(cache_presence.size() == inst.n(),
              "presence bitmap of " << cache_presence.size()
                                    << " vs catalog of " << inst.n());
  return simd::masked_time_sum(inst.P, inst.r, cache_presence);
}

double access_improvement_cached(InstanceView inst,
                                 std::span<const ItemId> F,
                                 std::span<const ItemId> D,
                                 std::span<const ItemId> C) {
  for (ItemId f : F)
    SKP_REQUIRE(!contains(C, f), "prefetch item " << f << " already cached");
  for (ItemId d : D)
    SKP_REQUIRE(contains(C, d), "eviction victim " << d << " not in cache");
  const double g_star = access_improvement(inst, F, /*total_prob_mass=*/1.0);
  const double st = stretch_time(inst, F);
  double anti_g = 0.0;
  for (ItemId d : D) anti_g += inst.profit(d);
  for (ItemId c : C) {
    if (!contains(D, c)) anti_g -= inst.P[InstanceView::idx(c)] * st;
  }
  return g_star - anti_g;
}

double realized_access_time_cached(InstanceView inst,
                                   std::span<const ItemId> F,
                                   std::span<const ItemId> D,
                                   std::span<const ItemId> C,
                                   ItemId requested) {
  SKP_REQUIRE(requested >= 0 &&
                  static_cast<std::size_t>(requested) < inst.n(),
              "requested item out of range");
  const double st = stretch_time(inst, F);
  if (!F.empty()) {
    const ItemId z = F.back();
    if (requested == z) return st;
    if (contains(F.subspan(0, F.size() - 1), requested)) return 0.0;
  }
  if (contains(C, requested) && !contains(D, requested)) return 0.0;
  return st + inst.r[InstanceView::idx(requested)];
}

double realized_access_time_cached(InstanceView inst,
                                   std::span<const ItemId> F,
                                   std::span<const ItemId> D,
                                   std::span<const char> cache_presence,
                                   ItemId requested) {
  SKP_REQUIRE(requested >= 0 &&
                  static_cast<std::size_t>(requested) < inst.n(),
              "requested item out of range");
  const double st = stretch_time(inst, F);
  if (!F.empty()) {
    const ItemId z = F.back();
    if (requested == z) return st;
    if (contains(F.subspan(0, F.size() - 1), requested)) return 0.0;
  }
  if (cache_presence[static_cast<std::size_t>(requested)] != 0 &&
      !contains(D, requested)) {
    return 0.0;
  }
  return st + inst.r[InstanceView::idx(requested)];
}

}  // namespace skp
