#include "core/overload.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace skp {

const char* to_string(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kNormal: return "normal";
    case DegradationRung::kTrimLookahead: return "trim_lookahead";
    case DegradationRung::kTrimBudget: return "trim_budget";
    case DegradationRung::kStrictAdmission: return "strict_admission";
    case DegradationRung::kPrefetchOff: return "prefetch_off";
  }
  return "?";
}

void validate_overload_config(const OverloadConfig& cfg) {
  SKP_REQUIRE(cfg.window >= 1,
              "overload window must be >= 1, got " << cfg.window);
  SKP_REQUIRE(cfg.degrade_ratio > 1.0,
              "overload degrade_ratio must be > 1, got "
                  << cfg.degrade_ratio);
  SKP_REQUIRE(cfg.recover_ratio >= 1.0 &&
                  cfg.recover_ratio < cfg.degrade_ratio,
              "overload recover_ratio must be in [1, degrade_ratio), got "
                  << cfg.recover_ratio);
  SKP_REQUIRE(cfg.recover_windows >= 1,
              "overload recover_windows must be >= 1, got "
                  << cfg.recover_windows);
  SKP_REQUIRE(cfg.headroom > 0.0,
              "overload headroom must be > 0, got " << cfg.headroom);
  SKP_REQUIRE(cfg.lookahead_depth >= 1,
              "overload lookahead_depth must be >= 1, got "
                  << cfg.lookahead_depth);
  SKP_REQUIRE(cfg.budget_items >= 1,
              "overload budget_items must be >= 1, got "
                  << cfg.budget_items);
}

OverloadController::OverloadController(const OverloadConfig& cfg)
    : cfg_(cfg) {
  if (cfg_.enabled) validate_overload_config(cfg_);
}

bool OverloadController::observe(double waiting) {
  if (!cfg_.enabled) return false;
  const auto rung_idx = static_cast<std::size_t>(rung_);
  ++stats_.requests_at_rung[rung_idx];
  if (rung_ != DegradationRung::kNormal) ++stats_.degraded_requests;

  window_sum_ += waiting;
  if (++window_count_ < cfg_.window) return false;
  const double sample = window_sum_ / static_cast<double>(window_count_);
  window_sum_ = 0.0;
  window_count_ = 0;

  if (baseline_ < 0.0) {
    // First window seeds the baseline; no verdict yet.
    baseline_ = sample;
    return false;
  }
  const double gradient =
      (sample + cfg_.headroom) / (baseline_ + cfg_.headroom);
  // The baseline is the calmest window ever seen, so pressure is always
  // measured against the system's demonstrated best.
  baseline_ = std::min(baseline_, sample);

  int next = static_cast<int>(rung_);
  if (gradient >= cfg_.degrade_ratio) {
    calm_streak_ = 0;
    next = std::min(next + 1, kDegradationRungs - 1);
  } else if (gradient <= cfg_.recover_ratio) {
    if (next > 0 && ++calm_streak_ >= cfg_.recover_windows) {
      --next;
      calm_streak_ = 0;
    }
  } else {
    // Hysteresis band: neither hot enough to descend nor calm enough to
    // make recovery progress.
    calm_streak_ = 0;
  }
  if (next == static_cast<int>(rung_)) return false;
  rung_ = static_cast<DegradationRung>(next);
  ++stats_.transitions;
  stats_.max_rung = std::max(stats_.max_rung, next);
  return true;
}

bool OverloadController::force_step_down() {
  const int next =
      std::min(static_cast<int>(rung_) + 1, kDegradationRungs - 1);
  if (next == static_cast<int>(rung_)) return false;
  rung_ = static_cast<DegradationRung>(next);
  calm_streak_ = 0;
  ++stats_.transitions;
  ++stats_.forced_transitions;
  stats_.max_rung = std::max(stats_.max_rung, next);
  return true;
}

void OverloadController::degrade_row(std::span<double> row) {
  // Keyed on the rung, not `enabled`: a forced rung (external pressure)
  // must restrict planning even when the gradient watcher is off.
  if (rung_ == DegradationRung::kNormal) return;
  if (rung_ == DegradationRung::kPrefetchOff) {
    std::fill(row.begin(), row.end(), 0.0);
    return;
  }
  const std::size_t k = rung_ >= DegradationRung::kTrimBudget
                            ? std::min(cfg_.budget_items,
                                       cfg_.lookahead_depth)
                            : cfg_.lookahead_depth;
  // Top-k by (probability desc, item id asc) via insertion into a short
  // sorted list; k is a handful, so this is O(n * k) with no allocation
  // in steady state.
  keep_.clear();
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] <= 0.0) continue;
    std::size_t pos = keep_.size();
    while (pos > 0 && row[keep_[pos - 1]] < row[i]) --pos;
    if (pos >= k) continue;
    keep_.insert(keep_.begin() + static_cast<std::ptrdiff_t>(pos), i);
    if (keep_.size() > k) keep_.pop_back();
  }
  kept_values_.resize(keep_.size());
  for (std::size_t j = 0; j < keep_.size(); ++j) {
    kept_values_[j] = row[keep_[j]];
  }
  std::fill(row.begin(), row.end(), 0.0);
  for (std::size_t j = 0; j < keep_.size(); ++j) {
    row[keep_[j]] = kept_values_[j];
  }
}

void OverloadStats::merge(const OverloadStats& other) {
  transitions += other.transitions;
  forced_transitions += other.forced_transitions;
  max_rung = std::max(max_rung, other.max_rung);
  degraded_requests += other.degraded_requests;
  for (std::size_t i = 0; i < requests_at_rung.size(); ++i) {
    requests_at_rung[i] += other.requests_at_rung[i];
  }
}

}  // namespace skp
