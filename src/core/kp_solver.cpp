#include "core/kp_solver.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace skp {

namespace {

std::vector<ItemId> all_items(InstanceView inst) {
  std::vector<ItemId> ids(inst.n());
  std::iota(ids.begin(), ids.end(), ItemId{0});
  return ids;
}

// Recursive Horowitz–Sahni style depth-first search. Items are visited in
// canonical (profit-density descending) order; at each node the Dantzig
// bound prunes subtrees that cannot beat the incumbent. All working memory
// is borrowed from a KpWorkspace so repeated solves never allocate.
class KpSearch {
 public:
  KpSearch(InstanceView inst, std::span<const ItemId> order, KpWorkspace& ws)
      : inst_(inst), order_(order), ws_(ws) {
    ws_.chosen.assign(order_.size(), 0);
    ws_.best_chosen.assign(order_.size(), 0);
  }

  void run(double capacity, KpSolution& sol) {
    capacity_ = capacity;
    dfs(0, 0.0, 0.0);
    sol.value = best_value_;
    sol.nodes = nodes_;
    sol.pruned = pruned_;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (ws_.best_chosen[i]) {
        sol.items.push_back(order_[i]);
        sol.weight += inst_.r[InstanceView::idx(order_[i])];
      }
    }
  }

 private:
  void dfs(std::size_t depth, double value, double weight) {
    ++nodes_;
    if (value > best_value_) {
      best_value_ = value;
      std::copy(ws_.chosen.begin(), ws_.chosen.end(),
                ws_.best_chosen.begin());
    }
    if (depth == order_.size()) return;
    const double residual = capacity_ - weight;
    const double bound = dantzig_bound(inst_, order_, depth, residual);
    if (value + bound <= best_value_) {
      ++pruned_;
      return;
    }
    const auto id_i = static_cast<std::size_t>(order_[depth]);
    const double w = inst_.r[id_i];
    if (w <= residual) {  // take
      ws_.chosen[depth] = 1;
      dfs(depth + 1, value + inst_.P[id_i] * w, weight + w);
      ws_.chosen[depth] = 0;
    }
    dfs(depth + 1, value, weight);  // skip
  }

  InstanceView inst_;
  std::span<const ItemId> order_;
  KpWorkspace& ws_;
  double capacity_ = 0.0;
  double best_value_ = 0.0;
  std::uint64_t nodes_ = 0;
  std::uint64_t pruned_ = 0;
};

}  // namespace

void KpSolution::clear() {
  items.clear();
  value = 0.0;
  weight = 0.0;
  nodes = 0;
  pruned = 0;
}

double dantzig_bound(InstanceView inst, std::span<const ItemId> order,
                     std::size_t from, double capacity) {
  if (capacity <= 0.0) return 0.0;
  double bound = 0.0;
  double residual = capacity;
  for (std::size_t i = from; i < order.size(); ++i) {
    // `order` is a validated canonical order; index unchecked (this bound
    // is evaluated at every node of both searches).
    const auto id_i = static_cast<std::size_t>(order[i]);
    const double w = inst.r[id_i];
    if (w <= residual) {
      bound += inst.P[id_i] * w;
      residual -= w;
    } else {
      // Fractional fill of the first item that does not fit (Eq. 7 uses
      // (v - sum r) * P_z, and profit/weight = P_z).
      bound += residual * inst.P[id_i];
      return bound;
    }
  }
  return bound;
}

void solve_kp_bb_into(InstanceView inst, std::span<const ItemId> candidates,
                      KpWorkspace& ws, KpSolution& sol) {
  canonical_order_into(inst, candidates, ws.order_keys, ws.order);
  solve_kp_bb_sorted_into(inst, ws.order, ws, sol);
}

void solve_kp_bb_sorted_into(InstanceView inst,
                             std::span<const ItemId> order, KpWorkspace& ws,
                             KpSolution& sol) {
  sol.clear();
  KpSearch search(inst, order, ws);
  search.run(inst.v, sol);
}

KpSolution solve_kp_bb(InstanceView inst,
                       std::span<const ItemId> candidates) {
  inst.validate();
  KpWorkspace ws;
  KpSolution sol;
  solve_kp_bb_into(inst, candidates, ws, sol);
  return sol;
}

KpSolution solve_kp_bb(InstanceView inst) {
  const auto ids = all_items(inst);
  return solve_kp_bb(inst, ids);
}

KpSolution solve_kp_dp(InstanceView inst,
                       std::span<const ItemId> candidates) {
  inst.validate();
  SKP_REQUIRE(inst.v == std::floor(inst.v), "DP requires integral v");
  const auto cap = static_cast<std::size_t>(inst.v);
  for (ItemId i : candidates) {
    const double w = inst.r[InstanceView::idx(i)];
    SKP_REQUIRE(w == std::floor(w), "DP requires integral weights, r["
                                        << i << "] = " << w);
  }
  const std::size_t n = candidates.size();
  // value[w] = best profit with capacity w considering a prefix of items;
  // keep[i][w] records the take/skip decision for reconstruction.
  std::vector<double> value(cap + 1, 0.0);
  std::vector<std::vector<char>> keep(n, std::vector<char>(cap + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const ItemId id = candidates[i];
    const auto w = static_cast<std::size_t>(inst.r[InstanceView::idx(id)]);
    const double p = inst.profit(id);
    if (w > cap) continue;
    for (std::size_t c = cap; c >= w; --c) {
      const double with = value[c - w] + p;
      if (with > value[c]) {
        value[c] = with;
        keep[i][c] = 1;
      }
      if (c == w) break;  // avoid size_t underflow
    }
  }
  KpSolution sol;
  sol.value = value[cap];
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (keep[i][c]) {
      const ItemId id = candidates[i];
      sol.items.push_back(id);
      const auto w = static_cast<std::size_t>(inst.r[InstanceView::idx(id)]);
      sol.weight += static_cast<double>(w);
      c -= w;
    }
  }
  std::sort(sol.items.begin(), sol.items.end(), [&](ItemId a, ItemId b) {
    return canonical_before(inst, a, b);
  });
  return sol;
}

KpSolution solve_kp_dp(InstanceView inst) {
  const auto ids = all_items(inst);
  return solve_kp_dp(inst, ids);
}

KpSolution greedy_kp(InstanceView inst, std::span<const ItemId> candidates) {
  inst.validate();
  KpSolution sol;
  double residual = inst.v;
  for (ItemId id : canonical_order(inst, candidates)) {
    const double w = inst.r[InstanceView::idx(id)];
    if (w <= residual) {
      sol.items.push_back(id);
      sol.value += inst.profit(id);
      sol.weight += w;
      residual -= w;
    }
  }
  return sol;
}

}  // namespace skp
