#include "core/kp_solver.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace skp {

namespace {

std::vector<ItemId> all_items(const Instance& inst) {
  std::vector<ItemId> ids(inst.n());
  std::iota(ids.begin(), ids.end(), ItemId{0});
  return ids;
}

// Recursive Horowitz–Sahni style depth-first search. Items are visited in
// canonical (profit-density descending) order; at each node the Dantzig
// bound prunes subtrees that cannot beat the incumbent.
class KpSearch {
 public:
  KpSearch(const Instance& inst, std::vector<ItemId> order)
      : inst_(inst), order_(std::move(order)) {
    chosen_.assign(order_.size(), false);
    best_chosen_ = chosen_;
  }

  KpSolution run(double capacity) {
    capacity_ = capacity;
    dfs(0, 0.0, 0.0);
    KpSolution sol;
    sol.value = best_value_;
    sol.nodes = nodes_;
    sol.pruned = pruned_;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (best_chosen_[i]) {
        sol.items.push_back(order_[i]);
        sol.weight += inst_.r[Instance::idx(order_[i])];
      }
    }
    return sol;
  }

 private:
  void dfs(std::size_t depth, double value, double weight) {
    ++nodes_;
    if (value > best_value_) {
      best_value_ = value;
      best_chosen_ = chosen_;
    }
    if (depth == order_.size()) return;
    const double residual = capacity_ - weight;
    const double bound = dantzig_bound(inst_, order_, depth, residual);
    if (value + bound <= best_value_) {
      ++pruned_;
      return;
    }
    const ItemId id = order_[depth];
    const double w = inst_.r[Instance::idx(id)];
    if (w <= residual) {  // take
      chosen_[depth] = true;
      dfs(depth + 1, value + inst_.profit(id), weight + w);
      chosen_[depth] = false;
    }
    dfs(depth + 1, value, weight);  // skip
  }

  const Instance& inst_;
  std::vector<ItemId> order_;
  std::vector<char> chosen_;
  std::vector<char> best_chosen_;
  double capacity_ = 0.0;
  double best_value_ = 0.0;
  std::uint64_t nodes_ = 0;
  std::uint64_t pruned_ = 0;
};

}  // namespace

double dantzig_bound(const Instance& inst, std::span<const ItemId> order,
                     std::size_t from, double capacity) {
  if (capacity <= 0.0) return 0.0;
  double bound = 0.0;
  double residual = capacity;
  for (std::size_t i = from; i < order.size(); ++i) {
    const ItemId id = order[i];
    const double w = inst.r[Instance::idx(id)];
    if (w <= residual) {
      bound += inst.profit(id);
      residual -= w;
    } else {
      // Fractional fill of the first item that does not fit (Eq. 7 uses
      // (v - sum r) * P_z, and profit/weight = P_z).
      bound += residual * inst.P[Instance::idx(id)];
      return bound;
    }
  }
  return bound;
}

KpSolution solve_kp_bb(const Instance& inst,
                       std::span<const ItemId> candidates) {
  inst.validate();
  KpSearch search(inst, canonical_order(inst, candidates));
  return search.run(inst.v);
}

KpSolution solve_kp_bb(const Instance& inst) {
  const auto ids = all_items(inst);
  return solve_kp_bb(inst, ids);
}

KpSolution solve_kp_dp(const Instance& inst,
                       std::span<const ItemId> candidates) {
  inst.validate();
  SKP_REQUIRE(inst.v == std::floor(inst.v), "DP requires integral v");
  const auto cap = static_cast<std::size_t>(inst.v);
  for (ItemId i : candidates) {
    const double w = inst.r[Instance::idx(i)];
    SKP_REQUIRE(w == std::floor(w), "DP requires integral weights, r["
                                        << i << "] = " << w);
  }
  const std::size_t n = candidates.size();
  // value[w] = best profit with capacity w considering a prefix of items;
  // keep[i][w] records the take/skip decision for reconstruction.
  std::vector<double> value(cap + 1, 0.0);
  std::vector<std::vector<char>> keep(n, std::vector<char>(cap + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const ItemId id = candidates[i];
    const auto w = static_cast<std::size_t>(inst.r[Instance::idx(id)]);
    const double p = inst.profit(id);
    if (w > cap) continue;
    for (std::size_t c = cap; c >= w; --c) {
      const double with = value[c - w] + p;
      if (with > value[c]) {
        value[c] = with;
        keep[i][c] = 1;
      }
      if (c == w) break;  // avoid size_t underflow
    }
  }
  KpSolution sol;
  sol.value = value[cap];
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (keep[i][c]) {
      const ItemId id = candidates[i];
      sol.items.push_back(id);
      const auto w = static_cast<std::size_t>(inst.r[Instance::idx(id)]);
      sol.weight += static_cast<double>(w);
      c -= w;
    }
  }
  std::sort(sol.items.begin(), sol.items.end(), [&](ItemId a, ItemId b) {
    return canonical_before(inst, a, b);
  });
  return sol;
}

KpSolution solve_kp_dp(const Instance& inst) {
  const auto ids = all_items(inst);
  return solve_kp_dp(inst, ids);
}

KpSolution greedy_kp(const Instance& inst,
                     std::span<const ItemId> candidates) {
  inst.validate();
  KpSolution sol;
  double residual = inst.v;
  for (ItemId id : canonical_order(inst, candidates)) {
    const double w = inst.r[Instance::idx(id)];
    if (w <= residual) {
      sol.items.push_back(id);
      sol.value += inst.profit(id);
      sol.weight += w;
      residual -= w;
    }
  }
  return sol;
}

}  // namespace skp
