// The access-time performance model (Sections 3 and 5 of the paper).
//
// Conventions:
//  * F is an ordered prefetch list; K = F without its last element z.
//    Eq. (1) requires sum(r over K) < v, i.e. only z may stretch.
//  * st(F) = max(0, sum(r over F) - v)                        (Eq. 2)
//  * Empty-cache access improvement                            (Eq. 3)
//        g*(F) = sum_{i in F} P_i r_i  -  sum_{i in N\K} P_i * st(F)
//    The penalty mass sum_{i in N\K} P_i equals
//        total_prob_mass - sum_{i in K} P_i,
//    where total_prob_mass is the probability of the *whole catalog*
//    (1.0 when the instance covers all of N). Cache-aware planning solves
//    the SKP over N \ C yet the stretch still delays every non-K outcome,
//    so the same complement form applies with the full mass.
//  * Cache-aware improvement                                   (Eq. 9)
//        g(F, D) = g*(F) - ( sum_{i in D} P_i r_i
//                            - sum_{i in C\D} P_i * st(F) )
#pragma once

#include <span>

#include "core/item.hpp"

namespace skp {

// st(F): the amount by which F's total retrieval time exceeds v (Eq. 2).
double stretch_time(InstanceView inst, std::span<const ItemId> F);

// True when F satisfies the Eq.-(1) construction: no duplicate items, and
// the retrieval times of all but the last element fit strictly within v.
// The empty list is valid (prefetch nothing).
bool is_valid_prefetch_list(InstanceView inst, std::span<const ItemId> F);

// E(T* | no prefetch) = sum_i P_i r_i (empty cache).
double expected_access_time_no_prefetch(InstanceView inst);

// E(T* | prefetch F) = P_z st(F) + sum_{i in N\F} P_i (r_i + st(F)).
double expected_access_time_prefetch(InstanceView inst,
                                     std::span<const ItemId> F);

// g*(F) per Eq. (3). `total_prob_mass` is the total catalog probability
// entering the stretch penalty (see header comment); 1.0 for a full
// catalog.
double access_improvement(InstanceView inst, std::span<const ItemId> F,
                          double total_prob_mass = 1.0);

// Theorem 3: g*(K ++ <z>) = g*(K) + delta with
//   delta = P_z r_z - (total_prob_mass - sum_{i in K} P_i) * st(K ++ <z>).
// `prob_in_K` = sum of P over K; `stretch` = st(K ++ <z>).
double theorem3_delta(InstanceView inst, ItemId z, double prob_in_K,
                      double stretch, double total_prob_mass = 1.0);

// Realized (not expected) access time of the empty-cache model, given the
// item actually requested (Figure 2 of the paper):
//   requested in K      -> 0
//   requested == z      -> st(F)
//   requested not in F  -> st(F) + r_requested
double realized_access_time(InstanceView inst, std::span<const ItemId> F,
                            ItemId requested);

// ---- Section 5: cache in play -------------------------------------------

// E(T | no prefetch, cache C) = sum_{i in N\C} P_i r_i.
double expected_access_time_no_prefetch_cached(InstanceView inst,
                                               std::span<const ItemId> C);

// Bitmap variant for hot loops: identical result (same ascending-i
// accumulation order, bit-for-bit), with C supplied as a presence bitmap
// over the whole catalog (e.g. SlotCache::presence()) so the products run
// through the SIMD masked-sum kernel instead of per-item membership
// scans. cache_presence.size() must equal inst.n().
double expected_access_time_no_prefetch_cached(
    InstanceView inst, std::span<const char> cache_presence);

// g(F, D) per Eq. (9). F must be disjoint from C; D must be a sublist of C.
double access_improvement_cached(InstanceView inst,
                                 std::span<const ItemId> F,
                                 std::span<const ItemId> D,
                                 std::span<const ItemId> C);

// Realized access time with cache: requested in K or in C\D -> 0;
// requested == z -> st(F); otherwise st(F) + r_requested.
double realized_access_time_cached(InstanceView inst,
                                   std::span<const ItemId> F,
                                   std::span<const ItemId> D,
                                   std::span<const ItemId> C,
                                   ItemId requested);

// O(1)-membership variant for per-request hot loops: identical result,
// with C supplied as a presence bitmap over the catalog (e.g.
// SlotCache::presence()) so the cost no longer scans the cache contents.
double realized_access_time_cached(InstanceView inst,
                                   std::span<const ItemId> F,
                                   std::span<const ItemId> D,
                                   std::span<const char> cache_presence,
                                   ItemId requested);

}  // namespace skp
