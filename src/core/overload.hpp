// Adaptive overload controller: graceful degradation before shedding.
//
// Modeled on envoy's gradient admission control (adaptive_concurrency /
// admission_control, per ROADMAP): sample realized per-request waiting
// time in fixed windows, hold the best (calmest) window ever seen as the
// baseline, and compare each new window against it. When the gradient
// (sample / baseline, with an additive headroom so near-zero baselines
// don't explode) crosses the degrade threshold, step DOWN one rung of
// planning effort; when it stays under the recover threshold for several
// consecutive windows, step back UP. The SKP budget knob is the control
// surface: rungs progressively shrink the lookahead candidate set, then
// the prefetch budget, then freeze plan-cache admission, then turn
// prefetching off entirely — all before any request would be shed.
//
// The controller is a pure function of the observation sequence, so a
// SimSpec still fully determines a SimResult. Callers must treat a rung
// transition as a planning-contract change: memoized plans keyed on
// cache/state fingerprints were computed against the previous rung's
// degraded rows, so every transition must bump plan-cache generations
// (and canonical-order tables) before the next plan.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace skp {

// Degradation ladder, mildest first. Each rung includes the restrictions
// of the rungs above it (TrimBudget still plans from a trimmed
// candidate set; StrictAdmission still caps the budget).
enum class DegradationRung : int {
  kNormal = 0,          // full-effort planning
  kTrimLookahead = 1,   // plan from only the top lookahead_depth candidates
  kTrimBudget = 2,      // cap the prefetch plan at budget_items fetches
  kStrictAdmission = 3, // plan caches stop admitting new entries
  kPrefetchOff = 4,     // zero the row: demand fetching only
};

inline constexpr int kDegradationRungs = 5;

const char* to_string(DegradationRung rung);

struct OverloadConfig {
  bool enabled = false;
  std::size_t window = 64;        // observations per pressure sample
  double degrade_ratio = 2.0;     // gradient >= this -> step down a rung
  double recover_ratio = 1.2;     // gradient <= this counts as calm
  std::size_t recover_windows = 3;  // consecutive calm windows to step up
  double headroom = 1.0;          // additive slack in the gradient ratio
  std::size_t lookahead_depth = 4;  // candidates kept at kTrimLookahead
  std::size_t budget_items = 1;     // fetches allowed at kTrimBudget

  bool operator==(const OverloadConfig&) const = default;
};

void validate_overload_config(const OverloadConfig& cfg);

struct OverloadStats {
  std::uint64_t transitions = 0;       // rung changes, both directions
  // Subset of `transitions` commanded externally via force_step_down()
  // (the skpd daemon's slow-reader backpressure) rather than by the
  // gradient watching realized waiting times.
  std::uint64_t forced_transitions = 0;
  int max_rung = 0;                    // deepest rung reached
  std::uint64_t degraded_requests = 0; // observations taken at rung > 0
  // Time-in-rung, measured in observations (requests) spent at each rung.
  std::array<std::uint64_t, kDegradationRungs> requests_at_rung{};

  void merge(const OverloadStats& other);
  bool operator==(const OverloadStats&) const = default;
};

class OverloadController {
 public:
  OverloadController() = default;
  explicit OverloadController(const OverloadConfig& cfg);

  bool enabled() const noexcept { return cfg_.enabled; }
  DegradationRung rung() const noexcept { return rung_; }
  const OverloadStats& stats() const noexcept { return stats_; }
  // Calm-window baseline; negative until the first window closes.
  double baseline() const noexcept { return baseline_; }

  // Feeds one realized waiting-time observation. Returns true when the
  // rung changed — the caller must then invalidate plan memoization
  // (generation bumps + canonical-order tables) and refresh any frozen-
  // admission flag before planning again.
  bool observe(double waiting);

  // External-pressure hook: descend one rung NOW, regardless of the
  // gradient (and regardless of `enabled` — this is an imperative command
  // from outside the waiting-time loop, e.g. the skpd daemon degrading a
  // session whose connection write queue is backing up). Returns true
  // when the rung changed; the caller owes the same plan-memoization
  // invalidation observe() demands. A disabled controller never recovers
  // from a forced rung (observe() is inert), matching the daemon's
  // escalation ladder: degrade, then evict.
  bool force_step_down();

  // Applies the current rung's planning restriction to a probability row
  // in place: keep the top-k probabilities (ties broken by lower item
  // id), zero the rest; at kPrefetchOff zero everything. A zeroed row
  // makes the planner fetch nothing — the same mechanism warmup uses —
  // so no solver or engine change is needed. No-op at kNormal.
  void degrade_row(std::span<double> row);

 private:
  OverloadConfig cfg_{};
  DegradationRung rung_ = DegradationRung::kNormal;
  double window_sum_ = 0.0;
  std::size_t window_count_ = 0;
  double baseline_ = -1.0;  // < 0 until the first window closes
  std::size_t calm_streak_ = 0;
  OverloadStats stats_;
  // degrade_row scratch (kept across calls; the request path stays
  // allocation-free once the top-k capacity is reached).
  std::vector<std::size_t> keep_;
  std::vector<double> kept_values_;
};

}  // namespace skp
