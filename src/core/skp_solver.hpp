// Exact solver for the Stretch Knapsack Problem (Section 4 of the paper).
//
// The SKP asks for the ordered prefetch list F maximizing the access
// improvement g*(F) of Eq. (3). Unlike the 0/1 knapsack, the capacity
// (viewing time v) may be exceeded by the *last* inserted item at a cost of
// (penalty mass) * st(F). Theorem 1 restricts the search to lists sorted in
// the canonical order of Eq. (5); Theorem 2 supplies the Dantzig-style
// upper bound of Eq. (7); Theorem 3 gives the incremental delta used during
// the Horowitz–Sahni style depth-first search of the paper's Figure 3.
//
// Delta accounting (DESIGN.md, D1): the paper's Figure 3 computes the
// stretch penalty with the *tail* probability sum_{i=j..n} P_i, which
// silently drops items excluded earlier in the search; Eq. (3)/Theorem 3
// require the complement total_mass - sum_{i in K} P_i. Both rules are
// implemented:
//   * DeltaRule::ExactComplement — consistent with Eq. (3); property tests
//     show it matches exhaustive search.
//   * DeltaRule::PaperTail — faithful to the Figure-3 listing; can
//     overestimate g and occasionally return a suboptimal list (the
//     ablation bench quantifies how often).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/item.hpp"

namespace skp {

enum class DeltaRule {
  ExactComplement,  // penalty = total_prob_mass - sum_{i in K} P_i
  PaperTail,        // penalty = sum_{i=j..n} P_i   (Figure 3, verbatim)
};

struct SkpOptions {
  DeltaRule delta_rule = DeltaRule::ExactComplement;
  // Probability mass paying the stretch penalty when nothing is selected.
  // 1.0 for a full catalog; cache-aware planning keeps 1.0 as well because
  // the stretch delays every outcome outside K (Section 5).
  double total_prob_mass = 1.0;
  // Safety valve for adversarial instances; 0 = unlimited.
  std::uint64_t max_nodes = 0;
};

struct SkpSolution {
  // Optimal prefetch list in canonical order; last element is z.
  PrefetchList F;
  // g*(F) under the solver's accounting rule. For ExactComplement this
  // equals access_improvement(inst, F, total_prob_mass).
  double g = 0.0;
  // st(F) of the returned list.
  double stretch = 0.0;
  // Search statistics.
  std::uint64_t forward_steps = 0;   // item insertions attempted
  std::uint64_t backtracks = 0;      // step-5 moves
  std::uint64_t bound_prunes = 0;    // subtrees cut by Eq. (7)
  bool node_limit_hit = false;

  // Resets to the empty solution, keeping `F`'s capacity (hot-path reuse).
  void clear();
};

// One backtracking move of the Figure-3 search: storing delta (instead of
// recomputing it, which the paper does) reverses g-hat without
// floating-point drift.
struct SkpMove {
  std::size_t index;
  double delta;
  double r;
  double P;
};

// Reusable buffers for solve_skp_into: one per sim loop / thread,
// allocated once and grown on demand.
struct SkpWorkspace {
  std::vector<ItemId> order;
  std::vector<CanonKey> order_keys;
  std::vector<double> suffix_prob;
  std::vector<char> selected;
  std::vector<char> best_selected;
  std::vector<SkpMove> stack;
};

// Solves the SKP over `candidates` (item ids into `inst`). Items with
// P_i == 0 can never enter an optimal list and may be pre-filtered by the
// caller; the solver handles them correctly either way.
SkpSolution solve_skp(InstanceView inst, std::span<const ItemId> candidates,
                      const SkpOptions& opts = {});

// Convenience: solve over the full catalog.
SkpSolution solve_skp(InstanceView inst, const SkpOptions& opts = {});

// Allocation-free solve: working memory comes from `ws`, the result is
// written into `sol` (cleared first, capacity reused). The caller must
// have validated `inst`. Bit-identical to solve_skp.
void solve_skp_into(InstanceView inst, std::span<const ItemId> candidates,
                    const SkpOptions& opts, SkpWorkspace& ws,
                    SkpSolution& sol);

// Presorted solve: `order` must already be the canonical (Eq. 5) order
// of the candidate set — e.g. a precomputed CanonicalOrderTable row
// filtered against the cache — so the per-solve sort is skipped.
// `suffix_prob`, when non-empty, must hold the Figure-3 tail sums over
// `order` (size order.size() + 1, trailing 0 sentinel) and is borrowed
// instead of rebuilt; it is only consulted by DeltaRule::PaperTail.
// Bit-identical to solve_skp_into over the same candidate set.
void solve_skp_sorted_into(InstanceView inst, std::span<const ItemId> order,
                           const SkpOptions& opts, SkpWorkspace& ws,
                           SkpSolution& sol,
                           std::span<const double> suffix_prob = {});

// One lane of a batched solve: an instance plus the solution slot to
// fill. All lanes of one batch share a single canonical order (and thus a
// single candidate set); they may differ in v (e.g. lockstep cache-size
// sweeps) and in r only where it does not disturb the shared order.
struct SkpBatchItem {
  InstanceView inst;
  SkpSolution* sol;
};

// Batched presorted solve: runs every lane over ONE canonical `order`
// with ONE Figure-3 suffix-sum build amortized across the batch (the tail
// sums depend only on P over `order`, which all lanes share by the batch
// contract: every lane's P must agree with items[0]'s over `order`).
// Each lane is bit-identical to solve_skp_sorted_into on that lane alone
// — the batch changes where setup work happens, never the search
// (tests/test_simd.cpp pins batch-vs-loop equality).
void solve_skp_batch_into(std::span<const SkpBatchItem> items,
                          std::span<const ItemId> order,
                          const SkpOptions& opts, SkpWorkspace& ws);

// The root upper bound U_g* of Eq. (7): Dantzig bound of the LP relaxation
// (Theorem 2). Every feasible g*(F) is <= this value.
double skp_upper_bound(InstanceView inst);
double skp_upper_bound(InstanceView inst,
                       std::span<const ItemId> candidates);

}  // namespace skp
