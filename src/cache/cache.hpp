// Slot cache with equal item sizes (the Section-5 assumption, DESIGN.md D6).
//
// The cache stores item ids; capacity counts items. Membership queries are
// O(1) via a presence bitmap; the content list is maintained in insertion
// order so iteration is deterministic. Eviction decisions are made by the
// caller (arbitration / replacement policies) — the cache itself only
// enforces capacity and uniqueness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/item.hpp"

namespace skp {

class SlotCache {
 public:
  // `catalog_size` bounds valid item ids; `capacity` >= 1 slots.
  SlotCache(std::size_t catalog_size, std::size_t capacity);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return contents_.size(); }
  bool full() const noexcept { return contents_.size() == capacity_; }
  bool empty() const noexcept { return contents_.empty(); }
  bool contains(ItemId item) const;

  // Inserts an item that must not already be cached; throws when full
  // (evict first) or duplicated.
  void insert(ItemId item);

  // Removes a cached item; throws if absent.
  void erase(ItemId item);

  // Replaces `victim` with `incoming` in one step.
  void replace(ItemId victim, ItemId incoming);

  // Current contents in insertion order (stable across erase via swap-free
  // compaction — order of survivors is preserved).
  std::span<const ItemId> contents() const noexcept { return contents_; }

  void clear();

 private:
  void check_id(ItemId item) const;

  std::size_t capacity_;
  std::vector<ItemId> contents_;
  std::vector<char> present_;
};

}  // namespace skp
