// Slot cache with equal item sizes (the Section-5 assumption, DESIGN.md D6).
//
// The cache stores item ids; capacity counts items. Membership queries are
// O(1) via a presence bitmap; the content list is maintained in insertion
// order so iteration is deterministic. Eviction decisions are made by the
// caller (arbitration / replacement policies) — the cache itself only
// enforces capacity and uniqueness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "cache/zobrist.hpp"
#include "core/item.hpp"

namespace skp {

class SlotCache {
 public:
  // `catalog_size` bounds valid item ids; `capacity` >= 1 slots.
  SlotCache(std::size_t catalog_size, std::size_t capacity);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return contents_.size(); }
  bool full() const noexcept { return contents_.size() == capacity_; }
  bool empty() const noexcept { return contents_.empty(); }

  // Inline: the candidate filter probes this once per catalog item per
  // planning round.
  bool contains(ItemId item) const {
    check_id(item);
    return present_[static_cast<std::size_t>(item)] != 0;
  }

  // Raw presence bitmap (indexed by item id over the whole catalog) for
  // bulk membership scans that bounds-check once instead of per probe.
  std::span<const char> presence() const noexcept { return present_; }

  // Zobrist fingerprint of the current content set (cache/zobrist.hpp):
  // XOR of the per-item keys, maintained in O(1) per mutation, equal for
  // equal sets regardless of insertion order (0 when empty). Keys the
  // cross-request plan memoization.
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  // Inserts an item that must not already be cached; throws when full
  // (evict first) or duplicated. Inline (with erase/replace below): the
  // sim loops mutate the cache tens of millions of times per sweep.
  void insert(ItemId item) {
    check_id(item);
    SKP_REQUIRE(!contains(item), "item " << item << " already cached");
    SKP_REQUIRE(contents_.size() < capacity_,
                "cache full (capacity " << capacity_ << "); evict first");
    pos_[static_cast<std::size_t>(item)] =
        static_cast<std::uint32_t>(contents_.size());
    contents_.push_back(item);
    sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), item),
                   item);
    present_[static_cast<std::size_t>(item)] = 1;
    fingerprint_ ^= zobrist_item_key(item);
  }

  // Removes a cached item; throws if absent.
  void erase(ItemId item) {
    check_id(item);
    SKP_REQUIRE(contains(item), "item " << item << " not cached");
    // O(1) position lookup; one fused pass shifts the tail down and
    // reindexes it, keeping the documented insertion-order iteration for
    // the survivors.
    const std::size_t at = pos_[static_cast<std::size_t>(item)];
    for (std::size_t k = at + 1; k < contents_.size(); ++k) {
      const ItemId moved = contents_[k];
      contents_[k - 1] = moved;
      pos_[static_cast<std::size_t>(moved)] =
          static_cast<std::uint32_t>(k - 1);
    }
    contents_.pop_back();
    sorted_.erase(std::lower_bound(sorted_.begin(), sorted_.end(), item));
    present_[static_cast<std::size_t>(item)] = 0;
    fingerprint_ ^= zobrist_item_key(item);
  }

  // Replaces `victim` with `incoming` in one step.
  void replace(ItemId victim, ItemId incoming) {
    erase(victim);
    insert(incoming);
  }

  // Current contents in insertion order (stable across erase via swap-free
  // compaction — order of survivors is preserved).
  std::span<const ItemId> contents() const noexcept { return contents_; }

  // Current contents in ascending id order (maintained incrementally;
  // O(size) memmove per mutation). The Figure-6 victim fast path walks
  // this to yield zero-Pr victims in their exact arbitration order.
  std::span<const ItemId> sorted_contents() const noexcept {
    return sorted_;
  }

  void clear();

 private:
  void check_id(ItemId item) const {
    SKP_REQUIRE(
        item >= 0 && static_cast<std::size_t>(item) < present_.size(),
        "item " << item << " outside catalog of " << present_.size());
  }

  std::size_t capacity_;
  std::vector<ItemId> contents_;
  std::vector<ItemId> sorted_;  // same set, ascending id
  std::vector<char> present_;
  std::uint64_t fingerprint_ = 0;
  // item -> index in contents_ (meaningful only while present_); turns
  // erase's membership scan into an O(1) lookup.
  std::vector<std::uint32_t> pos_;
};

}  // namespace skp
