#include "cache/sized_cache.hpp"

#include <algorithm>

#include "cache/zobrist.hpp"

namespace skp {

SizedCache::SizedCache(std::vector<double> sizes, double capacity)
    : sizes_(std::move(sizes)),
      capacity_(capacity),
      present_(sizes_.size(), 0) {
  SKP_REQUIRE(!sizes_.empty(), "SizedCache over empty catalog");
  SKP_REQUIRE(capacity > 0.0, "capacity must be positive");
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    SKP_REQUIRE(sizes_[i] > 0.0, "size[" << i << "] = " << sizes_[i]);
  }
}

void SizedCache::check_id(ItemId item) const {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < sizes_.size(),
              "item " << item << " outside catalog");
}

double SizedCache::size_of(ItemId item) const {
  check_id(item);
  return sizes_[static_cast<std::size_t>(item)];
}

bool SizedCache::contains(ItemId item) const {
  check_id(item);
  return present_[static_cast<std::size_t>(item)] != 0;
}

void SizedCache::insert(ItemId item) {
  check_id(item);
  SKP_REQUIRE(!contains(item), "item " << item << " already cached");
  SKP_REQUIRE(cacheable(item),
              "item " << item << " larger than the whole cache");
  SKP_REQUIRE(fits(item), "item " << item << " does not fit; evict first");
  contents_.push_back(item);
  present_[static_cast<std::size_t>(item)] = 1;
  used_ += size_of(item);
  fingerprint_ ^= zobrist_item_key(item);
}

void SizedCache::erase(ItemId item) {
  check_id(item);
  SKP_REQUIRE(contains(item), "item " << item << " not cached");
  contents_.erase(std::find(contents_.begin(), contents_.end(), item));
  present_[static_cast<std::size_t>(item)] = 0;
  used_ -= size_of(item);
  if (used_ < 0.0) used_ = 0.0;  // fp dust
  fingerprint_ ^= zobrist_item_key(item);
}

void SizedCache::clear() {
  contents_.clear();
  std::fill(present_.begin(), present_.end(), 0);
  used_ = 0.0;
  fingerprint_ = 0;
}

}  // namespace skp
