// Zobrist fingerprinting of cache contents.
//
// Each item id owns a fixed pseudo-random 64-bit key; a cache's
// fingerprint is the XOR of the keys of its current contents. XOR is its
// own inverse and commutes, so the fingerprint is maintained in O(1) per
// insert/erase and depends only on the content *set*, never on insertion
// order. Two caches over the same catalog holding the same set therefore
// compare equal by a single 64-bit comparison — this is what keys the
// cross-request plan memoization (core/plan_cache.hpp): "same cache
// contents" becomes part of a hash-map key instead of a set comparison.
//
// Keys come from SplitMix64 over the item id (a counter through a
// bijective 64-bit mixer — the construction SplitMix64 was designed
// for), so they are deterministic across runs, platforms, and cache
// instances; no per-cache key table is stored. Distinct content sets
// collide with probability ~2^-64 per pair (the standard Zobrist
// argument); tests/test_cache_fuzz.cpp smoke-checks this over thousands
// of random sets.
#pragma once

#include <cstdint>

#include "core/item.hpp"
#include "util/rng.hpp"

namespace skp {

// The per-item Zobrist key. Pure function of the id: every cache over a
// catalog shares the same keys, so fingerprints are comparable across
// cache instances (e.g. a scratch copy and the live cache).
inline std::uint64_t zobrist_item_key(ItemId item) noexcept {
  SplitMix64 sm(0x5a0bc0ffee5eed00ULL ^
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(item)));
  return sm.next();
}

}  // namespace skp
