// Byte-addressed cache for heterogeneous item sizes (extension).
//
// The paper's Section 5 assumes equal item sizes ("We are currently
// addressing this limitation"); this substrate lifts the assumption. The
// cache tracks per-item sizes and a byte capacity; the size-aware
// arbitration in core/prefetch_engine (plan_with_sized_cache) generalizes
// Pr-arbitration to evict by Pr *density* (P·r per byte) until the
// incoming item fits, admitting it only if its Pr value beats the sum it
// displaces.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/item.hpp"

namespace skp {

class SizedCache {
 public:
  // `sizes[i]` is the size of item i (> 0); `capacity` is in the same
  // unit.
  SizedCache(std::vector<double> sizes, double capacity);

  double capacity() const noexcept { return capacity_; }
  double used() const noexcept { return used_; }
  double free_space() const noexcept { return capacity_ - used_; }
  std::size_t count() const noexcept { return contents_.size(); }
  bool empty() const noexcept { return contents_.empty(); }
  // Number of items in the catalog (valid ids are [0, catalog_size)).
  std::size_t catalog_size() const noexcept { return sizes_.size(); }

  double size_of(ItemId item) const;
  bool contains(ItemId item) const;
  // True when `item` could ever be cached (size <= capacity).
  bool cacheable(ItemId item) const { return size_of(item) <= capacity_; }
  // True when `item` fits right now without eviction.
  bool fits(ItemId item) const {
    return size_of(item) <= free_space() + 1e-12;
  }

  // Inserts; throws if present, oversized for the free space, or
  // uncacheable.
  void insert(ItemId item);
  void erase(ItemId item);
  void clear();

  std::span<const ItemId> contents() const noexcept { return contents_; }

  // Raw presence bitmap over the catalog, as SlotCache::presence().
  std::span<const char> presence() const noexcept { return present_; }

  // Zobrist fingerprint of the current content set (cache/zobrist.hpp):
  // same contract as SlotCache::fingerprint — O(1) per mutation,
  // order-independent, 0 when empty.
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

 private:
  void check_id(ItemId item) const;

  std::vector<double> sizes_;
  double capacity_;
  double used_ = 0.0;
  std::vector<ItemId> contents_;
  std::vector<char> present_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace skp
