#include "cache/replacement.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace skp {

namespace {

// LRU / FIFO share a timestamp table; LRU refreshes on access, FIFO only
// on insert.
class StampPolicy : public ReplacementPolicy {
 public:
  StampPolicy(bool refresh_on_access, std::string name)
      : refresh_on_access_(refresh_on_access), name_(std::move(name)) {}

  void on_access(ItemId item) override {
    if (refresh_on_access_) stamp_[item] = ++clock_;
  }
  void on_insert(ItemId item) override { stamp_[item] = ++clock_; }
  void on_evict(ItemId item) override { stamp_.erase(item); }

  ItemId choose_victim(const SlotCache& cache) override {
    SKP_REQUIRE(!cache.empty(), "choose_victim on empty cache");
    ItemId victim = kNoItem;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (ItemId i : cache.contents()) {
      const auto it = stamp_.find(i);
      const std::uint64_t s = it == stamp_.end() ? 0 : it->second;
      if (s < oldest || (s == oldest && i < victim)) {
        oldest = s;
        victim = i;
      }
    }
    return victim;
  }
  std::string name() const override { return name_; }

 private:
  bool refresh_on_access_;
  std::string name_;
  std::unordered_map<ItemId, std::uint64_t> stamp_;
  std::uint64_t clock_ = 0;
};

class LfuPolicy : public ReplacementPolicy {
 public:
  void on_access(ItemId item) override { ++count_[item]; }
  void on_insert(ItemId) override {}
  void on_evict(ItemId) override {}  // counts persist (perfect LFU)

  ItemId choose_victim(const SlotCache& cache) override {
    SKP_REQUIRE(!cache.empty(), "choose_victim on empty cache");
    ItemId victim = kNoItem;
    std::uint64_t least = std::numeric_limits<std::uint64_t>::max();
    for (ItemId i : cache.contents()) {
      const auto it = count_.find(i);
      const std::uint64_t c = it == count_.end() ? 0 : it->second;
      if (c < least || (c == least && i < victim)) {
        least = c;
        victim = i;
      }
    }
    return victim;
  }
  std::string name() const override { return "LFU"; }

 private:
  std::unordered_map<ItemId, std::uint64_t> count_;
};

class RandomPolicy : public ReplacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  void on_access(ItemId) override {}
  void on_insert(ItemId) override {}
  void on_evict(ItemId) override {}
  ItemId choose_victim(const SlotCache& cache) override {
    SKP_REQUIRE(!cache.empty(), "choose_victim on empty cache");
    const auto c = cache.contents();
    return c[static_cast<std::size_t>(rng_.next_below(c.size()))];
  }
  std::string name() const override { return "Random"; }

 private:
  Rng rng_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_lru() {
  return std::make_unique<StampPolicy>(true, "LRU");
}
std::unique_ptr<ReplacementPolicy> make_fifo() {
  return std::make_unique<StampPolicy>(false, "FIFO");
}
std::unique_ptr<ReplacementPolicy> make_lfu() {
  return std::make_unique<LfuPolicy>();
}
std::unique_ptr<ReplacementPolicy> make_random(std::uint64_t seed) {
  return std::make_unique<RandomPolicy>(seed);
}

bool access_with_policy(SlotCache& cache, ReplacementPolicy& policy,
                        ItemId item) {
  policy.on_access(item);
  if (cache.contains(item)) return true;
  if (cache.full()) {
    const ItemId victim = policy.choose_victim(cache);
    cache.erase(victim);
    policy.on_evict(victim);
  }
  cache.insert(item);
  policy.on_insert(item);
  return false;
}

}  // namespace skp
