// Classical replacement policies (LRU, LFU, FIFO, Random).
//
// These are *not* part of the paper's algorithm (which uses Pr/DS
// arbitration, src/core/arbitration.hpp); they serve as additional
// baselines in the extension benches and examples, and as independent
// cache-substrate exercisers in the tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/cache.hpp"
#include "util/rng.hpp"

namespace skp {

// Stateful victim chooser layered over a SlotCache. Implementations observe
// accesses/insertions and answer "whom do I evict?".
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  // Called on every access (hit or about-to-be-inserted item).
  virtual void on_access(ItemId item) = 0;
  // Called when `item` enters the cache.
  virtual void on_insert(ItemId item) = 0;
  // Called when `item` leaves the cache.
  virtual void on_evict(ItemId item) = 0;
  // Chooses a victim among the current cache contents; cache is non-empty.
  virtual ItemId choose_victim(const SlotCache& cache) = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<ReplacementPolicy> make_lru();
std::unique_ptr<ReplacementPolicy> make_fifo();
std::unique_ptr<ReplacementPolicy> make_lfu();
std::unique_ptr<ReplacementPolicy> make_random(std::uint64_t seed);

// Convenience driver: ensures `item` is cached, evicting via `policy` when
// needed. Returns true on a hit (item was already cached).
bool access_with_policy(SlotCache& cache, ReplacementPolicy& policy,
                        ItemId item);

}  // namespace skp
