#include "cache/freq_tracker.hpp"

namespace skp {

FreqTracker::FreqTracker(std::size_t n, double decay,
                         std::uint64_t decay_interval)
    : counts_(n, 0.0), decay_(decay), decay_interval_(decay_interval) {
  SKP_REQUIRE(n > 0, "FreqTracker over empty catalog");
  SKP_REQUIRE(decay > 0.0 && decay <= 1.0, "decay = " << decay);
  SKP_REQUIRE(decay_interval > 0, "decay_interval must be positive");
}

void FreqTracker::reset() {
  counts_.assign(counts_.size(), 0.0);
  since_decay_ = 0;
  total_ = 0;
}

}  // namespace skp
