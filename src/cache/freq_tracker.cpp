#include "cache/freq_tracker.hpp"

namespace skp {

FreqTracker::FreqTracker(std::size_t n, double decay,
                         std::uint64_t decay_interval)
    : counts_(n, 0.0), decay_(decay), decay_interval_(decay_interval) {
  SKP_REQUIRE(n > 0, "FreqTracker over empty catalog");
  SKP_REQUIRE(decay > 0.0 && decay <= 1.0, "decay = " << decay);
  SKP_REQUIRE(decay_interval > 0, "decay_interval must be positive");
}

void FreqTracker::record(ItemId item) {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < counts_.size(),
              "item " << item << " out of range");
  counts_[static_cast<std::size_t>(item)] += 1.0;
  ++total_;
  if (decay_ < 1.0 && ++since_decay_ >= decay_interval_) {
    since_decay_ = 0;
    for (auto& c : counts_) c *= decay_;
  }
}

double FreqTracker::frequency(ItemId item) const {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < counts_.size(),
              "item " << item << " out of range");
  return counts_[static_cast<std::size_t>(item)];
}

double FreqTracker::delay_saving_profit(ItemId item,
                                        double retrieval_time) const {
  return frequency(item) * retrieval_time;
}

void FreqTracker::reset() {
  counts_.assign(counts_.size(), 0.0);
  since_decay_ = 0;
  total_ = 0;
}

}  // namespace skp
