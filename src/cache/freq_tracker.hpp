// Access-frequency bookkeeping for sub-arbitration (Section 5.2).
//
// The paper's DS-arbitration scores cached items by the "delay-saving
// profit" freq_i * r_i (a simplified WATCHMAN metric); LFU sub-arbitration
// uses freq_i alone. The tracker also supports exponential decay so
// long-running deployments can age out stale popularity (an extension
// beyond the paper; decay factor 1.0 reproduces the paper's plain counts).
#pragma once

#include <cstdint>
#include <vector>

#include "core/item.hpp"

namespace skp {

class FreqTracker {
 public:
  // Tracks items 0..n-1. decay in (0, 1]: counts are multiplied by `decay`
  // every `decay_interval` recorded accesses (1.0 = paper behaviour).
  explicit FreqTracker(std::size_t n, double decay = 1.0,
                       std::uint64_t decay_interval = 1000);

  std::size_t n() const noexcept { return counts_.size(); }

  // Records one access to `item`.
  void record(ItemId item);

  // Access count (possibly decayed) of `item`.
  double frequency(ItemId item) const;

  // Delay-saving profit freq_i * r_i with retrieval time supplied by the
  // caller (the tracker does not own resource parameters).
  double delay_saving_profit(ItemId item, double retrieval_time) const;

  std::uint64_t total_accesses() const noexcept { return total_; }

  void reset();

 private:
  std::vector<double> counts_;
  double decay_;
  std::uint64_t decay_interval_;
  std::uint64_t since_decay_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace skp
