// Access-frequency bookkeeping for sub-arbitration (Section 5.2).
//
// The paper's DS-arbitration scores cached items by the "delay-saving
// profit" freq_i * r_i (a simplified WATCHMAN metric); LFU sub-arbitration
// uses freq_i alone. The tracker also supports exponential decay so
// long-running deployments can age out stale popularity (an extension
// beyond the paper; decay factor 1.0 reproduces the paper's plain counts).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/item.hpp"

namespace skp {

class FreqTracker {
 public:
  // Tracks items 0..n-1. decay in (0, 1]: counts are multiplied by `decay`
  // every `decay_interval` recorded accesses (1.0 = paper behaviour).
  explicit FreqTracker(std::size_t n, double decay = 1.0,
                       std::uint64_t decay_interval = 1000);

  std::size_t n() const noexcept { return counts_.size(); }

  // Records one access to `item`. Inline: the sim loops record every
  // request, and the LFU/DS victim-ranking path reads scores hundreds of
  // millions of times per sweep — keeping these in the header removes a
  // cross-TU call per touch.
  void record(ItemId item) {
    SKP_REQUIRE(
        item >= 0 && static_cast<std::size_t>(item) < counts_.size(),
        "item " << item << " out of range");
    counts_[static_cast<std::size_t>(item)] += 1.0;
    ++total_;
    if (decay_ < 1.0 && ++since_decay_ >= decay_interval_) {
      since_decay_ = 0;
      for (auto& c : counts_) c *= decay_;
    }
  }

  // Access count (possibly decayed) of `item`.
  double frequency(ItemId item) const {
    SKP_REQUIRE(
        item >= 0 && static_cast<std::size_t>(item) < counts_.size(),
        "item " << item << " out of range");
    return counts_[static_cast<std::size_t>(item)];
  }

  // Delay-saving profit freq_i * r_i with retrieval time supplied by the
  // caller (the tracker does not own resource parameters).
  double delay_saving_profit(ItemId item, double retrieval_time) const {
    return frequency(item) * retrieval_time;
  }

  // Raw count row (indexed by item id), for bulk SIMD gathers over many
  // items at once (util/simd.hpp): counts()[i] == frequency(i).
  std::span<const double> counts() const noexcept { return counts_; }

  std::uint64_t total_accesses() const noexcept { return total_; }

  void reset();

 private:
  std::vector<double> counts_;
  double decay_;
  std::uint64_t decay_interval_;
  std::uint64_t since_decay_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace skp
