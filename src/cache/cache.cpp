#include "cache/cache.hpp"

namespace skp {

SlotCache::SlotCache(std::size_t catalog_size, std::size_t capacity)
    : capacity_(capacity), present_(catalog_size, 0), pos_(catalog_size, 0) {
  SKP_REQUIRE(catalog_size > 0, "catalog_size must be positive");
  SKP_REQUIRE(capacity >= 1, "capacity must be >= 1");
  contents_.reserve(capacity);
  sorted_.reserve(capacity);
}

void SlotCache::clear() {
  contents_.clear();
  sorted_.clear();
  std::fill(present_.begin(), present_.end(), 0);
  fingerprint_ = 0;
}

}  // namespace skp
