#include "cache/cache.hpp"

#include <algorithm>

namespace skp {

SlotCache::SlotCache(std::size_t catalog_size, std::size_t capacity)
    : capacity_(capacity), present_(catalog_size, 0) {
  SKP_REQUIRE(catalog_size > 0, "catalog_size must be positive");
  SKP_REQUIRE(capacity >= 1, "capacity must be >= 1");
  contents_.reserve(capacity);
}

void SlotCache::check_id(ItemId item) const {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < present_.size(),
              "item " << item << " outside catalog of " << present_.size());
}

bool SlotCache::contains(ItemId item) const {
  check_id(item);
  return present_[static_cast<std::size_t>(item)] != 0;
}

void SlotCache::insert(ItemId item) {
  check_id(item);
  SKP_REQUIRE(!contains(item), "item " << item << " already cached");
  SKP_REQUIRE(contents_.size() < capacity_,
              "cache full (capacity " << capacity_ << "); evict first");
  contents_.push_back(item);
  present_[static_cast<std::size_t>(item)] = 1;
}

void SlotCache::erase(ItemId item) {
  check_id(item);
  SKP_REQUIRE(contains(item), "item " << item << " not cached");
  auto it = std::find(contents_.begin(), contents_.end(), item);
  contents_.erase(it);
  present_[static_cast<std::size_t>(item)] = 0;
}

void SlotCache::replace(ItemId victim, ItemId incoming) {
  erase(victim);
  insert(incoming);
}

void SlotCache::clear() {
  contents_.clear();
  std::fill(present_.begin(), present_.end(), 0);
}

}  // namespace skp
