#include "cache/cache.hpp"

#include <algorithm>

#include "cache/zobrist.hpp"

namespace skp {

SlotCache::SlotCache(std::size_t catalog_size, std::size_t capacity)
    : capacity_(capacity), present_(catalog_size, 0), pos_(catalog_size, 0) {
  SKP_REQUIRE(catalog_size > 0, "catalog_size must be positive");
  SKP_REQUIRE(capacity >= 1, "capacity must be >= 1");
  contents_.reserve(capacity);
  sorted_.reserve(capacity);
}

void SlotCache::insert(ItemId item) {
  check_id(item);
  SKP_REQUIRE(!contains(item), "item " << item << " already cached");
  SKP_REQUIRE(contents_.size() < capacity_,
              "cache full (capacity " << capacity_ << "); evict first");
  pos_[static_cast<std::size_t>(item)] =
      static_cast<std::uint32_t>(contents_.size());
  contents_.push_back(item);
  sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), item),
                 item);
  present_[static_cast<std::size_t>(item)] = 1;
  fingerprint_ ^= zobrist_item_key(item);
}

void SlotCache::erase(ItemId item) {
  check_id(item);
  SKP_REQUIRE(contains(item), "item " << item << " not cached");
  // O(1) position lookup; the tail shift keeps the documented
  // insertion-order iteration for the survivors.
  const std::size_t at = pos_[static_cast<std::size_t>(item)];
  contents_.erase(contents_.begin() + static_cast<std::ptrdiff_t>(at));
  for (std::size_t k = at; k < contents_.size(); ++k) {
    pos_[static_cast<std::size_t>(contents_[k])] =
        static_cast<std::uint32_t>(k);
  }
  sorted_.erase(std::lower_bound(sorted_.begin(), sorted_.end(), item));
  present_[static_cast<std::size_t>(item)] = 0;
  fingerprint_ ^= zobrist_item_key(item);
}

void SlotCache::replace(ItemId victim, ItemId incoming) {
  erase(victim);
  insert(incoming);
}

void SlotCache::clear() {
  contents_.clear();
  sorted_.clear();
  std::fill(present_.begin(), present_.end(), 0);
  fingerprint_ = 0;
}

}  // namespace skp
