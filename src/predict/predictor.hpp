// Access predictors — the "access model" the paper presupposes.
//
// The paper's performance model consumes next-access probabilities P_i from
// some external access model (its Section 1.1 surveys candidates). The
// simulators can run with the oracle P (the paper's setting) or with one of
// these learned predictors (the Section-6 "further work" integration):
//   * MarkovPredictor    — first-order transition counts with Laplace
//                          smoothing (cf. Padmanabhan & Mogul's dependency
//                          graph restricted to window 1).
//   * PpmPredictor       — order-k prediction by partial matching with
//                          escape blending (cf. Vitter & Krishnan's
//                          compression-based predictors).
//   * DependencyGraph    — lookahead-window co-occurrence counts
//                          (Padmanabhan & Mogul).
#pragma once

#include <vector>

#include "core/item.hpp"

namespace skp {

class Predictor {
 public:
  virtual ~Predictor() = default;

  // Observes one request (in stream order).
  virtual void observe(ItemId item) = 0;

  // Writes the predicted next-access distribution over the catalog (given
  // everything observed so far) into `out`, resized to n_items(). Always a
  // proper distribution (sums to 1). This is the primitive: it reuses the
  // caller's buffer, so the sim hot loops predict once per request without
  // touching the allocator.
  virtual void predict_into(std::vector<double>& out) const = 0;

  // Convenience wrapper returning a fresh vector.
  std::vector<double> predict() const {
    std::vector<double> out;
    predict_into(out);
    return out;
  }

  // Catalog size.
  virtual std::size_t n_items() const = 0;

  virtual void reset() = 0;
};

}  // namespace skp
