// Dependency-graph predictor (Padmanabhan & Mogul, SIGCOMM CCR 1996).
//
// The server-side web-prefetching scheme the paper cites as related work
// [9]: a node per item, an arc a -> b weighted by how often b was accessed
// within a lookahead window of w requests after a. The predicted P for the
// next access is the normalized arc weight out of the current item.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "predict/predictor.hpp"

namespace skp {

class DependencyGraph final : public Predictor {
 public:
  // `window` = the lookahead window w (>= 1). window == 1 degenerates to a
  // first-order Markov predictor without smoothing.
  DependencyGraph(std::size_t n, std::size_t window = 4);

  void observe(ItemId item) override;
  void predict_into(std::vector<double>& out) const override;
  std::size_t n_items() const override { return n_; }
  void reset() override;

  // Arc weight a -> b (diagnostics).
  std::uint64_t arc(ItemId a, ItemId b) const;
  // Probability attached to arc a -> b (weight / accesses of a).
  double arc_probability(ItemId a, ItemId b) const;

 private:
  std::size_t n_;
  std::size_t window_;
  std::vector<std::vector<std::uint64_t>> weight_;  // [from][to]
  std::vector<std::uint64_t> accesses_;             // node access counts
  std::deque<ItemId> recent_;                       // last `window_` items
  ItemId last_ = kNoItem;
};

}  // namespace skp
