#include "predict/ppm_predictor.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace skp {

PpmPredictor::PpmPredictor(std::size_t n, std::size_t order)
    : n_(n), order_(order) {
  SKP_REQUIRE(n > 0, "PpmPredictor over empty catalog");
  SKP_REQUIRE(order >= 1 && order <= 8, "order must be in [1, 8]");
  tables_.resize(order);
  marginal_.assign(n, 0);
  excluded_.assign(n, 0);
}

std::uint64_t PpmPredictor::context_key(const std::deque<ItemId>& hist,
                                        std::size_t len, std::size_t n) {
  // Base-(n+1) positional encoding of the last `len` items; 64 bits hold
  // order <= 8 over catalogs up to ~2^8 per symbol times n — for larger
  // catalogs collisions only blur counts, never break correctness. The
  // leading 1 also keeps every key nonzero, which Key64Map requires.
  std::uint64_t key = 1;  // leading 1 distinguishes lengths
  const std::uint64_t base = static_cast<std::uint64_t>(n) + 1;
  const std::size_t start = hist.size() - len;
  for (std::size_t i = start; i < hist.size(); ++i) {
    key = key * base + static_cast<std::uint64_t>(hist[i]) + 1;
  }
  return key;
}

void PpmPredictor::observe(ItemId item) {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < n_,
              "item " << item << " out of range");
  // Update every context length that currently has enough history.
  for (std::size_t len = 1; len <= std::min(order_, history_.size());
       ++len) {
    const std::uint64_t key = context_key(history_, len, n_);
    Key64Map& table = tables_[len - 1];
    std::uint32_t ctx = table.find(key);
    if (ctx == Key64Map::kNotFound) {
      ctx = contexts_.alloc(Context{});
      table.insert(key, ctx);
    }
    Context& stats = contexts_[ctx];
    ++stats.total;
    bool found = false;
    for (std::uint32_t e = stats.head; e != kNull; e = edges_[e].next) {
      if (edges_[e].sym == item) {
        ++edges_[e].count;
        found = true;
        break;
      }
    }
    if (!found) {
      stats.head = edges_.alloc(Edge{item, 1, stats.head});
    }
  }
  ++marginal_[static_cast<std::size_t>(item)];
  ++total_;
  history_.push_back(item);
  if (history_.size() > order_) history_.pop_front();
}

void PpmPredictor::predict_into(std::vector<double>& out) const {
  std::vector<double>& p = out;
  p.assign(n_, 0.0);
  double remaining = 1.0;  // probability mass not yet claimed (escapes)
  std::vector<char>& excluded = excluded_;
  std::fill(excluded.begin(), excluded.end(), 0);

  for (std::size_t len = std::min(order_, history_.size()); len >= 1;
       --len) {
    const std::uint64_t key = context_key(history_, len, n_);
    const std::uint32_t ctx = tables_[len - 1].find(key);
    if (ctx == Key64Map::kNotFound || contexts_[ctx].total == 0) continue;
    const Context& stats = contexts_[ctx];
    // PPM-C: escape weight = distinct successors / (total + distinct),
    // computed over not-yet-excluded symbols. Integer sums over the edge
    // list are iteration-order independent.
    std::uint64_t total = 0;
    std::uint64_t distinct = 0;
    for (std::uint32_t e = stats.head; e != kNull; e = edges_[e].next) {
      if (excluded[static_cast<std::size_t>(edges_[e].sym)]) continue;
      total += edges_[e].count;
      ++distinct;
    }
    if (total == 0) continue;
    const double denom = static_cast<double>(total + distinct);
    for (std::uint32_t e = stats.head; e != kNull; e = edges_[e].next) {
      const auto sym = static_cast<std::size_t>(edges_[e].sym);
      if (excluded[sym]) continue;
      p[sym] += remaining * static_cast<double>(edges_[e].count) / denom;
      excluded[sym] = 1;
    }
    remaining *= static_cast<double>(distinct) / denom;
  }

  // Order-0 / uniform backstop over not-yet-excluded symbols.
  std::uint64_t marg_total = 0;
  std::size_t open = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (!excluded[i]) {
      marg_total += marginal_[i];
      ++open;
    }
  }
  if (open > 0) {
    for (std::size_t i = 0; i < n_; ++i) {
      if (excluded[i]) continue;
      const double base =
          marg_total > 0
              ? static_cast<double>(marginal_[i]) /
                    static_cast<double>(marg_total)
              : 1.0 / static_cast<double>(open);
      // Blend counts with a uniform floor so unseen items keep mass.
      const double uniform = 1.0 / static_cast<double>(open);
      p[i] += remaining * (0.9 * base + 0.1 * uniform);
    }
  } else {
    // Everything claimed at higher orders; renormalize below handles it.
  }

  // Normalize (escape arithmetic can leave tiny residue).
  double sum = 0.0;
  for (double x : p) sum += x;
  if (sum <= 0.0) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n_));
    return;
  }
  for (double& x : p) x /= sum;
}

void PpmPredictor::reset() {
  for (auto& t : tables_) t.clear();
  contexts_.clear();
  edges_.clear();
  std::fill(marginal_.begin(), marginal_.end(), 0);
  total_ = 0;
  history_.clear();
}

}  // namespace skp
