#include "predict/markov_predictor.hpp"

#include "util/require.hpp"

namespace skp {

MarkovPredictor::MarkovPredictor(std::size_t n, double laplace)
    : n_(n), laplace_(laplace) {
  SKP_REQUIRE(n > 0, "MarkovPredictor over empty catalog");
  SKP_REQUIRE(laplace > 0.0, "laplace must be positive");
  counts_.assign(n, std::vector<std::uint64_t>(n, 0));
  row_total_.assign(n, 0);
  marginal_.assign(n, 0);
}

void MarkovPredictor::observe(ItemId item) {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < n_,
              "item " << item << " out of range");
  const auto i = static_cast<std::size_t>(item);
  if (last_ != kNoItem) {
    const auto p = static_cast<std::size_t>(last_);
    ++counts_[p][i];
    ++row_total_[p];
  }
  ++marginal_[i];
  ++total_;
  last_ = item;
}

void MarkovPredictor::predict_into(std::vector<double>& out) const {
  out.resize(n_);
  if (last_ == kNoItem || row_total_[static_cast<std::size_t>(last_)] == 0) {
    // No context yet: fall back to the (smoothed) marginal distribution.
    const double denom =
        static_cast<double>(total_) + laplace_ * static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      out[i] = (static_cast<double>(marginal_[i]) + laplace_) / denom;
    }
    return;
  }
  const auto row = static_cast<std::size_t>(last_);
  const double denom = static_cast<double>(row_total_[row]) +
                       laplace_ * static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = (static_cast<double>(counts_[row][i]) + laplace_) / denom;
  }
}

void MarkovPredictor::reset() {
  for (auto& row : counts_) std::fill(row.begin(), row.end(), 0);
  std::fill(row_total_.begin(), row_total_.end(), 0);
  std::fill(marginal_.begin(), marginal_.end(), 0);
  total_ = 0;
  last_ = kNoItem;
}

std::uint64_t MarkovPredictor::count(ItemId prev, ItemId next) const {
  SKP_REQUIRE(prev >= 0 && static_cast<std::size_t>(prev) < n_, "prev");
  SKP_REQUIRE(next >= 0 && static_cast<std::size_t>(next) < n_, "next");
  return counts_[static_cast<std::size_t>(prev)]
                [static_cast<std::size_t>(next)];
}

}  // namespace skp
