#include "predict/lz78_predictor.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace skp {

Lz78Predictor::Lz78Predictor(std::size_t n) : n_(n) {
  SKP_REQUIRE(n > 0, "Lz78Predictor over empty catalog");
  nodes_.emplace_back();  // root
  marginal_.assign(n, 0);
}

void Lz78Predictor::observe(ItemId item) {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < n_,
              "item " << item << " out of range");
  Node& cur = nodes_[current_];
  ++cur.count[item];
  ++cur.total;
  ++marginal_[static_cast<std::size_t>(item)];
  ++total_;

  const auto it = cur.child.find(item);
  if (it != cur.child.end()) {
    current_ = it->second;
    ++depth_;
  } else {
    // New phrase: grow the tree by one node, restart at the root (LZ78).
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[current_].child.emplace(item, id);
    current_ = 0;
    depth_ = 0;
    ++phrases_;
  }
}

void Lz78Predictor::predict_into(std::vector<double>& out) const {
  std::vector<double>& p = out;
  p.assign(n_, 0.0);
  if (total_ == 0) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n_));
    return;
  }
  // Order-0 backstop: smoothed marginal.
  std::vector<double>& base = base_;
  base.resize(n_);
  const double denom =
      static_cast<double>(total_) + static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    base[i] = (static_cast<double>(marginal_[i]) + 1.0) / denom;
  }

  const Node& cur = nodes_[current_];
  if (cur.total == 0) {
    p.assign(base.begin(), base.end());
    return;
  }

  // PPM-C escape: distinct successors / (total + distinct).
  const double distinct = static_cast<double>(cur.count.size());
  const double esc = distinct / (static_cast<double>(cur.total) + distinct);
  for (const auto& [sym, cnt] : cur.count) {
    p[static_cast<std::size_t>(sym)] =
        (1.0 - esc) * static_cast<double>(cnt) /
        static_cast<double>(cur.total);
  }
  for (std::size_t i = 0; i < n_; ++i) {
    p[i] += esc * base[i];
  }
  // Normalize away fp residue.
  double sum = 0.0;
  for (const double x : p) sum += x;
  for (double& x : p) x /= sum;
}

void Lz78Predictor::reset() {
  nodes_.clear();
  nodes_.emplace_back();
  current_ = 0;
  depth_ = 0;
  phrases_ = 0;
  std::fill(marginal_.begin(), marginal_.end(), 0);
  total_ = 0;
}

}  // namespace skp
