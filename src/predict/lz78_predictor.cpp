#include "predict/lz78_predictor.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace skp {

Lz78Predictor::Lz78Predictor(std::size_t n) : n_(n) {
  SKP_REQUIRE(n > 0, "Lz78Predictor over empty catalog");
  nodes_.emplace_back();  // root
  marginal_.assign(n, 0);
}

Lz78Predictor::Edge* Lz78Predictor::find_edge(Node& node, ItemId sym) {
  for (std::uint32_t e = node.head; e != kNull; e = edges_[e].next) {
    if (edges_[e].sym == sym) return &edges_[e];
  }
  return nullptr;
}

const Lz78Predictor::Edge* Lz78Predictor::find_edge(const Node& node,
                                                    ItemId sym) const {
  for (std::uint32_t e = node.head; e != kNull; e = edges_[e].next) {
    if (edges_[e].sym == sym) return &edges_[e];
  }
  return nullptr;
}

void Lz78Predictor::observe(ItemId item) {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < n_,
              "item " << item << " out of range");
  Node& cur = nodes_[current_];
  ++cur.total;
  ++marginal_[static_cast<std::size_t>(item)];
  ++total_;

  if (Edge* edge = find_edge(cur, item)) {
    ++edge->count;
    current_ = edge->child;
    ++depth_;
    return;
  }
  // New phrase: grow the tree by one node and one edge, restart at the
  // root (LZ78). The edge is appended at the list head; since each
  // symbol is created exactly once per node, traversal still visits
  // every distinct successor exactly once.
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  Node& reloaded = nodes_[current_];  // emplace may have reallocated
  const std::uint32_t e =
      edges_.alloc(Edge{item, id, 1, reloaded.head});
  reloaded.head = e;
  ++reloaded.deg;
  current_ = 0;
  depth_ = 0;
  ++phrases_;
}

void Lz78Predictor::predict_into(std::vector<double>& out) const {
  std::vector<double>& p = out;
  p.assign(n_, 0.0);
  if (total_ == 0) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n_));
    return;
  }
  // Order-0 backstop: smoothed marginal.
  std::vector<double>& base = base_;
  base.resize(n_);
  const double denom =
      static_cast<double>(total_) + static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    base[i] = (static_cast<double>(marginal_[i]) + 1.0) / denom;
  }

  const Node& cur = nodes_[current_];
  if (cur.total == 0) {
    p.assign(base.begin(), base.end());
    return;
  }

  // PPM-C escape: distinct successors / (total + distinct). Each symbol
  // appears on exactly one edge, so the per-symbol assignment below is
  // iteration-order independent.
  const double distinct = static_cast<double>(cur.deg);
  const double esc = distinct / (static_cast<double>(cur.total) + distinct);
  for (std::uint32_t e = cur.head; e != kNull; e = edges_[e].next) {
    p[static_cast<std::size_t>(edges_[e].sym)] =
        (1.0 - esc) * static_cast<double>(edges_[e].count) /
        static_cast<double>(cur.total);
  }
  for (std::size_t i = 0; i < n_; ++i) {
    p[i] += esc * base[i];
  }
  // Normalize away fp residue.
  double sum = 0.0;
  for (const double x : p) sum += x;
  for (double& x : p) x /= sum;
}

void Lz78Predictor::reset() {
  nodes_.clear();
  nodes_.emplace_back();
  edges_.clear();
  current_ = 0;
  depth_ = 0;
  phrases_ = 0;
  std::fill(marginal_.begin(), marginal_.end(), 0);
  total_ = 0;
}

}  // namespace skp
