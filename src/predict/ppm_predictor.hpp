// Order-k PPM (prediction by partial matching) predictor.
//
// Contexts of length k, k-1, ..., 0 are blended with PPM-C style escape
// weights: the order-m context predicts with its counts and escapes to
// order m-1 with probability (#distinct successors) / (total + #distinct).
// Vitter & Krishnan showed compression-style predictors of this family are
// asymptotically optimal for Markov sources, which is exactly the source
// the Fig. 7 experiment uses.
//
// Storage is arena-backed (util/arena.hpp): per order, an open-addressing
// key -> context-index map plus pooled 16-byte context headers and
// pooled successor edges, replacing one unordered_map of ContextStats
// (itself holding an unordered_map) per context. The blend consumes each
// context's successor set through order-independent integer sums and a
// single per-symbol touch (exclusion flags), so predictions are
// bit-identical to the map-based predecessor regardless of edge order.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "predict/predictor.hpp"
#include "util/arena.hpp"

namespace skp {

class PpmPredictor final : public Predictor {
 public:
  PpmPredictor(std::size_t n, std::size_t order = 2);

  void observe(ItemId item) override;
  void predict_into(std::vector<double>& out) const override;
  std::size_t n_items() const override { return n_; }
  void reset() override;

  std::size_t order() const noexcept { return order_; }
  // Heap bytes behind the context tables (capacity bench).
  std::size_t footprint_bytes() const noexcept {
    std::size_t total = contexts_.footprint_bytes() +
                        edges_.footprint_bytes() +
                        marginal_.capacity() * sizeof(std::uint64_t);
    for (const Key64Map& t : tables_) total += t.footprint_bytes();
    return total;
  }

 private:
  static constexpr std::uint32_t kNull = PoolArena<int>::kNull;
  struct Context {
    std::uint32_t head = kNull;  // first successor edge
    std::uint64_t total = 0;
  };
  struct Edge {
    ItemId sym;
    std::uint64_t count;
    std::uint32_t next;
  };

  // Encodes a context (sequence of up to `order_` item ids) into a key.
  static std::uint64_t context_key(const std::deque<ItemId>& hist,
                                   std::size_t len, std::size_t n);

  std::size_t n_;
  std::size_t order_;
  std::vector<Key64Map> tables_;  // per order: context key -> contexts_ idx
  PoolArena<Context> contexts_;   // shared across orders
  PoolArena<Edge> edges_;
  std::vector<std::uint64_t> marginal_;
  std::uint64_t total_ = 0;
  std::deque<ItemId> history_;  // most recent at back, length <= order_
  // Per-predict escape-exclusion flags, reused so predict_into never
  // allocates.
  mutable std::vector<char> excluded_;
};

}  // namespace skp
