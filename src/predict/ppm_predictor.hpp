// Order-k PPM (prediction by partial matching) predictor.
//
// Contexts of length k, k-1, ..., 0 are blended with PPM-C style escape
// weights: the order-m context predicts with its counts and escapes to
// order m-1 with probability (#distinct successors) / (total + #distinct).
// Vitter & Krishnan showed compression-style predictors of this family are
// asymptotically optimal for Markov sources, which is exactly the source
// the Fig. 7 experiment uses.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "predict/predictor.hpp"

namespace skp {

class PpmPredictor final : public Predictor {
 public:
  PpmPredictor(std::size_t n, std::size_t order = 2);

  void observe(ItemId item) override;
  void predict_into(std::vector<double>& out) const override;
  std::size_t n_items() const override { return n_; }
  void reset() override;

  std::size_t order() const noexcept { return order_; }

 private:
  struct ContextStats {
    std::unordered_map<ItemId, std::uint64_t> next_counts;
    std::uint64_t total = 0;
  };

  // Encodes a context (sequence of up to `order_` item ids) into a key.
  static std::uint64_t context_key(const std::deque<ItemId>& hist,
                                   std::size_t len, std::size_t n);

  std::size_t n_;
  std::size_t order_;
  std::vector<std::unordered_map<std::uint64_t, ContextStats>> tables_;
  std::vector<std::uint64_t> marginal_;
  std::uint64_t total_ = 0;
  std::deque<ItemId> history_;  // most recent at back, length <= order_
  // Per-predict escape-exclusion flags, reused so predict_into never
  // allocates.
  mutable std::vector<char> excluded_;
};

}  // namespace skp
