#include "predict/dependency_graph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace skp {

DependencyGraph::DependencyGraph(std::size_t n, std::size_t window)
    : n_(n), window_(window) {
  SKP_REQUIRE(n > 0, "DependencyGraph over empty catalog");
  SKP_REQUIRE(window >= 1, "window must be >= 1");
  weight_.assign(n, std::vector<std::uint64_t>(n, 0));
  accesses_.assign(n, 0);
}

void DependencyGraph::observe(ItemId item) {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < n_,
              "item " << item << " out of range");
  const auto i = static_cast<std::size_t>(item);
  // Every item accessed within the preceding window gains an arc to `item`.
  for (ItemId prev : recent_) {
    if (prev != item) {
      ++weight_[static_cast<std::size_t>(prev)][i];
    }
  }
  ++accesses_[i];
  recent_.push_back(item);
  if (recent_.size() > window_) recent_.pop_front();
  last_ = item;
}

void DependencyGraph::predict_into(std::vector<double>& out) const {
  std::vector<double>& p = out;
  p.resize(n_);
  if (last_ == kNoItem || accesses_[static_cast<std::size_t>(last_)] == 0) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n_));
    return;
  }
  const auto row = static_cast<std::size_t>(last_);
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < n_; ++j) total += weight_[row][j];
  if (total == 0) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n_));
    return;
  }
  for (std::size_t j = 0; j < n_; ++j) {
    p[j] = static_cast<double>(weight_[row][j]) / static_cast<double>(total);
  }
}

void DependencyGraph::reset() {
  for (auto& row : weight_) std::fill(row.begin(), row.end(), 0);
  std::fill(accesses_.begin(), accesses_.end(), 0);
  recent_.clear();
  last_ = kNoItem;
}

std::uint64_t DependencyGraph::arc(ItemId a, ItemId b) const {
  SKP_REQUIRE(a >= 0 && static_cast<std::size_t>(a) < n_, "arc from");
  SKP_REQUIRE(b >= 0 && static_cast<std::size_t>(b) < n_, "arc to");
  return weight_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

double DependencyGraph::arc_probability(ItemId a, ItemId b) const {
  const auto w = arc(a, b);
  const auto acc = accesses_[static_cast<std::size_t>(a)];
  return acc ? static_cast<double>(w) / static_cast<double>(acc) : 0.0;
}

}  // namespace skp
