// LZ78 parse-tree predictor (Vitter & Krishnan, FOCS 1991).
//
// The paper's related work [16] proves that predictors built on the LZ78
// incremental parse are asymptotically optimal for Markov sources. The
// tree starts as a single root; each observed symbol descends into the
// matching child, creating it (and restarting the phrase at the root) when
// absent — exactly the LZ78 phrase rule. Prediction blends the current
// node's child counts with the root's (order-0) distribution using a
// PPM-C style escape, so novel contexts degrade gracefully instead of
// predicting uniformly.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "predict/predictor.hpp"

namespace skp {

class Lz78Predictor final : public Predictor {
 public:
  explicit Lz78Predictor(std::size_t n);

  void observe(ItemId item) override;
  void predict_into(std::vector<double>& out) const override;
  std::size_t n_items() const override { return n_; }
  void reset() override;

  // Diagnostics.
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t phrase_count() const noexcept { return phrases_; }
  std::size_t current_depth() const noexcept { return depth_; }

 private:
  struct Node {
    // child id by symbol; counts of traversals into each child.
    std::unordered_map<ItemId, std::uint32_t> child;
    std::unordered_map<ItemId, std::uint64_t> count;
    std::uint64_t total = 0;
  };

  std::size_t n_;
  std::vector<Node> nodes_;   // nodes_[0] is the root
  std::uint32_t current_ = 0;
  std::size_t depth_ = 0;
  std::size_t phrases_ = 0;
  std::vector<std::uint64_t> marginal_;
  std::uint64_t total_ = 0;
  // Order-0 backstop distribution, reused so predict_into never allocates.
  mutable std::vector<double> base_;
};

}  // namespace skp
