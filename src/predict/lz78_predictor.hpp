// LZ78 parse-tree predictor (Vitter & Krishnan, FOCS 1991).
//
// The paper's related work [16] proves that predictors built on the LZ78
// incremental parse are asymptotically optimal for Markov sources. The
// tree starts as a single root; each observed symbol descends into the
// matching child, creating it (and restarting the phrase at the root) when
// absent — exactly the LZ78 phrase rule. Prediction blends the current
// node's child counts with the root's (order-0) distribution using a
// PPM-C style escape, so novel contexts degrade gracefully instead of
// predicting uniformly.
//
// Storage is arena-backed (util/arena.hpp): a node is 16 bytes plus one
// pooled 24-byte edge per distinct successor, replacing the two
// unordered_maps per node of the original implementation. A node's edge
// list is kept in insertion order and every edge is visited exactly once
// per predict (each symbol's probability is assigned, not accumulated,
// before the order-independent escape blend), so predictions are
// bit-identical to the map-based predecessor.
#pragma once

#include <cstdint>
#include <vector>

#include "predict/predictor.hpp"
#include "util/arena.hpp"

namespace skp {

class Lz78Predictor final : public Predictor {
 public:
  explicit Lz78Predictor(std::size_t n);

  void observe(ItemId item) override;
  void predict_into(std::vector<double>& out) const override;
  std::size_t n_items() const override { return n_; }
  void reset() override;

  // Diagnostics.
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t phrase_count() const noexcept { return phrases_; }
  std::size_t current_depth() const noexcept { return depth_; }
  // Heap bytes behind the trie (capacity bench).
  std::size_t footprint_bytes() const noexcept {
    return nodes_.capacity() * sizeof(Node) + edges_.footprint_bytes() +
           marginal_.capacity() * sizeof(std::uint64_t);
  }

 private:
  static constexpr std::uint32_t kNull = PoolArena<int>::kNull;
  struct Edge {
    ItemId sym;             // observed successor symbol
    std::uint32_t child;    // node reached by this edge
    std::uint64_t count;    // traversals into the child
    std::uint32_t next;     // next edge of the same node (insertion order)
  };
  struct Node {
    std::uint32_t head = kNull;  // first edge (insertion order)
    std::uint32_t deg = 0;       // distinct successors
    std::uint64_t total = 0;
  };

  // The node's edge for `sym`, or nullptr. Out-degrees are small (the
  // paper's sources have 10-20 successors per state), so a linear scan
  // beats any hash here.
  Edge* find_edge(Node& node, ItemId sym);
  const Edge* find_edge(const Node& node, ItemId sym) const;

  std::size_t n_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  PoolArena<Edge> edges_;
  std::uint32_t current_ = 0;
  std::size_t depth_ = 0;
  std::size_t phrases_ = 0;
  std::vector<std::uint64_t> marginal_;
  std::uint64_t total_ = 0;
  // Order-0 backstop distribution, reused so predict_into never allocates.
  mutable std::vector<double> base_;
};

}  // namespace skp
