// First-order Markov predictor with Laplace smoothing.
#pragma once

#include <vector>

#include "predict/predictor.hpp"

namespace skp {

class MarkovPredictor final : public Predictor {
 public:
  // `laplace` > 0 smooths unseen transitions; smaller values trust the
  // counts more aggressively.
  explicit MarkovPredictor(std::size_t n, double laplace = 0.1);

  void observe(ItemId item) override;
  void predict_into(std::vector<double>& out) const override;
  std::size_t n_items() const override { return n_; }
  void reset() override;

  // Raw transition count prev -> next (tests / diagnostics).
  std::uint64_t count(ItemId prev, ItemId next) const;
  ItemId last_item() const noexcept { return last_; }

 private:
  std::size_t n_;
  double laplace_;
  std::vector<std::vector<std::uint64_t>> counts_;  // [prev][next]
  std::vector<std::uint64_t> row_total_;
  std::vector<std::uint64_t> marginal_;  // unconditioned access counts
  std::uint64_t total_ = 0;
  ItemId last_ = kNoItem;
};

}  // namespace skp
