#include "sim/runtime.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "cache/replacement.hpp"
#include "predict/dependency_graph.hpp"
#include "predict/lz78_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/ppm_predictor.hpp"
#include "sim/grounded.hpp"
#include "sim/multi_client.hpp"
#include "sim/netsim.hpp"
#include "sim/netsim_stepper.hpp"
#include "sim/prefetch_only.hpp"
#include "sim/skpd_loopback.hpp"
#include "sim/trace_replay.hpp"
#include "util/require.hpp"
#include "workload/adversarial_source.hpp"
#include "workload/markov_source.hpp"
#include "workload/request_stream.hpp"
#include "workload/zipf_source.hpp"

namespace skp {

// The learned predictors of the scenario pipelines (same construction the
// scenario matrix has always used; trace_replay keeps its own factory).
// Shared with the multi_client driver so contention rows stay comparable
// with scenario/netsim_des rows of the same config.
std::unique_ptr<Predictor> make_runtime_predictor(PredictorKind kind,
                                                  std::size_t n_items) {
  switch (kind) {
    case PredictorKind::Markov1:
      return std::make_unique<MarkovPredictor>(n_items);
    case PredictorKind::Lz78:
      return std::make_unique<Lz78Predictor>(n_items);
    case PredictorKind::Ppm:
      return std::make_unique<PpmPredictor>(n_items, 2);
    case PredictorKind::DependencyWindow:
      return std::make_unique<DependencyGraph>(n_items, /*window=*/2);
    default:
      SKP_REQUIRE(false,
                  "this pipeline needs a learned predictor "
                  "(markov1 | lz78 | ppm | depgraph)");
  }
  return nullptr;
}

namespace {

// to_markov_config / to_zipf_config / to_adversarial_config and the
// GroundedStreams layout live in sim/grounded.hpp now — the netsim
// stepper (and through it the skpd daemon) must agree on them byte for
// byte with the drivers here.

std::unique_ptr<ReplacementPolicy> make_runtime_policy(ReplacementKind kind,
                                                       std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::LRU: return make_lru();
    case ReplacementKind::FIFO: return make_fifo();
    case ReplacementKind::LFU: return make_lfu();
    case ReplacementKind::Random: return make_random(seed);
  }
  return make_lru();
}

// Reject-don't-drop: a spec field a driver cannot honor must fail the
// run, not silently fall back to a default the CSV then records as if it
// had been applied.
void require_default_net(const SimSpec& spec, const char* driver) {
  SKP_REQUIRE(spec.bandwidth == 1.0 && spec.latency == 0.0,
              driver << " does not model the network link; "
                        "bandwidth/latency apply to netsim_des/scenario");
}

void require_no_scenario_fields(const SimSpec& spec, const char* driver) {
  SKP_REQUIRE(!spec.pr_planning && spec.replacement == ReplacementKind::LRU,
              driver << " has no replacement-policy pipeline; "
                        "replacement/pr apply to the scenario driver");
}

void require_unsized(const SimSpec& spec, const char* driver) {
  SKP_REQUIRE(spec.sized_capacity == 0.0,
              driver << " has no byte-addressed cache; sized_capacity "
                        "applies to the prefetch_cache driver");
}

void require_single_client(const SimSpec& spec, const char* driver) {
  SKP_REQUIRE(spec.multi_client == MultiClientSpec{},
              driver << " is single-client; the multi_client section "
                        "applies to the multi_client driver");
}

void require_static_link(const SimSpec& spec, const char* driver) {
  SKP_REQUIRE(spec.link_schedule.empty(),
              driver << " has no simulated link timeline; link_schedule "
                        "applies to netsim_des/multi_client");
}

void require_reliable_full_effort(const SimSpec& spec, const char* driver) {
  SKP_REQUIRE(spec.fault == FaultSpec{},
              driver << " has no simulated transfer path to fail; the "
                        "fault section applies to netsim_des/multi_client");
  SKP_REQUIRE(spec.overload == OverloadConfig{} && spec.deadline == 0.0,
              driver << " has no realized waiting times to watch; "
                        "overload/deadline apply to netsim_des/"
                        "multi_client");
}

// ---- Drivers ------------------------------------------------------------

SimResult run_prefetch_only_driver(const SimSpec& spec) {
  const SimWorkload& w = spec.workload;
  SKP_REQUIRE(w.kind == SimWorkloadKind::Iid,
              "prefetch_only redraws P each iteration — use an iid "
              "workload");
  SKP_REQUIRE(spec.predictor == PredictorKind::Oracle,
              "prefetch_only has no predictor pipeline");
  SKP_REQUIRE(spec.warmup == 0 && spec.predictor_warmup == 0,
              "prefetch_only has no warmup phase");
  // Reject rather than silently drop fields this protocol cannot honor:
  // the cache is flushed per iteration, so there is no sub-arbitration
  // and no profit thresholding to apply.
  SKP_REQUIRE(spec.sub == SubArbitration::None,
              "prefetch_only has no cache to sub-arbitrate");
  SKP_REQUIRE(spec.min_profit_threshold == 0.0,
              "prefetch_only does not support min_profit_threshold");
  require_default_net(spec, "prefetch_only");
  require_no_scenario_fields(spec, "prefetch_only");
  require_unsized(spec, "prefetch_only");
  require_single_client(spec, "prefetch_only");
  require_static_link(spec, "prefetch_only");
  require_reliable_full_effort(spec, "prefetch_only");
  PrefetchOnlyConfig cfg;
  cfg.n_items = w.n_items;
  cfg.method = w.method;
  cfg.skew_exponent = w.skew_exponent;
  cfg.r_lo = w.r_lo;
  cfg.r_hi = w.r_hi;
  cfg.v_lo = w.v_lo;
  cfg.v_hi = w.v_hi;
  cfg.integer_times = w.integer_times;
  cfg.policy = spec.policy;
  cfg.delta_rule = spec.delta_rule;
  cfg.iterations = spec.requests;
  cfg.seed = spec.seed;
  cfg.use_plan_cache = spec.use_plan_cache;
  cfg.plan_cache_capacity = spec.plan_cache_capacity;

  PrefetchOnlyResult res = run_prefetch_only(cfg);
  SimResult out;
  out.metrics = res.metrics;
  out.plan_cache.plans = res.plan_cache;
  out.avg_T_by_v.emplace(std::move(res.avg_T_by_v));
  return out;
}

SimResult from_prefetch_cache_result(const PrefetchCacheResult& res) {
  SimResult out;
  out.metrics = res.metrics;
  out.plan_cache = res.plan_cache;
  out.over_viewing_time = res.over_viewing_time;
  return out;
}

SimResult run_prefetch_cache_driver(const SimSpec& spec) {
  const SimWorkload& w = spec.workload;
  SKP_REQUIRE(spec.predictor_warmup == 0,
              "prefetch_cache has no observe-only prefix; use warmup to "
              "exclude leading requests from metrics");
  require_default_net(spec, "prefetch_cache");
  require_no_scenario_fields(spec, "prefetch_cache");
  require_single_client(spec, "prefetch_cache");
  require_static_link(spec, "prefetch_cache");
  require_reliable_full_effort(spec, "prefetch_cache");
  if (spec.sized_capacity > 0.0) {
    SKP_REQUIRE(w.kind == SimWorkloadKind::Markov,
                "the sized-cache experiment runs the Markov workload");
    SKP_REQUIRE(spec.predictor == PredictorKind::Oracle,
                "the sized-cache experiment is oracle-mode only");
    SKP_REQUIRE(spec.min_profit_threshold == 0.0,
                "the sized-cache experiment does not support "
                "min_profit_threshold");
    SKP_REQUIRE(spec.pipeline_workers == 0,
                "the sized-cache experiment has no pipelined mode");
    SizedExperimentConfig cfg;
    cfg.source = to_markov_config(w);
    cfg.capacity = spec.sized_capacity;
    cfg.size_per_r = spec.size_per_r;
    cfg.size_lo = spec.size_lo;
    cfg.size_hi = spec.size_hi;
    cfg.policy = spec.policy;
    cfg.sub = spec.sub;
    cfg.delta_rule = spec.delta_rule;
    cfg.requests = spec.requests;
    cfg.warmup = spec.warmup;
    cfg.seed = spec.seed;
    cfg.use_plan_cache = spec.use_plan_cache;
    cfg.plan_cache_capacity = spec.plan_cache_capacity;
    return from_prefetch_cache_result(run_prefetch_cache_sized(cfg));
  }

  PrefetchCacheConfig cfg;
  cfg.cache_size = spec.cache_size;
  cfg.policy = spec.policy;
  cfg.sub = spec.sub;
  cfg.delta_rule = spec.delta_rule;
  cfg.requests = spec.requests;
  cfg.warmup = spec.warmup;
  cfg.seed = spec.seed;
  cfg.predictor = spec.predictor;
  cfg.predictor_min_prob = spec.predictor_min_prob;
  cfg.min_profit_threshold = spec.min_profit_threshold;
  cfg.use_plan_cache = spec.use_plan_cache;
  cfg.plan_cache_capacity = spec.plan_cache_capacity;
  cfg.pipeline_workers = spec.pipeline_workers;
  switch (w.kind) {
    case SimWorkloadKind::Markov:
      cfg.source = to_markov_config(w);
      return from_prefetch_cache_result(run_prefetch_cache(cfg));
    case SimWorkloadKind::MarkovDrift:
      cfg.source = to_markov_config(w);
      cfg.drift_period = w.drift_period;
      return from_prefetch_cache_result(run_prefetch_cache(cfg));
    case SimWorkloadKind::Zipf:
    case SimWorkloadKind::Adversarial: {
      // Mirror the default entry point's stream split: the source is
      // built from Rng(seed), the walk from its kPrefetchCacheWalkSalt child.
      Rng build(spec.seed);
      MarkovSource source =
          w.kind == SimWorkloadKind::Zipf
              ? make_zipf_source(to_zipf_config(w), build)
              : make_adversarial_source(to_adversarial_config(w), build);
      Rng walk = build.split(kPrefetchCacheWalkSalt);
      source.teleport(0);
      return from_prefetch_cache_result(
          run_prefetch_cache(cfg, source, walk));
    }
    default:
      SKP_REQUIRE(false,
                  "prefetch_cache supports markov | markov_drift | zipf | "
                  "adversarial workloads");
  }
  return {};
}

SimResult run_trace_replay_driver(const SimSpec& spec) {
  SKP_REQUIRE(spec.predictor != PredictorKind::Oracle,
              "trace replay has no oracle probabilities");
  SKP_REQUIRE(spec.predictor_warmup == 0,
              "trace replay has no observe-only prefix; use warmup to "
              "exclude leading requests from metrics");
  require_default_net(spec, "trace_replay");
  require_no_scenario_fields(spec, "trace_replay");
  require_unsized(spec, "trace_replay");
  require_single_client(spec, "trace_replay");
  require_static_link(spec, "trace_replay");
  require_reliable_full_effort(spec, "trace_replay");
  Rng root(spec.seed);
  Rng build = root.split(1);
  Rng walk = root.split(2);
  const MaterializedWorkload w =
      materialize_workload(spec.workload, spec.requests, build, walk);

  Trace trace(w.n_items, w.retrieval_times);
  for (const TraceRecord& rec : w.cycles) {
    trace.append(rec.item, rec.viewing_time);
  }

  TraceReplayConfig cfg;
  cfg.cache_size = spec.cache_size;
  cfg.policy = spec.policy;
  cfg.sub = spec.sub;
  cfg.delta_rule = spec.delta_rule;
  cfg.predictor = spec.predictor;
  cfg.predictor_min_prob = spec.predictor_min_prob;
  cfg.min_profit_threshold = spec.min_profit_threshold;
  cfg.warmup = spec.warmup;
  cfg.use_plan_cache = spec.use_plan_cache;
  cfg.plan_cache_capacity = spec.plan_cache_capacity;

  SimResult out;
  out.metrics = replay_trace(trace, cfg, &out.plan_cache);
  return out;
}

SimResult run_netsim_des_driver(const SimSpec& spec) {
  // The whole decision path — validation, stream layout, per-cycle loop
  // body — lives in sim/netsim_stepper.hpp, shared with the skpd daemon.
  // Keeping this driver a trivial drain of the stepper is what makes
  // "daemon-served sessions match the in-process golden" structural.
  NetsimStepper stepper(spec);
  while (!stepper.done()) stepper.step();
  return stepper.result();
}

SimResult run_scenario_driver(const SimSpec& spec) {
  SKP_REQUIRE(spec.warmup == 0,
              "the scenario pipeline counts every request; use "
              "predictor_warmup for the observe-only prefix");
  require_unsized(spec, "scenario");
  require_single_client(spec, "scenario");
  // The scenario pipeline consumes the net only as a static r catalog;
  // it has no clock for a phase schedule to vary against.
  require_static_link(spec, "scenario");
  require_reliable_full_effort(spec, "scenario");
  const std::size_t n = spec.workload.n_items;
  GroundedStreams g = ground_streams(spec);
  const std::vector<double> r = g.catalog.retrieval_times(g.net);

  const MaterializedWorkload mat =
      materialize_workload(spec.workload, spec.requests, g.build, g.walk);

  auto predictor = make_runtime_predictor(spec.predictor, n);
  auto policy =
      make_runtime_policy(spec.replacement, g.root.split(4).next_u64());
  SlotCache cache(n, spec.cache_size);
  FreqTracker freq(n);  // Pr-arbitration sub-score substrate

  EngineConfig ecfg;
  ecfg.policy = spec.policy;
  ecfg.delta_rule = spec.delta_rule;
  ecfg.arbitration.sub = spec.sub;
  ecfg.min_profit_threshold = spec.min_profit_threshold;
  const PrefetchEngine engine(ecfg);

  SimResult res;
  SimMetrics& m = res.metrics;
  constexpr double kEps = 1e-9;
  // Borrowed-view planning (allocation-free across cycles): P lives in
  // the scratch buffer, r in the catalog vector above.
  PlanScratch scratch;
  PrefetchPlan plan;
  for (std::size_t i = 0; i < mat.cycles.size(); ++i) {
    const ItemId item = mat.cycles[i].item;
    const double v = mat.cycles[i].viewing_time;

    if (i >= spec.predictor_warmup) {
      predictor->predict_into(scratch.P);
      double mass = 0.0;
      for (std::size_t j = 0; j < scratch.P.size(); ++j) {
        // Shortlist: drop sliver mass; without Pr-arbitration planning
        // additionally zero cached items (planning over N \ C,
        // Section 5 — the Figure-6 planner does its own N \ C
        // filtering).
        if (scratch.P[j] < spec.predictor_min_prob ||
            (!spec.pr_planning &&
             cache.contains(static_cast<ItemId>(j)))) {
          scratch.P[j] = 0.0;
        }
        mass += scratch.P[j];
      }
      if (mass > 0.0) {
        const InstanceView inst(scratch.P, r, v);
        if (spec.pr_planning) {
          engine.plan_with_cache(inst, cache, &freq, scratch, plan);
        } else {
          engine.plan(inst, scratch, plan);
        }
        m.solver_nodes += plan.solver_nodes;
        // Bandwidth budget (Eq. 1): every fetch but the last must finish
        // within v; plain KP may not stretch at all.
        double prefix = 0.0;
        for (std::size_t k = 0; k + 1 < plan.fetch.size(); ++k) {
          prefix += r[Instance::idx(plan.fetch[k])];
        }
        double budget_used = prefix;
        if (spec.policy == PrefetchPolicy::KP && !plan.fetch.empty()) {
          budget_used += r[Instance::idx(plan.fetch.back())];
        }
        if (budget_used > v + kEps) {
          ++res.budget_violations;
          res.worst_budget_overrun =
              std::max(res.worst_budget_overrun, budget_used - v);
        }
        if (!plan.fetch.empty()) ++res.plans;
        if (spec.pr_planning) {
          // Figure-6 execution: each admitted fetch claims its
          // Pr-arbitrated victim once the cache is full; the replacement
          // policy's books are kept consistent so demand misses still
          // work on accurate state.
          std::size_t victim_idx = 0;
          for (const ItemId f : plan.fetch) {
            if (cache.full()) {
              const ItemId victim = plan.evict[victim_idx++];
              cache.erase(victim);
              policy->on_evict(victim);
            }
            cache.insert(f);
            policy->on_insert(f);
            ++m.prefetch_fetches;
            m.prefetch_network_time += r[Instance::idx(f)];
          }
        } else {
          for (const ItemId f : plan.fetch) {
            if (cache.contains(f)) continue;  // zero-profit filler
            if (cache.full()) {
              const ItemId victim = policy->choose_victim(cache);
              cache.erase(victim);
              policy->on_evict(victim);
            }
            cache.insert(f);
            policy->on_insert(f);
            ++m.prefetch_fetches;
            m.prefetch_network_time += r[Instance::idx(f)];
          }
        }
      }
    }

    if (cache.contains(item)) {
      ++m.hits;
      policy->on_access(item);
    } else {
      ++m.demand_fetches;
      m.demand_network_time += r[Instance::idx(item)];
      access_with_policy(cache, *policy, item);
    }
    ++m.requests;
    freq.record(item);
    predictor->observe(item);
  }
  m.network_time = m.prefetch_network_time + m.demand_network_time;
  return res;
}

SimResult run_multi_client_des_driver(const SimSpec& spec) {
  const MultiClientSpec& mc = spec.multi_client;
  SKP_REQUIRE(mc.clients >= 1, "multi_client needs at least one client");
  SKP_REQUIRE(mc.overrides.empty() || mc.overrides.size() == mc.clients,
              "multi_client overrides must have one entry per client "
              "(got " << mc.overrides.size() << " for " << mc.clients
                      << " clients)");
  SKP_REQUIRE(spec.warmup == 0,
              "multi_client counts every request; use predictor_warmup "
              "for an observe-only prefix");
  require_no_scenario_fields(spec, "multi_client");
  require_unsized(spec, "multi_client");
  const std::size_t n = spec.workload.n_items;

  // Shared grounded catalog: the netsim_des/scenario stream layout, so a
  // multi_client row is comparable with the single-client rows of the
  // same config (the clients' chains keep their own P/v draws; only the
  // retrieval-time catalog is shared — items are per-client, the link
  // and the server catalog are not).
  GroundedStreams g = ground_streams(spec);

  MultiClientConfig cfg;
  cfg.n_clients = mc.clients;
  cfg.source = to_markov_config(spec.workload);
  cfg.link_speedup = mc.link_speedup;
  cfg.phase_align = mc.phase_align;
  cfg.churn_period = mc.churn_period;
  cfg.churn_downtime = mc.churn_downtime;
  cfg.link_schedule = spec.link_schedule;
  cfg.cache_size = spec.cache_size;
  cfg.engine.policy = spec.policy;
  cfg.engine.delta_rule = spec.delta_rule;
  cfg.engine.arbitration.sub = spec.sub;
  cfg.engine.min_profit_threshold = spec.min_profit_threshold;
  cfg.engine.evaluate_plan_g = false;
  cfg.requests_per_client = spec.requests;
  cfg.seed = spec.seed;
  cfg.use_plan_cache = spec.use_plan_cache;
  cfg.plan_cache_capacity = spec.plan_cache_capacity;
  cfg.predictor = spec.predictor;
  cfg.predictor_min_prob = spec.predictor_min_prob;
  cfg.predictor_warmup = spec.predictor_warmup;
  cfg.retrieval_times = g.catalog.retrieval_times(g.net);
  cfg.fault = spec.fault;
  cfg.overload = spec.overload;
  cfg.deadline = spec.deadline;

  cfg.overrides.resize(mc.clients);
  for (std::size_t c = 0; c < mc.clients; ++c) {
    const MultiClientOverride* ov =
        mc.overrides.empty() ? nullptr : &mc.overrides[c];
    const SimWorkload w = ov && ov->workload ? *ov->workload
                                             : spec.workload;
    SKP_REQUIRE(w.n_items == n,
                "multi_client clients must share n_items (one grounded "
                "catalog serves every client)");
    const PredictorKind predictor =
        ov && ov->predictor ? *ov->predictor : spec.predictor;
    // Per-client private streams derived from (effective seed, client
    // index): homogeneous clients walk distinct trajectories, and
    // reseeding or reshaping one client never shifts another.
    const std::uint64_t base_seed = ov && ov->seed ? *ov->seed : spec.seed;
    Rng mix(base_seed);
    const std::uint64_t client_seed = mix.split(1000 + c).next_u64();

    // Per-client cycle quota: a total request budget split by the caller
    // (scenario harness) must not silently drop its remainder, so the
    // quota rides the override all the way into the DES.
    const std::size_t quota =
        ov && ov->requests ? *ov->requests : spec.requests;
    SKP_REQUIRE(quota >= 1, "client " << c << " quota must be >= 1");

    MultiClientConfig::ClientOverride& out = cfg.overrides[c];
    out.seed = client_seed;
    out.predictor = predictor;
    out.requests = quota;
    if (ov) {
      out.churn_period = ov->churn_period;
      out.churn_downtime = ov->churn_downtime;
    }
    if (predictor == PredictorKind::Oracle) {
      SKP_REQUIRE(w.kind == SimWorkloadKind::Markov,
                  "oracle multi_client clients walk a markov chain; "
                  "learned predictors unlock iid/zipf/drift/trace/"
                  "adversarial workloads");
      out.source = to_markov_config(w);
    } else {
      // Scripted learned drive: materialize the client's cycle script
      // with the same stream layout a private-seeded chain would use.
      Rng root(client_seed);
      Rng build = root.split(1);
      Rng walk = root.split(2);
      out.cycles = materialize_workload(w, quota, build, walk).cycles;
    }
  }

  const MultiClientResult res = run_multi_client(cfg);
  SimResult out;
  out.metrics = res.aggregate;
  out.per_client = res.per_client;
  out.plan_cache = res.plan_cache;
  out.plans = res.plans;
  out.churn_events = res.churn_events;
  out.link_utilization = res.link_utilization();
  out.fault = res.fault;
  out.overload = res.overload;
  out.deadline_hits = res.deadline_hits;
  return out;
}

constexpr SimDriver kDrivers[] = {
    {SimDriverKind::PrefetchOnly, "prefetch_only",
     &run_prefetch_only_driver},
    {SimDriverKind::PrefetchCache, "prefetch_cache",
     &run_prefetch_cache_driver},
    {SimDriverKind::TraceReplay, "trace_replay",
     &run_trace_replay_driver},
    {SimDriverKind::NetsimDes, "netsim_des", &run_netsim_des_driver},
    {SimDriverKind::Scenario, "scenario", &run_scenario_driver},
    {SimDriverKind::MultiClientDes, "multi_client",
     &run_multi_client_des_driver},
    {SimDriverKind::SkpdLoopback, "skpd_loopback",
     &run_skpd_loopback_driver},
};

}  // namespace

// ---- Registry -----------------------------------------------------------

std::span<const SimDriver> driver_registry() { return kDrivers; }

const SimDriver& find_driver(SimDriverKind kind) {
  for (const SimDriver& d : kDrivers) {
    if (d.kind == kind) return d;
  }
  SKP_REQUIRE(false, "unregistered driver kind");
  return kDrivers[0];
}

const SimDriver* find_driver(std::string_view name) {
  for (const SimDriver& d : kDrivers) {
    if (name == d.name) return &d;
  }
  return nullptr;
}

SimResult run_sim(const SimSpec& spec) {
  SKP_REQUIRE(spec.workload.n_items >= 2, "n_items must be >= 2");
  SKP_REQUIRE(spec.requests >= 1, "requests must be >= 1");
  // Reject-don't-drop: only the prefetch_cache driver has a pipelined
  // execution mode.
  SKP_REQUIRE(spec.pipeline_workers == 0 ||
                  spec.driver == SimDriverKind::PrefetchCache,
              "pipeline_workers applies to the prefetch_cache driver");
  return find_driver(spec.driver).run(spec);
}

// ---- Batched execution ---------------------------------------------------

namespace {

// A spec routes through run_prefetch_cache_batch when it lowers to the
// plain slot-cache Monte Carlo over a seed-built Markov chain — the only
// entry point the lockstep runner reproduces. Everything checked here is
// a routing decision, not validation: a spec that fails these simply runs
// through run_sim, which applies the driver's own REQUIREs.
bool batchable_spec(const SimSpec& spec) {
  return spec.driver == SimDriverKind::PrefetchCache &&
         (spec.workload.kind == SimWorkloadKind::Markov ||
          spec.workload.kind == SimWorkloadKind::MarkovDrift) &&
         spec.predictor == PredictorKind::Oracle &&
         spec.predictor_warmup == 0 && spec.sized_capacity == 0.0 &&
         spec.pipeline_workers == 0 && spec.bandwidth == 1.0 &&
         spec.latency == 0.0 && !spec.pr_planning &&
         spec.replacement == ReplacementKind::LRU &&
         spec.link_schedule.empty() && spec.fault == FaultSpec{} &&
         spec.overload == OverloadConfig{} && spec.deadline == 0.0 &&
         spec.multi_client == MultiClientSpec{};
}

PrefetchCacheConfig lower_batchable(const SimSpec& spec) {
  PrefetchCacheConfig cfg;
  cfg.source = to_markov_config(spec.workload);
  cfg.cache_size = spec.cache_size;
  cfg.policy = spec.policy;
  cfg.sub = spec.sub;
  cfg.delta_rule = spec.delta_rule;
  cfg.requests = spec.requests;
  cfg.warmup = spec.warmup;
  cfg.seed = spec.seed;
  cfg.min_profit_threshold = spec.min_profit_threshold;
  cfg.use_plan_cache = spec.use_plan_cache;
  cfg.plan_cache_capacity = spec.plan_cache_capacity;
  if (spec.workload.kind == SimWorkloadKind::MarkovDrift) {
    cfg.drift_period = spec.workload.drift_period;
  }
  return cfg;
}

bool same_batch_workload(const PrefetchCacheConfig& a,
                         const PrefetchCacheConfig& b) {
  return a.source == b.source && a.seed == b.seed &&
         a.requests == b.requests && a.drift_period == b.drift_period;
}

}  // namespace

std::vector<SimResult> run_sim_batch(std::span<const SimSpec> specs) {
  // Lanes carry full-occupancy plan caches and their own slot caches, so
  // cap lockstep groups rather than let a giant sweep hold every lane's
  // memo tiers live at once.
  constexpr std::size_t kMaxLanes = 16;

  std::vector<SimResult> results(specs.size());
  std::vector<std::optional<PrefetchCacheConfig>> lowered(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (batchable_spec(specs[i])) lowered[i] = lower_batchable(specs[i]);
  }

  std::size_t i = 0;
  while (i < specs.size()) {
    if (!lowered[i]) {
      results[i] = run_sim(specs[i]);
      ++i;
      continue;
    }
    // Greedy run of consecutive lanes sharing the workload.
    std::size_t j = i + 1;
    while (j < specs.size() && j - i < kMaxLanes && lowered[j] &&
           same_batch_workload(*lowered[i], *lowered[j])) {
      ++j;
    }
    if (j - i == 1) {
      results[i] = run_sim(specs[i]);
    } else {
      std::vector<PrefetchCacheConfig> cfgs;
      cfgs.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) cfgs.push_back(*lowered[k]);
      const std::vector<PrefetchCacheResult> batch =
          run_prefetch_cache_batch(cfgs);
      for (std::size_t k = i; k < j; ++k) {
        results[k] = from_prefetch_cache_result(batch[k - i]);
      }
    }
    i = j;
  }
  return results;
}

// ---- String forms -------------------------------------------------------

const char* to_string(SimDriverKind kind) {
  return find_driver(kind).name;
}

const char* to_string(SimWorkloadKind kind) {
  switch (kind) {
    case SimWorkloadKind::Markov: return "markov";
    case SimWorkloadKind::Iid: return "iid";
    case SimWorkloadKind::Zipf: return "zipf";
    case SimWorkloadKind::MarkovDrift: return "markov_drift";
    case SimWorkloadKind::TraceText: return "trace_text";
    case SimWorkloadKind::Adversarial: return "adversarial";
  }
  return "?";
}

const char* to_string(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::LRU: return "lru";
    case ReplacementKind::FIFO: return "fifo";
    case ReplacementKind::LFU: return "lfu";
    case ReplacementKind::Random: return "random";
  }
  return "?";
}

const char* policy_token(PrefetchPolicy policy) {
  switch (policy) {
    case PrefetchPolicy::None: return "none";
    case PrefetchPolicy::KP: return "kp";
    case PrefetchPolicy::SKP: return "skp";
    case PrefetchPolicy::Perfect: return "perfect";
  }
  return "?";
}

const char* sub_token(SubArbitration sub) {
  switch (sub) {
    case SubArbitration::None: return "none";
    case SubArbitration::LFU: return "lfu";
    case SubArbitration::DS: return "ds";
  }
  return "?";
}

const char* delta_token(DeltaRule rule) {
  switch (rule) {
    case DeltaRule::ExactComplement: return "exact";
    case DeltaRule::PaperTail: return "paper";
  }
  return "?";
}

namespace {

template <typename Enum, std::size_t N>
std::optional<Enum> parse_token(
    std::string_view name, const std::pair<const char*, Enum> (&table)[N]) {
  for (const auto& [token, value] : table) {
    if (name == token) return value;
  }
  return std::nullopt;
}

}  // namespace

std::optional<SimDriverKind> parse_driver_kind(std::string_view name) {
  if (const SimDriver* d = find_driver(name)) return d->kind;
  return std::nullopt;
}

std::optional<SimWorkloadKind> parse_workload_kind(std::string_view name) {
  static constexpr std::pair<const char*, SimWorkloadKind> table[] = {
      {"markov", SimWorkloadKind::Markov},
      {"iid", SimWorkloadKind::Iid},
      {"zipf", SimWorkloadKind::Zipf},
      {"markov_drift", SimWorkloadKind::MarkovDrift},
      {"trace_text", SimWorkloadKind::TraceText},
      {"adversarial", SimWorkloadKind::Adversarial},
  };
  return parse_token(name, table);
}

std::optional<ReplacementKind> parse_replacement_kind(
    std::string_view name) {
  static constexpr std::pair<const char*, ReplacementKind> table[] = {
      {"lru", ReplacementKind::LRU},
      {"fifo", ReplacementKind::FIFO},
      {"lfu", ReplacementKind::LFU},
      {"random", ReplacementKind::Random},
  };
  return parse_token(name, table);
}

std::optional<PrefetchPolicy> parse_policy(std::string_view name) {
  static constexpr std::pair<const char*, PrefetchPolicy> table[] = {
      {"none", PrefetchPolicy::None},
      {"kp", PrefetchPolicy::KP},
      {"skp", PrefetchPolicy::SKP},
      {"perfect", PrefetchPolicy::Perfect},
  };
  return parse_token(name, table);
}

std::optional<SubArbitration> parse_sub_arbitration(std::string_view name) {
  static constexpr std::pair<const char*, SubArbitration> table[] = {
      {"none", SubArbitration::None},
      {"lfu", SubArbitration::LFU},
      {"ds", SubArbitration::DS},
  };
  return parse_token(name, table);
}

std::optional<DeltaRule> parse_delta_rule(std::string_view name) {
  static constexpr std::pair<const char*, DeltaRule> table[] = {
      {"exact", DeltaRule::ExactComplement},
      {"paper", DeltaRule::PaperTail},
  };
  return parse_token(name, table);
}

std::optional<PredictorKind> parse_predictor_kind(std::string_view name) {
  static constexpr std::pair<const char*, PredictorKind> table[] = {
      {"oracle", PredictorKind::Oracle},
      {"markov1", PredictorKind::Markov1},
      {"ppm", PredictorKind::Ppm},
      {"depgraph", PredictorKind::DependencyWindow},
      {"lz78", PredictorKind::Lz78},
  };
  return parse_token(name, table);
}

std::optional<ProbMethod> parse_prob_method(std::string_view name) {
  static constexpr std::pair<const char*, ProbMethod> table[] = {
      {"skewy", ProbMethod::Skewy},
      {"flat", ProbMethod::Flat},
  };
  return parse_token(name, table);
}

// ---- Workload materialization -------------------------------------------

MaterializedWorkload materialize_workload(const SimWorkload& w,
                                          std::size_t requests, Rng& build,
                                          Rng& walk) {
  SKP_REQUIRE(w.n_items >= 2, "n_items must be >= 2");
  MaterializedWorkload out;
  out.n_items = w.n_items;
  out.cycles.reserve(requests);
  switch (w.kind) {
    case SimWorkloadKind::Markov:
    case SimWorkloadKind::MarkovDrift:
    case SimWorkloadKind::Zipf:
    case SimWorkloadKind::Adversarial: {
      const MarkovSourceConfig mcfg = to_markov_config(w);
      MarkovSource src =
          w.kind == SimWorkloadKind::Zipf
              ? make_zipf_source(to_zipf_config(w), build)
          : w.kind == SimWorkloadKind::Adversarial
              ? make_adversarial_source(to_adversarial_config(w), build)
              : MarkovSource(mcfg, build);
      Rng drift_rng = build.split(kPrefetchCacheDriftSalt);
      const std::size_t period =
          w.kind == SimWorkloadKind::MarkovDrift ? w.drift_period : 0;
      for (std::size_t i = 0; i < requests; ++i) {
        if (period != 0 && i != 0 && i % period == 0) {
          src.redraw_transitions(mcfg, drift_rng);
        }
        const double v = src.viewing_time(src.current_state());
        const auto item = static_cast<ItemId>(src.step(walk));
        out.cycles.push_back({item, v});
      }
      out.retrieval_times.assign(src.retrieval_times().begin(),
                                 src.retrieval_times().end());
      break;
    }
    case SimWorkloadKind::Iid: {
      Instance inst;
      inst.P = w.method == ProbMethod::Skewy
                   ? skewy_probabilities(w.n_items, build, w.skew_exponent)
                   : flat_probabilities(w.n_items, build);
      inst.r.assign(w.n_items, 1.0);  // placeholder; re-drawn below
      inst.v = w.iid_viewing_time;
      IidStream stream(std::move(inst));
      for (std::size_t i = 0; i < requests; ++i) {
        const RequestEvent e = stream.next(walk);
        out.cycles.push_back({e.item, e.instance.v});
      }
      // Catalog retrieval times drawn after the row so consumers that
      // re-ground r elsewhere (scenario/netsim catalogs) see the same P.
      out.retrieval_times.resize(w.n_items);
      for (auto& r : out.retrieval_times) {
        r = build.uniform_time(w.r_lo, w.r_hi, w.integer_times);
      }
      break;
    }
    case SimWorkloadKind::TraceText: {
      const MarkovSourceConfig mcfg = to_markov_config(w);
      MarkovSource src(mcfg, build);
      Trace recorded(w.n_items,
                     std::vector<double>(src.retrieval_times().begin(),
                                         src.retrieval_times().end()));
      for (std::size_t i = 0; i < requests; ++i) {
        const double v = src.viewing_time(src.current_state());
        recorded.append(static_cast<ItemId>(src.step(walk)), v);
      }
      std::stringstream io;
      recorded.save(io);
      const Trace replayed = Trace::load(io);
      out.cycles.assign(replayed.records().begin(),
                        replayed.records().end());
      out.retrieval_times = replayed.retrieval_times();
      break;
    }
  }
  return out;
}

// ---- simctl substrate ---------------------------------------------------

bool shard_owns(std::size_t index, std::size_t shard_index,
                std::size_t shard_count) {
  SKP_REQUIRE(shard_count >= 1, "shard count must be >= 1");
  SKP_REQUIRE(shard_index < shard_count,
              "shard index " << shard_index << " out of range 0.."
                             << shard_count - 1);
  return index % shard_count == shard_index;
}

std::vector<std::string> sim_csv_header() {
  return {
      "index",          "driver",
      "workload",       "n_items",
      "policy",         "sub",
      "delta",          "predictor",
      "min_prob",       "predictor_warmup",
      "replacement",    "pr_planning",
      "cache_size",     "sized_capacity",
      "size_per_r",     "requests",
      "warmup",         "seed",
      "bandwidth",      "latency",
      "threshold",      "drift_period",
      "clients",        "phase_align",
      "churn_period",   "link_phases",
      "plan_cache",
      "hit_rate",       "mean_T",
      "net_per_req",    "prefetch_net",
      "demand_net",     "hits",
      "resident_hits",  "demand",
      "prefetched",
      "wasted",         "solver_nodes",
      "plan_hit_rate",  "select_hit_rate",
      "plans",          "budget_violations",
      "link_util",      "over_viewing",
      "churn_events",   "fail_rate",
      "stall_rate",     "timeout",
      "retry_max",      "overload",
      "deadline",       "failed",
      "fault_retries",  "abandoned",
      "rung_transitions", "max_rung",
      "degraded",       "deadline_hits",
  };
}

void append_sim_csv_row(CsvWriter& writer, std::size_t index,
                        const SimSpec& spec, const SimResult& result) {
  const SimMetrics& m = result.metrics;
  // Spec cells record the values actually in force, not inert struct
  // defaults: a field no simulator consulted (the slot size of a sized
  // or flush-per-request run, the shortlist floor of an oracle run, the
  // drift period of a static workload) prints as its zero so the sweep
  // document never claims a parameter study that did not happen.
  const bool slot_cache = spec.driver != SimDriverKind::PrefetchOnly &&
                          spec.sized_capacity == 0.0;
  const bool learned = spec.predictor != PredictorKind::Oracle;
  const std::size_t drift_period =
      spec.workload.kind == SimWorkloadKind::MarkovDrift
          ? spec.workload.drift_period
          : 0;
  const bool multi = spec.driver == SimDriverKind::MultiClientDes;
  const std::size_t clients = multi ? spec.multi_client.clients : 0;
  const double phase_align = multi ? spec.multi_client.phase_align : 0.0;
  const double churn_period = multi ? spec.multi_client.churn_period : 0.0;
  const bool des = multi || spec.driver == SimDriverKind::NetsimDes;
  const std::size_t link_phases = des ? spec.link_schedule.size() : 0;
  const bool faulty = des && spec.fault.enabled();
  writer.row_of(
      index, to_string(spec.driver), to_string(spec.workload.kind),
      spec.workload.n_items, policy_token(spec.policy),
      sub_token(spec.sub), delta_token(spec.delta_rule),
      to_string(spec.predictor),
      learned ? spec.predictor_min_prob : 0.0,
      spec.predictor_warmup, to_string(spec.replacement),
      spec.pr_planning ? 1 : 0, slot_cache ? spec.cache_size : 0,
      spec.sized_capacity,
      spec.size_per_r, spec.requests, spec.warmup, spec.seed,
      spec.bandwidth, spec.latency,
      spec.min_profit_threshold, drift_period,
      clients, phase_align, churn_period, link_phases,
      spec.use_plan_cache ? 1 : 0, m.hit_rate(),
      m.mean_access_time(),
      m.network_time_per_request(), m.prefetch_network_time,
      m.demand_network_time, m.hits, result.resident_hits(),
      m.demand_fetches, m.prefetch_fetches,
      m.wasted_prefetches, m.solver_nodes,
      result.plan_cache.plans.hit_rate(),
      result.plan_cache.selections.hit_rate(), result.plans,
      result.budget_violations, result.link_utilization,
      result.over_viewing_time, result.churn_events,
      faulty ? spec.fault.fail_rate : 0.0,
      faulty ? spec.fault.stall_rate : 0.0,
      faulty ? spec.fault.timeout : 0.0,
      faulty ? spec.fault.retry.max_attempts : 0,
      des && spec.overload.enabled ? 1 : 0, des ? spec.deadline : 0.0,
      result.fault.failed_transfers, result.fault.retries,
      result.fault.abandoned, result.overload.transitions,
      result.overload.max_rung, result.overload.degraded_requests,
      result.deadline_hits);
}

std::vector<std::string> per_client_csv_header() {
  return {
      "index",      "client",        "requests",
      "hit_rate",   "mean_T",        "net_per_req",
      "hits",       "resident_hits", "demand",
      "prefetched", "wasted",        "solver_nodes",
  };
}

void append_per_client_csv_rows(CsvWriter& writer, std::size_t index,
                                const SimSpec& spec,
                                const SimResult& result) {
  (void)spec;
  for (std::size_t c = 0; c < result.per_client.size(); ++c) {
    const SimMetrics& m = result.per_client[c];
    writer.row_of(index, c, m.requests, m.hit_rate(),
                  m.mean_access_time(), m.network_time_per_request(),
                  m.hits, m.requests - m.demand_fetches, m.demand_fetches,
                  m.prefetch_fetches, m.wasted_prefetches, m.solver_nodes);
  }
}

std::string merge_sharded_csv(const std::vector<std::string>& shards,
                              const std::vector<std::string>& names) {
  SKP_REQUIRE(!shards.empty(), "no shard documents to merge");
  SKP_REQUIRE(names.empty() || names.size() == shards.size(),
              "shard name list must match the document list");
  const auto shard_name = [&](std::size_t i) {
    return names.empty() ? "shard document #" + std::to_string(i + 1)
                         : names[i];
  };
  const auto parse_field = [](const std::string& text, const char* what) {
    std::size_t pos = 0;
    std::size_t value = 0;
    try {
      value = std::stoull(text, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    SKP_REQUIRE(pos == text.size() && pos > 0,
                "non-numeric row " << what << ": " << text);
    return value;
  };
  std::string header;
  // A per-client companion document keys on (index, client); the main
  // sweep document keys on index alone (client fixed at 0).
  bool per_client = false;
  // (index, client) -> (row text, source document) — the source lets a
  // collision diagnostic name both inputs, the usual symptom of merging
  // the same shard file twice or mixing overlapping shard schemes.
  std::map<std::pair<std::size_t, std::size_t>,
           std::pair<std::string, std::size_t>>
      rows;
  for (std::size_t d = 0; d < shards.size(); ++d) {
    std::istringstream is(shards[d]);
    std::string line;
    SKP_REQUIRE(static_cast<bool>(std::getline(is, line)),
                "empty shard document: " << shard_name(d));
    if (header.empty()) {
      header = line;
      per_client = header.rfind("index,client,", 0) == 0;
    } else {
      SKP_REQUIRE(line == header, "shard header mismatch in "
                                      << shard_name(d) << ": " << line);
    }
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      // simctl marks a signal-interrupted sweep with a "# interrupted
      // at spec N" trailer. Such a document is a valid PARTIAL record
      // for a human, but merging it would silently produce an
      // incomplete sweep — reject it and make the operator re-run the
      // shard.
      SKP_REQUIRE(line[0] != '#',
                  "shard " << shard_name(d)
                           << " is an interrupted partial (" << line
                           << ") — re-run that shard before merging");
      const std::size_t comma = line.find(',');
      SKP_REQUIRE(comma != std::string::npos && comma > 0,
                  "malformed shard row: " << line);
      const std::size_t index =
          parse_field(line.substr(0, comma), "index");
      std::size_t client = 0;
      if (per_client) {
        const std::size_t comma2 = line.find(',', comma + 1);
        SKP_REQUIRE(comma2 != std::string::npos && comma2 > comma + 1,
                    "malformed per-client row: " << line);
        client = parse_field(
            line.substr(comma + 1, comma2 - comma - 1), "client");
      }
      const auto [it, inserted] =
          rows.emplace(std::pair(index, client), std::pair(line, d));
      SKP_REQUIRE(inserted, "duplicate spec index "
                                << index
                                << (per_client ? " client " +
                                                     std::to_string(client)
                                               : std::string())
                                << " (in " << shard_name(d)
                                << ", first seen in "
                                << shard_name(it->second.second)
                                << ") — overlapping shard inputs?");
    }
  }
  std::string out = header;
  out += '\n';
  std::size_t expect = 0;
  std::size_t expect_client = 0;
  for (const auto& [key, row] : rows) {
    if (!per_client) {
      SKP_REQUIRE(key.first == expect,
                  "missing row index " << expect << " (next present: "
                                       << key.first << ")");
      ++expect;
    } else if (key.first == expect && key.second == expect_client) {
      // Next client row of the current spec.
      ++expect_client;
    } else if (key.first == expect + 1 && key.second == 0 &&
               expect_client > 0) {
      // First client row of the next spec.
      expect = key.first;
      expect_client = 1;
    } else {
      SKP_REQUIRE(false, "per-client rows not dense: expected index "
                             << expect << " client " << expect_client
                             << " or index " << expect + 1
                             << " client 0, got index " << key.first
                             << " client " << key.second);
    }
    out += row.first;
    out += '\n';
  }
  return out;
}

}  // namespace skp
