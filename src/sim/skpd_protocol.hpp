// skpd wire protocol: length-prefixed frames over a loopback stream.
//
// Layout of every frame, little-endian throughout:
//
//   u32 length   — byte count of everything after this field (>= 1)
//   u8  type     — SkpdFrameType
//   ...payload   — type-specific, length - 1 bytes
//
// Fixed-width numeric payload fields are raw little-endian u32/u64;
// doubles travel as the u64 bit pattern of the IEEE-754 value, so every
// access time and metric round-trips EXACTLY (the resume contract is
// bit-identity, not approximate equality). Variable-size payloads (the
// spec in HELLO, the final result in STATS_RESULT, error text) are
// `key=value\n` text whose doubles are shortest-round-trip
// std::to_chars — also exact.
//
// Session state machine:
//
//   client                          server
//   ------                          ------
//   HELLO {version, token=0,  -->   create session from spec
//          last_ack=0, spec}  <--   WELCOME {token, executed=0}
//   STEP {seq=1, ack=0}       -->   execute cycle 1
//                             <--   STEP_RESULT {seq=1, ...}
//   ...                             (server retains results > last ack)
//   -- connection lost --           (session survives, detached)
//   HELLO {token, last_ack=k} -->   prune replay buffer through k
//                             <--   WELCOME {token, executed}
//   STEP {seq=k+1, ack=k}     -->   seq <= executed: REPLAY the stored
//                             <--   result (never re-execute — this is
//                                   what makes resume bit-identical);
//                                   seq == executed+1: execute.
//   PING {nonce}              <->   PONG {nonce}   (either direction)
//   STATS {}                  -->   (requires the run complete)
//                             <--   STATS_RESULT {result text}
//   BYE {}                    -->   session retired, connection closed
//
// Any protocol violation is answered with ERROR {message} and the
// connection is dropped; the session itself survives until the daemon's
// linger deadline so a well-behaved client can still resume.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/netsim_stepper.hpp"
#include "sim/runtime.hpp"

namespace skp {

// "SKPD" — first payload field of HELLO, so a stray client speaking some
// other protocol is rejected before anything is parsed as a spec.
inline constexpr std::uint32_t kSkpdMagic = 0x44504B53u;
inline constexpr std::uint32_t kSkpdProtocolVersion = 1;
// Hard ceiling on a single frame (type byte + payload). A spec or result
// text is a few KB; anything near this size is a corrupt or hostile
// length prefix, and parse_skpd_frame throws rather than buffering it.
inline constexpr std::size_t kSkpdMaxFrameBytes = 1u << 20;

enum class SkpdFrameType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kStep = 3,
  kStepResult = 4,
  kPing = 5,
  kPong = 6,
  kStats = 7,
  kStatsResult = 8,
  kBye = 9,
  kError = 10,
};

const char* to_string(SkpdFrameType type);

struct SkpdHello {
  std::uint32_t version = kSkpdProtocolVersion;
  std::uint64_t token = 0;     // 0 = new session; else resume this token
  std::uint64_t last_ack = 0;  // highest STEP_RESULT seq the client holds
  std::string spec_text;       // encode_sim_spec() of the session's spec
};

struct SkpdWelcome {
  std::uint64_t token = 0;
  std::uint64_t executed = 0;  // cycles the session has already run
  bool resumed = false;
};

struct SkpdStep {
  std::uint64_t seq = 0;  // 1-based cycle to execute or replay
  std::uint64_t ack = 0;  // highest result seq received; prunes replay
};

// ---- Framing ------------------------------------------------------------

struct SkpdFrame {
  SkpdFrameType type;
  std::string_view payload;  // view into the caller's buffer
};

// Appends one complete frame to `out`.
void append_skpd_frame(std::string& out, SkpdFrameType type,
                       std::string_view payload);

// Parses the frame starting at buf[offset]. Returns std::nullopt when the
// buffer does not yet hold a complete frame (read more); on success
// advances `offset` past the frame. Throws std::invalid_argument on a
// zero or oversized length prefix or an unknown type — the connection is
// unrecoverable at that point.
std::optional<SkpdFrame> parse_skpd_frame(std::string_view buf,
                                          std::size_t& offset);

// ---- Fixed-layout payload codecs ----------------------------------------
// decode_* throw std::invalid_argument on short/long payloads.

std::string encode_hello(const SkpdHello& hello);
SkpdHello decode_hello(std::string_view payload);

std::string encode_welcome(const SkpdWelcome& welcome);
SkpdWelcome decode_welcome(std::string_view payload);

std::string encode_step(const SkpdStep& step);
SkpdStep decode_step(std::string_view payload);

std::string encode_step_result(const NetsimStepSnapshot& snap);
NetsimStepSnapshot decode_step_result(std::string_view payload);

std::string encode_ping(std::uint64_t nonce);
std::uint64_t decode_ping(std::string_view payload);

// ---- Spec / result text codecs ------------------------------------------
// `key=value` lines; exact double round-trip via std::to_chars/from_chars.
// decode_sim_spec rejects unknown keys (reject-don't-drop: a client from
// a newer build must not have a field silently ignored); encode_sim_spec
// rejects spec sections the daemon cannot serve (multi_client overrides).

std::string encode_sim_spec(const SimSpec& spec);
SimSpec decode_sim_spec(std::string_view text);

// Covers every field a netsim_des SimResult populates (metrics including
// the exact OnlineStats state, plan-memo tiers, fault/overload books,
// link utilization). Throws on results carrying driver-specific extras
// the wire does not model (per_client rows, the Fig.-5 curve).
std::string encode_sim_result(const SimResult& result);
SimResult decode_sim_result(std::string_view text);

}  // namespace skp
