// Parallel sweep driver for independent simulation points.
//
// The paper's figure experiments are embarrassingly parallel across sweep
// points: each (policy, cache size) / (panel, policy) / (threshold) cell is
// a complete, independently seeded simulation (the workload RNG is derived
// from the config seed, never from shared state). sweep_points fans those
// cells onto the shared util/thread_pool and returns the results in input
// order, so a parallel sweep is *bit-identical* to running the same cells
// in a serial loop — thread count and scheduling only change wall-clock
// (tests/test_sweep.cpp locks this down).
//
// Exception policy: all jobs are always joined; the first failure (by
// input index, not completion order) is rethrown after the join, matching
// util/thread_pool's parallel_chunks.
#pragma once

#include <cstddef>
#include <exception>
#include <future>
#include <optional>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace skp {

// Runs job(0), ..., job(n-1) on `pool` and returns their results in index
// order. `Job` is any callable std::size_t -> R; R needs to be movable.
// Jobs must be self-contained (own their RNG streams, no shared mutable
// state) — that is what makes the fan-out result-equivalent to a serial
// loop.
template <typename Job>
auto sweep_points(ThreadPool& pool, std::size_t n, Job&& job)
    -> std::vector<decltype(job(std::size_t{0}))> {
  using R = decltype(job(std::size_t{0}));
  std::vector<std::optional<R>> slots(n);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&slots, &job, i] {
      slots[i].emplace(job(i));
    }));
  }
  // Join everything before rethrowing: a failed job must not leave
  // siblings running with dangling references to `slots`/`job`.
  std::exception_ptr first_failure;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_failure) first_failure = std::current_exception();
    }
  }
  if (first_failure) std::rethrow_exception(first_failure);

  std::vector<R> results;
  results.reserve(n);
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

// Convenience overload: one job per element of `configs`, invoked as
// job(config) with the config copied into the task (safe for temporaries).
template <typename Config, typename Job>
auto sweep_configs(ThreadPool& pool, const std::vector<Config>& configs,
                   Job&& job) -> std::vector<decltype(job(configs[0]))> {
  return sweep_points(pool, configs.size(),
                      [&](std::size_t i) { return job(configs[i]); });
}

}  // namespace skp
