// Minimal discrete-event simulation core.
//
// A time-ordered queue of closures with stable FIFO ordering among events
// scheduled for the same instant (seq number breaks ties), plus a simulated
// clock. Header-only; the netsim builds on it.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/require.hpp"

namespace skp {

class EventQueue {
 public:
  using Action = std::function<void()>;

  double now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  std::uint64_t processed() const noexcept { return processed_; }

  // Schedules `action` at absolute time `when` (>= now).
  void schedule_at(double when, Action action) {
    SKP_REQUIRE(when >= now_, "schedule_at(" << when << ") before now="
                                             << now_);
    heap_.push(Event{when, seq_++, std::move(action)});
  }

  // Schedules `action` `delay` time units from now.
  void schedule_in(double delay, Action action) {
    SKP_REQUIRE(delay >= 0.0, "negative delay " << delay);
    schedule_at(now_ + delay, std::move(action));
  }

  // Absolute time of the earliest pending event; requires !empty().
  // Lets a real-time wrapper (the skpd daemon runs this queue against
  // the wall clock) sleep in poll() exactly until the next timer.
  double next_when() const {
    SKP_REQUIRE(!heap_.empty(), "next_when() on an empty event queue");
    return heap_.top().when;
  }

  // Runs the earliest event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // Take the event out before pop so the action may schedule more
    // events — by MOVE, not copy: top() is const&, but the element is
    // popped immediately, so stealing the closure is safe (the ordering
    // keys `when`/`seq` are trivially copied and stay valid for pop()'s
    // sift-down comparisons). A copy here would clone the
    // std::function and every capture once per event, the dominant
    // per-event overhead for capture-heavy DES closures.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ++processed_;
    ev.action();
    return true;
  }

  // Runs until empty or until the clock passes `horizon` (inclusive).
  void run_until(double horizon) {
    while (!heap_.empty() && heap_.top().when <= horizon) step();
    if (now_ < horizon) now_ = horizon;
  }

  // Drains every event (use only when the event set is known finite).
  void run_all() {
    while (step()) {
    }
  }

  // Advances the clock without processing (idle time).
  void advance_to(double when) {
    SKP_REQUIRE(when >= now_, "advance_to into the past");
    SKP_REQUIRE(heap_.empty() || heap_.top().when >= when,
                "advance_to would skip a pending event");
    now_ = when;
  }

 private:
  struct Event {
    double when;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace skp
