#include "sim/skpd_session.hpp"

#include "sim/skpd_protocol.hpp"
#include "util/require.hpp"

namespace skp {

void SkpdSession::acknowledge(std::uint64_t ack) {
  SKP_REQUIRE(ack <= executed(),
              "ack " << ack << " past executed watermark " << executed());
  while (!replay_.empty() && replay_.front().seq <= ack) {
    replay_.pop_front();
  }
  acked_ = std::max(acked_, ack);
}

NetsimStepSnapshot SkpdSession::step(std::uint64_t seq,
                                     std::uint64_t ack) {
  acknowledge(ack);
  SKP_REQUIRE(seq >= acked_ + 1 && seq <= executed() + 1,
              "step seq " << seq << " outside window ["
                          << acked_ + 1 << ", " << executed() + 1
                          << "]");
  if (seq <= executed()) {
    // Redelivery after a lost result: answer from the buffer. The cycle
    // ran exactly once; this is what keeps resume bit-identical.
    const std::size_t idx = static_cast<std::size_t>(seq - acked_ - 1);
    SKP_ASSERT(idx < replay_.size());
    return replay_[idx];
  }
  SKP_REQUIRE(!stepper_.done(),
              "step seq " << seq << " past the spec's "
                          << stepper_.total() << " cycles");
  const NetsimStepSnapshot snap = stepper_.step();
  SKP_ASSERT(snap.seq == seq);
  replay_.push_back(snap);
  return snap;
}

SkpdSession& SkpdSessionStore::create(const std::string& spec_text) {
  return create(decode_sim_spec(spec_text), nullptr);
}

SkpdSession& SkpdSessionStore::create(
    const SimSpec& spec, std::shared_ptr<const SharedCatalog> catalog) {
  const std::uint64_t token = next_token_++;
  auto session = catalog
                     ? std::make_unique<SkpdSession>(token, spec,
                                                     std::move(catalog))
                     : std::make_unique<SkpdSession>(token, spec);
  return sessions_.insert(token, std::move(session));
}

}  // namespace skp
