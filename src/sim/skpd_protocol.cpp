#include "sim/skpd_protocol.hpp"

#include <bit>
#include <charconv>
#include <cstring>

#include "util/require.hpp"

namespace skp {

const char* to_string(SkpdFrameType type) {
  switch (type) {
    case SkpdFrameType::kHello: return "HELLO";
    case SkpdFrameType::kWelcome: return "WELCOME";
    case SkpdFrameType::kStep: return "STEP";
    case SkpdFrameType::kStepResult: return "STEP_RESULT";
    case SkpdFrameType::kPing: return "PING";
    case SkpdFrameType::kPong: return "PONG";
    case SkpdFrameType::kStats: return "STATS";
    case SkpdFrameType::kStatsResult: return "STATS_RESULT";
    case SkpdFrameType::kBye: return "BYE";
    case SkpdFrameType::kError: return "ERROR";
  }
  return "?";
}

namespace {

// ---- Little-endian scalar packing ---------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(byte()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(byte()) << (8 * i);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  bool flag() { return byte() != 0; }
  std::string_view rest() {
    std::string_view r = data_.substr(pos_);
    pos_ = data_.size();
    return r;
  }
  void done() const {
    SKP_REQUIRE(pos_ == data_.size(),
                "skpd frame payload has " << data_.size() - pos_
                                          << " trailing bytes");
  }

 private:
  std::uint8_t byte() {
    SKP_REQUIRE(pos_ < data_.size(), "skpd frame payload truncated");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- key=value text helpers ---------------------------------------------

std::string fmt_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SKP_REQUIRE(ec == std::errc(), "double formatting failed");
  return std::string(buf, ptr);
}

void put_kv(std::string& out, std::string_view key, std::string_view v) {
  out += key;
  out += '=';
  out += v;
  out += '\n';
}

void put_kv(std::string& out, std::string_view key, const char* v) {
  put_kv(out, key, std::string_view(v));
}

void put_kv(std::string& out, std::string_view key, double v) {
  put_kv(out, key, std::string_view(fmt_double(v)));
}

void put_kv(std::string& out, std::string_view key, bool v) {
  put_kv(out, key, std::string_view(v ? "1" : "0"));
}

template <typename Int>
  requires std::is_integral_v<Int>
void put_kv(std::string& out, std::string_view key, Int v) {
  put_kv(out, key, std::string_view(std::to_string(v)));
}

double parse_double(std::string_view text, std::string_view key) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  SKP_REQUIRE(ec == std::errc() && ptr == text.data() + text.size(),
              "bad double for skpd key " << key << ": " << text);
  return v;
}

std::uint64_t parse_u64(std::string_view text, std::string_view key) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  SKP_REQUIRE(ec == std::errc() && ptr == text.data() + text.size(),
              "bad integer for skpd key " << key << ": " << text);
  return v;
}

std::size_t parse_size(std::string_view text, std::string_view key) {
  return static_cast<std::size_t>(parse_u64(text, key));
}

bool parse_bool(std::string_view text, std::string_view key) {
  SKP_REQUIRE(text == "0" || text == "1",
              "bad flag for skpd key " << key << ": " << text);
  return text == "1";
}

// Applies `fn(key, value)` to every `key=value` line of `text`.
template <typename Fn>
void for_each_kv(std::string_view text, Fn&& fn) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    SKP_REQUIRE(eq != std::string_view::npos && eq > 0,
                "malformed skpd key=value line: " << line);
    fn(line.substr(0, eq), line.substr(eq + 1));
  }
}

}  // namespace

// ---- Framing ------------------------------------------------------------

void append_skpd_frame(std::string& out, SkpdFrameType type,
                       std::string_view payload) {
  SKP_REQUIRE(payload.size() + 1 <= kSkpdMaxFrameBytes,
              "skpd frame payload too large: " << payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size() + 1));
  out.push_back(static_cast<char>(type));
  out += payload;
}

std::optional<SkpdFrame> parse_skpd_frame(std::string_view buf,
                                          std::size_t& offset) {
  SKP_REQUIRE(offset <= buf.size(), "frame offset past buffer end");
  if (buf.size() - offset < 4) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= std::uint32_t(static_cast<std::uint8_t>(buf[offset + i]))
              << (8 * i);
  }
  SKP_REQUIRE(length >= 1 && length <= kSkpdMaxFrameBytes,
              "skpd frame length " << length << " out of range 1.."
                                   << kSkpdMaxFrameBytes);
  if (buf.size() - offset - 4 < length) return std::nullopt;
  const auto raw = static_cast<std::uint8_t>(buf[offset + 4]);
  SKP_REQUIRE(raw >= static_cast<std::uint8_t>(SkpdFrameType::kHello) &&
                  raw <= static_cast<std::uint8_t>(SkpdFrameType::kError),
              "unknown skpd frame type " << int(raw));
  SkpdFrame frame;
  frame.type = static_cast<SkpdFrameType>(raw);
  frame.payload = buf.substr(offset + 5, length - 1);
  offset += 4 + length;
  return frame;
}

// ---- Fixed-layout payloads ----------------------------------------------

std::string encode_hello(const SkpdHello& hello) {
  std::string out;
  put_u32(out, kSkpdMagic);
  put_u32(out, hello.version);
  put_u64(out, hello.token);
  put_u64(out, hello.last_ack);
  out += hello.spec_text;
  return out;
}

SkpdHello decode_hello(std::string_view payload) {
  WireReader r(payload);
  SKP_REQUIRE(r.u32() == kSkpdMagic, "skpd HELLO magic mismatch");
  SkpdHello hello;
  hello.version = r.u32();
  hello.token = r.u64();
  hello.last_ack = r.u64();
  hello.spec_text = std::string(r.rest());
  return hello;
}

std::string encode_welcome(const SkpdWelcome& welcome) {
  std::string out;
  put_u64(out, welcome.token);
  put_u64(out, welcome.executed);
  out.push_back(welcome.resumed ? 1 : 0);
  return out;
}

SkpdWelcome decode_welcome(std::string_view payload) {
  WireReader r(payload);
  SkpdWelcome welcome;
  welcome.token = r.u64();
  welcome.executed = r.u64();
  welcome.resumed = r.flag();
  r.done();
  return welcome;
}

std::string encode_step(const SkpdStep& step) {
  std::string out;
  put_u64(out, step.seq);
  put_u64(out, step.ack);
  return out;
}

SkpdStep decode_step(std::string_view payload) {
  WireReader r(payload);
  SkpdStep step;
  step.seq = r.u64();
  step.ack = r.u64();
  r.done();
  return step;
}

std::string encode_step_result(const NetsimStepSnapshot& snap) {
  std::string out;
  put_u64(out, snap.seq);
  put_f64(out, snap.T);
  put_u64(out, snap.requests);
  put_u64(out, snap.hits);
  put_u64(out, snap.demand_fetches);
  put_u64(out, snap.prefetch_fetches);
  put_u64(out, snap.solver_nodes);
  put_u64(out, snap.plans);
  put_u64(out, snap.deadline_hits);
  return out;
}

NetsimStepSnapshot decode_step_result(std::string_view payload) {
  WireReader r(payload);
  NetsimStepSnapshot snap;
  snap.seq = r.u64();
  snap.T = r.f64();
  snap.requests = r.u64();
  snap.hits = r.u64();
  snap.demand_fetches = r.u64();
  snap.prefetch_fetches = r.u64();
  snap.solver_nodes = r.u64();
  snap.plans = r.u64();
  snap.deadline_hits = r.u64();
  r.done();
  return snap;
}

std::string encode_ping(std::uint64_t nonce) {
  std::string out;
  put_u64(out, nonce);
  return out;
}

std::uint64_t decode_ping(std::string_view payload) {
  WireReader r(payload);
  const std::uint64_t nonce = r.u64();
  r.done();
  return nonce;
}

// ---- Spec text ----------------------------------------------------------

std::string encode_sim_spec(const SimSpec& spec) {
  SKP_REQUIRE(spec.multi_client == MultiClientSpec{},
              "the skpd wire carries single-client specs; the "
              "multi_client section does not serialize");
  std::string out;
  put_kv(out, "driver", to_string(spec.driver));
  const SimWorkload& w = spec.workload;
  put_kv(out, "workload", to_string(w.kind));
  put_kv(out, "n_items", w.n_items);
  put_kv(out, "out_degree_lo", w.out_degree_lo);
  put_kv(out, "out_degree_hi", w.out_degree_hi);
  put_kv(out, "v_lo", w.v_lo);
  put_kv(out, "v_hi", w.v_hi);
  put_kv(out, "r_lo", w.r_lo);
  put_kv(out, "r_hi", w.r_hi);
  put_kv(out, "integer_times", w.integer_times);
  put_kv(out, "method", w.method == ProbMethod::Skewy ? "skewy" : "flat");
  put_kv(out, "skew_exponent", w.skew_exponent);
  put_kv(out, "iid_viewing_time", w.iid_viewing_time);
  put_kv(out, "zipf_exponent", w.zipf_exponent);
  put_kv(out, "zipf_shuffle", w.zipf_shuffle);
  put_kv(out, "drift_period", w.drift_period);
  put_kv(out, "adv_hot_set", w.adv_hot_set);
  put_kv(out, "adv_escape", w.adv_escape);
  put_kv(out, "policy", policy_token(spec.policy));
  put_kv(out, "sub", sub_token(spec.sub));
  put_kv(out, "delta", delta_token(spec.delta_rule));
  put_kv(out, "min_profit_threshold", spec.min_profit_threshold);
  put_kv(out, "predictor", to_string(spec.predictor));
  put_kv(out, "predictor_min_prob", spec.predictor_min_prob);
  put_kv(out, "predictor_warmup", spec.predictor_warmup);
  put_kv(out, "cache_size", spec.cache_size);
  put_kv(out, "sized_capacity", spec.sized_capacity);
  put_kv(out, "size_per_r", spec.size_per_r);
  put_kv(out, "size_lo", spec.size_lo);
  put_kv(out, "size_hi", spec.size_hi);
  put_kv(out, "replacement", to_string(spec.replacement));
  put_kv(out, "pr_planning", spec.pr_planning);
  put_kv(out, "bandwidth", spec.bandwidth);
  put_kv(out, "latency", spec.latency);
  if (!spec.link_schedule.empty()) {
    // duration:bandwidth:latency phases, ';'-separated.
    std::string phases;
    for (const LinkPhase& p : spec.link_schedule) {
      if (!phases.empty()) phases += ';';
      phases += fmt_double(p.duration);
      phases += ':';
      phases += fmt_double(p.bandwidth);
      phases += ':';
      phases += fmt_double(p.latency);
    }
    put_kv(out, "link_schedule", std::string_view(phases));
  }
  put_kv(out, "fail_rate", spec.fault.fail_rate);
  put_kv(out, "stall_rate", spec.fault.stall_rate);
  put_kv(out, "stall_factor", spec.fault.stall_factor);
  put_kv(out, "fault_timeout", spec.fault.timeout);
  put_kv(out, "retry_max_attempts", spec.fault.retry.max_attempts);
  put_kv(out, "retry_backoff_base", spec.fault.retry.backoff_base);
  put_kv(out, "retry_backoff_factor", spec.fault.retry.backoff_factor);
  put_kv(out, "retry_jitter", spec.fault.retry.jitter);
  put_kv(out, "overload_enabled", spec.overload.enabled);
  put_kv(out, "overload_window", spec.overload.window);
  put_kv(out, "overload_degrade_ratio", spec.overload.degrade_ratio);
  put_kv(out, "overload_recover_ratio", spec.overload.recover_ratio);
  put_kv(out, "overload_recover_windows", spec.overload.recover_windows);
  put_kv(out, "overload_headroom", spec.overload.headroom);
  put_kv(out, "overload_lookahead_depth", spec.overload.lookahead_depth);
  put_kv(out, "overload_budget_items", spec.overload.budget_items);
  put_kv(out, "deadline", spec.deadline);
  put_kv(out, "requests", spec.requests);
  put_kv(out, "warmup", spec.warmup);
  put_kv(out, "seed", spec.seed);
  put_kv(out, "use_plan_cache", spec.use_plan_cache);
  put_kv(out, "plan_cache_capacity", spec.plan_cache_capacity);
  put_kv(out, "pipeline_workers", spec.pipeline_workers);
  return out;
}

SimSpec decode_sim_spec(std::string_view text) {
  SimSpec spec;
  for_each_kv(text, [&](std::string_view key, std::string_view v) {
    SimWorkload& w = spec.workload;
    if (key == "driver") {
      const auto kind = parse_driver_kind(std::string(v));
      SKP_REQUIRE(kind, "unknown driver token: " << v);
      spec.driver = *kind;
    } else if (key == "workload") {
      const auto kind = parse_workload_kind(std::string(v));
      SKP_REQUIRE(kind, "unknown workload token: " << v);
      w.kind = *kind;
    } else if (key == "n_items") {
      w.n_items = parse_size(v, key);
    } else if (key == "out_degree_lo") {
      w.out_degree_lo = parse_size(v, key);
    } else if (key == "out_degree_hi") {
      w.out_degree_hi = parse_size(v, key);
    } else if (key == "v_lo") {
      w.v_lo = parse_double(v, key);
    } else if (key == "v_hi") {
      w.v_hi = parse_double(v, key);
    } else if (key == "r_lo") {
      w.r_lo = parse_double(v, key);
    } else if (key == "r_hi") {
      w.r_hi = parse_double(v, key);
    } else if (key == "integer_times") {
      w.integer_times = parse_bool(v, key);
    } else if (key == "method") {
      const auto method = parse_prob_method(std::string(v));
      SKP_REQUIRE(method, "unknown method token: " << v);
      w.method = *method;
    } else if (key == "skew_exponent") {
      w.skew_exponent = parse_double(v, key);
    } else if (key == "iid_viewing_time") {
      w.iid_viewing_time = parse_double(v, key);
    } else if (key == "zipf_exponent") {
      w.zipf_exponent = parse_double(v, key);
    } else if (key == "zipf_shuffle") {
      w.zipf_shuffle = parse_bool(v, key);
    } else if (key == "drift_period") {
      w.drift_period = parse_size(v, key);
    } else if (key == "adv_hot_set") {
      w.adv_hot_set = parse_size(v, key);
    } else if (key == "adv_escape") {
      w.adv_escape = parse_double(v, key);
    } else if (key == "policy") {
      const auto policy = parse_policy(std::string(v));
      SKP_REQUIRE(policy, "unknown policy token: " << v);
      spec.policy = *policy;
    } else if (key == "sub") {
      const auto sub = parse_sub_arbitration(std::string(v));
      SKP_REQUIRE(sub, "unknown sub token: " << v);
      spec.sub = *sub;
    } else if (key == "delta") {
      const auto delta = parse_delta_rule(std::string(v));
      SKP_REQUIRE(delta, "unknown delta token: " << v);
      spec.delta_rule = *delta;
    } else if (key == "min_profit_threshold") {
      spec.min_profit_threshold = parse_double(v, key);
    } else if (key == "predictor") {
      const auto predictor = parse_predictor_kind(std::string(v));
      SKP_REQUIRE(predictor, "unknown predictor token: " << v);
      spec.predictor = *predictor;
    } else if (key == "predictor_min_prob") {
      spec.predictor_min_prob = parse_double(v, key);
    } else if (key == "predictor_warmup") {
      spec.predictor_warmup = parse_size(v, key);
    } else if (key == "cache_size") {
      spec.cache_size = parse_size(v, key);
    } else if (key == "sized_capacity") {
      spec.sized_capacity = parse_double(v, key);
    } else if (key == "size_per_r") {
      spec.size_per_r = parse_double(v, key);
    } else if (key == "size_lo") {
      spec.size_lo = parse_double(v, key);
    } else if (key == "size_hi") {
      spec.size_hi = parse_double(v, key);
    } else if (key == "replacement") {
      const auto repl = parse_replacement_kind(std::string(v));
      SKP_REQUIRE(repl, "unknown replacement token: " << v);
      spec.replacement = *repl;
    } else if (key == "pr_planning") {
      spec.pr_planning = parse_bool(v, key);
    } else if (key == "bandwidth") {
      spec.bandwidth = parse_double(v, key);
    } else if (key == "latency") {
      spec.latency = parse_double(v, key);
    } else if (key == "link_schedule") {
      spec.link_schedule.clear();
      std::size_t pos = 0;
      while (pos < v.size()) {
        std::size_t end = v.find(';', pos);
        if (end == std::string_view::npos) end = v.size();
        const std::string_view phase = v.substr(pos, end - pos);
        pos = end + 1;
        const std::size_t c1 = phase.find(':');
        const std::size_t c2 =
            c1 == std::string_view::npos ? c1 : phase.find(':', c1 + 1);
        SKP_REQUIRE(c1 != std::string_view::npos &&
                        c2 != std::string_view::npos,
                    "malformed link phase: " << phase);
        LinkPhase p;
        p.duration = parse_double(phase.substr(0, c1), key);
        p.bandwidth = parse_double(phase.substr(c1 + 1, c2 - c1 - 1), key);
        p.latency = parse_double(phase.substr(c2 + 1), key);
        spec.link_schedule.push_back(p);
      }
    } else if (key == "fail_rate") {
      spec.fault.fail_rate = parse_double(v, key);
    } else if (key == "stall_rate") {
      spec.fault.stall_rate = parse_double(v, key);
    } else if (key == "stall_factor") {
      spec.fault.stall_factor = parse_double(v, key);
    } else if (key == "fault_timeout") {
      spec.fault.timeout = parse_double(v, key);
    } else if (key == "retry_max_attempts") {
      spec.fault.retry.max_attempts = parse_size(v, key);
    } else if (key == "retry_backoff_base") {
      spec.fault.retry.backoff_base = parse_double(v, key);
    } else if (key == "retry_backoff_factor") {
      spec.fault.retry.backoff_factor = parse_double(v, key);
    } else if (key == "retry_jitter") {
      spec.fault.retry.jitter = parse_double(v, key);
    } else if (key == "overload_enabled") {
      spec.overload.enabled = parse_bool(v, key);
    } else if (key == "overload_window") {
      spec.overload.window = parse_size(v, key);
    } else if (key == "overload_degrade_ratio") {
      spec.overload.degrade_ratio = parse_double(v, key);
    } else if (key == "overload_recover_ratio") {
      spec.overload.recover_ratio = parse_double(v, key);
    } else if (key == "overload_recover_windows") {
      spec.overload.recover_windows = parse_size(v, key);
    } else if (key == "overload_headroom") {
      spec.overload.headroom = parse_double(v, key);
    } else if (key == "overload_lookahead_depth") {
      spec.overload.lookahead_depth = parse_size(v, key);
    } else if (key == "overload_budget_items") {
      spec.overload.budget_items = parse_size(v, key);
    } else if (key == "deadline") {
      spec.deadline = parse_double(v, key);
    } else if (key == "requests") {
      spec.requests = parse_size(v, key);
    } else if (key == "warmup") {
      spec.warmup = parse_size(v, key);
    } else if (key == "seed") {
      spec.seed = parse_u64(v, key);
    } else if (key == "use_plan_cache") {
      spec.use_plan_cache = parse_bool(v, key);
    } else if (key == "plan_cache_capacity") {
      spec.plan_cache_capacity = parse_size(v, key);
    } else if (key == "pipeline_workers") {
      spec.pipeline_workers = parse_size(v, key);
    } else {
      // Reject-don't-drop at the wire too: a field this build does not
      // know cannot be silently ignored without breaking the "the spec
      // you sent is the spec that ran" contract.
      SKP_REQUIRE(false, "unknown skpd spec key: " << key);
    }
  });
  return spec;
}

// ---- Result text --------------------------------------------------------

namespace {

void put_plan_cache_stats(std::string& out, std::string_view prefix,
                          const PlanCacheStats& s) {
  put_kv(out, std::string(prefix) + "_hits", s.hits);
  put_kv(out, std::string(prefix) + "_misses", s.misses);
  put_kv(out, std::string(prefix) + "_inserts", s.inserts);
  put_kv(out, std::string(prefix) + "_evictions", s.evictions);
  put_kv(out, std::string(prefix) + "_door_rejects", s.door_rejects);
}

}  // namespace

std::string encode_sim_result(const SimResult& result) {
  SKP_REQUIRE(!result.avg_T_by_v && result.per_client.empty(),
              "the skpd wire carries netsim_des results; per-client rows "
              "and the avg-T-by-v curve do not serialize");
  std::string out;
  const SimMetrics& m = result.metrics;
  put_kv(out, "requests", m.requests);
  put_kv(out, "hits", m.hits);
  put_kv(out, "demand_fetches", m.demand_fetches);
  put_kv(out, "prefetch_fetches", m.prefetch_fetches);
  put_kv(out, "wasted_prefetches", m.wasted_prefetches);
  put_kv(out, "network_time", m.network_time);
  put_kv(out, "prefetch_network_time", m.prefetch_network_time);
  put_kv(out, "demand_network_time", m.demand_network_time);
  put_kv(out, "solver_nodes", m.solver_nodes);
  // Exact OnlineStats state so the client-side accumulator is the same
  // object the in-process run would hold.
  put_kv(out, "at_n", m.access_time.count());
  put_kv(out, "at_mean", m.access_time.mean());
  put_kv(out, "at_m2", m.access_time.m2());
  put_kv(out, "at_min", m.access_time.min());
  put_kv(out, "at_max", m.access_time.max());
  put_plan_cache_stats(out, "pc_plan", result.plan_cache.plans);
  put_plan_cache_stats(out, "pc_sel", result.plan_cache.selections);
  put_kv(out, "over_viewing_time", result.over_viewing_time);
  put_kv(out, "plans", result.plans);
  put_kv(out, "churn_events", result.churn_events);
  put_kv(out, "budget_violations", result.budget_violations);
  put_kv(out, "worst_budget_overrun", result.worst_budget_overrun);
  put_kv(out, "link_utilization", result.link_utilization);
  put_kv(out, "fault_failed", result.fault.failed_transfers);
  put_kv(out, "fault_timeouts", result.fault.timeouts);
  put_kv(out, "fault_stalled", result.fault.stalled);
  put_kv(out, "fault_retries", result.fault.retries);
  put_kv(out, "fault_abandoned", result.fault.abandoned);
  put_kv(out, "ov_transitions", result.overload.transitions);
  put_kv(out, "ov_forced_transitions", result.overload.forced_transitions);
  put_kv(out, "ov_max_rung", result.overload.max_rung);
  put_kv(out, "ov_degraded_requests", result.overload.degraded_requests);
  for (std::size_t i = 0; i < result.overload.requests_at_rung.size();
       ++i) {
    put_kv(out, "ov_rung" + std::to_string(i),
           result.overload.requests_at_rung[i]);
  }
  put_kv(out, "deadline_hits", result.deadline_hits);
  return out;
}

SimResult decode_sim_result(std::string_view text) {
  SimResult result;
  std::uint64_t at_n = 0;
  double at_mean = 0.0, at_m2 = 0.0, at_min = 0.0, at_max = 0.0;
  for_each_kv(text, [&](std::string_view key, std::string_view v) {
    SimMetrics& m = result.metrics;
    if (key == "requests") {
      m.requests = parse_u64(v, key);
    } else if (key == "hits") {
      m.hits = parse_u64(v, key);
    } else if (key == "demand_fetches") {
      m.demand_fetches = parse_u64(v, key);
    } else if (key == "prefetch_fetches") {
      m.prefetch_fetches = parse_u64(v, key);
    } else if (key == "wasted_prefetches") {
      m.wasted_prefetches = parse_u64(v, key);
    } else if (key == "network_time") {
      m.network_time = parse_double(v, key);
    } else if (key == "prefetch_network_time") {
      m.prefetch_network_time = parse_double(v, key);
    } else if (key == "demand_network_time") {
      m.demand_network_time = parse_double(v, key);
    } else if (key == "solver_nodes") {
      m.solver_nodes = parse_u64(v, key);
    } else if (key == "at_n") {
      at_n = parse_u64(v, key);
    } else if (key == "at_mean") {
      at_mean = parse_double(v, key);
    } else if (key == "at_m2") {
      at_m2 = parse_double(v, key);
    } else if (key == "at_min") {
      at_min = parse_double(v, key);
    } else if (key == "at_max") {
      at_max = parse_double(v, key);
    } else if (key == "pc_plan_hits") {
      result.plan_cache.plans.hits = parse_u64(v, key);
    } else if (key == "pc_plan_misses") {
      result.plan_cache.plans.misses = parse_u64(v, key);
    } else if (key == "pc_plan_inserts") {
      result.plan_cache.plans.inserts = parse_u64(v, key);
    } else if (key == "pc_plan_evictions") {
      result.plan_cache.plans.evictions = parse_u64(v, key);
    } else if (key == "pc_plan_door_rejects") {
      result.plan_cache.plans.door_rejects = parse_u64(v, key);
    } else if (key == "pc_sel_hits") {
      result.plan_cache.selections.hits = parse_u64(v, key);
    } else if (key == "pc_sel_misses") {
      result.plan_cache.selections.misses = parse_u64(v, key);
    } else if (key == "pc_sel_inserts") {
      result.plan_cache.selections.inserts = parse_u64(v, key);
    } else if (key == "pc_sel_evictions") {
      result.plan_cache.selections.evictions = parse_u64(v, key);
    } else if (key == "pc_sel_door_rejects") {
      result.plan_cache.selections.door_rejects = parse_u64(v, key);
    } else if (key == "over_viewing_time") {
      result.over_viewing_time = parse_u64(v, key);
    } else if (key == "plans") {
      result.plans = parse_u64(v, key);
    } else if (key == "churn_events") {
      result.churn_events = parse_u64(v, key);
    } else if (key == "budget_violations") {
      result.budget_violations = parse_u64(v, key);
    } else if (key == "worst_budget_overrun") {
      result.worst_budget_overrun = parse_double(v, key);
    } else if (key == "link_utilization") {
      result.link_utilization = parse_double(v, key);
    } else if (key == "fault_failed") {
      result.fault.failed_transfers = parse_u64(v, key);
    } else if (key == "fault_timeouts") {
      result.fault.timeouts = parse_u64(v, key);
    } else if (key == "fault_stalled") {
      result.fault.stalled = parse_u64(v, key);
    } else if (key == "fault_retries") {
      result.fault.retries = parse_u64(v, key);
    } else if (key == "fault_abandoned") {
      result.fault.abandoned = parse_u64(v, key);
    } else if (key == "ov_transitions") {
      result.overload.transitions = parse_u64(v, key);
    } else if (key == "ov_forced_transitions") {
      result.overload.forced_transitions = parse_u64(v, key);
    } else if (key == "ov_max_rung") {
      result.overload.max_rung = static_cast<int>(parse_u64(v, key));
    } else if (key == "ov_degraded_requests") {
      result.overload.degraded_requests = parse_u64(v, key);
    } else if (key.rfind("ov_rung", 0) == 0) {
      const std::size_t i = parse_size(key.substr(7), key);
      SKP_REQUIRE(i < result.overload.requests_at_rung.size(),
                  "overload rung index out of range: " << key);
      result.overload.requests_at_rung[i] = parse_u64(v, key);
    } else if (key == "deadline_hits") {
      result.deadline_hits = parse_u64(v, key);
    } else {
      SKP_REQUIRE(false, "unknown skpd result key: " << key);
    }
  });
  result.metrics.access_time = OnlineStats::restore(
      static_cast<std::size_t>(at_n), at_mean, at_m2, at_min, at_max);
  return result;
}

}  // namespace skp
