// Sharded session hosting for million-session capacity.
//
// The daemon-facing runtimes (skpd's token->session table, the
// multi_client fleet, the capacity bench) all hold "many sessions, one
// process" state. This header gives them one shape for it: sessions
// live in N independent SessionShards keyed by id, with shard(id) =
// id % N. The contract that makes thread-per-core hosting safe WITHOUT
// any cross-shard locks on the request path:
//
//   - a session id maps to exactly one shard, forever;
//   - a thread may touch a shard only while it owns it (ownership is
//     the embedder's partition — e.g. worker w owns shards w, w+W,
//     w+2W, ...); the store itself takes no locks;
//   - cross-shard operations (size(), ordered drains) run only on the
//     control path, with the embedder holding all shards quiescent.
//
// Sessions sit behind unique_ptr so shard rebalancing-by-growth (the
// std::map rebalancing on insert/erase) never moves a session object:
// pointers and references into a session stay valid until erase, which
// is what lets the skpd poll loop park raw Session* in connection
// state across cycles.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace skp {

// One shard: an id-ordered table of owned sessions. Not internally
// synchronized — see the ownership contract above.
template <typename Session>
class SessionShard {
 public:
  using Id = std::uint64_t;

  Session* find(Id id) {
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
  }
  const Session* find(Id id) const {
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
  }

  // Takes ownership of `session` under `id`; the id must be fresh.
  Session& insert(Id id, std::unique_ptr<Session> session) {
    SKP_REQUIRE(session != nullptr, "null session for id " << id);
    const auto [it, inserted] = sessions_.emplace(id, std::move(session));
    SKP_REQUIRE(inserted, "session " << id << " already in shard");
    return *it->second;
  }

  template <typename... Args>
  Session& emplace(Id id, Args&&... args) {
    return insert(
        id, std::make_unique<Session>(std::forward<Args>(args)...));
  }

  bool erase(Id id) { return sessions_.erase(id) != 0; }
  std::size_t size() const noexcept { return sessions_.size(); }
  bool empty() const noexcept { return sessions_.empty(); }

  // Visits (id, session) in ascending id order within this shard.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [id, s] : sessions_) fn(id, *s);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, s] : sessions_) fn(id, *s);
  }

 private:
  std::map<Id, std::unique_ptr<Session>> sessions_;
};

// The N-shard store. Request-path operations (find/insert/erase by id)
// touch exactly the owning shard; control-path operations (size,
// for_each_ordered) cross shards and belong to quiescent moments.
template <typename Session>
class ShardedSessionStore {
 public:
  using Id = std::uint64_t;

  explicit ShardedSessionStore(std::size_t n_shards = 1)
      : shards_(n_shards) {
    SKP_REQUIRE(n_shards >= 1, "session store needs at least one shard");
  }

  std::size_t n_shards() const noexcept { return shards_.size(); }
  std::size_t shard_of(Id id) const noexcept {
    return static_cast<std::size_t>(id % shards_.size());
  }
  SessionShard<Session>& shard(std::size_t i) { return shards_[i]; }
  const SessionShard<Session>& shard(std::size_t i) const {
    return shards_[i];
  }

  Session* find(Id id) { return shards_[shard_of(id)].find(id); }
  const Session* find(Id id) const {
    return shards_[shard_of(id)].find(id);
  }
  Session& insert(Id id, std::unique_ptr<Session> session) {
    return shards_[shard_of(id)].insert(id, std::move(session));
  }
  template <typename... Args>
  Session& emplace(Id id, Args&&... args) {
    return shards_[shard_of(id)].emplace(id,
                                         std::forward<Args>(args)...);
  }
  bool erase(Id id) { return shards_[shard_of(id)].erase(id); }

  std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s.size();
    return total;
  }
  bool empty() const noexcept { return size() == 0; }

  // Visits every (id, session) in globally ascending id order —
  // deterministic drain/stats emission regardless of shard count. The
  // order a single-map store would produce, which is what keeps skpd's
  // drain output byte-identical across shardings.
  template <typename Fn>
  void for_each_ordered(Fn&& fn) {
    std::vector<std::pair<Id, Session*>> all;
    all.reserve(size());
    for (auto& s : shards_) {
      s.for_each([&](Id id, Session& session) {
        all.emplace_back(id, &session);
      });
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [id, session] : all) fn(id, *session);
  }

 private:
  std::vector<SessionShard<Session>> shards_;
};

// Shard count for hosting `expected_sessions` on this machine:
// thread-per-core sharding, but never more shards than sessions (empty
// shards only add control-path sweep cost). Defined in
// session_store.cpp (the one non-template piece).
std::size_t recommended_shard_count(std::size_t expected_sessions);

}  // namespace skp
