// Blocking skpd client: reconnect, resume, retry with backoff.
//
// Drives one daemon-hosted session synchronously (one STEP in flight).
// Robustness lives here so every consumer — the skpd_loopback driver,
// the chaos harness, tests — gets the same recovery behavior:
//
//   - Any socket failure (connect refused, send/recv error, reply
//     timeout, server PING silence) tears the connection down and
//     re-attempts with the shared RetryPolicy backoff schedule
//     (sim/fault.hpp retry_backoff_delay — the same math the DES fault
//     model uses), up to retry.max_attempts connection attempts per
//     operation.
//   - Reconnects HELLO with the session token and the last result seq
//     actually received; the daemon prunes its replay buffer to that ack
//     and the client re-requests the lost seq. Exactly-once execution on
//     the server makes the observable trajectory bit-identical to a
//     drop-free run.
//   - `drop_every` is a deterministic chaos knob: the client hard-closes
//     its own socket before every Nth STEP, exercising the full
//     reconnect/resume path without any external fault injector. It is
//     config, not spec — a chaos run must produce byte-identical results
//     to a calm one, so it must not live in the SimSpec.
//
// Answers server PINGs (keepalive) whenever they interleave with
// expected replies. An ERROR frame from the daemon is a protocol-level
// failure and throws without retry — retrying a rejected request would
// loop forever.
#pragma once

#include <cstdint>
#include <string>

#include "sim/fault.hpp"
#include "sim/netsim_stepper.hpp"
#include "sim/runtime.hpp"
#include "sim/skpd_protocol.hpp"
#include "util/rng.hpp"

namespace skp {

struct SkpdClientConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  // Connection-attempt budget and backoff (max_attempts counts the first
  // try, mirroring the DES fault model's convention).
  RetryPolicy retry{.max_attempts = 5,
                    .backoff_base = 0.05,
                    .backoff_factor = 2.0,
                    .jitter = 0.1};
  double reply_timeout = 10.0;  // seconds to wait for any reply frame
  std::size_t drop_every = 0;   // chaos: self-drop before every Nth STEP
};

class SkpdClient {
 public:
  // Opens the session (connect + HELLO/WELCOME). Throws when the daemon
  // is unreachable after the retry budget.
  SkpdClient(SkpdClientConfig cfg, const SimSpec& spec);
  ~SkpdClient();
  SkpdClient(const SkpdClient&) = delete;
  SkpdClient& operator=(const SkpdClient&) = delete;

  std::uint64_t token() const noexcept { return token_; }
  // Connections established beyond the first (resume count).
  std::uint64_t reconnects() const noexcept { return reconnects_; }
  std::uint64_t last_seq() const noexcept { return last_seq_; }
  bool done() const noexcept { return last_seq_ >= spec_.requests; }

  // Executes (or re-fetches) the next cycle; requires !done().
  NetsimStepSnapshot step();

  // Requires done(): fetches the final SimResult (STATS) and retires the
  // session (BYE).
  SimResult finish();

 private:
  void ensure_connected();
  void connect_once();
  void hard_close();
  void send_frame(SkpdFrameType type, const std::string& payload);
  // Blocks for the next frame, answering PINGs inline. Throws
  // std::runtime_error on timeout/EOF/socket error (callers reconnect)
  // and on an ERROR frame (callers do not).
  SkpdFrame read_frame(std::string& storage);

  SkpdClientConfig cfg_;
  SimSpec spec_;
  std::string spec_text_;
  int fd_ = -1;
  std::uint64_t token_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t steps_sent_ = 0;
  std::string rx_;
  std::size_t rx_offset_ = 0;
  Rng backoff_rng_;
};

}  // namespace skp
