#include "sim/netsim_stepper.hpp"

#include <utility>

#include "sim/fault.hpp"
#include "util/require.hpp"

namespace skp {

NetsimStepper::NetsimStepper(const SimSpec& spec)
    : NetsimStepper(spec, nullptr) {}

NetsimStepper::NetsimStepper(const SimSpec& spec,
                             std::shared_ptr<const SharedCatalog> catalog)
    : spec_(spec), walk_(0), drift_rng_(0) {
  const SimWorkload& w = spec_.workload;
  SKP_REQUIRE(w.n_items >= 2, "n_items must be >= 2");
  SKP_REQUIRE(spec_.requests >= 1, "requests must be >= 1");
  SKP_REQUIRE(spec_.warmup == 0,
              "netsim_des counts every request; use predictor_warmup for "
              "an observe-only prefix");
  // The session arbitrates its own victims (Figure-6 Pr-arbitration).
  SKP_REQUIRE(!spec_.pr_planning &&
                  spec_.replacement == ReplacementKind::LRU,
              "netsim_des has no replacement-policy pipeline; "
              "replacement/pr apply to the scenario driver");
  SKP_REQUIRE(spec_.sized_capacity == 0.0,
              "netsim_des has no byte-addressed cache; sized_capacity "
              "applies to the prefetch_cache driver");
  SKP_REQUIRE(spec_.multi_client == MultiClientSpec{},
              "netsim_des is single-client; the multi_client section "
              "applies to the multi_client driver");
  const std::size_t n = w.n_items;

  // The read-mostly group state (sizes, r, master chain, cycle script)
  // comes from the shared catalog; this session holds only its own
  // trajectory. Grounding streams are consumed inside build() exactly
  // as this constructor used to consume them inline.
  catalog_ = catalog ? std::move(catalog) : SharedCatalog::acquire(spec_);
  SKP_REQUIRE(catalog_->key() == SharedCatalog::key_of(spec_),
              "shared catalog does not belong to this spec's group");

  // Time-varying link: realized transfer pricing follows the schedule
  // while the catalog's r_i (and so planning) stays the base estimate.
  NetConfig net;
  net.bandwidth = spec_.bandwidth;
  net.latency = spec_.latency;
  net.schedule = spec_.link_schedule;

  EngineConfig ecfg;
  ecfg.policy = spec_.policy;
  ecfg.delta_rule = spec_.delta_rule;
  ecfg.arbitration.sub = spec_.sub;
  ecfg.min_profit_threshold = spec_.min_profit_threshold;
  ecfg.evaluate_plan_g = false;
  session_.emplace(catalog_->client(), std::move(net), ecfg,
                   spec_.cache_size);
  if (spec_.use_plan_cache) {
    session_->enable_plan_cache(spec_.plan_cache_capacity);
  }

  // Robustness layer: faults draw from their dedicated stream (never
  // perturbing build/walk), the controller watches every realized T.
  validate_fault_spec(spec_.fault);
  SKP_REQUIRE(spec_.deadline >= 0.0, "deadline must be >= 0");
  if (spec_.fault.enabled()) {
    session_->set_fault_injection(spec_.fault,
                                  Rng(spec_.seed).split(kFaultStreamSalt));
  }
  overload_ = OverloadController(spec_.overload);

  zeros_.assign(n, 0.0);
  walk_ = catalog_->walk();
  if (spec_.predictor == PredictorKind::Oracle) {
    // Oracle mode: the DES rendition of the Fig.-7 protocol — ground-
    // truth transition rows, context keys enabling plan memoization.
    // The chain itself is the catalog's; this session owns only its
    // state cursor and walk stream.
    mcfg_ = catalog_->markov_config();
    source_ = &catalog_->source();
    drift_rng_ = catalog_->drift_rng();
    drift_period_ = catalog_->drift_period();
    state_ = catalog_->initial_state();
  } else {
    // Learned mode: the shared materialized cycles drive a private
    // predictor; an observe-only warmup plans against a zero row (the
    // planner then fetches nothing). No context key — the predictor's
    // state is outside the session's invalidation scope.
    mat_ = &catalog_->materialized();
    predictor_ = make_runtime_predictor(spec_.predictor, n);
    P_.assign(n, 0.0);
  }
}

void NetsimStepper::count_plan() {
  const std::uint64_t now = session_->metrics().prefetch_fetches;
  if (now > prev_prefetches_) ++plans_;
  prev_prefetches_ = now;
}

void NetsimStepper::settle_request(double T) {
  if (spec_.deadline > 0.0 && T <= spec_.deadline) ++deadline_hits_;
  if (overload_.observe(T)) {
    // Rung change: memoized plans were computed against the previous
    // rung's degraded rows, so the context-key promise just broke.
    session_->invalidate_plan_cache();
    session_->set_plan_admission_frozen(
        overload_.rung() >= DegradationRung::kStrictAdmission);
  }
}

bool NetsimStepper::force_degrade() {
  if (!overload_.force_step_down()) return false;
  session_->invalidate_plan_cache();
  session_->set_plan_admission_frozen(
      overload_.rung() >= DegradationRung::kStrictAdmission);
  return true;
}

void NetsimStepper::step_oracle() {
  const std::size_t req = executed_;
  if (drift_period_ != 0 && req != 0 && req % drift_period_ == 0) {
    if (!owned_source_) {
      // First changepoint: this session's chain diverges from the
      // shared master, so it takes a private copy to mutate
      // (copy-on-write — sessions that never drift never copy).
      owned_source_.emplace(*source_);
      source_ = &*owned_source_;
    }
    owned_source_->redraw_transitions(mcfg_, drift_rng_);
    // The context keys' promise (state -> row) just broke.
    session_->invalidate_plan_cache();
  }
  const double v = source_->viewing_time(state_);
  // An observe-only warmup prefix plans against a zero row (fetches
  // nothing), mirroring the learned branch's semantics.
  const bool planning = req >= spec_.predictor_warmup;
  std::span<const double> row = planning
                                    ? source_->transition_row(state_)
                                    : std::span<const double>(zeros_);
  if (planning && overload_.rung() != DegradationRung::kNormal) {
    // Degrade a copy — the source's rows are ground truth for every
    // later cycle.
    degraded_.assign(row.begin(), row.end());
    overload_.degrade_row(degraded_);
    row = degraded_;
  }
  const auto next =
      static_cast<ItemId>(source_->sample_from(state_, walk_));
  std::optional<ItemId> oracle_next;
  if (planning && spec_.policy == PrefetchPolicy::Perfect) {
    oracle_next = next;
  }
  const double T =
      session_->request(next, v, row, oracle_next,
                        planning && spec_.use_plan_cache
                            ? std::optional<std::uint64_t>(state_)
                            : std::nullopt);
  count_plan();
  settle_request(T);
  state_ = static_cast<std::size_t>(next);
  last_T_ = T;
}

void NetsimStepper::step_learned() {
  const std::size_t i = executed_;
  const TraceRecord& rec = mat_->cycles[i];
  std::span<const double> row = zeros_;
  if (i >= spec_.predictor_warmup) {
    predictor_->predict_into(P_);
    for (double& p : P_) {
      if (p < spec_.predictor_min_prob) p = 0.0;
    }
    overload_.degrade_row(P_);
    row = P_;
  }
  std::optional<ItemId> oracle_next;
  if (spec_.policy == PrefetchPolicy::Perfect) oracle_next = rec.item;
  const double T =
      session_->request(rec.item, rec.viewing_time, row, oracle_next);
  count_plan();
  settle_request(T);
  predictor_->observe(rec.item);
  last_T_ = T;
}

NetsimStepSnapshot NetsimStepper::step() {
  SKP_REQUIRE(!done(), "netsim stepper already ran all "
                           << spec_.requests << " cycles");
  if (spec_.predictor == PredictorKind::Oracle) {
    step_oracle();
  } else {
    step_learned();
  }
  ++executed_;
  return snapshot();
}

NetsimStepSnapshot NetsimStepper::snapshot() const {
  const SimMetrics& m = session_->metrics();
  NetsimStepSnapshot s;
  s.seq = executed_;
  s.T = last_T_;
  s.requests = m.requests;
  s.hits = m.hits;
  s.demand_fetches = m.demand_fetches;
  s.prefetch_fetches = m.prefetch_fetches;
  s.solver_nodes = m.solver_nodes;
  s.plans = plans_;
  s.deadline_hits = deadline_hits_;
  return s;
}

SimResult NetsimStepper::result() const {
  SimResult out;
  out.metrics = session_->metrics();
  out.plan_cache = session_->plan_cache_stats();
  out.plans = plans_;
  out.link_utilization = session_->link_utilization();
  out.fault = session_->fault_stats();
  out.overload = overload_.stats();
  out.deadline_hits = deadline_hits_;
  return out;
}

}  // namespace skp
