#include "sim/prefetch_cache.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "core/access_model.hpp"
#include "core/lookahead.hpp"
#include "predict/dependency_graph.hpp"
#include "predict/lz78_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/ppm_predictor.hpp"
#include "util/thread_pool.hpp"

namespace skp {

const char* to_string(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::Oracle: return "oracle";
    case PredictorKind::Markov1: return "markov1";
    case PredictorKind::Ppm: return "ppm";
    case PredictorKind::DependencyWindow: return "depgraph";
    case PredictorKind::Lz78: return "lz78";
  }
  return "?";
}

namespace {

std::unique_ptr<Predictor> make_predictor(PredictorKind kind,
                                          std::size_t n) {
  switch (kind) {
    case PredictorKind::Oracle: return nullptr;
    case PredictorKind::Markov1:
      return std::make_unique<MarkovPredictor>(n, /*laplace=*/0.05);
    case PredictorKind::Ppm:
      return std::make_unique<PpmPredictor>(n, /*order=*/2);
    case PredictorKind::DependencyWindow:
      return std::make_unique<DependencyGraph>(n, /*window=*/2);
    case PredictorKind::Lz78:
      return std::make_unique<Lz78Predictor>(n);
  }
  return nullptr;
}

// Pipelined single-sim execution (PrefetchCacheConfig::pipeline_workers).
//
// The Markov walk is a pure function of (chain structure, walk stream), so
// the whole request script is materialized up front from clones of the
// source and walk Rng — the main loop then samples exactly the states the
// script predicts. Workers run ahead of the main loop: the job for
// request j is enqueued when request j' < j finishes, carrying a snapshot
// of the cache presence bitmap at that moment (exact for j = j' + 1,
// speculative beyond). A worker pre-solves the SKP selection stage for
// (script[j], snapshot) via PrefetchEngine::speculate_selection; the main
// loop validates the speculation against the LIVE candidate fingerprint
// inside select_memoized before adopting it, so a snapshot voided by an
// intervening cache mutation is silently discarded and the solve runs
// inline. The speculated plan carries the solver's own stats, and the
// memo-tier find/insert sequence is untouched — every simulator counter
// AND every plan-cache counter is bit-identical to the solo loop.
class SpeculationPipeline {
 public:
  SpeculationPipeline(const PrefetchCacheConfig& cfg,
                      const MarkovSource& source, const Rng& walk_rng,
                      const PrefetchEngine& engine)
      : engine_(engine),
        source_(source),  // worker-side copy: rows are static (no drift)
        jobs_(cfg.pipeline_workers + 1) {
    MarkovSource walker = source;
    Rng rng = walk_rng;
    script_.reserve(cfg.requests);
    script_.push_back(walker.current_state());
    for (std::size_t i = 1; i < cfg.requests; ++i) {
      script_.push_back(walker.step(rng));
    }
    workers_.reserve(cfg.pipeline_workers);
    for (std::size_t w = 0; w < cfg.pipeline_workers; ++w) {
      workers_.emplace_back(source_.n_states());
    }
    pool_.emplace(cfg.pipeline_workers);
    for (std::size_t w = 0; w < cfg.pipeline_workers; ++w) {
      pool_->submit([this, w] { worker_main(w); });
    }
  }

  ~SpeculationPipeline() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    pool_.reset();  // joins the worker loops
  }

  // Claims the speculation for request `req` (nullptr when none applies):
  // a finished job hands back its result, an in-flight job is briefly
  // waited for, and a still-queued job is cancelled — solving inline
  // beats waiting for a worker that has not even started.
  const SpeculativeSelection* take(std::size_t req) {
    std::unique_lock<std::mutex> lk(mu_);
    Job& job = jobs_[req % jobs_.size()];
    if (job.status == kFree || job.index != req) return nullptr;
    if (job.status == kQueued) {
      job.status = kFree;
      return nullptr;
    }
    while (job.status != kDone) done_cv_.wait(lk);
    job.status = kFree;
    // The slot is only re-enqueued by refill(), which the main loop calls
    // after consuming this result — the pointer stays valid until then.
    return &job.result;
  }

  // Called after request `done_req` finished mutating the cache: tops the
  // job window back up to one job per worker slot, snapshotting the
  // current presence bitmap for each.
  void refill(std::size_t done_req, std::span<const char> present) {
    bool added = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      const std::size_t hi =
          std::min(done_req + jobs_.size(), script_.size() - 1);
      for (; next_enqueue_ <= hi; ++next_enqueue_) {
        Job& job = jobs_[next_enqueue_ % jobs_.size()];
        SKP_ASSERT(job.status == kFree);
        job.index = next_enqueue_;
        job.state = script_[next_enqueue_];
        job.present.assign(present.begin(), present.end());
        job.status = kQueued;
        added = true;
      }
    }
    if (added) cv_.notify_all();
  }

 private:
  enum Status : int { kFree, kQueued, kRunning, kDone };

  struct Job {
    std::size_t index = 0;
    std::size_t state = 0;
    std::vector<char> present;
    SpeculativeSelection result;
    int status = kFree;
  };

  // Per-worker solve state: each worker keeps its own canonical-order
  // table (rows are rebuilt redundantly across workers, but never shared
  // mutable) and scratch.
  struct WorkerState {
    explicit WorkerState(std::size_t n) : canon(n) {}
    CanonicalOrderTable canon;
    PlanScratch scratch;
  };

  void worker_main(std::size_t wid) {
    WorkerState& w = workers_[wid];
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      Job* job = nullptr;
      for (Job& j : jobs_) {  // oldest queued job first
        if (j.status == kQueued && (job == nullptr || j.index < job->index)) {
          job = &j;
        }
      }
      if (job == nullptr) {
        if (stop_) return;
        cv_.wait(lk);
        continue;
      }
      job->status = kRunning;
      lk.unlock();
      const InstanceView inst = source_.view_at(job->state);
      const CanonicalOrderTable::Row row =
          w.canon.row(job->state, inst, source_.successors(job->state));
      engine_.speculate_selection(inst, job->state, row, job->present,
                                  w.scratch, job->result);
      lk.lock();
      job->status = kDone;
      done_cv_.notify_all();
    }
  }

  const PrefetchEngine& engine_;
  MarkovSource source_;
  std::vector<std::size_t> script_;  // script_[i] = state at request i
  std::vector<Job> jobs_;            // slot for index i: i % jobs_.size()
  std::vector<WorkerState> workers_;
  std::size_t next_enqueue_ = 1;  // request 0 plans before any job exists
  std::mutex mu_;
  std::condition_variable cv_;       // queued-work signal (workers wait)
  std::condition_variable done_cv_;  // completion signal (take() waits)
  bool stop_ = false;
  std::optional<ThreadPool> pool_;   // last: joins before members die
};

}  // namespace

PrefetchCacheResult run_prefetch_cache(const PrefetchCacheConfig& cfg,
                                       MarkovSource& source, Rng& walk_rng) {
  SKP_REQUIRE(cfg.cache_size >= 1, "cache_size must be >= 1");
  const std::size_t n = source.n_states();

  EngineConfig ecfg;
  ecfg.policy = cfg.policy;
  ecfg.delta_rule = cfg.delta_rule;
  ecfg.arbitration.sub = cfg.sub;
  ecfg.arbitration.strict_ties = cfg.strict_ties;
  ecfg.min_profit_threshold = cfg.min_profit_threshold;
  // Monte-Carlo hot loop: skip the per-round Eq.-(9) diagnostic no
  // counter consumes.
  ecfg.evaluate_plan_g = false;
  const PrefetchEngine engine(ecfg);

  SlotCache cache(n, cfg.cache_size);
  FreqTracker freq(n);
  auto predictor = make_predictor(cfg.predictor, n);

  // Track which cached items were prefetched and never yet accessed so
  // wasted prefetches can be charged when they are evicted unused.
  std::vector<char> unused_prefetch(n, 0);

  // The whole request loop runs allocation-free: the instance is a
  // borrowed view (source row / predictor buffer), and `scratch`/`plan`
  // recycle every planning buffer across the cfg.requests iterations.
  PlanScratch scratch;
  PrefetchPlan plan;

  // Cross-request memoization, two tiers (core/plan_cache.hpp): completed
  // plans keyed by (state, cache set), solver selections keyed by
  // (state, candidate set) — the latter hits constantly even while the
  // cache churns, and is valid under LFU/DS (the solve never reads
  // frequencies). The canonical-order table additionally requires P to be
  // the raw transition row (lookahead blends widen the support), so it is
  // oracle-mode-only. Context the keys cannot see is handled by
  // generation bumps below, which degrade the affected tier to a
  // correctness-preserving no-op.
  // Plans additionally depend on frequency state under LFU/DS
  // sub-arbitration and on the predictor's evolving row. That context
  // changes after EVERY request (a freq.record / predictor observation),
  // which would bump the plan tier's generation each iteration — and a
  // tier whose generation never repeats can never hit. Rather than pay
  // ~2 probe runs per request for a structurally-dead tier, skip it
  // entirely: all its counters read zero, which is exactly the hit count
  // the always-bumped tier reported.
  const bool volatile_plans =
      predictor != nullptr || cfg.sub != SubArbitration::None;
  std::optional<PlanCache> plans;
  std::optional<PlanCache> selections;
  std::optional<CanonicalOrderTable> canon;
  if (cfg.use_plan_cache) {
    if (!volatile_plans) {
      plans.emplace(engine.config_digest(), cfg.plan_cache_capacity,
                    /*doorkeeper=*/true);
    }
    // Selections depend only on the per-state probability row, which a
    // learned predictor rewrites every observation — the tier could then
    // never hit, so it is not consulted at all in predictor mode.
    if (!predictor) {
      selections.emplace(engine.config_digest(), cfg.plan_cache_capacity);
    }
    if (!predictor && cfg.lookahead_horizon <= 1) canon.emplace(n);
  }

  PrefetchCacheResult result;
  auto& m = result.metrics;

  // Phase-shift stream, derived from the config seed (not from walk_rng,
  // so drifting and static runs share the walk stream between
  // changepoints and the caller-supplied-source overload stays usable).
  Rng drift_rng = Rng(cfg.seed).split(kPrefetchCacheDriftSalt);

  // Pipelined execution (see SpeculationPipeline above): restricted to
  // the configuration where the request script is a pure function of the
  // inputs captured at this point — oracle rows (static, no predictor or
  // lookahead blend), no drift, SKP with the memoized fast path on.
  std::optional<SpeculationPipeline> pipe;
  if (cfg.pipeline_workers > 0) {
    SKP_REQUIRE(cfg.predictor == PredictorKind::Oracle &&
                    cfg.lookahead_horizon <= 1 && cfg.drift_period == 0 &&
                    cfg.use_plan_cache &&
                    cfg.policy == PrefetchPolicy::SKP,
                "pipeline_workers requires the oracle SKP fast path "
                "(no predictor/lookahead/drift, plan cache on)");
    pipe.emplace(cfg, source, walk_rng, engine);
  }

  std::size_t state = source.current_state();
  if (predictor) predictor->observe(static_cast<ItemId>(state));

  for (std::size_t req = 0; req < cfg.requests; ++req) {
    const bool counted = req >= cfg.warmup;
    if (cfg.drift_period != 0 && req != 0 && req % cfg.drift_period == 0) {
      // Changepoint: the transition rows every memoized plan, solver
      // selection and canonical order was computed from are gone.
      source.redraw_transitions(cfg.source, drift_rng);
      if (plans) plans->bump_generation();
      if (selections) selections->bump_generation();
      if (canon) canon->invalidate_all();
    }

    // What the prefetcher knows in the current state. In plain oracle
    // mode P is the sparse transition row, and the source's successor
    // list (ascending, exactly the positive entries) doubles as the
    // engine's candidate-support hint.
    InstanceView inst = source.view_at(state);
    std::span<const ItemId> positive_hint = source.successors(state);
    if (predictor) {
      predictor->predict_into(scratch.P);
      for (double& p : scratch.P) {
        if (p < cfg.predictor_min_prob) p = 0.0;
      }
      inst.P = scratch.P;
      positive_hint = {};  // dense support
    } else if (cfg.lookahead_horizon > 1) {
      horizon_probabilities_into(source, state, cfg.lookahead_horizon,
                                 cfg.lookahead_decay, scratch.P);
      inst.P = scratch.P;
      positive_hint = {};  // blended rows widen the support
    }

    // The source decides the next request now; only the Perfect oracle may
    // look at it.
    const auto next = static_cast<ItemId>(source.step(walk_rng));
    std::optional<ItemId> oracle;
    if (cfg.policy == PrefetchPolicy::Perfect) oracle = next;

    // Plan against the current cache (memoized when configured; a
    // default PlanMemo makes this exactly plan_with_cache).
    PlanMemo memo;
    memo.plans = plans ? &*plans : nullptr;
    memo.selections = selections ? &*selections : nullptr;
    memo.canon = canon ? &*canon : nullptr;
    memo.state_key = state;
    if (pipe) memo.speculative = pipe->take(req);
    engine.plan_with_cache_cached(inst, cache, &freq, memo, scratch, plan,
                                  oracle, positive_hint);

    // Realized access time (Section 5 cases) against the pre-plan cache:
    // computed before the plan mutates the cache, which is exactly the
    // "cache before" snapshot the model asks for — no copy needed, and
    // membership via the presence bitmap instead of a contents scan.
    const double T = realized_access_time_cached(
        inst, plan.fetch, plan.evict, cache.presence(), next);

    // Execute the prefetch.
    {
      std::size_t victim_idx = 0;
      for (std::size_t k = 0; k < plan.fetch.size(); ++k) {
        const ItemId f = plan.fetch[k];
        if (cache.full()) {
          SKP_ASSERT(victim_idx < plan.evict.size());
          const ItemId d = plan.evict[victim_idx++];
          if (unused_prefetch[InstanceView::idx(d)]) {
            if (counted) ++m.wasted_prefetches;
            unused_prefetch[InstanceView::idx(d)] = 0;
          }
          cache.replace(d, f);
        } else {
          cache.insert(f);
        }
        unused_prefetch[InstanceView::idx(f)] = 1;
        if (counted) {
          ++m.prefetch_fetches;
          m.network_time += inst.r[InstanceView::idx(f)];
          m.prefetch_network_time += inst.r[InstanceView::idx(f)];
        }
      }
    }
    if (counted) m.solver_nodes += plan.solver_nodes;

    if (counted) {
      m.access_time.add(T);
      ++m.requests;
      if (T == 0.0) ++m.hits;
      if (T > source.viewing_time(state)) ++result.over_viewing_time;
    }

    // Serve the request: record frequency, learn, demand-fetch on miss.
    freq.record(next);
    if (predictor) predictor->observe(next);
    // The observation/record just invalidated every stored plan that
    // depended on predictor or frequency state — which is why the plan
    // tier was never instantiated under volatile_plans (selections are
    // simply not consulted in predictor mode, see above).
    unused_prefetch[InstanceView::idx(next)] = 0;

    if (!cache.contains(next)) {
      if (counted) {
        ++m.demand_fetches;
        m.network_time += source.retrieval_time(next);
        m.demand_network_time += source.retrieval_time(next);
      }
      if (cache.full()) {
        // "Demand-fetched item, however, must have a victim": minimal-Pr
        // with the probabilities now in force (the new state's row).
        // `inst` is not read past this point, so its P buffer is free to
        // be overwritten by the new prediction.
        InstanceView next_inst =
            source.view_at(static_cast<std::size_t>(next));
        if (predictor) {
          predictor->predict_into(scratch.P);
          next_inst.P = scratch.P;
        }
        const ItemId d = choose_victim(next_inst, cache.contents(), &freq,
                                       ecfg.arbitration);
        if (unused_prefetch[InstanceView::idx(d)]) {
          if (counted) ++m.wasted_prefetches;
          unused_prefetch[InstanceView::idx(d)] = 0;
        }
        cache.replace(d, next);
      } else {
        cache.insert(next);
      }
    }

    // All cache mutations for this request are done: top the speculation
    // window back up against the now-final presence bitmap.
    if (pipe) pipe->refill(req, cache.presence());

    state = static_cast<std::size_t>(next);
  }
  if (plans) result.plan_cache.plans = plans->stats();
  if (selections) result.plan_cache.selections = selections->stats();
  return result;
}

PrefetchCacheResult run_prefetch_cache(const PrefetchCacheConfig& cfg) {
  Rng build_rng(cfg.seed);
  MarkovSource source(cfg.source, build_rng);
  Rng walk_rng = build_rng.split(kPrefetchCacheWalkSalt);
  // Deterministic initial state.
  source.teleport(0);
  return run_prefetch_cache(cfg, source, walk_rng);
}

namespace {

// One lane of run_prefetch_cache_batch: the per-experiment state the solo
// loop keeps on its stack, boxed so k lanes can advance in lockstep.
struct BatchLane {
  BatchLane(const PrefetchCacheConfig& c, std::size_t n,
            PrefetchCacheResult* res)
      : cfg(c), cache(n, c.cache_size), freq(n), unused_prefetch(n, 0),
        result(res) {
    EngineConfig ecfg;
    ecfg.policy = c.policy;
    ecfg.delta_rule = c.delta_rule;
    ecfg.arbitration.sub = c.sub;
    ecfg.arbitration.strict_ties = c.strict_ties;
    ecfg.min_profit_threshold = c.min_profit_threshold;
    ecfg.evaluate_plan_g = false;  // as in the solo loop
    engine.emplace(ecfg);
    // Tier setup mirrors the solo loop (oracle mode): the plan tier is
    // skipped when LFU/DS would bump its generation every request.
    const bool volatile_plans = c.sub != SubArbitration::None;
    if (c.use_plan_cache) {
      if (!volatile_plans) {
        plans.emplace(engine->config_digest(), c.plan_cache_capacity,
                      /*doorkeeper=*/true);
      }
      selections.emplace(engine->config_digest(), c.plan_cache_capacity);
    }
  }

  const PrefetchCacheConfig& cfg;
  std::optional<PrefetchEngine> engine;
  SlotCache cache;
  FreqTracker freq;
  std::vector<char> unused_prefetch;
  PlanScratch scratch;
  PrefetchPlan plan;
  std::optional<PlanCache> plans;
  std::optional<PlanCache> selections;
  PrefetchCacheResult* result;
};

}  // namespace

std::vector<PrefetchCacheResult> run_prefetch_cache_batch(
    std::span<const PrefetchCacheConfig> configs) {
  std::vector<PrefetchCacheResult> results(configs.size());
  if (configs.empty()) return results;
  const PrefetchCacheConfig& c0 = configs.front();
  for (const PrefetchCacheConfig& c : configs) {
    SKP_REQUIRE(c.cache_size >= 1, "cache_size must be >= 1");
    SKP_REQUIRE(c.predictor == PredictorKind::Oracle &&
                    c.lookahead_horizon <= 1,
                "batched execution requires oracle one-step lanes");
    SKP_REQUIRE(c.pipeline_workers == 0,
                "pipelined and batched execution do not compose");
    SKP_REQUIRE(c.source == c0.source && c.seed == c0.seed &&
                    c.requests == c0.requests &&
                    c.drift_period == c0.drift_period,
                "batch lanes must share the workload "
                "(source/seed/requests/drift)");
  }

  // Shared workload: built exactly as the solo entry point builds it, so
  // every lane sees the request stream its solo run would see.
  Rng build_rng(c0.seed);
  MarkovSource source(c0.source, build_rng);
  Rng walk_rng = build_rng.split(kPrefetchCacheWalkSalt);
  source.teleport(0);
  const std::size_t n = source.n_states();
  Rng drift_rng = Rng(c0.seed).split(kPrefetchCacheDriftSalt);

  std::deque<BatchLane> lanes;
  bool any_plan_cache = false;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    lanes.emplace_back(configs[i], n, &results[i]);
    any_plan_cache = any_plan_cache || configs[i].use_plan_cache;
  }
  // The canonical-order table depends only on the (shared) source rows,
  // so one table serves every memoized lane — same row contents as each
  // lane's solo table, built once instead of once per lane.
  std::optional<CanonicalOrderTable> canon;
  if (any_plan_cache) canon.emplace(n);

  // Engine-level batching applies to memoized lanes sharing an engine
  // config: group them, keep a persistent PlanBatchLane row per group
  // (stable pointers; only state_key changes per request). Everything
  // else plans solo — same results, just without the shared setup.
  struct Group {
    const PrefetchEngine* engine;
    bool perfect;
    std::vector<PrefetchEngine::PlanBatchLane> rows;
  };
  std::vector<Group> groups;
  std::vector<BatchLane*> solo;
  for (BatchLane& lane : lanes) {
    if (!lane.cfg.use_plan_cache) {
      solo.push_back(&lane);
      continue;
    }
    PrefetchEngine::PlanBatchLane row;
    row.cache = &lane.cache;
    row.freq = &lane.freq;
    row.memo.plans = lane.plans ? &*lane.plans : nullptr;
    row.memo.selections = lane.selections ? &*lane.selections : nullptr;
    row.memo.canon = &*canon;
    row.scratch = &lane.scratch;
    row.out = &lane.plan;
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.engine->config_digest() == lane.engine->config_digest()) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({&*lane.engine,
                        lane.cfg.policy == PrefetchPolicy::Perfect,
                        {}});
      group = &groups.back();
    }
    group->rows.push_back(row);
  }

  std::size_t state = source.current_state();
  for (std::size_t req = 0; req < c0.requests; ++req) {
    if (c0.drift_period != 0 && req != 0 && req % c0.drift_period == 0) {
      source.redraw_transitions(c0.source, drift_rng);
      for (BatchLane& lane : lanes) {
        if (lane.plans) lane.plans->bump_generation();
        if (lane.selections) lane.selections->bump_generation();
      }
      if (canon) canon->invalidate_all();
    }

    const InstanceView inst = source.view_at(state);
    const std::span<const ItemId> positive_hint = source.successors(state);
    const auto next = static_cast<ItemId>(source.step(walk_rng));

    for (Group& g : groups) {
      for (PrefetchEngine::PlanBatchLane& row : g.rows) {
        row.memo.state_key = state;
      }
      g.engine->plan_with_cache_batch(
          inst, g.rows,
          g.perfect ? std::optional<ItemId>(next) : std::nullopt,
          positive_hint);
    }
    for (BatchLane* lane : solo) {
      std::optional<ItemId> oracle;
      if (lane->cfg.policy == PrefetchPolicy::Perfect) oracle = next;
      PlanMemo memo;
      memo.state_key = state;
      lane->engine->plan_with_cache_cached(inst, lane->cache, &lane->freq,
                                           memo, lane->scratch, lane->plan,
                                           oracle, positive_hint);
    }

    // Per-lane bookkeeping: the solo loop's post-plan block, verbatim
    // (oracle mode, so without the predictor branches).
    for (BatchLane& lane : lanes) {
      const bool counted = req >= lane.cfg.warmup;
      auto& m = lane.result->metrics;
      const PrefetchPlan& plan = lane.plan;
      SlotCache& cache = lane.cache;
      const double T = realized_access_time_cached(
          inst, plan.fetch, plan.evict, cache.presence(), next);

      std::size_t victim_idx = 0;
      for (std::size_t k = 0; k < plan.fetch.size(); ++k) {
        const ItemId f = plan.fetch[k];
        if (cache.full()) {
          SKP_ASSERT(victim_idx < plan.evict.size());
          const ItemId d = plan.evict[victim_idx++];
          if (lane.unused_prefetch[InstanceView::idx(d)]) {
            if (counted) ++m.wasted_prefetches;
            lane.unused_prefetch[InstanceView::idx(d)] = 0;
          }
          cache.replace(d, f);
        } else {
          cache.insert(f);
        }
        lane.unused_prefetch[InstanceView::idx(f)] = 1;
        if (counted) {
          ++m.prefetch_fetches;
          m.network_time += inst.r[InstanceView::idx(f)];
          m.prefetch_network_time += inst.r[InstanceView::idx(f)];
        }
      }
      if (counted) m.solver_nodes += plan.solver_nodes;

      if (counted) {
        m.access_time.add(T);
        ++m.requests;
        if (T == 0.0) ++m.hits;
        if (T > source.viewing_time(state)) ++lane.result->over_viewing_time;
      }

      lane.freq.record(next);
      lane.unused_prefetch[InstanceView::idx(next)] = 0;

      if (!cache.contains(next)) {
        if (counted) {
          ++m.demand_fetches;
          m.network_time += source.retrieval_time(next);
          m.demand_network_time += source.retrieval_time(next);
        }
        if (cache.full()) {
          const InstanceView next_inst =
              source.view_at(static_cast<std::size_t>(next));
          const ItemId d =
              choose_victim(next_inst, cache.contents(), &lane.freq,
                            lane.engine->config().arbitration);
          if (lane.unused_prefetch[InstanceView::idx(d)]) {
            if (counted) ++m.wasted_prefetches;
            lane.unused_prefetch[InstanceView::idx(d)] = 0;
          }
          cache.replace(d, next);
        } else {
          cache.insert(next);
        }
      }
    }

    state = static_cast<std::size_t>(next);
  }

  for (BatchLane& lane : lanes) {
    if (lane.plans) lane.result->plan_cache.plans = lane.plans->stats();
    if (lane.selections) {
      lane.result->plan_cache.selections = lane.selections->stats();
    }
  }
  return results;
}

PrefetchCacheResult run_prefetch_cache_sized(
    const SizedExperimentConfig& cfg) {
  SKP_REQUIRE(cfg.capacity > 0.0, "capacity must be positive");
  Rng build_rng(cfg.seed);
  MarkovSource source(cfg.source, build_rng);
  Rng walk_rng = build_rng.split(kPrefetchCacheWalkSalt);
  source.teleport(0);
  const std::size_t n = source.n_states();

  std::vector<double> sizes(n);
  for (std::size_t i = 0; i < n; ++i) {
    sizes[i] = cfg.size_per_r > 0.0
                   ? cfg.size_per_r *
                         source.retrieval_time(static_cast<ItemId>(i))
                   : build_rng.uniform(cfg.size_lo, cfg.size_hi);
  }

  EngineConfig ecfg;
  ecfg.policy = cfg.policy;
  ecfg.delta_rule = cfg.delta_rule;
  ecfg.arbitration.sub = cfg.sub;
  ecfg.arbitration.strict_ties = cfg.strict_ties;
  ecfg.evaluate_plan_g = false;  // as in the slot loop
  const PrefetchEngine engine(ecfg);

  SizedCache cache(sizes, cfg.capacity);
  FreqTracker freq(n);
  std::vector<char> unused_prefetch(n, 0);

  // Allocation-free request loop: borrowed views + recycled buffers, as in
  // the slot-cache loop above; memoization keyed by the SizedCache
  // fingerprint (oracle rows, so the canonical table always applies —
  // LFU/DS frequency context is generation-bumped as in the slot loop).
  PlanScratch scratch;
  PrefetchPlan plan;
  // As in the slot loop: under LFU/DS the plan tier's generation would
  // bump after every request, so the tier can never hit — skip it.
  const bool volatile_plans = cfg.sub != SubArbitration::None;
  std::optional<PlanCache> plans;
  std::optional<PlanCache> selections;
  std::optional<CanonicalOrderTable> canon;
  if (cfg.use_plan_cache) {
    if (!volatile_plans) {
      plans.emplace(engine.config_digest(), cfg.plan_cache_capacity,
                    /*doorkeeper=*/true);
    }
    selections.emplace(engine.config_digest(), cfg.plan_cache_capacity);
    canon.emplace(n);
  }

  PrefetchCacheResult result;
  auto& m = result.metrics;
  std::size_t state = source.current_state();

  for (std::size_t req = 0; req < cfg.requests; ++req) {
    const bool counted = req >= cfg.warmup;
    const InstanceView inst = source.view_at(state);
    const auto next = static_cast<ItemId>(source.step(walk_rng));
    std::optional<ItemId> oracle;
    if (cfg.policy == PrefetchPolicy::Perfect) oracle = next;

    PlanMemo memo;
    memo.plans = plans ? &*plans : nullptr;
    memo.selections = selections ? &*selections : nullptr;
    memo.canon = canon ? &*canon : nullptr;
    memo.state_key = state;
    engine.plan_with_sized_cache_cached(inst, cache, &freq, memo, scratch,
                                        plan, oracle,
                                        source.successors(state));

    // Realized access time against the pre-plan cache (computed before the
    // plan executes; see the slot loop).
    const double T = realized_access_time_cached(
        inst, plan.fetch, plan.evict, cache.presence(), next);

    for (const ItemId d : plan.evict) {
      if (unused_prefetch[InstanceView::idx(d)]) {
        if (counted) ++m.wasted_prefetches;
        unused_prefetch[InstanceView::idx(d)] = 0;
      }
      cache.erase(d);
    }
    for (const ItemId f : plan.fetch) {
      cache.insert(f);
      unused_prefetch[InstanceView::idx(f)] = 1;
      if (counted) {
        ++m.prefetch_fetches;
        m.network_time += inst.r[InstanceView::idx(f)];
        m.prefetch_network_time += inst.r[InstanceView::idx(f)];
      }
    }
    if (counted) m.solver_nodes += plan.solver_nodes;

    if (counted) {
      m.access_time.add(T);
      ++m.requests;
      if (T == 0.0) ++m.hits;
      if (T > source.viewing_time(state)) ++result.over_viewing_time;
    }

    freq.record(next);
    unused_prefetch[InstanceView::idx(next)] = 0;
    if (!cache.contains(next)) {
      if (counted) {
        ++m.demand_fetches;
        m.network_time += source.retrieval_time(next);
        m.demand_network_time += source.retrieval_time(next);
      }
      if (cache.cacheable(next)) {
        const InstanceView next_inst =
            source.view_at(static_cast<std::size_t>(next));
        gather_victims_by_density_into(next_inst, cache, &freq,
                                       ecfg.arbitration, cache.size_of(next),
                                       scratch.pool, scratch.victims);
        SKP_ASSERT(scratch.victims.ok);
        for (const ItemId d : scratch.victims.victims) {
          if (unused_prefetch[InstanceView::idx(d)]) {
            if (counted) ++m.wasted_prefetches;
            unused_prefetch[InstanceView::idx(d)] = 0;
          }
          cache.erase(d);
        }
        cache.insert(next);
      }
      // Items larger than the whole cache are served uncached.
    }
    state = static_cast<std::size_t>(next);
  }
  if (plans) result.plan_cache.plans = plans->stats();
  if (selections) result.plan_cache.selections = selections->stats();
  return result;
}

}  // namespace skp
