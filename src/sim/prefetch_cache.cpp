#include "sim/prefetch_cache.hpp"

#include <algorithm>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "core/access_model.hpp"
#include "core/lookahead.hpp"
#include "predict/dependency_graph.hpp"
#include "predict/lz78_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/ppm_predictor.hpp"

namespace skp {

const char* to_string(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::Oracle: return "oracle";
    case PredictorKind::Markov1: return "markov1";
    case PredictorKind::Ppm: return "ppm";
    case PredictorKind::DependencyWindow: return "depgraph";
    case PredictorKind::Lz78: return "lz78";
  }
  return "?";
}

namespace {

std::unique_ptr<Predictor> make_predictor(PredictorKind kind,
                                          std::size_t n) {
  switch (kind) {
    case PredictorKind::Oracle: return nullptr;
    case PredictorKind::Markov1:
      return std::make_unique<MarkovPredictor>(n, /*laplace=*/0.05);
    case PredictorKind::Ppm:
      return std::make_unique<PpmPredictor>(n, /*order=*/2);
    case PredictorKind::DependencyWindow:
      return std::make_unique<DependencyGraph>(n, /*window=*/2);
    case PredictorKind::Lz78:
      return std::make_unique<Lz78Predictor>(n);
  }
  return nullptr;
}

}  // namespace

PrefetchCacheResult run_prefetch_cache(const PrefetchCacheConfig& cfg,
                                       MarkovSource& source, Rng& walk_rng) {
  SKP_REQUIRE(cfg.cache_size >= 1, "cache_size must be >= 1");
  const std::size_t n = source.n_states();

  EngineConfig ecfg;
  ecfg.policy = cfg.policy;
  ecfg.delta_rule = cfg.delta_rule;
  ecfg.arbitration.sub = cfg.sub;
  ecfg.arbitration.strict_ties = cfg.strict_ties;
  ecfg.min_profit_threshold = cfg.min_profit_threshold;
  const PrefetchEngine engine(ecfg);

  SlotCache cache(n, cfg.cache_size);
  FreqTracker freq(n);
  auto predictor = make_predictor(cfg.predictor, n);

  // Track which cached items were prefetched and never yet accessed so
  // wasted prefetches can be charged when they are evicted unused.
  std::vector<char> unused_prefetch(n, 0);

  PrefetchCacheResult result;
  auto& m = result.metrics;

  std::size_t state = source.current_state();
  if (predictor) predictor->observe(static_cast<ItemId>(state));

  for (std::size_t req = 0; req < cfg.requests; ++req) {
    const bool counted = req >= cfg.warmup;

    // What the prefetcher knows in the current state.
    Instance inst = source.instance_at(state);
    if (predictor) {
      inst.P = predictor->predict();
      for (double& p : inst.P) {
        if (p < cfg.predictor_min_prob) p = 0.0;
      }
    } else if (cfg.lookahead_horizon > 1) {
      inst.P = horizon_probabilities(source, state, cfg.lookahead_horizon,
                                     cfg.lookahead_decay);
    }

    // The source decides the next request now; only the Perfect oracle may
    // look at it.
    const auto next = static_cast<ItemId>(source.step(walk_rng));
    std::optional<ItemId> oracle;
    if (cfg.policy == PrefetchPolicy::Perfect) oracle = next;

    // Plan and execute the prefetch against the current cache.
    const auto cache_before =
        std::vector<ItemId>(cache.contents().begin(),
                            cache.contents().end());
    const PrefetchPlan plan =
        engine.plan_with_cache(inst, cache, &freq, oracle);
    {
      std::size_t victim_idx = 0;
      for (std::size_t k = 0; k < plan.fetch.size(); ++k) {
        const ItemId f = plan.fetch[k];
        if (cache.full()) {
          SKP_ASSERT(victim_idx < plan.evict.size());
          const ItemId d = plan.evict[victim_idx++];
          if (unused_prefetch[Instance::idx(d)]) {
            if (counted) ++m.wasted_prefetches;
            unused_prefetch[Instance::idx(d)] = 0;
          }
          cache.replace(d, f);
        } else {
          cache.insert(f);
        }
        unused_prefetch[Instance::idx(f)] = 1;
        if (counted) {
          ++m.prefetch_fetches;
          m.network_time += inst.r[Instance::idx(f)];
        }
      }
    }
    if (counted) m.solver_nodes += plan.solver_nodes;

    // Realized access time (Section 5 cases) against the pre-plan cache.
    const double T = realized_access_time_cached(
        inst, plan.fetch, plan.evict, cache_before, next);
    if (counted) {
      m.access_time.add(T);
      ++m.requests;
      if (T == 0.0) ++m.hits;
      if (T > source.viewing_time(state)) ++result.over_viewing_time;
    }

    // Serve the request: record frequency, learn, demand-fetch on miss.
    freq.record(next);
    if (predictor) predictor->observe(next);
    unused_prefetch[Instance::idx(next)] = 0;

    if (!cache.contains(next)) {
      if (counted) {
        ++m.demand_fetches;
        m.network_time += source.retrieval_time(next);
      }
      if (cache.full()) {
        // "Demand-fetched item, however, must have a victim": minimal-Pr
        // with the probabilities now in force (the new state's row).
        Instance next_inst = source.instance_at(
            static_cast<std::size_t>(next));
        if (predictor) next_inst.P = predictor->predict();
        const ItemId d = choose_victim(next_inst, cache.contents(), &freq,
                                       ecfg.arbitration);
        if (unused_prefetch[Instance::idx(d)]) {
          if (counted) ++m.wasted_prefetches;
          unused_prefetch[Instance::idx(d)] = 0;
        }
        cache.replace(d, next);
      } else {
        cache.insert(next);
      }
    }

    state = static_cast<std::size_t>(next);
  }
  return result;
}

PrefetchCacheResult run_prefetch_cache(const PrefetchCacheConfig& cfg) {
  Rng build_rng(cfg.seed);
  MarkovSource source(cfg.source, build_rng);
  Rng walk_rng = build_rng.split(0x57a1f);
  // Deterministic initial state.
  source.teleport(0);
  return run_prefetch_cache(cfg, source, walk_rng);
}

PrefetchCacheResult run_prefetch_cache_sized(
    const SizedExperimentConfig& cfg) {
  SKP_REQUIRE(cfg.capacity > 0.0, "capacity must be positive");
  Rng build_rng(cfg.seed);
  MarkovSource source(cfg.source, build_rng);
  Rng walk_rng = build_rng.split(0x57a1f);
  source.teleport(0);
  const std::size_t n = source.n_states();

  std::vector<double> sizes(n);
  for (std::size_t i = 0; i < n; ++i) {
    sizes[i] = cfg.size_per_r > 0.0
                   ? cfg.size_per_r *
                         source.retrieval_time(static_cast<ItemId>(i))
                   : build_rng.uniform(cfg.size_lo, cfg.size_hi);
  }

  EngineConfig ecfg;
  ecfg.policy = cfg.policy;
  ecfg.delta_rule = cfg.delta_rule;
  ecfg.arbitration.sub = cfg.sub;
  ecfg.arbitration.strict_ties = cfg.strict_ties;
  const PrefetchEngine engine(ecfg);

  SizedCache cache(sizes, cfg.capacity);
  FreqTracker freq(n);
  std::vector<char> unused_prefetch(n, 0);

  PrefetchCacheResult result;
  auto& m = result.metrics;
  std::size_t state = source.current_state();

  for (std::size_t req = 0; req < cfg.requests; ++req) {
    const bool counted = req >= cfg.warmup;
    const Instance inst = source.instance_at(state);
    const auto next = static_cast<ItemId>(source.step(walk_rng));
    std::optional<ItemId> oracle;
    if (cfg.policy == PrefetchPolicy::Perfect) oracle = next;

    const auto cache_before = std::vector<ItemId>(
        cache.contents().begin(), cache.contents().end());
    const PrefetchPlan plan =
        engine.plan_with_sized_cache(inst, cache, &freq, oracle);
    for (const ItemId d : plan.evict) {
      if (unused_prefetch[Instance::idx(d)]) {
        if (counted) ++m.wasted_prefetches;
        unused_prefetch[Instance::idx(d)] = 0;
      }
      cache.erase(d);
    }
    for (const ItemId f : plan.fetch) {
      cache.insert(f);
      unused_prefetch[Instance::idx(f)] = 1;
      if (counted) {
        ++m.prefetch_fetches;
        m.network_time += inst.r[Instance::idx(f)];
      }
    }
    if (counted) m.solver_nodes += plan.solver_nodes;

    const double T = realized_access_time_cached(
        inst, plan.fetch, plan.evict, cache_before, next);
    if (counted) {
      m.access_time.add(T);
      ++m.requests;
      if (T == 0.0) ++m.hits;
      if (T > source.viewing_time(state)) ++result.over_viewing_time;
    }

    freq.record(next);
    unused_prefetch[Instance::idx(next)] = 0;
    if (!cache.contains(next)) {
      if (counted) {
        ++m.demand_fetches;
        m.network_time += source.retrieval_time(next);
      }
      if (cache.cacheable(next)) {
        const Instance next_inst =
            source.instance_at(static_cast<std::size_t>(next));
        const VictimSet vs = gather_victims_by_density(
            next_inst, cache, &freq, ecfg.arbitration,
            cache.size_of(next));
        SKP_ASSERT(vs.ok);
        for (const ItemId d : vs.victims) {
          if (unused_prefetch[Instance::idx(d)]) {
            if (counted) ++m.wasted_prefetches;
            unused_prefetch[Instance::idx(d)] = 0;
          }
          cache.erase(d);
        }
        cache.insert(next);
      }
      // Items larger than the whole cache are served uncached.
    }
    state = static_cast<std::size_t>(next);
  }
  return result;
}

}  // namespace skp
