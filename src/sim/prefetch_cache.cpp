#include "sim/prefetch_cache.hpp"

#include <algorithm>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "core/access_model.hpp"
#include "core/lookahead.hpp"
#include "predict/dependency_graph.hpp"
#include "predict/lz78_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/ppm_predictor.hpp"

namespace skp {

const char* to_string(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::Oracle: return "oracle";
    case PredictorKind::Markov1: return "markov1";
    case PredictorKind::Ppm: return "ppm";
    case PredictorKind::DependencyWindow: return "depgraph";
    case PredictorKind::Lz78: return "lz78";
  }
  return "?";
}

namespace {

std::unique_ptr<Predictor> make_predictor(PredictorKind kind,
                                          std::size_t n) {
  switch (kind) {
    case PredictorKind::Oracle: return nullptr;
    case PredictorKind::Markov1:
      return std::make_unique<MarkovPredictor>(n, /*laplace=*/0.05);
    case PredictorKind::Ppm:
      return std::make_unique<PpmPredictor>(n, /*order=*/2);
    case PredictorKind::DependencyWindow:
      return std::make_unique<DependencyGraph>(n, /*window=*/2);
    case PredictorKind::Lz78:
      return std::make_unique<Lz78Predictor>(n);
  }
  return nullptr;
}

}  // namespace

PrefetchCacheResult run_prefetch_cache(const PrefetchCacheConfig& cfg,
                                       MarkovSource& source, Rng& walk_rng) {
  SKP_REQUIRE(cfg.cache_size >= 1, "cache_size must be >= 1");
  const std::size_t n = source.n_states();

  EngineConfig ecfg;
  ecfg.policy = cfg.policy;
  ecfg.delta_rule = cfg.delta_rule;
  ecfg.arbitration.sub = cfg.sub;
  ecfg.arbitration.strict_ties = cfg.strict_ties;
  ecfg.min_profit_threshold = cfg.min_profit_threshold;
  // Monte-Carlo hot loop: skip the per-round Eq.-(9) diagnostic no
  // counter consumes.
  ecfg.evaluate_plan_g = false;
  const PrefetchEngine engine(ecfg);

  SlotCache cache(n, cfg.cache_size);
  FreqTracker freq(n);
  auto predictor = make_predictor(cfg.predictor, n);

  // Track which cached items were prefetched and never yet accessed so
  // wasted prefetches can be charged when they are evicted unused.
  std::vector<char> unused_prefetch(n, 0);

  // The whole request loop runs allocation-free: the instance is a
  // borrowed view (source row / predictor buffer), and `scratch`/`plan`
  // recycle every planning buffer across the cfg.requests iterations.
  PlanScratch scratch;
  PrefetchPlan plan;

  // Cross-request memoization, two tiers (core/plan_cache.hpp): completed
  // plans keyed by (state, cache set), solver selections keyed by
  // (state, candidate set) — the latter hits constantly even while the
  // cache churns, and is valid under LFU/DS (the solve never reads
  // frequencies). The canonical-order table additionally requires P to be
  // the raw transition row (lookahead blends widen the support), so it is
  // oracle-mode-only. Context the keys cannot see is handled by
  // generation bumps below, which degrade the affected tier to a
  // correctness-preserving no-op.
  std::optional<PlanCache> plans;
  std::optional<PlanCache> selections;
  std::optional<CanonicalOrderTable> canon;
  if (cfg.use_plan_cache) {
    plans.emplace(engine.config_digest(), cfg.plan_cache_capacity,
                  /*doorkeeper=*/true);
    // Selections depend only on the per-state probability row, which a
    // learned predictor rewrites every observation — the tier could then
    // never hit, so it is not consulted at all in predictor mode.
    if (!predictor) {
      selections.emplace(engine.config_digest(), cfg.plan_cache_capacity);
    }
    if (!predictor && cfg.lookahead_horizon <= 1) canon.emplace(n);
  }
  // Plans additionally depend on frequency state under LFU/DS
  // sub-arbitration and on the predictor's evolving row.
  const bool volatile_plans =
      predictor != nullptr || cfg.sub != SubArbitration::None;

  PrefetchCacheResult result;
  auto& m = result.metrics;

  // Phase-shift stream, derived from the config seed (not from walk_rng,
  // so drifting and static runs share the walk stream between
  // changepoints and the caller-supplied-source overload stays usable).
  Rng drift_rng = Rng(cfg.seed).split(kPrefetchCacheDriftSalt);

  std::size_t state = source.current_state();
  if (predictor) predictor->observe(static_cast<ItemId>(state));

  for (std::size_t req = 0; req < cfg.requests; ++req) {
    const bool counted = req >= cfg.warmup;
    if (cfg.drift_period != 0 && req != 0 && req % cfg.drift_period == 0) {
      // Changepoint: the transition rows every memoized plan, solver
      // selection and canonical order was computed from are gone.
      source.redraw_transitions(cfg.source, drift_rng);
      if (plans) plans->bump_generation();
      if (selections) selections->bump_generation();
      if (canon) canon->invalidate_all();
    }

    // What the prefetcher knows in the current state. In plain oracle
    // mode P is the sparse transition row, and the source's successor
    // list (ascending, exactly the positive entries) doubles as the
    // engine's candidate-support hint.
    InstanceView inst = source.view_at(state);
    std::span<const ItemId> positive_hint = source.successors(state);
    if (predictor) {
      predictor->predict_into(scratch.P);
      for (double& p : scratch.P) {
        if (p < cfg.predictor_min_prob) p = 0.0;
      }
      inst.P = scratch.P;
      positive_hint = {};  // dense support
    } else if (cfg.lookahead_horizon > 1) {
      horizon_probabilities_into(source, state, cfg.lookahead_horizon,
                                 cfg.lookahead_decay, scratch.P);
      inst.P = scratch.P;
      positive_hint = {};  // blended rows widen the support
    }

    // The source decides the next request now; only the Perfect oracle may
    // look at it.
    const auto next = static_cast<ItemId>(source.step(walk_rng));
    std::optional<ItemId> oracle;
    if (cfg.policy == PrefetchPolicy::Perfect) oracle = next;

    // Plan against the current cache (memoized when configured; a
    // default PlanMemo makes this exactly plan_with_cache).
    PlanMemo memo;
    if (plans) {
      memo.plans = &*plans;
      memo.selections = selections ? &*selections : nullptr;
      memo.canon = canon ? &*canon : nullptr;
      memo.state_key = state;
    }
    engine.plan_with_cache_cached(inst, cache, &freq, memo, scratch, plan,
                                  oracle, positive_hint);

    // Realized access time (Section 5 cases) against the pre-plan cache:
    // computed before the plan mutates the cache, which is exactly the
    // "cache before" snapshot the model asks for — no copy needed, and
    // membership via the presence bitmap instead of a contents scan.
    const double T = realized_access_time_cached(
        inst, plan.fetch, plan.evict, cache.presence(), next);

    // Execute the prefetch.
    {
      std::size_t victim_idx = 0;
      for (std::size_t k = 0; k < plan.fetch.size(); ++k) {
        const ItemId f = plan.fetch[k];
        if (cache.full()) {
          SKP_ASSERT(victim_idx < plan.evict.size());
          const ItemId d = plan.evict[victim_idx++];
          if (unused_prefetch[InstanceView::idx(d)]) {
            if (counted) ++m.wasted_prefetches;
            unused_prefetch[InstanceView::idx(d)] = 0;
          }
          cache.replace(d, f);
        } else {
          cache.insert(f);
        }
        unused_prefetch[InstanceView::idx(f)] = 1;
        if (counted) {
          ++m.prefetch_fetches;
          m.network_time += inst.r[InstanceView::idx(f)];
          m.prefetch_network_time += inst.r[InstanceView::idx(f)];
        }
      }
    }
    if (counted) m.solver_nodes += plan.solver_nodes;

    if (counted) {
      m.access_time.add(T);
      ++m.requests;
      if (T == 0.0) ++m.hits;
      if (T > source.viewing_time(state)) ++result.over_viewing_time;
    }

    // Serve the request: record frequency, learn, demand-fetch on miss.
    freq.record(next);
    if (predictor) predictor->observe(next);
    // The observation/record just invalidated every stored plan that
    // depended on predictor or frequency state; retire the tier before
    // the next lookup (selections are simply not consulted in predictor
    // mode, see above).
    if (plans && volatile_plans) plans->bump_generation();
    unused_prefetch[InstanceView::idx(next)] = 0;

    if (!cache.contains(next)) {
      if (counted) {
        ++m.demand_fetches;
        m.network_time += source.retrieval_time(next);
        m.demand_network_time += source.retrieval_time(next);
      }
      if (cache.full()) {
        // "Demand-fetched item, however, must have a victim": minimal-Pr
        // with the probabilities now in force (the new state's row).
        // `inst` is not read past this point, so its P buffer is free to
        // be overwritten by the new prediction.
        InstanceView next_inst =
            source.view_at(static_cast<std::size_t>(next));
        if (predictor) {
          predictor->predict_into(scratch.P);
          next_inst.P = scratch.P;
        }
        const ItemId d = choose_victim(next_inst, cache.contents(), &freq,
                                       ecfg.arbitration);
        if (unused_prefetch[InstanceView::idx(d)]) {
          if (counted) ++m.wasted_prefetches;
          unused_prefetch[InstanceView::idx(d)] = 0;
        }
        cache.replace(d, next);
      } else {
        cache.insert(next);
      }
    }

    state = static_cast<std::size_t>(next);
  }
  if (plans) {
    result.plan_cache.plans = plans->stats();
    if (selections) result.plan_cache.selections = selections->stats();
  }
  return result;
}

PrefetchCacheResult run_prefetch_cache(const PrefetchCacheConfig& cfg) {
  Rng build_rng(cfg.seed);
  MarkovSource source(cfg.source, build_rng);
  Rng walk_rng = build_rng.split(kPrefetchCacheWalkSalt);
  // Deterministic initial state.
  source.teleport(0);
  return run_prefetch_cache(cfg, source, walk_rng);
}

PrefetchCacheResult run_prefetch_cache_sized(
    const SizedExperimentConfig& cfg) {
  SKP_REQUIRE(cfg.capacity > 0.0, "capacity must be positive");
  Rng build_rng(cfg.seed);
  MarkovSource source(cfg.source, build_rng);
  Rng walk_rng = build_rng.split(kPrefetchCacheWalkSalt);
  source.teleport(0);
  const std::size_t n = source.n_states();

  std::vector<double> sizes(n);
  for (std::size_t i = 0; i < n; ++i) {
    sizes[i] = cfg.size_per_r > 0.0
                   ? cfg.size_per_r *
                         source.retrieval_time(static_cast<ItemId>(i))
                   : build_rng.uniform(cfg.size_lo, cfg.size_hi);
  }

  EngineConfig ecfg;
  ecfg.policy = cfg.policy;
  ecfg.delta_rule = cfg.delta_rule;
  ecfg.arbitration.sub = cfg.sub;
  ecfg.arbitration.strict_ties = cfg.strict_ties;
  ecfg.evaluate_plan_g = false;  // as in the slot loop
  const PrefetchEngine engine(ecfg);

  SizedCache cache(sizes, cfg.capacity);
  FreqTracker freq(n);
  std::vector<char> unused_prefetch(n, 0);

  // Allocation-free request loop: borrowed views + recycled buffers, as in
  // the slot-cache loop above; memoization keyed by the SizedCache
  // fingerprint (oracle rows, so the canonical table always applies —
  // LFU/DS frequency context is generation-bumped as in the slot loop).
  PlanScratch scratch;
  PrefetchPlan plan;
  std::optional<PlanCache> plans;
  std::optional<PlanCache> selections;
  std::optional<CanonicalOrderTable> canon;
  if (cfg.use_plan_cache) {
    plans.emplace(engine.config_digest(), cfg.plan_cache_capacity,
                  /*doorkeeper=*/true);
    selections.emplace(engine.config_digest(), cfg.plan_cache_capacity);
    canon.emplace(n);
  }
  const bool volatile_plans = cfg.sub != SubArbitration::None;

  PrefetchCacheResult result;
  auto& m = result.metrics;
  std::size_t state = source.current_state();

  for (std::size_t req = 0; req < cfg.requests; ++req) {
    const bool counted = req >= cfg.warmup;
    const InstanceView inst = source.view_at(state);
    const auto next = static_cast<ItemId>(source.step(walk_rng));
    std::optional<ItemId> oracle;
    if (cfg.policy == PrefetchPolicy::Perfect) oracle = next;

    PlanMemo memo;
    if (plans) {
      memo.plans = &*plans;
      memo.selections = &*selections;
      memo.canon = &*canon;
      memo.state_key = state;
    }
    engine.plan_with_sized_cache_cached(inst, cache, &freq, memo, scratch,
                                        plan, oracle,
                                        source.successors(state));

    // Realized access time against the pre-plan cache (computed before the
    // plan executes; see the slot loop).
    const double T = realized_access_time_cached(
        inst, plan.fetch, plan.evict, cache.presence(), next);

    for (const ItemId d : plan.evict) {
      if (unused_prefetch[InstanceView::idx(d)]) {
        if (counted) ++m.wasted_prefetches;
        unused_prefetch[InstanceView::idx(d)] = 0;
      }
      cache.erase(d);
    }
    for (const ItemId f : plan.fetch) {
      cache.insert(f);
      unused_prefetch[InstanceView::idx(f)] = 1;
      if (counted) {
        ++m.prefetch_fetches;
        m.network_time += inst.r[InstanceView::idx(f)];
        m.prefetch_network_time += inst.r[InstanceView::idx(f)];
      }
    }
    if (counted) m.solver_nodes += plan.solver_nodes;

    if (counted) {
      m.access_time.add(T);
      ++m.requests;
      if (T == 0.0) ++m.hits;
      if (T > source.viewing_time(state)) ++result.over_viewing_time;
    }

    freq.record(next);
    if (plans && volatile_plans) plans->bump_generation();
    unused_prefetch[InstanceView::idx(next)] = 0;
    if (!cache.contains(next)) {
      if (counted) {
        ++m.demand_fetches;
        m.network_time += source.retrieval_time(next);
        m.demand_network_time += source.retrieval_time(next);
      }
      if (cache.cacheable(next)) {
        const InstanceView next_inst =
            source.view_at(static_cast<std::size_t>(next));
        gather_victims_by_density_into(next_inst, cache, &freq,
                                       ecfg.arbitration, cache.size_of(next),
                                       scratch.pool, scratch.victims);
        SKP_ASSERT(scratch.victims.ok);
        for (const ItemId d : scratch.victims.victims) {
          if (unused_prefetch[InstanceView::idx(d)]) {
            if (counted) ++m.wasted_prefetches;
            unused_prefetch[InstanceView::idx(d)] = 0;
          }
          cache.erase(d);
        }
        cache.insert(next);
      }
      // Items larger than the whole cache are served uncached.
    }
    state = static_cast<std::size_t>(next);
  }
  if (plans) {
    result.plan_cache.plans = plans->stats();
    result.plan_cache.selections = selections->stats();
  }
  return result;
}

}  // namespace skp
