// skpd_loopback: the seventh registry driver — netsim_des served by the
// skpd daemon over a loopback TCP socket.
//
// The driver runs the SAME decision path as netsim_des (the daemon hosts
// a NetsimStepper), but every cycle crosses the wire: SimSpec up in the
// handshake, STEP/STEP_RESULT per cycle, the exact SimResult back at the
// end. A skpd_loopback row therefore matches the netsim_des row of the
// same spec on every shared counter, and the verification harness diffs
// precisely that.
//
// Where the daemon lives is ENVIRONMENT, not spec — a chaos run must
// stay byte-identical to a calm run, so nothing about transport or
// fault injection may enter the SimSpec:
//
//   SKPD_ADDR=host:port  attach to an externally managed daemon
//   SKPD_BIN=path        else: spawn a private daemon for this run,
//                        SIGTERM it afterwards (exit 0 required — a
//                        failed drain fails the run)
//   SKPD_DROP_EVERY=N    chaos: client hard-drops its connection before
//                        every Nth STEP and resumes (0/unset = calm)
//
// Neither set => the spec is rejected with instructions.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "sim/runtime.hpp"

namespace skp {

// A spawned skpd child process. Exposed for tests and the chaos harness;
// the driver uses it when SKPD_BIN is set. The daemon is started with
// --port=0 (kernel-assigned) and announces the bound port on stdout as
// "SKPD_PORT=<n>"; construction blocks until that line arrives.
class SkpdDaemonProcess {
 public:
  explicit SkpdDaemonProcess(const std::string& binary,
                             std::vector<std::string> extra_args = {});
  ~SkpdDaemonProcess();
  SkpdDaemonProcess(const SkpdDaemonProcess&) = delete;
  SkpdDaemonProcess& operator=(const SkpdDaemonProcess&) = delete;

  int port() const noexcept { return port_; }
  pid_t pid() const noexcept { return pid_; }

  // Graceful drain: SIGTERM, then waitpid. Returns the raw wait status;
  // idempotent (later calls return the first status). The destructor
  // calls this and swallows the status.
  int terminate();

 private:
  pid_t pid_ = -1;
  int port_ = 0;
  bool reaped_ = false;
  int status_ = 0;
};

// Registry entry point (SimDriverKind::SkpdLoopback).
SimResult run_skpd_loopback_driver(const SimSpec& spec);

}  // namespace skp
