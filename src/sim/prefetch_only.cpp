#include "sim/prefetch_only.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <optional>

#include "core/access_model.hpp"
#include "workload/request_stream.hpp"

namespace skp {

namespace {

// Runs `count` iterations into `result` using `rng`.
void run_block(const PrefetchOnlyConfig& cfg, std::size_t count, Rng& rng,
               PrefetchOnlyResult& result) {
  EngineConfig ecfg;
  ecfg.policy = cfg.policy;
  ecfg.delta_rule = cfg.delta_rule;
  const PrefetchEngine engine(ecfg);

  // Every iteration redraws (P, r, v) into the same storage and plans
  // through the same scratch buffers — the block never allocates after
  // the first iteration.
  Instance inst;
  inst.P.resize(cfg.n_items);
  inst.r.resize(cfg.n_items);
  PlanScratch scratch;
  PrefetchPlan plan;

  // Uniform memoization wiring; i.i.d. instances can never recur, so the
  // per-iteration key guarantees all-miss (see PrefetchOnlyConfig).
  std::optional<PlanCache> plans;
  if (cfg.use_plan_cache) {
    plans.emplace(engine_config_digest(ecfg), cfg.plan_cache_capacity,
                  /*doorkeeper=*/true);
  }

  // Residual transfer time intruding into the next viewing window
  // (stretch_intrudes extension only; stays 0 under the paper protocol).
  double carry = 0.0;

  for (std::size_t it = 0; it < count; ++it) {
    // Step 1: generate P, r, v.
    generate_probabilities_into(cfg.n_items, cfg.method, rng, inst.P,
                                cfg.skew_exponent);
    for (auto& x : inst.r) {
      x = rng.uniform_time(cfg.r_lo, cfg.r_hi, cfg.integer_times);
    }
    const double v_drawn =
        rng.uniform_time(cfg.v_lo, cfg.v_hi, cfg.integer_times);
    inst.v = cfg.stretch_intrudes ? std::max(0.0, v_drawn - carry)
                                  : v_drawn;

    // Step 3 (drawn before planning so the Perfect oracle can see it; the
    // request is independent of the plan for every other policy).
    const ItemId requested = sample_categorical(inst.P, rng);

    // Step 2: prefetch.
    PlanMemo memo;
    if (plans) {
      memo.plans = &*plans;
      memo.state_key = it;  // unique per iteration: instances are i.i.d.
    }
    engine.plan_cached(inst, memo, scratch, plan, requested);

    // Step 4: access time per Figure 2.
    const double T = realized_access_time(inst, plan.fetch, requested);

    // Carryover for the next window: after a hit in K the tail of F is
    // still on the wire for st(F) beyond the request instant.
    if (cfg.stretch_intrudes) {
      const bool hit_in_K =
          !plan.fetch.empty() && requested != plan.fetch.back() &&
          std::find(plan.fetch.begin(), plan.fetch.end() - 1, requested) !=
              plan.fetch.end() - 1;
      carry = hit_in_K ? stretch_time(inst, plan.fetch) : 0.0;
    }

    // Step 5: output v and T (binned by the drawn v, as the paper plots).
    const auto vbin = static_cast<std::int64_t>(std::llround(v_drawn));
    result.avg_T_by_v.add(vbin, T);
    result.metrics.access_time.add(T);
    ++result.metrics.requests;
    if (T == 0.0) ++result.metrics.hits;
    result.metrics.solver_nodes += plan.solver_nodes;
    result.metrics.prefetch_fetches += plan.fetch.size();
    for (ItemId f : plan.fetch) {
      result.metrics.network_time += inst.r[Instance::idx(f)];
      result.metrics.prefetch_network_time += inst.r[Instance::idx(f)];
      if (f != requested) ++result.metrics.wasted_prefetches;
    }
    if (std::find(plan.fetch.begin(), plan.fetch.end(), requested) ==
        plan.fetch.end()) {
      ++result.metrics.demand_fetches;
      result.metrics.network_time += inst.r[Instance::idx(requested)];
      result.metrics.demand_network_time += inst.r[Instance::idx(requested)];
    }
    if (result.scatter.size() < cfg.scatter_limit) {
      result.scatter.emplace_back(v_drawn, T);
    }
  }
  if (plans) result.plan_cache.merge(plans->stats());
}

void validate_config(const PrefetchOnlyConfig& cfg) {
  SKP_REQUIRE(cfg.n_items >= 1, "n_items");
  SKP_REQUIRE(cfg.r_lo > 0 && cfg.r_lo <= cfg.r_hi, "r range");
  SKP_REQUIRE(cfg.v_lo >= 0 && cfg.v_lo <= cfg.v_hi, "v range");
}

}  // namespace

PrefetchOnlyResult run_prefetch_only(const PrefetchOnlyConfig& cfg) {
  validate_config(cfg);
  PrefetchOnlyResult result(static_cast<std::int64_t>(cfg.v_lo),
                            static_cast<std::int64_t>(cfg.v_hi));
  Rng rng(cfg.seed);
  run_block(cfg, cfg.iterations, rng, result);
  return result;
}

PrefetchOnlyResult run_prefetch_only_parallel(const PrefetchOnlyConfig& cfg,
                                              ThreadPool& pool,
                                              std::size_t chunks) {
  validate_config(cfg);
  if (chunks == 0) chunks = pool.thread_count();
  chunks = std::max<std::size_t>(1, chunks);

  PrefetchOnlyResult total(static_cast<std::int64_t>(cfg.v_lo),
                           static_cast<std::int64_t>(cfg.v_hi));
  std::mutex merge_mu;
  Rng parent(cfg.seed);

  // Derive all chunk streams up-front so they depend only on (seed, chunk).
  std::vector<Rng> streams;
  streams.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    streams.push_back(parent.split(c + 1));
  }

  parallel_chunks(pool, cfg.iterations, chunks,
                  [&](std::size_t begin, std::size_t end, std::size_t c) {
                    PrefetchOnlyResult local(
                        static_cast<std::int64_t>(cfg.v_lo),
                        static_cast<std::int64_t>(cfg.v_hi));
                    Rng rng = streams[c];
                    run_block(cfg, end - begin, rng, local);
                    const std::lock_guard lk(merge_mu);
                    total.avg_T_by_v.merge(local.avg_T_by_v);
                    total.metrics.merge(local.metrics);
                    total.plan_cache.merge(local.plan_cache);
                    for (const auto& pt : local.scatter) {
                      if (total.scatter.size() < cfg.scatter_limit) {
                        total.scatter.push_back(pt);
                      }
                    }
                  });
  return total;
}

}  // namespace skp
