// Unified simulation runtime: SimSpec descriptors + driver registry.
//
// The paper's evaluation is a matrix of simulators (prefetch-only,
// prefetch+cache, trace replay, network DES) crossed with predictors,
// replacement policies and workloads. Before this layer existed every
// bench, test and the scenario harness wired each driver by hand; now a
// single value type — SimSpec — names any cell of that matrix, a driver
// registry dispatches it to the existing engines, and every run reports
// through one SimResult. The figure benches are thin SimSpec
// enumerations over sim/sweep.hpp, the scenario-matrix harness is a
// SimSpec mapping, and the `simctl` CLI (tools/simctl.cpp) turns flags
// into spec sweeps that shard across processes/machines with
// byte-identical merged CSV output.
//
// Workloads are first-class spec fields too: the paper's Markov chain
// and i.i.d. draws, plus the Zipf catalog (workload/zipf_source.hpp),
// phase-shifting Markov drift (MarkovSource::redraw_transitions) and a
// text-round-tripped trace. Determinism contract: a SimSpec fully
// determines its SimResult (every random stream derives from spec.seed),
// so any sharding/threading of a spec sweep is result-equivalent to a
// serial loop.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/overload.hpp"
#include "core/prefetch_engine.hpp"
#include "predict/predictor.hpp"
#include "sim/fault.hpp"
#include "sim/link_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/prefetch_cache.hpp"  // PredictorKind + PrefetchCacheConfig
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "workload/prob_gen.hpp"
#include "workload/trace.hpp"

namespace skp {

// ---- Spec vocabulary ----------------------------------------------------

enum class SimDriverKind {
  PrefetchOnly,   // Section 4.4 flush-per-request Monte Carlo (Figs. 4/5)
  PrefetchCache,  // Section 5.3 Markov prefetch+cache Monte Carlo (Fig. 7)
  TraceReplay,    // recorded trace through the learned-predictor pipeline
  NetsimDes,      // discrete-event ClientSession over a serial link
  Scenario,       // deployment pipeline: predictor + replacement policy +
                  // net-grounded retrieval times (the scenario matrix)
  MultiClientDes, // K clients contending for ONE shared link (multi-user
                  // DES; see SimSpec::multi_client)
  SkpdLoopback,   // netsim_des served by the skpd daemon over a loopback
                  // socket (tools/skpd.cpp); decision path bit-identical
                  // to NetsimDes. Needs SKPD_BIN or SKPD_ADDR in the
                  // environment — see sim/skpd_loopback.hpp.
};

enum class SimWorkloadKind {
  Markov,       // the paper's sparse Markov chain
  Iid,          // i.i.d. draws from one skewy/flat row
  Zipf,         // i.i.d. Zipf catalog (rank-1 chain)
  MarkovDrift,  // Markov chain with phase-shift changepoints
  TraceText,    // Markov walk round-tripped through the skptrace format
  Adversarial,  // two-clique cache-thrashing chain
                // (workload/adversarial_source.hpp)
};

// Demand-miss eviction policy for the Scenario driver (prefetch victims
// come from the ReplacementPolicy too unless `pr_planning` engages the
// Figure-6 Pr-arbitration path).
enum class ReplacementKind { LRU, FIFO, LFU, Random };

struct SimWorkload {
  SimWorkloadKind kind = SimWorkloadKind::Markov;
  std::size_t n_items = 100;
  // Chain shape (Markov / MarkovDrift / TraceText); defaults are the
  // Fig. 7 caption.
  std::size_t out_degree_lo = 10, out_degree_hi = 20;
  double v_lo = 1.0, v_hi = 100.0;
  double r_lo = 1.0, r_hi = 30.0;
  bool integer_times = true;
  // Iid parameters. `iid_viewing_time` is the constant v of each cycle
  // in the cycle-driven drivers (prefetch_only draws v per iteration
  // from v_lo..v_hi instead, per the paper's protocol).
  ProbMethod method = ProbMethod::Skewy;
  double skew_exponent = 8.0;
  double iid_viewing_time = 30.0;
  // Zipf parameters (workload/zipf_source.hpp).
  double zipf_exponent = 1.1;
  bool zipf_shuffle = true;
  // MarkovDrift: requests between transition-structure changepoints.
  std::size_t drift_period = 2'000;
  // Adversarial parameters (workload/adversarial_source.hpp): two hot
  // cliques of adv_hot_set items alternate with per-step escape
  // probability adv_escape; size the clique just past the cache to
  // thrash it.
  std::size_t adv_hot_set = 8;
  double adv_escape = 0.02;

  bool operator==(const SimWorkload&) const = default;
};

// Per-client override for the multi_client driver. Every field defaults
// to "inherit from the base spec"; a client can reshape its workload,
// swap its predictor, or reseed its private request stream. Each
// client's streams are derived from (effective seed, client index), so
// homogeneous clients walk distinct trajectories and overriding one
// client never shifts another's.
struct MultiClientOverride {
  std::optional<SimWorkload> workload;
  std::optional<PredictorKind> predictor;
  std::optional<std::uint64_t> seed;
  // Per-client cycle quota (splits a total request budget without
  // dropping a remainder) and churn schedule overrides.
  std::optional<std::size_t> requests;
  std::optional<double> churn_period;
  std::optional<double> churn_downtime;

  bool operator==(const MultiClientOverride&) const = default;
};

// The multi-user DES section (consulted by the multi_client driver
// only; every other driver rejects a non-default section). Clients share
// ONE serial link — r_i / link_speedup per transfer — and the grounded
// retrieval catalog (r_i = latency + size_i / bandwidth, same stream
// layout as netsim_des/scenario), but own their caches, engines,
// predictors and request streams. `requests` in the base spec counts
// per client, so the aggregate serves clients x requests cycles.
struct MultiClientSpec {
  std::size_t clients = 4;
  double link_speedup = 1.0;
  // Hostile worlds (sim/multi_client.hpp has the full semantics):
  // flash-crowd phase alignment in [0, 1] (0 = independent phases, 1 =
  // every client's cycle k takes the same herd-drawn time, so demand
  // spikes hit the shared link together), and a churn schedule (every
  // `churn_period` time units a client departs — cache/frequency flush,
  // cold predictor, plan-memo invalidation — and rejoins
  // `churn_downtime` later with its streams intact).
  double phase_align = 0.0;
  double churn_period = 0.0;
  double churn_downtime = 0.0;
  // Empty = homogeneous clients derived from the base spec; otherwise
  // exactly `clients` entries.
  std::vector<MultiClientOverride> overrides;

  bool operator==(const MultiClientSpec&) const = default;
};

struct SimSpec {
  SimDriverKind driver = SimDriverKind::PrefetchCache;
  SimWorkload workload;

  // Planning.
  PrefetchPolicy policy = PrefetchPolicy::SKP;
  SubArbitration sub = SubArbitration::None;
  DeltaRule delta_rule = DeltaRule::ExactComplement;
  double min_profit_threshold = 0.0;

  // Prediction. Oracle uses the workload's ground-truth rows (invalid
  // for TraceReplay/Scenario, which are learned-predictor pipelines).
  PredictorKind predictor = PredictorKind::Oracle;
  double predictor_min_prob = 0.01;
  // Observe-only prefix before planning starts (Scenario/NetsimDes).
  std::size_t predictor_warmup = 0;

  // Cache sizing. `sized_capacity` > 0 switches the PrefetchCache driver
  // to the byte-addressed SizedCache (capacity in size units; item sizes
  // are size_per_r * r_i when size_per_r > 0, else U[size_lo, size_hi]).
  std::size_t cache_size = 10;
  double sized_capacity = 0.0;
  double size_per_r = 1.0;
  double size_lo = 1.0, size_hi = 30.0;
  // Scenario driver: demand-miss eviction policy, and whether prefetch
  // victims come from Figure-6 Pr-arbitration instead of the policy.
  ReplacementKind replacement = ReplacementKind::LRU;
  bool pr_planning = false;

  // Network grounding (NetsimDes + Scenario): r_i = latency + size_i /
  // bandwidth over a catalog of sizes drawn U{1..30} from the seed.
  double bandwidth = 1.0;
  double latency = 0.0;
  // Time-varying link (NetsimDes + MultiClientDes): non-empty cycles
  // these phases over the link; the phase at a transfer's start prices
  // it, while planning keeps the base static estimate
  // (sim/link_schedule.hpp). Drivers without a link reject it.
  std::vector<LinkPhase> link_schedule;

  // Robustness layer (NetsimDes + MultiClientDes; every other driver
  // rejects non-default sections — they have no transfer path to fail or
  // degrade). Fault draws come from a dedicated stream,
  // Rng(seed).split(kFaultStreamSalt), so fail_rate=0 runs are
  // bit-identical to a build without the layer. The overload controller
  // watches realized access times and steps planning effort down the
  // degradation rungs (core/overload.hpp) before any request would be
  // shed. `deadline` > 0 additionally counts requests served with
  // T <= deadline (SimResult::deadline_hits).
  FaultSpec fault;
  OverloadConfig overload;
  double deadline = 0.0;

  // Run shape.
  std::size_t requests = 5'000;
  std::size_t warmup = 0;  // leading requests excluded from metrics
  std::uint64_t seed = 1;
  bool use_plan_cache = true;
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
  // Pipelined single-sim execution (PrefetchCache driver only; see
  // PrefetchCacheConfig::pipeline_workers for the contract — oracle SKP
  // fast path, results bit-identical to 0).
  std::size_t pipeline_workers = 0;

  // Multi-user DES section (multi_client driver only).
  MultiClientSpec multi_client;

  // Structural equality — the skpd handshake round-trips a spec over the
  // wire and the resume path asserts the reattached session was created
  // from the very spec the client is still driving.
  bool operator==(const SimSpec&) const = default;
};

// ---- Unified result -----------------------------------------------------

struct SimResult {
  SimMetrics metrics;        // merged counters, every driver
  PlanMemoStats plan_cache;  // memoization tiers (zero when unused)
  // PrefetchCache driver: requests whose T exceeded the viewing time.
  std::uint64_t over_viewing_time = 0;
  // Scenario/NetsimDes: planning rounds that fetched anything.
  std::uint64_t plans = 0;
  // MultiClientDes: client departures under a churn schedule.
  std::uint64_t churn_events = 0;
  // Scenario driver: stretch-knapsack bandwidth-budget violations.
  std::uint64_t budget_violations = 0;
  double worst_budget_overrun = 0.0;
  // NetsimDes/MultiClientDes: fraction of elapsed time the link
  // transferred.
  double link_utilization = 0.0;
  // NetsimDes/MultiClientDes: transfer-fault counters (sim/fault.hpp;
  // zero when the fault section is disabled). Exact invariant:
  // fault.failed_transfers == fault.retries + fault.abandoned.
  FaultStats fault;
  // NetsimDes/MultiClientDes: overload-controller counters
  // (core/overload.hpp; zero when the controller is disabled).
  OverloadStats overload;
  // Requests served with T <= spec.deadline (0 when no deadline is set).
  std::uint64_t deadline_hits = 0;
  // PrefetchOnly driver: the Fig.-5 average-T-by-v curve.
  std::optional<BinnedMeans> avg_T_by_v;
  // MultiClientDes driver: one row per client (metrics above are the
  // merge); empty for the single-client drivers.
  std::vector<SimMetrics> per_client;

  // Requests served without a demand fetch (cache-resident or covered by
  // a prefetch). In the Monte-Carlo drivers this bounds metrics.hits
  // from above (equal whenever every covering prefetch completed inside
  // the viewing time); the DES counts metrics.hits only at T == 0, so a
  // resident item whose transfer is still in flight lands here and not
  // there. This is the one place that semantic lives — the scenario
  // matrix's NetsimDes golden rows pin this rate.
  std::uint64_t resident_hits() const noexcept {
    return metrics.requests - metrics.demand_fetches;
  }
  double resident_hit_rate() const noexcept {
    return metrics.requests ? static_cast<double>(resident_hits()) /
                                  static_cast<double>(metrics.requests)
                            : 0.0;
  }
};

// ---- Driver registry ----------------------------------------------------

struct SimDriver {
  SimDriverKind kind;
  const char* name;  // stable CLI/CSV token, e.g. "prefetch_cache"
  SimResult (*run)(const SimSpec&);
};

// All registered drivers, in a fixed order.
std::span<const SimDriver> driver_registry();
const SimDriver& find_driver(SimDriverKind kind);
const SimDriver* find_driver(std::string_view name);

// Dispatches `spec` to its driver. Throws std::invalid_argument when the
// spec names a combination the driver does not support (e.g. an oracle
// trace replay).
SimResult run_sim(const SimSpec& spec);

// Batched dispatch: runs every spec, routing consecutive runs that share
// one workload (prefetch_cache driver, oracle Markov/MarkovDrift, same
// source shape/seed/requests/drift) through the lockstep
// run_prefetch_cache_batch runner — the source is stepped once per
// request for the whole group and same-candidate-set SKP solves are
// batched. Each result is bit-identical to run_sim on that spec alone
// (the determinism contract is untouched; batching only moves setup
// work), and specs the lockstep runner cannot take simply run through
// run_sim. Results are returned in input order.
std::vector<SimResult> run_sim_batch(std::span<const SimSpec> specs);

// ---- Stable string forms (CLI flags and CSV cells) ----------------------

const char* to_string(SimDriverKind kind);
const char* to_string(SimWorkloadKind kind);
const char* to_string(ReplacementKind kind);
std::optional<SimDriverKind> parse_driver_kind(std::string_view name);
std::optional<SimWorkloadKind> parse_workload_kind(std::string_view name);
std::optional<ReplacementKind> parse_replacement_kind(std::string_view name);
std::optional<PrefetchPolicy> parse_policy(std::string_view name);
std::optional<SubArbitration> parse_sub_arbitration(std::string_view name);
std::optional<DeltaRule> parse_delta_rule(std::string_view name);
std::optional<PredictorKind> parse_predictor_kind(std::string_view name);
std::optional<ProbMethod> parse_prob_method(std::string_view name);
const char* policy_token(PrefetchPolicy policy);
const char* sub_token(SubArbitration sub);
const char* delta_token(DeltaRule rule);

// ---- Workload materialization -------------------------------------------

// Flat request cycles plus the generating catalog, for the cycle-driven
// drivers (TraceReplay, NetsimDes learned mode, Scenario). `build` seeds
// the structure, `walk` the trajectory — the same split every simulator
// uses, so a workload is reproducible independently of what consumes it.
struct MaterializedWorkload {
  std::size_t n_items = 0;
  std::vector<TraceRecord> cycles;        // (item, viewing time) per cycle
  std::vector<double> retrieval_times;    // generator's r catalog
};

MaterializedWorkload materialize_workload(const SimWorkload& workload,
                                          std::size_t requests, Rng& build,
                                          Rng& walk);

// The learned predictors of the scenario pipelines, one construction
// shared by the scenario / netsim_des / multi_client drivers so their
// golden rows stay comparable. Throws on Oracle (no learned state).
std::unique_ptr<Predictor> make_runtime_predictor(PredictorKind kind,
                                                  std::size_t n_items);

// ---- simctl substrate (sharding + CSV) ----------------------------------
//
// A sweep is an ordered std::vector<SimSpec>; each spec's position is its
// stable index. A shard i/N owns the indices with index % N == i, so any
// partition of the sweep covers each index exactly once and the merged
// output is byte-identical to a single-process run.

bool shard_owns(std::size_t index, std::size_t shard_index,
                std::size_t shard_count);

// One header + one row per run; the leading `index` column is the merge
// key. Doubles format via operator<< (6 significant digits), so equal
// results produce equal text.
std::vector<std::string> sim_csv_header();
void append_sim_csv_row(CsvWriter& writer, std::size_t index,
                        const SimSpec& spec, const SimResult& result);

// Per-client companion document (multi_client driver): one row per
// (spec index, client) with that client's own counters, so sweeps can
// analyze fairness/straggler effects that the merged row hides. Specs
// without per-client results (every single-client driver) emit nothing.
std::vector<std::string> per_client_csv_header();
void append_per_client_csv_rows(CsvWriter& writer, std::size_t index,
                                const SimSpec& spec,
                                const SimResult& result);

// Merges shard CSV outputs (each: header + index-prefixed rows) back into
// the single-run document: rows sorted by index, exactly the indices
// 0..total-1 present once each. Throws std::invalid_argument on header
// mismatch, duplicate or missing indices, or malformed rows — a spec
// index appearing in two inputs (overlapping shards, or the same shard
// merged twice) is an error, never a silent concatenation. `names`,
// when given, labels each shard document in diagnostics (simctl passes
// the input file paths); it must be empty or match `shards` in size.
//
// Per-client companion documents are recognized by their header (second
// column `client`) and merge on the (index, client) pair instead: a spec
// index may span several rows, clients dense from 0 within it, and the
// index set must still be exactly 0..max — so a sharded per-client sweep
// interleaves back into the single-run companion byte for byte.
std::string merge_sharded_csv(const std::vector<std::string>& shards,
                              const std::vector<std::string>& names = {});

}  // namespace skp
