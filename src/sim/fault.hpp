// Transfer-fault model for the DES simulators.
//
// Real links drop, stall, and time out; the paper's model (and PRs 1-6)
// assumed every fetch succeeds. FaultSpec describes an unreliable
// transfer path — independent per-attempt failure, slow-path stalls, a
// per-transfer timeout — plus a RetryPolicy with exponential backoff and
// deterministic jitter. Fault draws come from a dedicated split RNG
// stream (kFaultStreamSalt) so enabling faults never perturbs the
// workload or decision streams: with the spec disabled the simulators
// skip this module entirely and stay bit-identical to the fault-free
// build.
//
// Only *prefetch* transfers are subject to faults. A demand fetch is the
// fallback of last resort — the "graceful degradation" contract is that
// a prefetch which exhausts its retry budget is abandoned (the slot it
// claimed is released) and the item is simply demand-fetched when the
// request actually arrives. That keeps the conservation invariant
// (resident hits + demand fetches == requests) intact at any fail rate,
// including fail_rate == 1.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace skp {

// Salt for the dedicated fault stream: Rng(seed).split(kFaultStreamSalt).
// Distinct from every other salt in the tree (1 build, 2 walk, 3 sizes,
// 4 policy, 999 herd, 1000+c per-client, and the prefetch-cache salts).
inline constexpr std::uint64_t kFaultStreamSalt = 7777;

// Retry schedule for a failed prefetch attempt. max_attempts counts the
// first try too, so max_attempts == 1 means "no retries". The k-th
// re-attempt waits backoff_base * backoff_factor^(k-1), optionally
// inflated by a uniform jitter fraction drawn from the fault stream.
struct RetryPolicy {
  std::size_t max_attempts = 1;
  double backoff_base = 0.0;
  double backoff_factor = 2.0;
  double jitter = 0.0;  // re-attempt delay *= 1 + jitter * U[0,1)

  bool operator==(const RetryPolicy&) const = default;
};

struct FaultSpec {
  double fail_rate = 0.0;    // P(attempt fails outright)
  double stall_rate = 0.0;   // P(attempt runs stall_factor x slower)
  double stall_factor = 4.0;
  double timeout = 0.0;      // abort attempts longer than this (0 = off)
  RetryPolicy retry;

  bool enabled() const {
    return fail_rate > 0.0 || stall_rate > 0.0 || timeout > 0.0;
  }
  bool operator==(const FaultSpec&) const = default;
};

inline void validate_fault_spec(const FaultSpec& spec) {
  SKP_REQUIRE(spec.fail_rate >= 0.0 && spec.fail_rate <= 1.0,
              "fail_rate must be in [0, 1], got " << spec.fail_rate);
  SKP_REQUIRE(spec.stall_rate >= 0.0 && spec.stall_rate <= 1.0,
              "stall_rate must be in [0, 1], got " << spec.stall_rate);
  SKP_REQUIRE(spec.stall_factor >= 1.0,
              "stall_factor must be >= 1, got " << spec.stall_factor);
  SKP_REQUIRE(spec.timeout >= 0.0,
              "timeout must be >= 0, got " << spec.timeout);
  SKP_REQUIRE(spec.retry.max_attempts >= 1,
              "retry max_attempts must be >= 1, got "
                  << spec.retry.max_attempts);
  SKP_REQUIRE(spec.retry.backoff_base >= 0.0,
              "retry backoff_base must be >= 0, got "
                  << spec.retry.backoff_base);
  SKP_REQUIRE(spec.retry.backoff_factor >= 1.0,
              "retry backoff_factor must be >= 1, got "
                  << spec.retry.backoff_factor);
  SKP_REQUIRE(spec.retry.jitter >= 0.0,
              "retry jitter must be >= 0, got " << spec.retry.jitter);
}

// Fault-path counters. Every undelivered attempt is either followed by a
// re-attempt or ends the transfer, so the books always balance exactly:
// failed_transfers == retries + abandoned.
struct FaultStats {
  std::uint64_t failed_transfers = 0;  // attempts that did not deliver
  std::uint64_t timeouts = 0;          // subset cut off by the timeout
  std::uint64_t stalled = 0;           // attempts slowed by stall_factor
  std::uint64_t retries = 0;           // re-attempts scheduled
  std::uint64_t abandoned = 0;         // transfers that gave up entirely

  void merge(const FaultStats& other) {
    failed_transfers += other.failed_transfers;
    timeouts += other.timeouts;
    stalled += other.stalled;
    retries += other.retries;
    abandoned += other.abandoned;
  }
  bool operator==(const FaultStats&) const = default;
};

// Delay before the next re-attempt, after `attempt` attempts have already
// run (so the first re-attempt passes attempt == 1). One definition shared
// by the DES fault model below and the skpd client's reconnect loop, so
// "exponential backoff with deterministic jitter" means the same schedule
// on both sides of the wire. Draws from `rng` only when jitter is engaged
// — a jitter-free policy consumes no stream state.
inline double retry_backoff_delay(const RetryPolicy& retry,
                                  std::size_t attempt, Rng& rng) {
  double backoff =
      retry.backoff_base * std::pow(retry.backoff_factor,
                                    static_cast<double>(attempt - 1));
  if (retry.jitter > 0.0) {
    backoff *= 1.0 + retry.jitter * rng.next_double();
  }
  return backoff;
}

// Outcome of pushing one logical transfer through the fault model:
// `finish` is when the link frees up (last attempt's end), `busy` the
// total occupancy across attempts (backoff gaps idle the link and are
// excluded), `delivered` whether the payload actually arrived.
struct FaultTransfer {
  double finish = 0.0;
  double busy = 0.0;
  bool delivered = true;
};

// Runs the attempt/backoff loop for one transfer queued at queue_start.
// `price(start)` returns the attempt's nominal duration when it begins
// at `start` — callers re-price per attempt so phase-dependent link
// schedules charge each attempt at the rate in force when it runs.
template <typename PriceFn>
FaultTransfer run_faulty_transfer(const FaultSpec& spec, Rng& rng,
                                  FaultStats& stats, double queue_start,
                                  PriceFn&& price) {
  FaultTransfer out;
  const std::size_t max_attempts =
      std::max<std::size_t>(1, spec.retry.max_attempts);
  double start = queue_start;
  for (std::size_t attempt = 1;; ++attempt) {
    const bool failed = rng.bernoulli(spec.fail_rate);
    const bool stalled = rng.bernoulli(spec.stall_rate);
    double occupancy = price(start);
    if (stalled) {
      occupancy *= spec.stall_factor;
      ++stats.stalled;
    }
    bool timed_out = false;
    if (spec.timeout > 0.0 && occupancy > spec.timeout) {
      occupancy = spec.timeout;  // the attempt is cut off, not run out
      timed_out = true;
      ++stats.timeouts;
    }
    out.busy += occupancy;
    out.finish = start + occupancy;
    if (!failed && !timed_out) {
      out.delivered = true;
      return out;
    }
    ++stats.failed_transfers;
    if (attempt >= max_attempts) {
      ++stats.abandoned;
      out.delivered = false;
      return out;
    }
    ++stats.retries;
    // The link idles through the backoff gap.
    start = out.finish + retry_backoff_delay(spec.retry, attempt, rng);
  }
}

}  // namespace skp
