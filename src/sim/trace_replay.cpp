#include "sim/trace_replay.hpp"

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "core/access_model.hpp"
#include "predict/dependency_graph.hpp"
#include "predict/lz78_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/ppm_predictor.hpp"

namespace skp {

namespace {

std::unique_ptr<Predictor> make_trace_predictor(PredictorKind kind,
                                                std::size_t n) {
  switch (kind) {
    case PredictorKind::Oracle:
      SKP_REQUIRE(false, "trace replay has no oracle probabilities");
      return nullptr;
    case PredictorKind::Markov1:
      return std::make_unique<MarkovPredictor>(n, 0.05);
    case PredictorKind::Ppm:
      return std::make_unique<PpmPredictor>(n, 2);
    case PredictorKind::DependencyWindow:
      return std::make_unique<DependencyGraph>(n, 2);
    case PredictorKind::Lz78:
      return std::make_unique<Lz78Predictor>(n);
  }
  return nullptr;
}

}  // namespace

SimMetrics replay_trace(const Trace& trace, const TraceReplayConfig& cfg,
                        PlanMemoStats* plan_cache_stats) {
  SKP_REQUIRE(!trace.empty(), "cannot replay an empty trace");
  SKP_REQUIRE(cfg.cache_size >= 1, "cache_size must be >= 1");
  const std::size_t n = trace.n_items();

  EngineConfig ecfg;
  ecfg.policy = cfg.policy;
  ecfg.delta_rule = cfg.delta_rule;
  ecfg.arbitration.sub = cfg.sub;
  ecfg.min_profit_threshold = cfg.min_profit_threshold;
  const PrefetchEngine engine(ecfg);

  SlotCache cache(n, cfg.cache_size);
  FreqTracker freq(n);
  auto predictor = make_trace_predictor(cfg.predictor, n);

  SimMetrics m;
  std::vector<char> unused_prefetch(n, 0);

  // Allocation-free replay loop: the instance borrows the trace's
  // retrieval-time catalog and the recycled predictor buffer.
  PlanScratch scratch;
  PrefetchPlan plan;

  // Memoization wiring (see TraceReplayConfig): the plan tier is keyed
  // by the predictor context (the previously replayed item) and
  // generation-bumped on every observation, so no stored plan can
  // outlive the predictor state it was computed under. The selection
  // tier is not consulted at all — its key would change every request
  // for the same reason, so lookups could never hit.
  std::optional<PlanCache> plans;
  if (cfg.use_plan_cache) {
    plans.emplace(engine.config_digest(), cfg.plan_cache_capacity,
                  /*doorkeeper=*/true);
  }
  ItemId context = kNoItem;

  for (std::size_t idx = 0; idx < trace.size(); ++idx) {
    const TraceRecord& rec = trace.records()[idx];
    const bool counted = idx >= cfg.warmup;

    predictor->predict_into(scratch.P);
    for (double& p : scratch.P) {
      if (p < cfg.predictor_min_prob) p = 0.0;
    }
    const InstanceView inst(scratch.P, trace.retrieval_times(),
                            rec.viewing_time);

    PlanMemo memo;
    if (plans) {
      memo.plans = &*plans;
      memo.state_key =
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(context));
    }
    engine.plan_with_cache_cached(inst, cache, &freq, memo, scratch, plan);

    // Realized access time against the pre-plan cache (computed before the
    // plan executes — no snapshot copy needed; presence bitmap for O(1)
    // membership).
    const double T = realized_access_time_cached(
        inst, plan.fetch, plan.evict, cache.presence(), rec.item);

    std::size_t victim_idx = 0;
    for (const ItemId f : plan.fetch) {
      if (cache.full()) {
        const ItemId d = plan.evict[victim_idx++];
        if (unused_prefetch[InstanceView::idx(d)]) {
          if (counted) ++m.wasted_prefetches;
          unused_prefetch[InstanceView::idx(d)] = 0;
        }
        cache.replace(d, f);
      } else {
        cache.insert(f);
      }
      unused_prefetch[InstanceView::idx(f)] = 1;
      if (counted) {
        ++m.prefetch_fetches;
        m.network_time += inst.r[InstanceView::idx(f)];
        m.prefetch_network_time += inst.r[InstanceView::idx(f)];
      }
    }
    if (counted) m.solver_nodes += plan.solver_nodes;

    if (counted) {
      m.access_time.add(T);
      ++m.requests;
      if (T == 0.0) ++m.hits;
    }

    freq.record(rec.item);
    predictor->observe(rec.item);
    if (plans) plans->bump_generation();
    context = rec.item;
    unused_prefetch[InstanceView::idx(rec.item)] = 0;
    if (!cache.contains(rec.item)) {
      if (counted) {
        ++m.demand_fetches;
        m.network_time += inst.r[InstanceView::idx(rec.item)];
        m.demand_network_time += inst.r[InstanceView::idx(rec.item)];
      }
      if (cache.full()) {
        // Victim chosen with the *post-observation* belief. `inst` is not
        // read past this point, so its P buffer can take the new
        // prediction in place.
        predictor->predict_into(scratch.P);
        const InstanceView after(scratch.P, trace.retrieval_times(),
                                 rec.viewing_time);
        const ItemId d = choose_victim(after, cache.contents(), &freq,
                                       ecfg.arbitration);
        if (unused_prefetch[InstanceView::idx(d)]) {
          if (counted) ++m.wasted_prefetches;
          unused_prefetch[InstanceView::idx(d)] = 0;
        }
        cache.replace(d, rec.item);
      } else {
        cache.insert(rec.item);
      }
    }
  }
  if (plans && plan_cache_stats) plan_cache_stats->plans = plans->stats();
  return m;
}

}  // namespace skp
