// Discrete-event model of the distributed information system.
//
// The analytic model of the paper abstracts the network into one number
// per item (the retrieval time r_i). This substrate grounds that number:
// a client talks to a server over a serial link with per-transfer latency
// and finite bandwidth, so r_i = latency + size_i / bandwidth. Transfers
// are serialized in FIFO order, and — per the paper's Section-2 assumption
// — an in-progress or queued prefetch is never aborted or preempted: a
// demand fetch waits for every committed prefetch to finish ("we assume
// that the prefetch completes before the demand fetch").
//
// With latency = 0 and sizes = r_i * bandwidth, a ClientSession reproduces
// the closed-form access times of Sections 3/5 exactly; the integration
// tests pin that equivalence, which is what justifies using the analytic
// model everywhere else. The optional `cancel_pending_on_demand` knob
// (extension) drops not-yet-started prefetches on a miss.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "core/prefetch_engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/link_schedule.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"

namespace skp {

struct NetConfig {
  double bandwidth = 1.0;   // size units per time unit
  double latency = 0.0;     // per-transfer setup cost
  // Extension: cancel queued (not yet started) prefetches when a demand
  // fetch arrives. false = paper semantics.
  bool cancel_pending_on_demand = false;
  // Extension: piecewise time-varying link quality (sim/link_schedule.hpp).
  // Non-empty overrides (bandwidth, latency) for transfer PRICING only —
  // the phase in force at a transfer's start sets its whole duration,
  // while planning keeps seeing the base static r_i (the client's stale
  // link estimate). Empty = static paper-semantics link.
  std::vector<LinkPhase> schedule;

  // Realized wall-clock cost of moving `size` units starting at absolute
  // time `start`.
  double transfer_time(double size, double start) const {
    if (schedule.empty()) return latency + size / bandwidth;
    const LinkPhase& phase = link_phase_at(schedule, start);
    return phase.latency + size / phase.bandwidth;
  }
};

// Item catalog on the server side: sizes determine retrieval times.
struct ServerCatalog {
  std::vector<double> sizes;

  std::size_t n() const noexcept { return sizes.size(); }
  double retrieval_time(ItemId item, const NetConfig& net) const {
    SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < sizes.size(),
                "item out of range");
    return net.latency + sizes[static_cast<std::size_t>(item)] /
                             net.bandwidth;
  }
  std::vector<double> retrieval_times(const NetConfig& net) const;
};

// The read-mostly slice of a ClientSession: the server-side size catalog
// plus the canonical retrieval costs r_i = latency + size_i / bandwidth
// under the net it was grounded with. Immutable after construction, so
// any number of sessions of the same spec group reference ONE instance
// (sim/catalog.hpp builds and interns them) instead of each copying two
// n-sized vectors — the first rung of the bytes/session ladder.
struct SharedClientCatalog {
  ServerCatalog server;
  std::vector<double> r;

  std::size_t n() const noexcept { return server.n(); }
  std::size_t footprint_bytes() const noexcept {
    return (server.sizes.capacity() + r.capacity()) * sizeof(double);
  }
};

// One client session driving the DES. The caller supplies, per user cycle,
// the viewing time, the next-access distribution in force during it, and
// the item the user then requests; the session plans prefetches with its
// engine, executes them on the link, and reports the realized access time.
class ClientSession {
 public:
  // Private-catalog constructor: wraps `catalog` (and its retrieval
  // times under `net`) into a session-owned SharedClientCatalog.
  // Semantics identical to the shared-catalog constructor below — this
  // is the convenience path for tests and single-session callers.
  ClientSession(ServerCatalog catalog, NetConfig net, EngineConfig engine,
                std::size_t cache_capacity);

  // Shared-catalog constructor: the session references `catalog` without
  // copying it. `net` must price transfers with the same base
  // bandwidth/latency the catalog's r was grounded with (the link
  // schedule may differ — it re-prices realized transfers only, never
  // the planning costs).
  ClientSession(std::shared_ptr<const SharedClientCatalog> catalog,
                NetConfig net, EngineConfig engine,
                std::size_t cache_capacity);

  // Opts this session into cross-request plan memoization
  // (core/plan_cache.hpp). Cycles then planning under a `context_key`
  // replay stored plans when the same (key, cache contents) pair recurs;
  // the session bumps the generation itself whenever its frequency
  // tracker invalidates LFU/DS-dependent plans. Results are bit-identical
  // with or without (the memo key only ever stands in for identical
  // planning inputs).
  void enable_plan_cache(std::size_t capacity = PlanCache::kDefaultCapacity);
  bool plan_cache_enabled() const noexcept { return plan_cache_.has_value(); }
  // Retires every stored plan and selection (generation bump on both
  // tiers). Callers whose context-key promise breaks — e.g. a drifting
  // workload redrawing the rows behind its state keys — invoke this at
  // the changepoint; a no-op when the plan cache is disabled.
  void invalidate_plan_cache() noexcept {
    if (plan_cache_) {
      plan_cache_->bump_generation();
      selection_cache_->bump_generation();
    }
  }
  // Both tiers' counters (zeros when the plan cache is disabled).
  PlanMemoStats plan_cache_stats() const noexcept {
    PlanMemoStats stats;
    if (plan_cache_) {
      stats.plans = plan_cache_->stats();
      stats.selections = selection_cache_->stats();
    }
    return stats;
  }

  // Arms prefetch-transfer fault injection (sim/fault.hpp). `stream` must
  // be the dedicated fault stream — Rng(seed).split(kFaultStreamSalt) —
  // so fault draws never perturb the workload or decision streams; draws
  // happen only when a prefetch commits, in link order. Demand fetches
  // stay reliable (they are the fallback). Not composable with
  // cancel_pending_on_demand, whose rollback bookkeeping assumes every
  // queued prefetch is still cache-resident.
  void set_fault_injection(const FaultSpec& spec, Rng stream);
  const FaultStats& fault_stats() const noexcept { return fault_stats_; }

  // Overload rung kStrictAdmission (core/overload.hpp): freeze or thaw
  // plan-cache admission on both memo tiers. No-op while the plan cache
  // is disabled.
  void set_plan_admission_frozen(bool frozen) noexcept {
    if (plan_cache_) {
      plan_cache_->set_admission_frozen(frozen);
      selection_cache_->set_admission_frozen(frozen);
    }
  }

  // Runs one cycle: think for `viewing_time` (prefetching meanwhile), then
  // request `item`. Returns the access time the user experienced.
  // `context_key`, when engaged and the plan cache is enabled, keys plan
  // memoization: the caller promises it uniquely determines
  // (next_probs, viewing_time) for the session's lifetime — e.g. a Markov
  // state id. Pass std::nullopt (the default) to plan unmemoized.
  double request(ItemId item, double viewing_time,
                 std::span<const double> next_probs,
                 std::optional<ItemId> oracle_next = std::nullopt,
                 std::optional<std::uint64_t> context_key = std::nullopt);

  const SimMetrics& metrics() const noexcept { return metrics_; }
  const SlotCache& cache() const noexcept { return cache_; }
  const SharedClientCatalog& catalog() const noexcept { return *cat_; }
  double now() const noexcept { return clock_.now(); }
  // Fraction of elapsed time the link spent transferring.
  double link_utilization() const;

 private:
  struct Transfer {
    ItemId item;
    double start;
    double finish;
    bool is_prefetch;
  };

  // Schedules a transfer after everything currently committed; returns its
  // completion time.
  double enqueue_transfer(ItemId item, bool is_prefetch);
  // Schedules a prefetch through the fault model (the reliable path when
  // faults are disarmed). nullopt = the retry budget was exhausted and
  // the transfer abandoned; the caller rolls the claimed slot back.
  std::optional<double> enqueue_prefetch(ItemId item);

  std::shared_ptr<const SharedClientCatalog> cat_;
  NetConfig net_;
  PrefetchEngine engine_;
  SlotCache cache_;
  FreqTracker freq_;
  EventQueue clock_;
  SimMetrics metrics_;
  FaultSpec fault_;       // default (disabled) = legacy reliable link
  Rng fault_rng_;         // dedicated stream, armed by set_fault_injection
  FaultStats fault_stats_;
  double link_free_at_ = 0.0;
  double link_busy_total_ = 0.0;
  std::vector<Transfer> in_flight_;  // committed, not yet completed
  std::vector<char> unused_prefetch_;
  std::vector<double> completion_;   // per-item transfer completion time
  // Per-cycle planning state, reused so request() never allocates after
  // the first cycle: the retrieval-time catalog lives in cat_->r, P is
  // refilled from the caller's next_probs.
  std::vector<double> P_;
  PlanScratch scratch_;
  PrefetchPlan plan_;
  std::optional<PlanCache> plan_cache_;
  std::optional<PlanCache> selection_cache_;
};

}  // namespace skp
