// The "prefetch only" Monte-Carlo simulation of Section 4.4.
//
// Paper protocol (verbatim steps): "1) generate n, P, r and v randomly,
// 2) prefetch, 3) generate a random request, 4) calculate access time,
// 5) output v and T." The cache is used only for prefetched items and is
// flushed after each request, so every iteration is independent:
//   * P via the skewy or flat method (workload/prob_gen.hpp),
//   * r_i ~ U{1..30}, v ~ U{1..100} (integers by default, paper-style),
//   * prefetch list chosen by the configured policy,
//   * T = realized access time of Figure 2.
// Figures 4 (scatter of T vs v) and 5 (average T vs v) are both produced
// from this loop.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prefetch_engine.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "workload/prob_gen.hpp"

namespace skp {

struct PrefetchOnlyConfig {
  std::size_t n_items = 10;
  ProbMethod method = ProbMethod::Skewy;
  double skew_exponent = 8.0;
  double r_lo = 1.0, r_hi = 30.0;
  double v_lo = 1.0, v_hi = 100.0;
  bool integer_times = true;
  PrefetchPolicy policy = PrefetchPolicy::SKP;
  DeltaRule delta_rule = DeltaRule::ExactComplement;
  std::size_t iterations = 50'000;
  std::uint64_t seed = 1;
  // Keep the first `scatter_limit` (v, T) samples (Fig. 4 plots 500).
  std::size_t scatter_limit = 0;
  // Extension (Section 4.4: "the stretch time may intrude into the next
  // viewing time"). When true, the residual transfer time left after a
  // hit-in-K request (the still-downloading tail of F) is deducted from
  // the *next* iteration's viewing time before planning — the carryover
  // the per-iteration analytic model ignores. false = paper protocol.
  bool stretch_intrudes = false;
  // Plan memoization (core/plan_cache.hpp). This protocol redraws
  // (P, r, v) i.i.d. every iteration, so no instance ever recurs and
  // every lookup misses by construction — the wiring exists to keep the
  // sim surface uniform and to measure the overhead bound (the honest
  // all-miss stats flow into the result). Bit-identical on or off.
  bool use_plan_cache = true;
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
};

struct PrefetchOnlyResult {
  // Average T conditioned on integer v — the Fig. 5 curves.
  BinnedMeans avg_T_by_v;
  SimMetrics metrics;
  // Plan-memoization counters (all-miss by construction; see config).
  PlanCacheStats plan_cache;
  // First `scatter_limit` raw samples — the Fig. 4 scatter.
  std::vector<std::pair<double, double>> scatter;

  PrefetchOnlyResult(std::int64_t v_lo, std::int64_t v_hi)
      : avg_T_by_v(v_lo, v_hi) {}
};

// Single-threaded run (fully deterministic in config.seed).
PrefetchOnlyResult run_prefetch_only(const PrefetchOnlyConfig& config);

// Parallel run: iterations are split into chunks with independent derived
// RNG streams; the result is deterministic in (seed, chunk count) and
// independent of thread scheduling.
PrefetchOnlyResult run_prefetch_only_parallel(
    const PrefetchOnlyConfig& config, ThreadPool& pool,
    std::size_t chunks = 0 /* 0 = pool thread count */);

}  // namespace skp
