// The "prefetch and cache" Monte-Carlo simulation of Section 5.3 (Fig. 7).
//
// Protocol (paper caption + DESIGN.md D5): a Markov source walks its
// states; in state s the prefetcher sees P = transition row of s and
// v = v_s, plans (F, D) against the current cache via the Figure-6
// algorithm, the prefetched items replace the victims, then the source
// steps to s' and requests item s'. The realized access time follows the
// Section-5 cases (0 on hit, st(F) for z, st(F) + r otherwise). A missed
// request is demand-fetched and *must* claim a victim (minimal-Pr with the
// configured sub-arbitration). Frequencies feed LFU/DS sub-arbitration.
//
// Extensions beyond the paper (both off by default):
//   * use_predictor — replace the oracle transition row with a learned
//     predictor (paper Section 6, "access modelling ... might serve").
//   * min_profit_threshold — suppress low-value prefetches to trade access
//     improvement for network usage (paper Section 6, network-usage
//     policy).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/prefetch_engine.hpp"
#include "sim/metrics.hpp"
#include "workload/markov_source.hpp"

namespace skp {

enum class PredictorKind { Oracle, Markov1, Ppm, DependencyWindow, Lz78 };

const char* to_string(PredictorKind kind);

// Stream-derivation salts of run_prefetch_cache's seed layout: the
// default entry point builds the source from Rng(seed), derives the walk
// with kPrefetchCacheWalkSalt, and the drift stream (phase-shifting
// workloads) with kPrefetchCacheDriftSalt. Every entry point that must
// reproduce that layout bit for bit (sim/runtime.cpp's Zipf and drift
// paths) shares these constants instead of re-hardcoding them.
inline constexpr std::uint64_t kPrefetchCacheWalkSalt = 0x57a1f;
inline constexpr std::uint64_t kPrefetchCacheDriftSalt = 0xd21f7;

struct PrefetchCacheConfig {
  MarkovSourceConfig source;  // defaults match the Fig. 7 caption
  std::size_t cache_size = 10;
  PrefetchPolicy policy = PrefetchPolicy::SKP;
  SubArbitration sub = SubArbitration::None;
  DeltaRule delta_rule = DeltaRule::ExactComplement;
  bool strict_ties = false;
  std::size_t requests = 50'000;
  std::size_t warmup = 0;  // initial requests excluded from metrics
  std::uint64_t seed = 1;
  PredictorKind predictor = PredictorKind::Oracle;
  // Learned predictors emit dense distributions (smoothing gives every
  // item a sliver of mass); entries below this floor are dropped before
  // planning, mirroring a realistic candidate shortlist and keeping the
  // B&B over tens, not hundreds, of items. Ignored in oracle mode.
  double predictor_min_prob = 0.01;
  double min_profit_threshold = 0.0;
  // Extension (paper Section 6 "looking ahead deeper"): plan against
  // probabilities blended over this many future steps (oracle mode only;
  // 1 = the paper's one-access lookahead). See core/lookahead.hpp.
  std::size_t lookahead_horizon = 1;
  double lookahead_decay = 0.5;
  // Cross-request plan memoization (core/plan_cache.hpp): reuse completed
  // plans whenever the same (state, cache contents) pair recurs, and
  // precompute the per-state canonical solve order in oracle mode. The
  // fixed-seed equivalence suite pins on == off bit-for-bit on every
  // counter; off exists for A/B benchmarking, not correctness.
  bool use_plan_cache = true;
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
  // Phase-shifting workload drift (extension): every `drift_period`
  // requests the source redraws its transition structure from a
  // dedicated seed-derived stream (workload/markov_source.hpp
  // redraw_transitions — the v/r catalogs and the current state
  // persist). Changepoints invalidate every memoization tier whose keys
  // assumed the old rows, so results stay bit-identical with the plan
  // cache on or off. 0 = static chain (the paper's protocol).
  std::size_t drift_period = 0;
  // Pipelined single-sim execution (perf knob, 0 = off): this many
  // worker threads pre-solve the selection stage for upcoming requests.
  // The Markov walk is a function of (seed, structure) alone, so the
  // whole request script can be materialized up front; workers speculate
  // each future request's SKP selection against a cache snapshot, and
  // the engine adopts a speculation only when the live candidate
  // fingerprint still matches (core/plan_cache.hpp SpeculativeSelection)
  // — a stale one is discarded and the solve runs inline. Every metric
  // AND every plan-cache counter is bit-identical to the solo loop
  // (tests/test_simd.cpp pins this); only wall-clock changes. Requires
  // the oracle predictor, lookahead_horizon <= 1, no drift,
  // use_plan_cache, and the SKP policy.
  std::size_t pipeline_workers = 0;
};

struct PrefetchCacheResult {
  SimMetrics metrics;
  // Requests whose access time exceeded the state's viewing time (stretch
  // intrusion diagnostics, cf. Section 4.4).
  std::uint64_t over_viewing_time = 0;
  // Plan-memoization counters, both tiers (all zero when use_plan_cache
  // is off).
  PlanMemoStats plan_cache;
};

// Runs the full experiment; deterministic in config.seed. The Markov chain
// structure is derived from the seed as well, so two runs with equal seeds
// share both the chain and the trajectory (the Fig. 7 policy comparison
// holds every policy to the same workload).
PrefetchCacheResult run_prefetch_cache(const PrefetchCacheConfig& config);

// As above but with a caller-supplied source (already constructed), useful
// when several policies must share one chain instance.
PrefetchCacheResult run_prefetch_cache(const PrefetchCacheConfig& config,
                                       MarkovSource& source, Rng& walk_rng);

// Lockstep batch execution: runs k experiments that share one workload
// (identical source config, seed, request count, and drift schedule;
// oracle predictor, lookahead_horizon <= 1) but may differ in cache
// size, policy, arbitration, thresholds, or plan-cache settings. The
// source is built and stepped ONCE per request for the whole batch, the
// canonical-order table is shared, and lanes with identical engine
// configs are planned through PrefetchEngine::plan_with_cache_batch —
// grouping same-candidate-set SKP solves into solve_skp_batch_into runs.
// Every lane's result (metrics AND plan-cache counters) is bit-identical
// to run_prefetch_cache on that lane's config alone; batching changes
// where setup work happens, never what is computed (tests/test_simd.cpp
// pins batch == loop). Results are returned in input order.
std::vector<PrefetchCacheResult> run_prefetch_cache_batch(
    std::span<const PrefetchCacheConfig> configs);

// ---- Heterogeneous item sizes (extension; paper Section 6) ---------------

struct SizedExperimentConfig {
  MarkovSourceConfig source;     // workload as in Fig. 7
  double capacity = 100.0;       // cache capacity in size units
  // Item sizes: proportional to retrieval time when `size_per_r` > 0
  // (size_i = size_per_r * r_i, the natural "bandwidth" coupling),
  // otherwise drawn U[size_lo, size_hi] independently of r.
  double size_per_r = 1.0;
  double size_lo = 1.0, size_hi = 30.0;
  PrefetchPolicy policy = PrefetchPolicy::SKP;
  SubArbitration sub = SubArbitration::None;
  DeltaRule delta_rule = DeltaRule::ExactComplement;
  bool strict_ties = false;
  std::size_t requests = 20'000;
  std::size_t warmup = 0;
  std::uint64_t seed = 1;
  // Plan memoization, as in PrefetchCacheConfig (keyed by the SizedCache
  // fingerprint instead of the slot cache's).
  bool use_plan_cache = true;
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
};

// Runs the Fig.-7 protocol against a byte-addressed cache with density
// arbitration. An uncacheable request (size > capacity) is served without
// caching. Used by bench/ablation_sizes to quantify the cost of the
// paper's equal-size assumption.
PrefetchCacheResult run_prefetch_cache_sized(
    const SizedExperimentConfig& config);

}  // namespace skp
