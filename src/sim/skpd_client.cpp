#include "sim/skpd_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/require.hpp"

namespace skp {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("skpd client: " + what);
}

}  // namespace

SkpdClient::SkpdClient(SkpdClientConfig cfg, const SimSpec& spec)
    : cfg_(std::move(cfg)),
      spec_(spec),
      spec_text_(encode_sim_spec(spec)),
      backoff_rng_(0x5ee0c11e) {
  SKP_REQUIRE(cfg_.port > 0 && cfg_.port <= 65535,
              "skpd client needs a valid port, got " << cfg_.port);
  SKP_REQUIRE(cfg_.retry.max_attempts >= 1,
              "skpd client retry budget must be >= 1");
  ensure_connected();
}

SkpdClient::~SkpdClient() { hard_close(); }

void SkpdClient::hard_close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
  rx_offset_ = 0;
}

void SkpdClient::connect_once() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket: " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    fail("bad host: " + cfg_.host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    fail("connect: " + std::string(std::strerror(err)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;

  // Handshake: new session on the first connect, resume afterwards. The
  // ack tells the daemon which results this side actually holds.
  SkpdHello hello;
  hello.token = token_;
  hello.last_ack = last_seq_;
  if (token_ == 0) hello.spec_text = spec_text_;
  send_frame(SkpdFrameType::kHello, encode_hello(hello));
  std::string storage;
  const SkpdFrame frame = read_frame(storage);
  if (frame.type != SkpdFrameType::kWelcome) {
    fail(std::string("expected WELCOME, got ") + to_string(frame.type));
  }
  const SkpdWelcome welcome = decode_welcome(frame.payload);
  if (token_ != 0 && welcome.token != token_) {
    fail("daemon answered resume with a different token");
  }
  token_ = welcome.token;
  // The daemon can be at most one cycle ahead of our ack (synchronous
  // client): anything further means we reattached to a foreign session.
  if (welcome.executed > last_seq_ + 1) {
    fail("resumed session is " +
         std::to_string(welcome.executed - last_seq_) +
         " cycles ahead of this client");
  }
}

void SkpdClient::ensure_connected() {
  if (fd_ >= 0) return;
  // token_ != 0 means a session already exists server-side, so this
  // connect is a resume, not the initial attach.
  const bool resuming = token_ != 0;
  std::string last_error = "no attempt made";
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      connect_once();
      if (resuming) ++reconnects_;
      return;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      // A daemon-issued rejection (unknown token, bad spec) is final —
      // retrying the same handshake cannot succeed.
      if (what.rfind("skpd daemon error:", 0) == 0) throw;
      hard_close();
      last_error = what;
    }
    if (attempt >= cfg_.retry.max_attempts) break;
    const double delay =
        retry_backoff_delay(cfg_.retry, attempt, backoff_rng_);
    if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
  fail("gave up after " + std::to_string(cfg_.retry.max_attempts) +
       " connection attempts; last error: " + last_error);
}

void SkpdClient::send_frame(SkpdFrameType type,
                            const std::string& payload) {
  std::string wire;
  append_skpd_frame(wire, type, payload);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

SkpdFrame SkpdClient::read_frame(std::string& storage) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(cfg_.reply_timeout));
  for (;;) {
    // Drain complete frames already buffered before reading more.
    std::size_t offset = rx_offset_;
    if (const auto frame = parse_skpd_frame(rx_, offset)) {
      rx_offset_ = offset;
      if (frame->type == SkpdFrameType::kPing) {
        // Keepalive probe from the daemon; answer and keep waiting.
        send_frame(SkpdFrameType::kPong,
                   encode_ping(decode_ping(frame->payload)));
        continue;
      }
      if (frame->type == SkpdFrameType::kError) {
        throw std::runtime_error("skpd daemon error: " +
                                 std::string(frame->payload));
      }
      // Copy out so the payload survives rx_ compaction/refill.
      storage.assign(frame->payload);
      SkpdFrame out{frame->type, storage};
      if (rx_offset_ == rx_.size()) {
        rx_.clear();
        rx_offset_ = 0;
      }
      return out;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) fail("timed out waiting for reply");
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      fail("poll: " + std::string(std::strerror(errno)));
    }
    if (pr == 0) fail("timed out waiting for reply");
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) fail("daemon closed the connection");
    rx_.append(buf, static_cast<std::size_t>(n));
  }
}

NetsimStepSnapshot SkpdClient::step() {
  SKP_REQUIRE(!done(), "skpd client already drove all "
                           << spec_.requests << " cycles");
  const std::uint64_t seq = last_seq_ + 1;
  if (cfg_.drop_every > 0 && seq % cfg_.drop_every == 0 &&
      steps_sent_ > 0) {
    // Chaos: tear our own connection down and recover through resume.
    hard_close();
  }
  std::string last_error = "no attempt made";
  for (std::size_t attempt = 1; attempt <= cfg_.retry.max_attempts;
       ++attempt) {
    try {
      ensure_connected();
      SkpdStep req;
      req.seq = seq;
      req.ack = last_seq_;
      send_frame(SkpdFrameType::kStep, encode_step(req));
      ++steps_sent_;
      std::string storage;
      const SkpdFrame frame = read_frame(storage);
      if (frame.type != SkpdFrameType::kStepResult) {
        fail(std::string("expected STEP_RESULT, got ") +
             to_string(frame.type));
      }
      const NetsimStepSnapshot snap = decode_step_result(frame.payload);
      if (snap.seq != seq) {
        fail("result seq " + std::to_string(snap.seq) + ", wanted " +
             std::to_string(seq));
      }
      last_seq_ = seq;
      return snap;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      if (what.rfind("skpd daemon error:", 0) == 0) throw;
      hard_close();
      last_error = what;
    }
  }
  fail("step " + std::to_string(seq) + " failed after " +
       std::to_string(cfg_.retry.max_attempts) +
       " attempts; last error: " + last_error);
}

SimResult SkpdClient::finish() {
  SKP_REQUIRE(done(), "finish() before the run completed: "
                          << last_seq_ << "/" << spec_.requests);
  std::string last_error = "no attempt made";
  for (std::size_t attempt = 1; attempt <= cfg_.retry.max_attempts;
       ++attempt) {
    try {
      ensure_connected();
      send_frame(SkpdFrameType::kStats, {});
      std::string storage;
      const SkpdFrame frame = read_frame(storage);
      if (frame.type != SkpdFrameType::kStatsResult) {
        fail(std::string("expected STATS_RESULT, got ") +
             to_string(frame.type));
      }
      SimResult result = decode_sim_result(frame.payload);
      send_frame(SkpdFrameType::kBye, {});
      hard_close();
      return result;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      if (what.rfind("skpd daemon error:", 0) == 0) throw;
      hard_close();
      last_error = what;
    }
  }
  fail("stats fetch failed after " +
       std::to_string(cfg_.retry.max_attempts) +
       " attempts; last error: " + last_error);
}

}  // namespace skp
