// Stepwise netsim_des runner: the DES decision path, one cycle at a time.
//
// The netsim_des driver used to be a single closed loop inside
// runtime.cpp. The skpd daemon (tools/skpd.cpp) needs the SAME decision
// path but driven request-by-request over a socket, with the ability to
// pause between cycles indefinitely while a client reconnects. Rather
// than maintain two copies whose bit-identity would be aspirational,
// the loop body lives here: NetsimStepper holds every piece of loop
// state (session, sources, predictor, RNG streams, overload controller)
// as members, and step() executes exactly one user cycle. The driver is
// now `while (!done()) step()` — so "a daemon-served session matches the
// in-process golden" is structural, not a property to re-verify per
// change.
//
// Determinism contract unchanged: the SimSpec fully determines the step
// sequence; step() draws only from streams derived from spec.seed. The
// one sanctioned deviation is force_degrade(), the daemon's backpressure
// hook — an externally-commanded overload rung descent that by design
// makes the run diverge from the unpressured golden (and is therefore
// never invoked by the in-process driver).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/overload.hpp"
#include "predict/predictor.hpp"
#include "sim/catalog.hpp"
#include "sim/netsim.hpp"
#include "sim/runtime.hpp"
#include "util/rng.hpp"
#include "workload/markov_source.hpp"

namespace skp {

// Observables of one executed cycle, as shipped in a STEP_RESULT frame:
// the realized access time of that cycle plus the cumulative decision-
// path counters after it. Two runs agree on a prefix iff their snapshot
// sequences agree — this is the unit the chaos harness diffs.
struct NetsimStepSnapshot {
  std::uint64_t seq = 0;  // 1-based index of the cycle just executed
  double T = 0.0;         // realized access time of that cycle
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t demand_fetches = 0;
  std::uint64_t prefetch_fetches = 0;
  std::uint64_t solver_nodes = 0;
  std::uint64_t plans = 0;
  std::uint64_t deadline_hits = 0;

  bool operator==(const NetsimStepSnapshot&) const = default;
};

class NetsimStepper {
 public:
  // Validates the spec exactly as the netsim_des driver always has
  // (reject-don't-drop) and materializes all run state, acquiring the
  // spec group's shared catalog from the process-wide intern registry.
  // Throws std::invalid_argument on a spec netsim_des cannot honor.
  explicit NetsimStepper(const SimSpec& spec);

  // Same, but runs against an explicitly provided shared catalog — the
  // bulk-session path (skpd preload, capacity bench) where the caller
  // amortizes one acquire over many sessions. `catalog` must belong to
  // spec's group (checked); results are bit-identical to the acquiring
  // constructor.
  NetsimStepper(const SimSpec& spec,
                std::shared_ptr<const SharedCatalog> catalog);

  const SimSpec& spec() const noexcept { return spec_; }
  std::size_t total() const noexcept { return spec_.requests; }
  std::size_t executed() const noexcept { return executed_; }
  bool done() const noexcept { return executed_ >= spec_.requests; }

  // Executes the next cycle; requires !done().
  NetsimStepSnapshot step();
  // Counters as of the last executed cycle (seq == executed()); valid
  // before the first step too (all-zero snapshot).
  NetsimStepSnapshot snapshot() const;
  // The SimResult of the prefix executed so far; after the final step
  // this is byte-for-byte what run_sim(spec) returns for netsim_des.
  SimResult result() const;

  // Backpressure hook (skpd slow-reader ladder): push the overload
  // controller one rung down immediately, with the same plan-memo
  // invalidation a gradient transition performs. Returns true when the
  // rung actually changed (false at the bottom rung). Works with the
  // controller disabled — see OverloadController::force_step_down().
  bool force_degrade();
  DegradationRung rung() const noexcept { return overload_.rung(); }

 private:
  void step_oracle();
  void step_learned();
  void count_plan();
  void settle_request(double T);

  SimSpec spec_;
  // Shared read-mostly group state (sizes, r, master chain, cycle
  // script). Declared before every member that points into it.
  std::shared_ptr<const SharedCatalog> catalog_;
  Rng walk_;
  std::optional<ClientSession> session_;
  OverloadController overload_;
  // Oracle mode: the session walks the shared master chain through its
  // private (state_, walk_) cursor. A drifting session copies the chain
  // into owned_source_ at its first changepoint (copy-on-write) and
  // mutates only the copy.
  const MarkovSource* source_ = nullptr;
  std::optional<MarkovSource> owned_source_;
  MarkovSourceConfig mcfg_;
  Rng drift_rng_;
  std::size_t drift_period_ = 0;
  std::size_t state_ = 0;
  // Learned mode: shared materialized cycle script + private predictor.
  const MaterializedWorkload* mat_ = nullptr;
  std::unique_ptr<Predictor> predictor_;
  std::vector<double> P_;
  // Shared per-cycle scratch.
  std::vector<double> zeros_;
  std::vector<double> degraded_;  // oracle-row copy under degradation
  std::size_t executed_ = 0;
  std::uint64_t prev_prefetches_ = 0;
  std::uint64_t plans_ = 0;
  std::uint64_t deadline_hits_ = 0;
  double last_T_ = 0.0;
};

}  // namespace skp
