#include "sim/skpd_loopback.hpp"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/skpd_client.hpp"
#include "util/require.hpp"

namespace skp {

SkpdDaemonProcess::SkpdDaemonProcess(const std::string& binary,
                                     std::vector<std::string> extra_args) {
  int pipe_fds[2];
  SKP_REQUIRE(::pipe(pipe_fds) == 0,
              "pipe: " << std::strerror(errno));
  const pid_t pid = ::fork();
  SKP_REQUIRE(pid >= 0, "fork: " << std::strerror(errno));
  if (pid == 0) {
    // Child: stdout -> pipe so the parent can read the port banner.
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    std::vector<std::string> args;
    args.push_back(binary);
    args.push_back("--port=0");
    for (auto& a : extra_args) args.push_back(std::move(a));
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    // Exec failed; the parent will see EOF before any port banner.
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  pid_ = pid;
  // Read stdout until the SKPD_PORT banner (the daemon prints it once
  // the listener is bound, so a successful read means "ready").
  std::string banner;
  char c;
  bool found = false;
  while (!found) {
    const ssize_t n = ::read(pipe_fds[0], &c, 1);
    if (n <= 0) break;  // EOF: the child died before binding
    if (c == '\n') {
      if (banner.rfind("SKPD_PORT=", 0) == 0) {
        port_ = std::atoi(banner.c_str() + 10);
        found = true;
      }
      banner.clear();
    } else {
      banner.push_back(c);
    }
  }
  ::close(pipe_fds[0]);
  if (!found || port_ <= 0) {
    terminate();
    SKP_REQUIRE(false, "skpd daemon '" << binary
                                       << "' did not announce a port");
  }
}

int SkpdDaemonProcess::terminate() {
  if (reaped_) return status_;
  if (pid_ > 0) {
    ::kill(pid_, SIGTERM);
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    status_ = status;
  }
  reaped_ = true;
  return status_;
}

SkpdDaemonProcess::~SkpdDaemonProcess() { terminate(); }

namespace {

std::size_t env_size(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

SimResult run_skpd_loopback_driver(const SimSpec& spec) {
  SkpdClientConfig cfg;
  cfg.drop_every = env_size("SKPD_DROP_EVERY");

  // Transport resolution: external daemon beats private spawn.
  std::unique_ptr<SkpdDaemonProcess> daemon;
  const char* addr = std::getenv("SKPD_ADDR");
  if (addr != nullptr && *addr != '\0') {
    const std::string a = addr;
    const std::size_t colon = a.rfind(':');
    SKP_REQUIRE(colon != std::string::npos && colon > 0,
                "SKPD_ADDR must be host:port, got " << a);
    cfg.host = a.substr(0, colon);
    cfg.port = std::atoi(a.c_str() + colon + 1);
  } else {
    const char* bin = std::getenv("SKPD_BIN");
    SKP_REQUIRE(bin != nullptr && *bin != '\0',
                "skpd_loopback needs a daemon: set SKPD_ADDR=host:port "
                "to attach to a running skpd, or SKPD_BIN=path/to/skpd "
                "to spawn a private one");
    daemon = std::make_unique<SkpdDaemonProcess>(bin);
    cfg.port = daemon->port();
  }

  SkpdClient client(cfg, spec);
  NetsimStepSnapshot last;
  while (!client.done()) last = client.step();
  SimResult result = client.finish();

  // The per-step stream and the final result are produced by the same
  // stepper; a mismatch means wire corruption or a daemon bug, and a
  // row must never be emitted from inconsistent books.
  SKP_REQUIRE(last.requests == result.metrics.requests &&
                  last.hits == result.metrics.hits &&
                  last.solver_nodes == result.metrics.solver_nodes &&
                  last.plans == result.plans &&
                  last.deadline_hits == result.deadline_hits,
              "skpd step stream disagrees with the final result");

  if (daemon) {
    const int status = daemon->terminate();
    SKP_REQUIRE(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                "skpd daemon did not drain cleanly (status " << status
                                                             << ")");
  }
  return result;
}

}  // namespace skp
