// Piecewise time-varying link schedules (extension; ROADMAP "hostile
// and non-stationary worlds").
//
// The three static net presets (lan/wan/modem) model a link whose
// quality never changes mid-session; production links degrade and
// recover — congestion windows, cell handoffs, a shared uplink at peak
// hour. A LinkPhase schedule replaces the single (bandwidth, latency)
// pair with a cycling sequence of phases: the phase in force at a
// transfer's START prices the whole transfer (the DES commits a
// transfer's duration when the link picks it up — the no-abort
// assumption again: a committed transfer is never re-priced mid-flight).
//
// Planning deliberately keeps seeing the BASE static catalog r_i: the
// client plans against its stale link estimate while the realized
// timing follows the schedule, which is exactly the hostile scenario —
// plans priced for a healthy link executing through a degraded window.
// Planning inputs are therefore schedule-independent, so plan
// memoization keys stay sound and the plan-cache on/off bit-identity
// contract survives (tests pin this).
#pragma once

#include <cmath>
#include <span>

#include "util/require.hpp"

namespace skp {

struct LinkPhase {
  double duration = 0.0;   // phase length in time units (> 0)
  double bandwidth = 1.0;  // size units per time unit during the phase
  double latency = 0.0;    // per-transfer setup cost during the phase

  bool operator==(const LinkPhase&) const = default;
};

inline void validate_link_schedule(std::span<const LinkPhase> schedule) {
  for (const LinkPhase& p : schedule) {
    SKP_REQUIRE(p.duration > 0.0, "link phase duration must be > 0");
    SKP_REQUIRE(p.bandwidth > 0.0, "link phase bandwidth must be > 0");
    SKP_REQUIRE(p.latency >= 0.0, "link phase latency must be >= 0");
  }
}

// The phase in force at absolute time `t`. The schedule cycles: after
// its total duration it starts over, so a short degraded window recurs
// periodically. Requires a validated, non-empty schedule.
inline const LinkPhase& link_phase_at(std::span<const LinkPhase> schedule,
                                      double t) {
  SKP_ASSERT(!schedule.empty());
  double total = 0.0;
  for (const LinkPhase& p : schedule) total += p.duration;
  double phase_t = std::fmod(t, total);
  if (phase_t < 0.0) phase_t = 0.0;
  for (const LinkPhase& p : schedule) {
    if (phase_t < p.duration) return p;
    phase_t -= p.duration;
  }
  // fmod round-off can land exactly on the wrap boundary.
  return schedule.front();
}

}  // namespace skp
