// Shared grounding substrate of the net-grounded pipelines.
//
// The netsim_des, scenario and multi_client drivers — and now the skpd
// daemon's session runner (sim/netsim_stepper.hpp) — must agree byte for
// byte on (a) how a SimWorkload lowers to the concrete source configs and
// (b) the stream layout that grounds retrieval times (structure /
// trajectory / catalog streams as fixed children of the spec seed, sizes
// drawn U{1..30} through r_i = latency + size_i / bandwidth). That
// agreement is what makes rows from different drivers comparable and
// what lets a daemon-served session replay a netsim_des golden exactly,
// so the definitions live here, in one place, instead of per-driver
// copies.
#pragma once

#include "sim/netsim.hpp"
#include "sim/runtime.hpp"
#include "util/rng.hpp"
#include "workload/adversarial_source.hpp"
#include "workload/markov_source.hpp"
#include "workload/zipf_source.hpp"

namespace skp {

inline MarkovSourceConfig to_markov_config(const SimWorkload& w) {
  MarkovSourceConfig cfg;
  cfg.n_states = w.n_items;
  cfg.out_degree_lo = w.out_degree_lo;
  cfg.out_degree_hi = w.out_degree_hi;
  cfg.v_lo = w.v_lo;
  cfg.v_hi = w.v_hi;
  cfg.r_lo = w.r_lo;
  cfg.r_hi = w.r_hi;
  cfg.integer_times = w.integer_times;
  return cfg;
}

inline ZipfSourceConfig to_zipf_config(const SimWorkload& w) {
  ZipfSourceConfig cfg;
  cfg.n_items = w.n_items;
  cfg.exponent = w.zipf_exponent;
  cfg.shuffle = w.zipf_shuffle;
  cfg.v_lo = w.v_lo;
  cfg.v_hi = w.v_hi;
  cfg.r_lo = w.r_lo;
  cfg.r_hi = w.r_hi;
  cfg.integer_times = w.integer_times;
  return cfg;
}

inline AdversarialSourceConfig to_adversarial_config(const SimWorkload& w) {
  AdversarialSourceConfig cfg;
  cfg.n_items = w.n_items;
  cfg.hot_set = w.adv_hot_set;
  cfg.escape_prob = w.adv_escape;
  cfg.v_lo = w.v_lo;
  cfg.v_hi = w.v_hi;
  cfg.r_lo = w.r_lo;
  cfg.r_hi = w.r_hi;
  cfg.integer_times = w.integer_times;
  return cfg;
}

// The stream layout of the net-grounded pipelines. `root` is kept so
// callers can derive further sibling streams (the scenario driver's
// split(4) policy seed).
struct GroundedStreams {
  Rng root, build, walk;
  ServerCatalog catalog;
  NetConfig net;
};

inline GroundedStreams ground_streams(const SimSpec& spec) {
  GroundedStreams g{Rng(spec.seed), Rng(0), Rng(0), {}, {}};
  g.build = g.root.split(1);
  g.walk = g.root.split(2);
  Rng sizes_rng = g.root.split(3);
  g.catalog.sizes.resize(spec.workload.n_items);
  for (auto& s : g.catalog.sizes) {
    s = static_cast<double>(sizes_rng.uniform_int(1, 30));
  }
  g.net.bandwidth = spec.bandwidth;
  g.net.latency = spec.latency;
  return g;
}

}  // namespace skp
