// Multi-client distributed information system (extension).
//
// The paper analyses a single client; its title domain — distributed
// information systems — raises the obvious system-level question:
// speculative traffic from one client occupies the shared server link and
// delays everyone else's demand fetches. This simulator runs K clients,
// each with its own cache, prefetch engine and Markov request chain,
// over ONE shared FIFO link (the server bottleneck), using the event
// queue substrate. Per the paper's Section-2 assumption, committed
// transfers are never aborted or preempted — a demand fetch queues behind
// everything already on the wire, including other clients' speculation.
//
// bench/contention sweeps client count x prefetch threshold and shows the
// congestion collapse of unthrottled speculation — the system-level
// version of the Section-6 network-usage concern.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prefetch_engine.hpp"
#include "sim/metrics.hpp"
#include "workload/markov_source.hpp"

namespace skp {

struct MultiClientConfig {
  std::size_t n_clients = 4;
  // Each client walks an independent chain drawn with these parameters
  // (items are per-client; the shared resource is the link, not the data).
  MarkovSourceConfig source;
  // The shared link serves one transfer at a time; a transfer of item i
  // occupies it for r_i / speedup time units.
  double link_speedup = 1.0;
  std::size_t cache_size = 10;
  EngineConfig engine;
  std::size_t requests_per_client = 2'000;
  std::uint64_t seed = 1;
  // Per-client plan memoization (core/plan_cache.hpp): each client owns
  // its PlanCache + CanonicalOrderTable (chains are per-client), so the
  // single-threaded DES stays deterministic. Bit-identical on or off.
  bool use_plan_cache = true;
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
};

struct MultiClientResult {
  SimMetrics aggregate;                  // across all clients
  std::vector<SimMetrics> per_client;
  PlanMemoStats plan_cache;              // merged across clients
  double makespan = 0.0;                 // time when the last client ended
  double link_busy_time = 0.0;
  double link_utilization() const {
    return makespan > 0.0 ? link_busy_time / makespan : 0.0;
  }
};

MultiClientResult run_multi_client(const MultiClientConfig& config);

}  // namespace skp
