// Multi-client distributed information system (extension).
//
// The paper analyses a single client; its title domain — distributed
// information systems — raises the obvious system-level question:
// speculative traffic from one client occupies the shared server link and
// delays everyone else's demand fetches. This simulator runs K clients,
// each with its own cache, prefetch engine and request stream, over ONE
// shared FIFO link (the server bottleneck), using the event queue
// substrate. Per the paper's Section-2 assumption, committed transfers
// are never aborted or preempted — a demand fetch queues behind
// everything already on the wire, including other clients' speculation.
//
// Clients come in two drive modes:
//  * oracle (default)  — each client walks its own Markov chain and plans
//    against the chain's ground-truth transition rows, with per-client
//    plan memoization (core/plan_cache.hpp);
//  * learned           — the client replays a scripted (item, viewing
//    time) cycle list (or a chain walk materialized at setup) and plans
//    against its own online predictor's rows, mirroring the netsim_des
//    learned branch. Plan memoization is bypassed — the predictor's state
//    changes on every observation, so no context key holds.
//
// The per-client override vector (chain shape / seed / predictor /
// scripted cycles) is what the unified runtime's `multi_client` driver
// (sim/runtime.hpp, SimSpec::multi_client) assembles; homogeneous clients
// need no overrides. bench/contention sweeps client count x prefetch
// threshold and shows the congestion collapse of unthrottled speculation
// — the system-level version of the Section-6 network-usage concern.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/overload.hpp"
#include "core/prefetch_engine.hpp"
#include "sim/fault.hpp"
#include "sim/link_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/prefetch_cache.hpp"  // PredictorKind
#include "workload/markov_source.hpp"
#include "workload/trace.hpp"  // TraceRecord

namespace skp {

struct MultiClientConfig {
  std::size_t n_clients = 4;
  // Each client walks an independent chain drawn with these parameters
  // (items are per-client; the shared resource is the link, not the data).
  MarkovSourceConfig source;
  // The shared link serves one transfer at a time; a transfer of item i
  // occupies it for r_i / speedup time units.
  double link_speedup = 1.0;
  std::size_t cache_size = 10;
  EngineConfig engine;
  std::size_t requests_per_client = 2'000;
  std::uint64_t seed = 1;
  // Per-client plan memoization (core/plan_cache.hpp): each oracle-mode
  // client owns its PlanCache + CanonicalOrderTable (chains are
  // per-client), so the single-threaded DES stays deterministic.
  // Bit-identical on or off; a no-op for learned clients.
  bool use_plan_cache = true;
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;

  // ---- Registry integration (SimSpec::multi_client) ---------------------

  // Default predictor for every client. Oracle plans against the chain's
  // ground-truth rows; anything else gives each client its own online
  // predictor over its own history, with an observe-only warmup prefix
  // and a shortlist floor (the netsim_des learned-branch semantics).
  PredictorKind predictor = PredictorKind::Oracle;
  double predictor_min_prob = 0.01;
  std::size_t predictor_warmup = 0;  // observe-only cycles per client

  // Net grounding: when non-empty, replaces every client's chain-drawn
  // retrieval-time catalog (the runtime driver grounds r_i = latency +
  // size_i / bandwidth here so multi_client rows are comparable with
  // netsim_des/scenario rows of the same spec). Scripted clients require
  // it — they have no chain to draw a catalog from.
  std::vector<double> retrieval_times;

  // ---- Hostile worlds (extension) ---------------------------------------

  // Flash crowd / thundering herd: blends every client's per-cycle viewing
  // time toward one shared herd schedule (drawn from the config seed, NOT
  // from any client stream). 0 = independent phases (bit-identical with
  // the field absent); 1 = cycle k takes the same time for everyone, so
  // demand spikes hit the shared link together. Because the blended
  // viewing time varies with the cycle INDEX, the oracle state key no
  // longer determines the planning inputs — plan memoization is disabled
  // whenever phase_align > 0 (on/off is then trivially bit-identical).
  double phase_align = 0.0;  // in [0, 1]

  // Client churn: a client with churn_period > 0 departs at the first
  // cycle boundary past each churn boundary, flushes its cache and
  // frequency book (in-flight transfers complete regardless — the
  // no-abort rule), cold-restarts its predictor, invalidates its plan
  // memo, and rejoins churn_downtime later with its chain state and
  // private streams intact — so churning one client never shifts a
  // sibling's request trajectory. The cycle quota is unaffected: a
  // churning client still serves every one of its requests.
  double churn_period = 0.0;    // simulated time between departures; 0 = off
  double churn_downtime = 0.0;  // offline span per departure

  // Shared-link quality schedule (sim/link_schedule.hpp): the phase in
  // force at a transfer's start re-prices the base cost r as
  // phase.latency + r / phase.bandwidth (then link_speedup divides as
  // usual). Empty = static link. Planning and the network_time metrics
  // keep the base r — the clients plan against stale link estimates.
  std::vector<LinkPhase> link_schedule;

  // ---- Robustness layer (extension) -------------------------------------

  // Prefetch-transfer fault injection (sim/fault.hpp). Draws come from
  // one shared link-level stream — Rng(seed).split(kFaultStreamSalt) —
  // consumed in link-commit order, so enabling faults never perturbs a
  // client's workload or decision streams. Demand fetches stay reliable
  // (they are the fallback); an abandoned prefetch releases its cache
  // slot and the item is demand-fetched when actually requested.
  FaultSpec fault;

  // Adaptive overload controller (core/overload.hpp): one fleet-wide
  // controller observes every realized access time and degrades planning
  // effort for ALL clients together — the link is shared, so pressure is
  // a system property, not a client one. Every rung transition bumps
  // each client's plan-memo generations and canonical-order tables (the
  // degraded row breaks the state-key promise across rungs).
  OverloadConfig overload;

  // Deadline accounting: a request served with T <= deadline counts
  // toward MultiClientResult::deadline_hits. 0 = no deadline tracked.
  double deadline = 0.0;

  // Per-client drive overrides; empty = homogeneous clients from the
  // fields above (the legacy shared sequential stream scheme), otherwise
  // exactly one entry per client. With a non-empty vector EVERY client
  // gets private build/walk streams — from its `seed` when given
  // (position-independent: the same seeded client reproduces its
  // trajectory solo or in any fleet), else derived from (config seed,
  // client index) — so reseeding or reshaping one client can never
  // shift another's trajectory.
  struct ClientOverride {
    std::optional<MarkovSourceConfig> source;  // chain shape
    std::optional<std::uint64_t> seed;         // private stream root
    std::optional<PredictorKind> predictor;
    // Scripted drive (learned clients only): replay exactly this (item,
    // viewing time) sequence instead of walking a chain — how the
    // runtime drives iid / trace workloads that are not chains. Must
    // cover the client's cycle quota.
    std::vector<TraceRecord> cycles;
    // Per-client cycle quota; overrides requests_per_client so a total
    // request budget can be split across clients without dropping the
    // remainder (sum of quotas = budget).
    std::optional<std::size_t> requests;
    // Per-client churn schedule, overriding the config-wide fields (a 0
    // period disables churn for just this client).
    std::optional<double> churn_period;
    std::optional<double> churn_downtime;
  };
  std::vector<ClientOverride> overrides;
};

struct MultiClientResult {
  SimMetrics aggregate;                  // across all clients
  std::vector<SimMetrics> per_client;
  PlanMemoStats plan_cache;              // counters summed across clients
  std::uint64_t plans = 0;               // planning rounds that fetched
  std::uint64_t churn_events = 0;        // departures across all clients
  FaultStats fault;                      // link-level fault counters
  OverloadStats overload;                // controller rungs/transitions
  std::uint64_t deadline_hits = 0;       // requests with T <= deadline
  double makespan = 0.0;                 // time when the last client ended
  double link_busy_time = 0.0;
  double link_utilization() const {
    return makespan > 0.0 ? link_busy_time / makespan : 0.0;
  }
};

MultiClientResult run_multi_client(const MultiClientConfig& config);

}  // namespace skp
