// Shared read-mostly catalog of a SimSpec group.
//
// Every netsim_des-style session built from the same spec group —
// identical (seed, workload, bandwidth, latency) and, in learned mode,
// request count — derives the exact same immutable grounding state: the
// server size catalog, the canonical retrieval costs r_i, the oracle
// Markov chain (dense rows are ~n^2 doubles — the dominant idle-session
// footprint), the drift/walk stream seeds, and the materialized cycle
// script of learned mode. Before this layer each session rebuilt and
// privately owned all of it, which is what capped the sessions-per-GB a
// daemon could hold. A SharedCatalog is built ONCE per group and
// referenced via shared_ptr by every session; sessions keep only their
// mutable trajectory (cache, metrics, RNG cursors, predictor state).
//
// Determinism contract: build() consumes ground_streams(spec) stream for
// stream exactly as the per-session constructors used to, so a session
// running off a SharedCatalog is bit-identical to one that grounded
// itself. Sharing is safe because everything here is immutable after
// build — sessions sample trajectories with MarkovSource::sample_from
// (const) and take a private copy-on-write chain only at a drift
// changepoint.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/netsim.hpp"
#include "sim/runtime.hpp"
#include "util/rng.hpp"
#include "workload/markov_source.hpp"

namespace skp {

class SharedCatalog {
 public:
  // The spec fields a catalog actually consumes: two specs with equal
  // keys share one catalog. `requests` participates only in learned
  // mode (it sizes the materialized cycle script); oracle keys pin it
  // to 0 so sweeps over request counts still share the chain.
  struct Key {
    SimWorkload workload;
    std::uint64_t seed = 0;
    double bandwidth = 1.0;
    double latency = 0.0;
    bool oracle = true;
    std::size_t requests = 0;

    bool operator==(const Key&) const = default;
  };

  static Key key_of(const SimSpec& spec);

  // Grounds a fresh catalog for `spec` (uncached). Throws
  // std::invalid_argument on specs the grounding cannot honor.
  static std::shared_ptr<const SharedCatalog> build(const SimSpec& spec);

  // Interning build: returns the live catalog of spec's group if one
  // exists, else builds and registers one. The registry holds weak
  // references — a group's catalog dies with its last session. Thread-
  // safe; the (potentially expensive) build runs outside the registry
  // lock so parallel sweep setup never serializes on it.
  static std::shared_ptr<const SharedCatalog> acquire(const SimSpec& spec);

  // Live interned groups right now (tests/diagnostics).
  static std::size_t interned_groups();

  const Key& key() const noexcept { return key_; }
  bool oracle() const noexcept { return key_.oracle; }
  std::size_t n_items() const noexcept { return client_->n(); }

  // The per-session read-only slice (sizes + r), shared by reference.
  const std::shared_ptr<const SharedClientCatalog>& client() const noexcept {
    return client_;
  }

  // ---- Oracle mode --------------------------------------------------
  // The master chain. Immutable: sessions walk it with sample_from and
  // their own state cursor; a drifting session copies it first.
  const MarkovSource& source() const {
    SKP_REQUIRE(source_.has_value(), "learned-mode catalog has no source");
    return *source_;
  }
  const MarkovSourceConfig& markov_config() const noexcept { return mcfg_; }
  std::size_t initial_state() const noexcept { return initial_state_; }
  std::size_t drift_period() const noexcept { return drift_period_; }
  // Initial stream values (copied per session, then advanced privately).
  Rng walk() const noexcept { return walk_; }
  Rng drift_rng() const noexcept { return drift_rng_; }

  // ---- Learned mode -------------------------------------------------
  const MaterializedWorkload& materialized() const {
    SKP_REQUIRE(mat_.has_value(), "oracle-mode catalog has no cycle script");
    return *mat_;
  }

  // Heap bytes of the shared state — what N sessions now pay for once.
  std::size_t footprint_bytes() const noexcept;

 private:
  SharedCatalog() = default;

  Key key_;
  std::shared_ptr<const SharedClientCatalog> client_;
  std::optional<MarkovSource> source_;  // oracle master chain
  MarkovSourceConfig mcfg_;
  Rng walk_{0};
  Rng drift_rng_{0};
  std::size_t drift_period_ = 0;
  std::size_t initial_state_ = 0;
  std::optional<MaterializedWorkload> mat_;  // learned cycle script
};

}  // namespace skp
