// skpd session store: exactly-once execution under at-least-once delivery.
//
// A session is one NetsimStepper plus a replay buffer of results the
// client has not yet acknowledged. The resume contract: no matter how
// many times the connection dies and the client replays STEP frames, a
// cycle is EXECUTED at most once — a seq at or below the executed
// watermark is answered from the buffer, never re-run — so a resumed
// session's counter trajectory is bit-identical to an uninterrupted one.
// (A result the client never acks is retained until it acks past it or
// the session dies, bounding the buffer by the client's in-flight
// window; the synchronous skpd client keeps it at <= 1 entry.)
//
// The store is transport-free on purpose: tools/skpd.cpp owns sockets
// and timers and calls into this, and tests drive kill/resume sequences
// directly against the store without a single byte of TCP.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "sim/netsim_stepper.hpp"

namespace skp {

class SkpdSession {
 public:
  SkpdSession(std::uint64_t token, const SimSpec& spec)
      : token_(token), stepper_(spec) {}

  std::uint64_t token() const noexcept { return token_; }
  NetsimStepper& stepper() noexcept { return stepper_; }
  const NetsimStepper& stepper() const noexcept { return stepper_; }
  std::uint64_t executed() const noexcept {
    return static_cast<std::uint64_t>(stepper_.executed());
  }
  std::uint64_t acked() const noexcept { return acked_; }
  std::size_t unacked() const noexcept { return replay_.size(); }
  bool done() const noexcept { return stepper_.done(); }

  // Drops buffered results with seq <= ack (the client has them).
  // Acking past the executed watermark is a protocol violation.
  void acknowledge(std::uint64_t ack);

  // Handles one STEP{seq, ack}: first acknowledges, then either replays
  // the stored result (seq <= executed) or executes the next cycle
  // (seq == executed + 1). Throws std::invalid_argument when seq falls
  // outside [acked + 1, executed + 1] or runs past the spec's cycle
  // count — the caller answers with an ERROR frame.
  NetsimStepSnapshot step(std::uint64_t seq, std::uint64_t ack);

 private:
  std::uint64_t token_;
  NetsimStepper stepper_;
  std::uint64_t acked_ = 0;
  // Results for seqs acked_+1 .. executed(), oldest first.
  std::deque<NetsimStepSnapshot> replay_;
};

// Token-keyed session table. Tokens are dense counters starting at 1 —
// they are resumption handles on a loopback socket, not authentication
// (ROADMAP scopes the daemon to localhost single-user).
class SkpdSessionStore {
 public:
  // Creates a session for `spec_text` (decoded via decode_sim_spec) and
  // returns it. Throws std::invalid_argument on a malformed or
  // unservable spec.
  SkpdSession& create(const std::string& spec_text);

  // nullptr when the token is unknown (expired or never issued).
  SkpdSession* find(std::uint64_t token);

  void erase(std::uint64_t token) { sessions_.erase(token); }
  std::size_t size() const noexcept { return sessions_.size(); }

  // Ordered iteration for drain-time stats emission.
  auto begin() { return sessions_.begin(); }
  auto end() { return sessions_.end(); }

 private:
  std::uint64_t next_token_ = 1;
  std::map<std::uint64_t, std::unique_ptr<SkpdSession>> sessions_;
};

}  // namespace skp
