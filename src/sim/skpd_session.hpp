// skpd session store: exactly-once execution under at-least-once delivery.
//
// A session is one NetsimStepper plus a replay buffer of results the
// client has not yet acknowledged. The resume contract: no matter how
// many times the connection dies and the client replays STEP frames, a
// cycle is EXECUTED at most once — a seq at or below the executed
// watermark is answered from the buffer, never re-run — so a resumed
// session's counter trajectory is bit-identical to an uninterrupted one.
// (A result the client never acks is retained until it acks past it or
// the session dies, bounding the buffer by the client's in-flight
// window; the synchronous skpd client keeps it at <= 1 entry.)
//
// The store is transport-free on purpose: tools/skpd.cpp owns sockets
// and timers and calls into this, and tests drive kill/resume sequences
// directly against the store without a single byte of TCP.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "sim/catalog.hpp"
#include "sim/netsim_stepper.hpp"
#include "sim/session_store.hpp"

namespace skp {

class SkpdSession {
 public:
  SkpdSession(std::uint64_t token, const SimSpec& spec)
      : token_(token), stepper_(spec) {}

  // Bulk-hosting constructor: the session runs against an explicitly
  // provided shared catalog (see NetsimStepper's two-argument
  // constructor) so preloading many sessions of one spec group pays for
  // the group's grounding exactly once.
  SkpdSession(std::uint64_t token, const SimSpec& spec,
              std::shared_ptr<const SharedCatalog> catalog)
      : token_(token), stepper_(spec, std::move(catalog)) {}

  std::uint64_t token() const noexcept { return token_; }
  NetsimStepper& stepper() noexcept { return stepper_; }
  const NetsimStepper& stepper() const noexcept { return stepper_; }
  std::uint64_t executed() const noexcept {
    return static_cast<std::uint64_t>(stepper_.executed());
  }
  std::uint64_t acked() const noexcept { return acked_; }
  std::size_t unacked() const noexcept { return replay_.size(); }
  bool done() const noexcept { return stepper_.done(); }

  // Drops buffered results with seq <= ack (the client has them).
  // Acking past the executed watermark is a protocol violation.
  void acknowledge(std::uint64_t ack);

  // Handles one STEP{seq, ack}: first acknowledges, then either replays
  // the stored result (seq <= executed) or executes the next cycle
  // (seq == executed + 1). Throws std::invalid_argument when seq falls
  // outside [acked + 1, executed + 1] or runs past the spec's cycle
  // count — the caller answers with an ERROR frame.
  NetsimStepSnapshot step(std::uint64_t seq, std::uint64_t ack);

 private:
  std::uint64_t token_;
  NetsimStepper stepper_;
  std::uint64_t acked_ = 0;
  // Results for seqs acked_+1 .. executed(), oldest first.
  std::deque<NetsimStepSnapshot> replay_;
};

// Token-keyed session table. Tokens are dense counters starting at 1 —
// they are resumption handles on a loopback socket, not authentication
// (ROADMAP scopes the daemon to localhost single-user). Sessions live in
// a sharded store (sim/session_store.hpp): dense tokens round-robin over
// shards, so bulk preloads spread evenly and a 100k-idle-session daemon
// never rebalances one giant tree. All request-path calls stay on the
// poll thread; sharding here buys O(log(n/shards)) lookups and gives the
// embedder per-shard ownership if it ever steps sessions from workers.
class SkpdSessionStore {
 public:
  explicit SkpdSessionStore(std::size_t n_shards = 1)
      : sessions_(n_shards) {}

  // Creates a session for `spec_text` (decoded via decode_sim_spec) and
  // returns it. Throws std::invalid_argument on a malformed or
  // unservable spec.
  SkpdSession& create(const std::string& spec_text);

  // Bulk-preload creation path: an already-decoded spec plus its group's
  // shared catalog (pass nullptr to let the stepper acquire one).
  SkpdSession& create(const SimSpec& spec,
                      std::shared_ptr<const SharedCatalog> catalog);

  // nullptr when the token is unknown (expired or never issued).
  SkpdSession* find(std::uint64_t token) { return sessions_.find(token); }

  void erase(std::uint64_t token) { sessions_.erase(token); }
  std::size_t size() const noexcept { return sessions_.size(); }

  // Token-ordered iteration for drain-time stats emission; fn receives
  // (token, SkpdSession&). Order is shard-count independent.
  template <typename Fn>
  void for_each(Fn&& fn) {
    sessions_.for_each_ordered(std::forward<Fn>(fn));
  }

 private:
  std::uint64_t next_token_ = 1;
  ShardedSessionStore<SkpdSession> sessions_;
};

}  // namespace skp
