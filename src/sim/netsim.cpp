#include "sim/netsim.hpp"

#include <algorithm>

#include "core/access_model.hpp"

namespace skp {

std::vector<double> ServerCatalog::retrieval_times(
    const NetConfig& net) const {
  std::vector<double> r(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    r[i] = retrieval_time(static_cast<ItemId>(i), net);
  }
  return r;
}

namespace {

// Wraps a privately owned catalog for the legacy constructor. Validation
// runs here (once per catalog) so the shared path can skip the O(n) size
// scan for every session referencing an already-validated catalog.
std::shared_ptr<const SharedClientCatalog> wrap_catalog(
    ServerCatalog catalog, const NetConfig& net) {
  SKP_REQUIRE(net.bandwidth > 0.0, "bandwidth must be positive");
  SKP_REQUIRE(net.latency >= 0.0, "latency must be >= 0");
  validate_link_schedule(net.schedule);
  for (std::size_t i = 0; i < catalog.n(); ++i) {
    SKP_REQUIRE(catalog.sizes[i] > 0.0, "size[" << i << "] must be > 0");
  }
  auto cat = std::make_shared<SharedClientCatalog>();
  cat->server = std::move(catalog);
  cat->r = cat->server.retrieval_times(net);
  return cat;
}

const SharedClientCatalog& deref_catalog(
    const std::shared_ptr<const SharedClientCatalog>& cat) {
  SKP_REQUIRE(cat != nullptr, "ClientSession needs a catalog");
  return *cat;
}

}  // namespace

ClientSession::ClientSession(ServerCatalog catalog, NetConfig net,
                             EngineConfig engine,
                             std::size_t cache_capacity)
    : ClientSession(wrap_catalog(std::move(catalog), net), std::move(net),
                    engine, cache_capacity) {}

ClientSession::ClientSession(
    std::shared_ptr<const SharedClientCatalog> catalog, NetConfig net,
    EngineConfig engine, std::size_t cache_capacity)
    : cat_(std::move(catalog)),
      net_(std::move(net)),
      engine_(engine),
      cache_(deref_catalog(cat_).n(), cache_capacity),
      freq_(cat_->n()),
      unused_prefetch_(cat_->n(), 0) {
  SKP_REQUIRE(net_.bandwidth > 0.0, "bandwidth must be positive");
  SKP_REQUIRE(net_.latency >= 0.0, "latency must be >= 0");
  validate_link_schedule(net_.schedule);
  SKP_REQUIRE(cat_->r.size() == cat_->n(),
              "catalog retrieval-time vector size mismatch");
  completion_.assign(cat_->n(), 0.0);
}

void ClientSession::enable_plan_cache(std::size_t capacity) {
  plan_cache_.emplace(engine_.config_digest(), capacity,
                      /*doorkeeper=*/true);
  selection_cache_.emplace(engine_.config_digest(), capacity);
}

double ClientSession::link_utilization() const {
  return clock_.now() > 0.0 ? link_busy_total_ / clock_.now() : 0.0;
}

void ClientSession::set_fault_injection(const FaultSpec& spec, Rng stream) {
  validate_fault_spec(spec);
  SKP_REQUIRE(!(spec.enabled() && net_.cancel_pending_on_demand),
              "fault injection is not composable with "
              "cancel_pending_on_demand (cancel rollback assumes queued "
              "prefetches are cache-resident)");
  fault_ = spec;
  fault_rng_ = stream;
}

std::optional<double> ClientSession::enqueue_prefetch(ItemId item) {
  if (!fault_.enabled()) return enqueue_transfer(item, true);
  const double start = std::max(clock_.now(), link_free_at_);
  const FaultTransfer ft = run_faulty_transfer(
      fault_, fault_rng_, fault_stats_, start, [&](double attempt_start) {
        return net_.transfer_time(cat_->server.sizes[Instance::idx(item)],
                                  attempt_start);
      });
  // The link is held through every attempt; backoff gaps idle it, so
  // occupancy (ft.busy) is what counts toward utilization.
  link_free_at_ = ft.finish;
  in_flight_.push_back({item, start, ft.finish, true});
  clock_.schedule_at(ft.finish,
                     [this, item, finish = ft.finish, busy = ft.busy] {
                       link_busy_total_ += busy;
                       in_flight_.erase(std::find_if(
                           in_flight_.begin(), in_flight_.end(),
                           [&](const Transfer& t) {
                             return t.item == item && t.finish == finish;
                           }));
                     });
  if (!ft.delivered) return std::nullopt;
  return ft.finish;
}

double ClientSession::enqueue_transfer(ItemId item, bool is_prefetch) {
  const double start = std::max(clock_.now(), link_free_at_);
  // Priced by the link phase in force at transfer START (the base static
  // r_i when no schedule is set); metrics keep charging the base r_i so
  // network_time stays comparable across schedules.
  const double duration =
      net_.transfer_time(cat_->server.sizes[Instance::idx(item)], start);
  const double finish = start + duration;
  link_free_at_ = finish;
  in_flight_.push_back({item, start, finish, is_prefetch});
  clock_.schedule_at(finish, [this, item, start, finish] {
    link_busy_total_ += finish - start;
    in_flight_.erase(
        std::find_if(in_flight_.begin(), in_flight_.end(),
                     [&](const Transfer& t) {
                       return t.item == item && t.finish == finish;
                     }));
  });
  return finish;
}

double ClientSession::request(ItemId item, double viewing_time,
                              std::span<const double> next_probs,
                              std::optional<ItemId> oracle_next,
                              std::optional<std::uint64_t> context_key) {
  SKP_REQUIRE(item >= 0 && static_cast<std::size_t>(item) < cat_->n(),
              "item out of range");
  SKP_REQUIRE(viewing_time >= 0.0, "negative viewing time");
  SKP_REQUIRE(next_probs.size() == cat_->n(),
              "probability vector size mismatch");

  const double t0 = clock_.now();
  P_.assign(next_probs.begin(), next_probs.end());
  const InstanceView inst(P_, cat_->r, viewing_time);
  inst.validate();

  // Plan and commit prefetches (slots are reserved at enqueue time so the
  // planner never double-fetches an in-flight item; a request for such an
  // item waits for its completion).
  PlanMemo memo;
  if (plan_cache_ && context_key) {
    memo.plans = &*plan_cache_;
    memo.selections = &*selection_cache_;
    memo.state_key = *context_key;
  }
  engine_.plan_with_cache_cached(inst, cache_, &freq_, memo, scratch_,
                                 plan_, oracle_next);
  const PrefetchPlan& plan = plan_;
  metrics_.solver_nodes += plan.solver_nodes;
  {
    std::size_t victim_idx = 0;
    for (ItemId f : plan.fetch) {
      if (cache_.full()) {
        SKP_ASSERT(victim_idx < plan.evict.size());
        const ItemId d = plan.evict[victim_idx++];
        if (unused_prefetch_[Instance::idx(d)]) {
          ++metrics_.wasted_prefetches;
          unused_prefetch_[Instance::idx(d)] = 0;
        }
        cache_.replace(d, f);
      } else {
        cache_.insert(f);
      }
      unused_prefetch_[Instance::idx(f)] = 1;
      if (const std::optional<double> done = enqueue_prefetch(f)) {
        completion_[Instance::idx(f)] = *done;
      } else {
        // Abandoned after exhausting its retry budget: release the slot
        // it claimed (the victim is already gone) and fall back to a
        // demand fetch if the item is ever actually requested.
        cache_.erase(f);
        unused_prefetch_[Instance::idx(f)] = 0;
      }
      ++metrics_.prefetch_fetches;
      const double rt = cat_->r[Instance::idx(f)];
      metrics_.network_time += rt;
      metrics_.prefetch_network_time += rt;
    }
  }

  // The user views for `viewing_time`, then requests `item`.
  const double t_req = t0 + viewing_time;
  clock_.run_until(t_req);

  double T = 0.0;
  if (cache_.contains(item)) {
    T = std::max(0.0, completion_[Instance::idx(item)] - t_req);
  } else {
    if (net_.cancel_pending_on_demand) {
      // Extension: drop queued prefetches that have not started yet and
      // free their cache slots (their victims are already gone).
      std::vector<Transfer> kept;
      double free_at = clock_.now();
      for (const Transfer& t : in_flight_) {
        if (t.is_prefetch && t.start >= t_req) {
          cache_.erase(t.item);
          unused_prefetch_[Instance::idx(t.item)] = 0;
          ++metrics_.wasted_prefetches;
          const double rt = cat_->r[Instance::idx(t.item)];
          metrics_.network_time -= rt;
          metrics_.prefetch_network_time -= rt;
          --metrics_.prefetch_fetches;
        } else {
          kept.push_back(t);
          free_at = std::max(free_at, t.finish);
        }
      }
      in_flight_ = std::move(kept);
      link_free_at_ = free_at;
    }
    // Demand fetch: waits behind every committed prefetch (the paper's
    // no-abort assumption) and must claim a victim when the cache is full.
    if (cache_.full()) {
      const ItemId d = choose_victim(inst, cache_.contents(), &freq_,
                                     engine_.config().arbitration);
      if (unused_prefetch_[Instance::idx(d)]) {
        ++metrics_.wasted_prefetches;
        unused_prefetch_[Instance::idx(d)] = 0;
      }
      cache_.replace(d, item);
    } else {
      cache_.insert(item);
    }
    const double finish = enqueue_transfer(item, false);
    completion_[Instance::idx(item)] = finish;
    ++metrics_.demand_fetches;
    const double rt = cat_->r[Instance::idx(item)];
    metrics_.network_time += rt;
    metrics_.demand_network_time += rt;
    T = finish - t_req;
  }
  clock_.run_until(t_req + T);

  freq_.record(item);
  // Under LFU/DS sub-arbitration the record above changes victim scores,
  // invalidating every stored plan that consulted them.
  if (plan_cache_ &&
      engine_.config().arbitration.sub != SubArbitration::None) {
    plan_cache_->bump_generation();
  }
  unused_prefetch_[Instance::idx(item)] = 0;
  metrics_.access_time.add(T);
  ++metrics_.requests;
  if (T == 0.0) ++metrics_.hits;
  return T;
}

}  // namespace skp
