#include "sim/metrics.hpp"

#include <sstream>

namespace skp {

void SimMetrics::merge(const SimMetrics& other) {
  access_time.merge(other.access_time);
  requests += other.requests;
  hits += other.hits;
  demand_fetches += other.demand_fetches;
  prefetch_fetches += other.prefetch_fetches;
  wasted_prefetches += other.wasted_prefetches;
  network_time += other.network_time;
  prefetch_network_time += other.prefetch_network_time;
  demand_network_time += other.demand_network_time;
  solver_nodes += other.solver_nodes;
}

std::string SimMetrics::to_string() const {
  std::ostringstream os;
  os << "requests=" << requests << " meanT=" << mean_access_time()
     << " hit_rate=" << hit_rate() << " demand=" << demand_fetches
     << " prefetched=" << prefetch_fetches
     << " wasted=" << wasted_prefetches
     << " net_time/req=" << network_time_per_request();
  return os.str();
}

}  // namespace skp
