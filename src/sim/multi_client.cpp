#include "sim/multi_client.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "core/access_model.hpp"
#include "sim/event_queue.hpp"

namespace skp {

namespace {

// Per-client simulation state. Caches and chains are private; only the
// link is shared.
struct Client {
  std::unique_ptr<MarkovSource> chain;
  std::unique_ptr<SlotCache> cache;
  std::unique_ptr<FreqTracker> freq;
  Rng walk{0};
  std::size_t state = 0;
  std::size_t served = 0;
  SimMetrics metrics;
  std::vector<double> completion;      // per-item transfer completion time
  std::vector<char> unused_prefetch;
  // Per-client planning buffers (clients are stepped by one DES thread,
  // but each keeps its own scratch so cycles never allocate).
  PlanScratch scratch;
  PrefetchPlan plan;
  // Per-client memoization: chains (and so states/orders) are private.
  std::optional<PlanCache> plans;
  std::optional<PlanCache> selections;
  std::optional<CanonicalOrderTable> canon;
};

}  // namespace

MultiClientResult run_multi_client(const MultiClientConfig& cfg) {
  SKP_REQUIRE(cfg.n_clients >= 1, "need at least one client");
  SKP_REQUIRE(cfg.link_speedup > 0.0, "link_speedup must be positive");
  SKP_REQUIRE(cfg.cache_size >= 1, "cache_size must be >= 1");

  const PrefetchEngine engine(cfg.engine);
  Rng build(cfg.seed);

  std::vector<Client> clients(cfg.n_clients);
  for (std::size_t c = 0; c < cfg.n_clients; ++c) {
    Client& cl = clients[c];
    cl.chain = std::make_unique<MarkovSource>(cfg.source, build);
    cl.chain->teleport(0);
    const std::size_t n = cl.chain->n_states();
    cl.cache = std::make_unique<SlotCache>(n, cfg.cache_size);
    cl.freq = std::make_unique<FreqTracker>(n);
    cl.walk = build.split(1000 + c);
    cl.completion.assign(n, 0.0);
    cl.unused_prefetch.assign(n, 0);
    if (cfg.use_plan_cache) {
      cl.plans.emplace(engine.config_digest(), cfg.plan_cache_capacity,
                       /*doorkeeper=*/true);
      cl.selections.emplace(engine.config_digest(),
                            cfg.plan_cache_capacity);
      cl.canon.emplace(n);
    }
  }
  // Oracle rows are static, so completed plans depend on evolving context
  // only through LFU/DS victim scores (see the generation bump below);
  // solver selections never do.
  const bool volatile_plans =
      cfg.engine.arbitration.sub != SubArbitration::None;

  EventQueue clock;
  double link_free_at = 0.0;
  double link_busy = 0.0;
  double makespan = 0.0;

  // Serializes a transfer on the shared link; returns completion time.
  auto enqueue = [&](double r) {
    const double start = std::max(clock.now(), link_free_at);
    const double duration = r / cfg.link_speedup;
    link_free_at = start + duration;
    link_busy += duration;
    return link_free_at;
  };

  // One viewing-and-request cycle for client c, starting at clock.now().
  // Defined as a std::function so completions can reschedule it.
  std::function<void(std::size_t)> start_cycle = [&](std::size_t c) {
    Client& cl = clients[c];
    if (cl.served >= cfg.requests_per_client) {
      makespan = std::max(makespan, clock.now());
      return;
    }
    const double t0 = clock.now();
    const InstanceView inst = cl.chain->view_at(cl.state);
    const auto next = static_cast<ItemId>(cl.chain->step(cl.walk));
    std::optional<ItemId> oracle;
    if (cfg.engine.policy == PrefetchPolicy::Perfect) oracle = next;

    PlanMemo memo;
    if (cl.plans) {
      memo.plans = &*cl.plans;
      memo.selections = &*cl.selections;
      memo.canon = &*cl.canon;
      memo.state_key = cl.state;
    }
    engine.plan_with_cache_cached(inst, *cl.cache, cl.freq.get(), memo,
                                  cl.scratch, cl.plan, oracle,
                                  cl.chain->successors(cl.state));
    const PrefetchPlan& plan = cl.plan;
    std::size_t victim_idx = 0;
    for (const ItemId f : plan.fetch) {
      if (cl.cache->full()) {
        const ItemId d = plan.evict[victim_idx++];
        if (cl.unused_prefetch[Instance::idx(d)]) {
          ++cl.metrics.wasted_prefetches;
          cl.unused_prefetch[Instance::idx(d)] = 0;
        }
        cl.cache->replace(d, f);
      } else {
        cl.cache->insert(f);
      }
      cl.unused_prefetch[Instance::idx(f)] = 1;
      cl.completion[Instance::idx(f)] =
          enqueue(inst.r[Instance::idx(f)]);
      ++cl.metrics.prefetch_fetches;
      const double rt = inst.r[Instance::idx(f)];
      cl.metrics.network_time += rt;
      cl.metrics.prefetch_network_time += rt;
    }
    cl.metrics.solver_nodes += plan.solver_nodes;

    const double t_req = t0 + cl.chain->viewing_time(cl.state);
    clock.schedule_at(t_req, [&, c, next, t_req] {
      Client& me = clients[c];
      double T = 0.0;
      if (me.cache->contains(next)) {
        T = std::max(0.0, me.completion[Instance::idx(next)] - t_req);
      } else {
        // Demand fetch queues behind every committed transfer — the
        // paper's no-abort assumption, now spanning all clients.
        if (me.cache->full()) {
          const InstanceView now_inst = me.chain->view_at(
              static_cast<std::size_t>(next));
          const ItemId d =
              choose_victim(now_inst, me.cache->contents(),
                            me.freq.get(), cfg.engine.arbitration);
          if (me.unused_prefetch[Instance::idx(d)]) {
            ++me.metrics.wasted_prefetches;
            me.unused_prefetch[Instance::idx(d)] = 0;
          }
          me.cache->replace(d, next);
        } else {
          me.cache->insert(next);
        }
        const double finish =
            enqueue(me.chain->retrieval_time(next));
        me.completion[Instance::idx(next)] = finish;
        ++me.metrics.demand_fetches;
        const double rt = me.chain->retrieval_time(next);
        me.metrics.network_time += rt;
        me.metrics.demand_network_time += rt;
        T = finish - t_req;
      }
      me.freq->record(next);
      if (me.plans && volatile_plans) me.plans->bump_generation();
      me.unused_prefetch[Instance::idx(next)] = 0;
      me.metrics.access_time.add(T);
      ++me.metrics.requests;
      if (T == 0.0) ++me.metrics.hits;
      ++me.served;
      me.state = static_cast<std::size_t>(next);
      // Next cycle begins when this request is served.
      clock.schedule_at(t_req + T, [&, c] { start_cycle(c); });
    });
  };

  for (std::size_t c = 0; c < cfg.n_clients; ++c) start_cycle(c);
  clock.run_all();
  makespan = std::max(makespan, clock.now());

  MultiClientResult result;
  result.makespan = makespan;
  result.link_busy_time = link_busy;
  for (auto& cl : clients) {
    result.per_client.push_back(cl.metrics);
    result.aggregate.merge(cl.metrics);
    if (cl.plans) {
      result.plan_cache.plans.merge(cl.plans->stats());
      result.plan_cache.selections.merge(cl.selections->stats());
    }
  }
  return result;
}

}  // namespace skp
