#include "sim/multi_client.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <span>

#include <future>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "core/access_model.hpp"
#include "predict/predictor.hpp"
#include "sim/event_queue.hpp"
#include "sim/runtime.hpp"  // make_runtime_predictor
#include "sim/session_store.hpp"
#include "util/thread_pool.hpp"

namespace skp {

namespace {

// Per-client simulation state. Caches and request streams are private;
// only the link is shared. Read-mostly inputs are VIEWS, not copies: the
// retrieval catalog spans either the fleet-wide override vector (one
// copy for the whole run) or the client's own chain catalog, and a
// scripted cycle program spans its override entry — so a 10k-client
// fleet no longer holds 10k copies of identical vectors.
struct Client {
  std::unique_ptr<MarkovSource> chain;   // null for scripted clients
  std::unique_ptr<Predictor> predictor;  // null for oracle clients
  PredictorKind kind = PredictorKind::Oracle;
  std::vector<TraceRecord> cycles_storage;  // walked clients' private script
  std::span<const TraceRecord> cycles;   // learned drive (view)
  std::span<const double> r;             // effective retrieval catalog (view)
  std::vector<double> P;                 // learned planning row
  std::unique_ptr<SlotCache> cache;
  std::unique_ptr<FreqTracker> freq;
  Rng walk{0};
  std::size_t state = 0;
  std::size_t served = 0;
  std::size_t quota = 0;        // cycles this client must serve
  double churn_period = 0.0;    // 0 = never churns
  double churn_downtime = 0.0;
  double next_churn_at = 0.0;   // first departure boundary
  SimMetrics metrics;
  std::vector<double> completion;      // per-item transfer completion time
  std::vector<char> unused_prefetch;
  // Per-client planning buffers (clients are stepped by one DES thread,
  // but each keeps its own scratch so cycles never allocate).
  PlanScratch scratch;
  PrefetchPlan plan;
  // Per-client memoization (oracle clients only: chains — and so
  // states/orders — are private, and learned predictors change the
  // planning row every observation, which no context key survives).
  std::optional<PlanCache> plans;
  std::optional<PlanCache> selections;
  std::optional<CanonicalOrderTable> canon;
};

}  // namespace

MultiClientResult run_multi_client(const MultiClientConfig& cfg) {
  SKP_REQUIRE(cfg.n_clients >= 1, "need at least one client");
  SKP_REQUIRE(cfg.link_speedup > 0.0, "link_speedup must be positive");
  SKP_REQUIRE(cfg.cache_size >= 1, "cache_size must be >= 1");
  SKP_REQUIRE(cfg.overrides.empty() ||
                  cfg.overrides.size() == cfg.n_clients,
              "override vector must have one entry per client (or none)");
  SKP_REQUIRE(cfg.phase_align >= 0.0 && cfg.phase_align <= 1.0,
              "phase_align must be in [0, 1]");
  SKP_REQUIRE(cfg.churn_period >= 0.0, "churn_period must be >= 0");
  SKP_REQUIRE(cfg.churn_downtime >= 0.0, "churn_downtime must be >= 0");
  SKP_REQUIRE(cfg.deadline >= 0.0, "deadline must be >= 0");
  validate_link_schedule(cfg.link_schedule);
  validate_fault_spec(cfg.fault);

  const PrefetchEngine engine(cfg.engine);
  Rng build(cfg.seed);

  // Clients live in shard-per-core session storage (id = client index,
  // shard = id % N; sim/session_store.hpp). Shard setup runs in parallel
  // when every client is privately seeded (overrides in play) — each
  // client's streams then depend only on (seed, index), never on
  // construction order — and sequentially under the legacy shared-stream
  // scheme. Either way each client's state is bit-identical to what the
  // flat-vector construction this replaces produced.
  ShardedSessionStore<Client> store(
      recommended_shard_count(cfg.n_clients));
  for (std::size_t c = 0; c < cfg.n_clients; ++c) store.emplace(c);

  auto setup_client = [&](std::size_t c, Client& cl, Rng* shared_build) {
    const MultiClientConfig::ClientOverride* ov =
        cfg.overrides.empty() ? nullptr : &cfg.overrides[c];
    const PredictorKind kind =
        ov && ov->predictor ? *ov->predictor : cfg.predictor;
    const bool scripted = ov && !ov->cycles.empty();
    SKP_REQUIRE(!scripted || kind != PredictorKind::Oracle,
                "scripted cycles need a learned predictor (client "
                    << c << " has no oracle rows to plan with)");
    cl.kind = kind;
    cl.quota =
        ov && ov->requests ? *ov->requests : cfg.requests_per_client;
    cl.churn_period =
        ov && ov->churn_period ? *ov->churn_period : cfg.churn_period;
    cl.churn_downtime = ov && ov->churn_downtime ? *ov->churn_downtime
                                                 : cfg.churn_downtime;
    SKP_REQUIRE(cl.churn_period >= 0.0 && cl.churn_downtime >= 0.0,
                "client " << c << ": churn overrides must be >= 0");
    cl.next_churn_at = cl.churn_period;

    // Streams. With overrides in play EVERY client is privately seeded —
    // from its explicit seed (position-independent, so the same seeded
    // client reproduces its trajectory solo or in any fleet), else from
    // (cfg.seed, client index) — so reseeding or reshaping one client
    // never shifts another's trajectory. Without overrides, chains draw
    // from the shared sequential stream and walks from its split(1000+c)
    // children — the legacy scheme, kept bit-identical.
    std::optional<Rng> private_build;
    if (ov && ov->seed) {
      Rng root(*ov->seed);
      private_build.emplace(root.split(1));
      cl.walk = root.split(2);
    } else if (!cfg.overrides.empty()) {
      Rng root = Rng(cfg.seed).split(1000 + c);
      private_build.emplace(root.split(1));
      cl.walk = root.split(2);
    }
    if (!scripted) {
      const MarkovSourceConfig& scfg =
          ov && ov->source ? *ov->source : cfg.source;
      cl.chain = std::make_unique<MarkovSource>(
          scfg, private_build ? *private_build : *shared_build);
      cl.chain->teleport(0);
    }
    if (!private_build) cl.walk = shared_build->split(1000 + c);

    // Effective retrieval catalog, by reference: the fleet-wide override
    // vector (alive for the whole run) or the chain's own catalog (the
    // chain is client-owned and never redrawn here) — identical values
    // to the per-client copies this replaces, without the copies.
    if (!cfg.retrieval_times.empty()) {
      SKP_REQUIRE(!cl.chain ||
                      cl.chain->n_states() == cfg.retrieval_times.size(),
                  "retrieval_times override must match the chain catalog");
      cl.r = std::span<const double>(cfg.retrieval_times);
    } else {
      SKP_REQUIRE(cl.chain != nullptr,
                  "scripted clients need a retrieval_times catalog");
      cl.r = cl.chain->retrieval_times();
    }
    const std::size_t n = cl.r.size();
    cl.cache = std::make_unique<SlotCache>(n, cfg.cache_size);
    cl.freq = std::make_unique<FreqTracker>(n);
    cl.completion.assign(n, 0.0);
    cl.unused_prefetch.assign(n, 0);

    if (kind == PredictorKind::Oracle) {
      // Memoization needs the state key to determine the planning inputs;
      // phase alignment blends the viewing time by cycle INDEX, which
      // breaks that promise, so flash-crowd worlds plan unmemoized.
      if (cfg.use_plan_cache && cfg.phase_align == 0.0) {
        cl.plans.emplace(engine.config_digest(), cfg.plan_cache_capacity,
                         /*doorkeeper=*/true);
        cl.selections.emplace(engine.config_digest(),
                              cfg.plan_cache_capacity);
        cl.canon.emplace(n);
      }
    } else {
      cl.predictor = make_runtime_predictor(kind, n);
      cl.P.assign(n, 0.0);
      if (scripted) {
        SKP_REQUIRE(ov->cycles.size() >= cl.quota,
                    "scripted cycles must cover the client's quota");
        for (const TraceRecord& rec : ov->cycles) {
          SKP_REQUIRE(rec.item >= 0 &&
                          static_cast<std::size_t>(rec.item) < n,
                      "scripted cycle item out of catalog range");
        }
        // View of the override's script — the config outlives the run.
        cl.cycles = std::span<const TraceRecord>(ov->cycles);
      } else {
        // Materialize the chain walk up front — the walk stream is
        // consumed exactly as lazy stepping would, and learned planning
        // needs the cycle script, not the chain rows.
        cl.cycles_storage.reserve(cl.quota);
        for (std::size_t i = 0; i < cl.quota; ++i) {
          const double v =
              cl.chain->viewing_time(cl.chain->current_state());
          const auto item = static_cast<ItemId>(cl.chain->step(cl.walk));
          cl.cycles_storage.push_back({item, v});
        }
        cl.cycles = cl.cycles_storage;
      }
    }
  };

  if (!cfg.overrides.empty() && store.n_shards() > 1) {
    // Private streams: shard setups are independent, one worker per
    // shard, no cross-shard state touched.
    ThreadPool pool(store.n_shards());
    std::vector<std::future<void>> pending;
    pending.reserve(store.n_shards());
    for (std::size_t s = 0; s < store.n_shards(); ++s) {
      pending.push_back(pool.submit([&, s] {
        store.shard(s).for_each([&](std::uint64_t id, Client& cl) {
          setup_client(static_cast<std::size_t>(id), cl, nullptr);
        });
      }));
    }
    for (auto& f : pending) f.get();  // rethrows setup validation errors
  } else {
    for (std::size_t c = 0; c < cfg.n_clients; ++c) {
      setup_client(c, *store.find(c), &build);
    }
  }

  // Flat index view for the event loop — shards are a storage shape;
  // the DES addresses clients by index. Map nodes are stable, so these
  // pointers (and spans into client-owned storage) never move.
  std::vector<Client*> clients(cfg.n_clients);
  for (std::size_t c = 0; c < cfg.n_clients; ++c) {
    clients[c] = store.find(c);
  }
  // Oracle rows are static, so completed plans depend on evolving context
  // only through LFU/DS victim scores (see the generation bump below);
  // solver selections never do.
  const bool volatile_plans =
      cfg.engine.arbitration.sub != SubArbitration::None;

  // Herd schedule for flash crowds: one shared per-cycle viewing-time
  // sequence, drawn from its own stream (salt 999 — distinct from every
  // client's split(1000+c)) so enabling alignment never perturbs a client
  // stream. Cycle k of every client blends toward herd[k].
  std::vector<double> herd;
  if (cfg.phase_align > 0.0) {
    std::size_t max_quota = 0;
    for (const Client* cl : clients) {
      max_quota = std::max(max_quota, cl->quota);
    }
    Rng herd_rng = Rng(cfg.seed).split(999);
    herd.reserve(max_quota);
    for (std::size_t i = 0; i < max_quota; ++i) {
      herd.push_back(herd_rng.uniform_time(cfg.source.v_lo, cfg.source.v_hi,
                                           cfg.source.integer_times));
    }
  }

  EventQueue clock;
  double link_free_at = 0.0;
  double link_busy = 0.0;
  double makespan = 0.0;
  std::uint64_t plans_fired = 0;
  std::uint64_t churn_events = 0;
  std::uint64_t deadline_hits = 0;

  // Robustness layer. Fault draws come from one link-level stream
  // (dedicated salt, consumed in link-commit order) so arming the fault
  // model never perturbs a client's workload or decision streams. The
  // overload controller is fleet-wide: the link is shared, so pressure
  // is a system property.
  Rng fault_rng = Rng(cfg.seed).split(kFaultStreamSalt);
  FaultStats fault_stats;
  OverloadController overload(cfg.overload);
  std::vector<double> degraded_row;  // oracle-row copy under degradation

  // Serializes a transfer on the shared link; returns completion time. With
  // a link schedule the phase at transfer START re-prices the base cost r
  // (the no-abort rule holds: a committed transfer keeps its duration).
  auto enqueue = [&](double r) {
    const double start = std::max(clock.now(), link_free_at);
    double cost = r;
    if (!cfg.link_schedule.empty()) {
      const LinkPhase& phase = link_phase_at(cfg.link_schedule, start);
      cost = phase.latency + r / phase.bandwidth;
    }
    const double duration = cost / cfg.link_speedup;
    link_free_at = start + duration;
    link_busy += duration;
    return link_free_at;
  };

  // Prefetch path through the fault model (the reliable `enqueue` when
  // faults are disarmed). Each attempt is re-priced at its own start so
  // link phases charge the rate in force when it runs; backoff gaps idle
  // the link (only attempt occupancy counts toward link_busy). nullopt =
  // retry budget exhausted, transfer abandoned.
  auto enqueue_prefetch = [&](double r) -> std::optional<double> {
    if (!cfg.fault.enabled()) return enqueue(r);
    const double queue_start = std::max(clock.now(), link_free_at);
    const FaultTransfer ft = run_faulty_transfer(
        cfg.fault, fault_rng, fault_stats, queue_start,
        [&](double attempt_start) {
          double cost = r;
          if (!cfg.link_schedule.empty()) {
            const LinkPhase& phase =
                link_phase_at(cfg.link_schedule, attempt_start);
            cost = phase.latency + r / phase.bandwidth;
          }
          return cost / cfg.link_speedup;
        });
    link_free_at = ft.finish;
    link_busy += ft.busy;
    if (!ft.delivered) return std::nullopt;
    return ft.finish;
  };

  // Flash-crowd blend: pulls cycle k's viewing time toward the shared
  // herd schedule; identity when alignment is off.
  auto blend = [&](double v, std::size_t k) {
    if (cfg.phase_align == 0.0) return v;
    return (1.0 - cfg.phase_align) * v + cfg.phase_align * herd[k];
  };

  // One viewing-and-request cycle for client c, starting at clock.now().
  // Defined as a std::function so completions can reschedule it.
  std::function<void(std::size_t)> start_cycle = [&](std::size_t c) {
    Client& cl = *clients[c];
    if (cl.served >= cl.quota) {
      makespan = std::max(makespan, clock.now());
      return;
    }
    const double t0 = clock.now();

    double v = 0.0;
    ItemId next = 0;
    if (cl.predictor) {
      // Learned drive: replay the scripted cycle, plan against the
      // predictor's row (zeros during the observe-only warmup prefix, so
      // the planner fetches nothing), no memoization.
      const TraceRecord& rec = cl.cycles[cl.served];
      v = blend(rec.viewing_time, cl.served);
      next = rec.item;
      if (cl.served >= cfg.predictor_warmup) {
        cl.predictor->predict_into(cl.P);
        for (double& p : cl.P) {
          if (p < cfg.predictor_min_prob) p = 0.0;
        }
        overload.degrade_row(cl.P);
      }
      const InstanceView inst(cl.P, cl.r, v);
      std::optional<ItemId> oracle;
      if (cfg.engine.policy == PrefetchPolicy::Perfect) oracle = next;
      engine.plan_with_cache(inst, *cl.cache, cl.freq.get(), cl.scratch,
                             cl.plan, oracle);
    } else {
      // Oracle drive: plan against the chain's ground-truth row, then
      // sample the next request.
      v = blend(cl.chain->viewing_time(cl.state), cl.served);
      std::span<const double> row = cl.chain->transition_row(cl.state);
      if (overload.rung() != DegradationRung::kNormal) {
        // Degrade a copy — the chain's rows are ground truth for every
        // later cycle and for demand-victim arbitration.
        degraded_row.assign(row.begin(), row.end());
        overload.degrade_row(degraded_row);
        row = degraded_row;
      }
      const InstanceView inst(row, cl.r, v);
      next = static_cast<ItemId>(cl.chain->step(cl.walk));
      std::optional<ItemId> oracle;
      if (cfg.engine.policy == PrefetchPolicy::Perfect) oracle = next;

      PlanMemo memo;
      if (cl.plans) {
        memo.plans = &*cl.plans;
        memo.selections = &*cl.selections;
        memo.canon = &*cl.canon;
        memo.state_key = cl.state;
      }
      engine.plan_with_cache_cached(inst, *cl.cache, cl.freq.get(), memo,
                                    cl.scratch, cl.plan, oracle,
                                    cl.chain->successors(cl.state));
    }
    const PrefetchPlan& plan = cl.plan;
    if (!plan.fetch.empty()) ++plans_fired;
    std::size_t victim_idx = 0;
    for (const ItemId f : plan.fetch) {
      if (cl.cache->full()) {
        const ItemId d = plan.evict[victim_idx++];
        if (cl.unused_prefetch[Instance::idx(d)]) {
          ++cl.metrics.wasted_prefetches;
          cl.unused_prefetch[Instance::idx(d)] = 0;
        }
        cl.cache->replace(d, f);
      } else {
        cl.cache->insert(f);
      }
      cl.unused_prefetch[Instance::idx(f)] = 1;
      if (const std::optional<double> done =
              enqueue_prefetch(cl.r[Instance::idx(f)])) {
        cl.completion[Instance::idx(f)] = *done;
      } else {
        // Abandoned after exhausting its retry budget: release the slot
        // it claimed (the victim is already gone) and fall back to a
        // demand fetch if the item is ever actually requested.
        cl.cache->erase(f);
        cl.unused_prefetch[Instance::idx(f)] = 0;
      }
      ++cl.metrics.prefetch_fetches;
      const double rt = cl.r[Instance::idx(f)];
      cl.metrics.network_time += rt;
      cl.metrics.prefetch_network_time += rt;
    }
    cl.metrics.solver_nodes += plan.solver_nodes;

    const double t_req = t0 + v;
    clock.schedule_at(t_req, [&, c, next, v, t_req] {
      Client& me = *clients[c];
      double T = 0.0;
      if (me.cache->contains(next)) {
        T = std::max(0.0, me.completion[Instance::idx(next)] - t_req);
      } else {
        // Demand fetch queues behind every committed transfer — the
        // paper's no-abort assumption, now spanning all clients.
        if (me.cache->full()) {
          ItemId d = kNoItem;
          if (me.predictor) {
            // The row in force this cycle arbitrates the demand victim —
            // the chainless analogue of the oracle path's next-state row.
            d = choose_victim(InstanceView(me.P, me.r, v),
                              me.cache->contents(), me.freq.get(),
                              cfg.engine.arbitration);
          } else {
            const auto s = static_cast<std::size_t>(next);
            const InstanceView now_inst(me.chain->transition_row(s), me.r,
                                        me.chain->viewing_time(s));
            d = choose_victim(now_inst, me.cache->contents(),
                              me.freq.get(), cfg.engine.arbitration);
          }
          if (me.unused_prefetch[Instance::idx(d)]) {
            ++me.metrics.wasted_prefetches;
            me.unused_prefetch[Instance::idx(d)] = 0;
          }
          me.cache->replace(d, next);
        } else {
          me.cache->insert(next);
        }
        const double finish = enqueue(me.r[Instance::idx(next)]);
        me.completion[Instance::idx(next)] = finish;
        ++me.metrics.demand_fetches;
        const double rt = me.r[Instance::idx(next)];
        me.metrics.network_time += rt;
        me.metrics.demand_network_time += rt;
        T = finish - t_req;
      }
      me.freq->record(next);
      if (me.plans && volatile_plans) me.plans->bump_generation();
      if (me.predictor) me.predictor->observe(next);
      me.unused_prefetch[Instance::idx(next)] = 0;
      me.metrics.access_time.add(T);
      ++me.metrics.requests;
      if (T == 0.0) ++me.metrics.hits;
      if (cfg.deadline > 0.0 && T <= cfg.deadline) ++deadline_hits;
      if (overload.observe(T)) {
        // Rung change: memoized plans were computed against the previous
        // rung's degraded rows, so the state-key promise just broke for
        // every client at once.
        const bool frozen =
            overload.rung() >= DegradationRung::kStrictAdmission;
        for (Client* other_p : clients) {
          Client& other = *other_p;
          if (other.plans) {
            other.plans->bump_generation();
            other.selections->bump_generation();
            other.plans->set_admission_frozen(frozen);
            other.selections->set_admission_frozen(frozen);
          }
          if (other.canon) other.canon->invalidate_all();
        }
      }
      ++me.served;
      me.state = static_cast<std::size_t>(next);
      const double t_end = t_req + T;
      if (me.churn_period > 0.0 && t_end >= me.next_churn_at &&
          me.served < me.quota) {
        // Departure at the cycle boundary: the client walks away from its
        // cache (prefetched-but-unviewed residents count as wasted; any
        // in-flight transfer still completes — no-abort), forgets its
        // frequency book, cold-restarts its predictor, and retires its
        // plan memo. Chain state and private streams survive, so a
        // churning client never shifts a sibling's request trajectory.
        for (const ItemId item : me.cache->contents()) {
          if (me.unused_prefetch[Instance::idx(item)]) {
            ++me.metrics.wasted_prefetches;
            me.unused_prefetch[Instance::idx(item)] = 0;
          }
        }
        me.cache->clear();
        me.freq->reset();
        if (me.predictor) {
          me.predictor = make_runtime_predictor(me.kind, me.r.size());
        }
        if (me.plans) {
          me.plans->bump_generation();
          me.selections->bump_generation();
        }
        ++churn_events;
        const double rejoin = t_end + me.churn_downtime;
        me.next_churn_at = rejoin + me.churn_period;
        clock.schedule_at(rejoin, [&, c] { start_cycle(c); });
      } else {
        // Next cycle begins when this request is served.
        clock.schedule_at(t_end, [&, c] { start_cycle(c); });
      }
    });
  };

  for (std::size_t c = 0; c < cfg.n_clients; ++c) start_cycle(c);
  clock.run_all();
  makespan = std::max(makespan, clock.now());

  MultiClientResult result;
  result.makespan = makespan;
  result.link_busy_time = link_busy;
  result.plans = plans_fired;
  result.churn_events = churn_events;
  result.fault = fault_stats;
  result.overload = overload.stats();
  result.deadline_hits = deadline_hits;
  for (const Client* cl : clients) {
    result.per_client.push_back(cl->metrics);
    result.aggregate.merge(cl->metrics);
    if (cl->plans) {
      // Counter sums, never overwrites: the merged hit-rate must be
      // recomputable from summed hits/misses (a mean of per-client rates
      // is wrong under skewed client loads).
      result.plan_cache.plans.merge(cl->plans->stats());
      result.plan_cache.selections.merge(cl->selections->stats());
    }
  }
  return result;
}

}  // namespace skp
