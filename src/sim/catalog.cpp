#include "sim/catalog.hpp"

#include <mutex>
#include <utility>
#include <vector>

#include "sim/grounded.hpp"
#include "sim/prefetch_cache.hpp"
#include "util/require.hpp"
#include "workload/adversarial_source.hpp"
#include "workload/zipf_source.hpp"

namespace skp {

namespace {

std::mutex g_registry_mu;

using RegistryEntry =
    std::pair<SharedCatalog::Key, std::weak_ptr<const SharedCatalog>>;

std::vector<RegistryEntry>& registry() {
  // Leaked singleton: catalogs may outlive static destruction order
  // (daemon sessions held in other translation units' statics).
  static auto* reg = new std::vector<RegistryEntry>();
  return *reg;
}

}  // namespace

SharedCatalog::Key SharedCatalog::key_of(const SimSpec& spec) {
  Key key;
  key.workload = spec.workload;
  key.seed = spec.seed;
  key.bandwidth = spec.bandwidth;
  key.latency = spec.latency;
  key.oracle = spec.predictor == PredictorKind::Oracle;
  key.requests = key.oracle ? 0 : spec.requests;
  return key;
}

std::shared_ptr<const SharedCatalog> SharedCatalog::build(
    const SimSpec& spec) {
  // Same messages as the per-session validation this replaces, thrown
  // before anything is grounded so a rejected spec never interns state.
  SKP_REQUIRE(spec.bandwidth > 0.0, "bandwidth must be positive");
  SKP_REQUIRE(spec.latency >= 0.0, "latency must be >= 0");

  std::shared_ptr<SharedCatalog> cat(new SharedCatalog());
  cat->key_ = key_of(spec);

  // Stream-for-stream the grounding the per-session constructors
  // performed: sizes from root.split(3), source structure from build,
  // drift stream split off build AFTER the source consumed it.
  GroundedStreams g = ground_streams(spec);
  Rng& build = g.build;

  auto client = std::make_shared<SharedClientCatalog>();
  client->server = std::move(g.catalog);
  client->r = client->server.retrieval_times(g.net);
  cat->client_ = std::move(client);
  cat->walk_ = g.walk;

  const SimWorkload& w = spec.workload;
  if (cat->key_.oracle) {
    SKP_REQUIRE(w.kind == SimWorkloadKind::Markov ||
                    w.kind == SimWorkloadKind::MarkovDrift ||
                    w.kind == SimWorkloadKind::Zipf ||
                    w.kind == SimWorkloadKind::Adversarial,
                "oracle netsim_des needs a generative workload "
                "(markov | markov_drift | zipf | adversarial)");
    cat->mcfg_ = to_markov_config(w);
    cat->source_.emplace(
        w.kind == SimWorkloadKind::Zipf
            ? make_zipf_source(to_zipf_config(w), build)
        : w.kind == SimWorkloadKind::Adversarial
            ? make_adversarial_source(to_adversarial_config(w), build)
            : MarkovSource(cat->mcfg_, build));
    cat->drift_rng_ = build.split(kPrefetchCacheDriftSalt);
    cat->drift_period_ =
        w.kind == SimWorkloadKind::MarkovDrift ? w.drift_period : 0;
    cat->initial_state_ = cat->source_->current_state();
  } else {
    // Learned mode consumes walk during materialization; sessions never
    // touch walk afterwards, so the catalog's private copy is enough.
    Rng walk = g.walk;
    cat->mat_.emplace(
        materialize_workload(w, spec.requests, build, walk));
  }
  return cat;
}

std::shared_ptr<const SharedCatalog> SharedCatalog::acquire(
    const SimSpec& spec) {
  const Key key = key_of(spec);
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    auto& reg = registry();
    for (auto it = reg.begin(); it != reg.end();) {
      if (std::shared_ptr<const SharedCatalog> live = it->second.lock()) {
        if (live->key_ == key) return live;
        ++it;
      } else {
        it = reg.erase(it);  // prune groups whose last session died
      }
    }
  }
  // Build outside the lock — grounding a learned workload is
  // O(requests) and parallel sweep setup must not serialize on it.
  std::shared_ptr<const SharedCatalog> built = build(spec);
  std::lock_guard<std::mutex> lock(g_registry_mu);
  auto& reg = registry();
  for (const auto& [k, weak] : reg) {
    if (k == key) {
      if (std::shared_ptr<const SharedCatalog> live = weak.lock()) {
        return live;  // lost the build race; share the winner
      }
    }
  }
  reg.emplace_back(key, built);
  return built;
}

std::size_t SharedCatalog::interned_groups() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  std::size_t live = 0;
  for (const auto& [k, weak] : registry()) {
    if (!weak.expired()) ++live;
  }
  return live;
}

std::size_t SharedCatalog::footprint_bytes() const noexcept {
  std::size_t total = sizeof(SharedCatalog);
  total += client_->footprint_bytes();
  if (source_) total += source_->footprint_bytes();
  if (mat_) {
    total += mat_->cycles.capacity() * sizeof(TraceRecord) +
             mat_->retrieval_times.capacity() * sizeof(double);
  }
  return total;
}

}  // namespace skp
