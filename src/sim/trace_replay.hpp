// Trace-driven policy evaluation.
//
// Replays a recorded access trace (workload/trace.hpp) through the
// prefetch+cache pipeline. Unlike the Fig.-7 simulator there is no oracle:
// next-access probabilities come from an online-learned predictor, which
// is exactly the deployment configuration the paper's Section 6 sketches
// ("One of the models proposed in the literature might serve the purpose
// of providing this knowledge"). Every policy sees the identical request
// sequence, so comparisons are paired.
#pragma once

#include "core/prefetch_engine.hpp"
#include "sim/metrics.hpp"
#include "sim/prefetch_cache.hpp"  // PredictorKind
#include "workload/trace.hpp"

namespace skp {

struct TraceReplayConfig {
  std::size_t cache_size = 10;
  PrefetchPolicy policy = PrefetchPolicy::SKP;
  SubArbitration sub = SubArbitration::DS;
  DeltaRule delta_rule = DeltaRule::ExactComplement;
  PredictorKind predictor = PredictorKind::Markov1;  // Oracle is invalid
  double predictor_min_prob = 0.01;
  double min_profit_threshold = 0.0;
  std::size_t warmup = 0;  // leading requests excluded from metrics
  // Plan memoization (core/plan_cache.hpp). Replay plans with an
  // always-learning predictor depend on the full observation history, so
  // the plan tier's generation is bumped every request (stored plans are
  // never replayed; the doorkeeper keeps that to two array writes per
  // miss) and the selection tier is not consulted at all — the wiring
  // proves the overhead bound and reports honest all-miss stats.
  // Bit-identical on or off.
  bool use_plan_cache = true;
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
};

// Replays `trace` and returns the aggregate metrics. Throws when the
// config asks for the oracle predictor (a trace carries no ground-truth
// probabilities) or the trace is empty. `plan_cache_stats`, when
// non-null, receives the memoization counters.
SimMetrics replay_trace(const Trace& trace, const TraceReplayConfig& cfg,
                        PlanMemoStats* plan_cache_stats = nullptr);

}  // namespace skp
