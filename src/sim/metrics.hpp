// Shared experiment metrics.
//
// Both simulators (and the DES netsim) report through SimMetrics so benches
// and tests compare policies uniformly. "Network time" counts the total
// retrieval time spent fetching (prefetch + demand), the paper's Section-6
// network-usage concern; "wasted prefetches" counts items fetched
// speculatively and evicted before ever being accessed.
#pragma once

#include <cstdint>
#include <string>

#include "util/stats.hpp"

namespace skp {

struct SimMetrics {
  OnlineStats access_time;        // per-request T
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;         // requests served with T == 0
  std::uint64_t demand_fetches = 0;
  std::uint64_t prefetch_fetches = 0;
  std::uint64_t wasted_prefetches = 0;
  double network_time = 0.0;      // total retrieval time on the wire
  // Wire-time split by cause (network_time = prefetch + demand; kept as
  // separate accumulators so the speculative share is reportable).
  double prefetch_network_time = 0.0;
  double demand_network_time = 0.0;
  std::uint64_t solver_nodes = 0; // cumulative planner search effort

  double hit_rate() const {
    return requests ? static_cast<double>(hits) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  double mean_access_time() const { return access_time.mean(); }
  // Network time per request — the paper's usage-vs-improvement axis.
  double network_time_per_request() const {
    return requests ? network_time / static_cast<double>(requests) : 0.0;
  }
  double waste_rate() const {
    return prefetch_fetches
               ? static_cast<double>(wasted_prefetches) /
                     static_cast<double>(prefetch_fetches)
               : 0.0;
  }

  void merge(const SimMetrics& other);
  std::string to_string() const;
};

}  // namespace skp
