#include "sim/session_store.hpp"

#include <algorithm>
#include <thread>

namespace skp {

std::size_t recommended_shard_count(std::size_t expected_sessions) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  if (expected_sessions == 0) return 1;
  return std::max<std::size_t>(1, std::min(cores, expected_sessions));
}

}  // namespace skp
