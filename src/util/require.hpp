// Precondition checking for the skpfetch library.
//
// All public entry points validate their inputs with SKP_REQUIRE, which
// throws std::invalid_argument (independent of NDEBUG, so release builds
// keep their contracts). SKP_ASSERT is for internal invariants and follows
// NDEBUG like the standard assert.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace skp::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "skpfetch precondition failed: (" << expr << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace skp::detail

// Throws std::invalid_argument when `cond` is false. `msg` is a string (or
// anything streamable via std::ostringstream) appended to the diagnostic.
#define SKP_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream skp_require_os_;                                   \
      skp_require_os_ << msg;                                               \
      ::skp::detail::require_failed(#cond, __FILE__, __LINE__,              \
                                    skp_require_os_.str());                 \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define SKP_ASSERT(cond) ((void)0)
#else
#define SKP_ASSERT(cond)                                                    \
  do {                                                                      \
    if (!(cond))                                                            \
      ::skp::detail::require_failed(#cond, __FILE__, __LINE__,              \
                                    "internal invariant");                  \
  } while (false)
#endif
