#include "util/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace skp {

const char* JsonValue::kind_name(Kind kind) {
  switch (kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return "bool";
    case Kind::Number: return "number";
    case Kind::String: return "string";
    case Kind::Array: return "array";
    case Kind::Object: return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void type_error(JsonValue::Kind have, JsonValue::Kind want) {
  throw std::invalid_argument(std::string("json: expected ") +
                              JsonValue::kind_name(want) + ", have " +
                              JsonValue::kind_name(have));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) type_error(kind_, Kind::Bool);
  return bool_;
}

const std::string& JsonValue::number_text() const {
  if (kind_ != Kind::Number) type_error(kind_, Kind::Number);
  return text_;
}

double JsonValue::as_double() const {
  return std::strtod(number_text().c_str(), nullptr);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) type_error(kind_, Kind::String);
  return text_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::Array) type_error(kind_, Kind::Array);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::Object) type_error(kind_, Kind::Object);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

// ---- Parser -------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        v.text_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::Bool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [existing, unused] : v.members_) {
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += decode_unicode_escape(); break;
        default: fail("bad escape character");
      }
    }
    return out;
  }

  std::string decode_unicode_escape() {
    const unsigned cp = parse_hex4();
    // Tool inputs are ASCII-centric; encode the scalar value as UTF-8
    // (surrogate pairs unsupported — reject rather than mis-encode).
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      fail("surrogate \\u escapes are not supported");
    }
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    // Integer part: "0" or nonzero-led digits.
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (digits() == 0) {
      fail("bad number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number (fraction)");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("bad number (exponent)");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::Number;
    v.text_ = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

}  // namespace skp
