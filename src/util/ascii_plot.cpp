#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/require.hpp"

namespace skp {
namespace {

struct Range {
  double lo, hi;
  double span() const { return hi - lo; }
};

Range derive_range(double opt_min, double opt_max,
                   const std::vector<PlotSeries>& series, bool x_axis) {
  if (opt_min <= opt_max) return {opt_min, opt_max};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const double v = x_axis ? x : y;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) return {0.0, 1.0};
  if (lo == hi) {
    lo -= 0.5;
    hi += 0.5;
  }
  return {lo, hi};
}

std::string fmt_tick(double v) {
  std::ostringstream os;
  if (std::abs(v) >= 1000 || (std::abs(v) < 0.01 && v != 0)) {
    os << std::scientific << std::setprecision(1) << v;
  } else {
    os << std::fixed << std::setprecision(std::abs(v) < 10 ? 1 : 0) << v;
  }
  return os.str();
}

}  // namespace

std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& opts) {
  SKP_REQUIRE(opts.width >= 16 && opts.height >= 6,
              "plot raster too small: " << opts.width << "x" << opts.height);
  const Range xr = derive_range(opts.x_min, opts.x_max, series, true);
  const Range yr = derive_range(opts.y_min, opts.y_max, series, false);

  const std::size_t w = opts.width;
  const std::size_t h = opts.height;
  std::vector<std::string> raster(h, std::string(w, ' '));

  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      if (x < xr.lo || x > xr.hi || y < yr.lo || y > yr.hi) continue;
      const double fx = (x - xr.lo) / xr.span();
      const double fy = (y - yr.lo) / yr.span();
      auto col = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(w - 1)));
      auto row = static_cast<std::size_t>(
          std::lround(fy * static_cast<double>(h - 1)));
      col = std::min(col, w - 1);
      row = std::min(row, h - 1);
      raster[h - 1 - row][col] = s.glyph;  // row 0 = top
    }
  }

  std::ostringstream out;
  if (!opts.title.empty()) out << "  " << opts.title << '\n';

  // y-axis tick labels on the left: top, middle, bottom.
  const std::string ytop = fmt_tick(yr.hi);
  const std::string ymid = fmt_tick(yr.lo + yr.span() / 2);
  const std::string ybot = fmt_tick(yr.lo);
  std::size_t label_w = std::max({ytop.size(), ymid.size(), ybot.size(),
                                  opts.y_label.size()});
  label_w = std::min<std::size_t>(label_w, 12);

  auto pad = [&](const std::string& s) {
    std::string t = s.substr(0, label_w);
    return std::string(label_w - t.size(), ' ') + t;
  };

  out << pad(opts.y_label) << ' ' << std::string(w + 2, ' ') << '\n';
  for (std::size_t r = 0; r < h; ++r) {
    std::string lbl(label_w, ' ');
    if (r == 0) lbl = pad(ytop);
    else if (r == h / 2) lbl = pad(ymid);
    else if (r == h - 1) lbl = pad(ybot);
    out << lbl << " |" << raster[r] << "|\n";
  }
  out << std::string(label_w + 1, ' ') << '+' << std::string(w, '-') << "+\n";

  const std::string xlo = fmt_tick(xr.lo);
  const std::string xhi = fmt_tick(xr.hi);
  std::string xline(label_w + 2 + w, ' ');
  std::copy(xlo.begin(), xlo.end(), xline.begin() + label_w + 2);
  if (xhi.size() < w)
    std::copy(xhi.begin(), xhi.end(),
              xline.begin() + static_cast<std::ptrdiff_t>(label_w + 2 + w -
                                                          xhi.size()));
  out << xline << "  (" << opts.x_label << ")\n";

  if (opts.legend && !series.empty()) {
    out << "  legend:";
    for (const auto& s : series) out << "  [" << s.glyph << "] " << s.name;
    out << '\n';
  }
  return out.str();
}

std::string render_scatter(const std::vector<std::pair<double, double>>& pts,
                           const PlotOptions& opts, char glyph) {
  PlotSeries s;
  s.name = opts.title.empty() ? "series" : opts.title;
  s.glyph = glyph;
  s.points = pts;
  return render_plot({s}, opts);
}

}  // namespace skp
