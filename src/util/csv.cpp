#include "util/csv.hpp"

#include <sstream>

namespace skp {

std::string CsvWriter::quote(const std::string& cell) {
  const bool needs =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *os_ << ',';
    *os_ << quote(cells[i]);
  }
  *os_ << '\n';
}

std::ofstream open_csv(const std::string& path) {
  std::ofstream f(path);
  SKP_REQUIRE(f.good(), "cannot open CSV output file: " << path);
  return f;
}

}  // namespace skp
