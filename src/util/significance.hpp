// Statistical significance for policy comparisons.
//
// The paper's Figures 5/7 draw conclusions from visual curve separation;
// we back the same comparisons with Welch's t-test (independent runs) and
// the paired-sample t-test (same workload replayed under two policies).
// The p-values use a normal approximation of the t distribution, which at
// the sample sizes of these experiments (thousands of requests) is
// indistinguishable from the exact distribution.
#pragma once

#include "util/stats.hpp"

namespace skp {

struct TestResult {
  double statistic = 0.0;  // t (or z) statistic
  double p_value = 1.0;    // two-sided
  double mean_diff = 0.0;  // mean(a) - mean(b)
  bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

// Standard normal CDF (erfc-based, double precision).
double normal_cdf(double x);

// Welch's unequal-variance t-test on two independent samples summarized
// by OnlineStats. Requires >= 2 observations on each side.
TestResult welch_t_test(const OnlineStats& a, const OnlineStats& b);

// Paired t-test on per-trial differences d_i = a_i - b_i, supplied as the
// OnlineStats of the differences. Requires >= 2 pairs.
TestResult paired_t_test(const OnlineStats& differences);

}  // namespace skp
