// Runtime-dispatched SIMD kernels for the solver/engine inner loops.
//
// Three kernels cover the contiguous-span hot loops the allocation-free
// refactor (PR 2) left in exactly the layout vectorization wants:
//
//   * gather_products   — the Eq.-5 density scan P_i * r_i over an id
//                         list (victim ranking, canonical-key staging,
//                         minimal-Pr scans);
//   * gather_values     — the same gather without the multiply (LFU
//                         sub-arbitration scores from a frequency row);
//   * suffix_sums       — the Figure-3 tail sums over a canonical row
//                         (CanonicalOrderTable rebuilds, PaperTail solves,
//                         batched SKP setup);
//   * masked_time_sum   — the presence-bitmap access-time accumulation
//                         sum_{i not in C} P_i r_i (Section-5 expected
//                         access time against a cache bitmap).
//
// Bit-exactness contract: the scalar path is the reference, and every
// vector path must produce bit-identical doubles. The kernels therefore
// vectorize only the *elementwise* work (gathers and products, each of
// which is an exact IEEE operation regardless of lane) and keep every
// accumulation in the scalar's fixed left-to-right (or right-to-left, for
// suffix sums) order. tests/test_simd.cpp pins scalar-vs-SIMD equality on
// randomized instances including denormal and zero-probability rows.
//
// Dispatch: the widest ISA supported by the CPU is selected once per
// process (SSE2 is the x86-64 baseline; AVX2 adds hardware gathers). The
// SKP_SIMD environment variable overrides the choice for debugging and
// A/B timing: SKP_SIMD=scalar|sse2|avx2 (an unavailable request falls
// back to the widest supported path). Non-x86 builds compile the scalar
// path only.
#pragma once

#include <cstddef>
#include <span>

#include "core/item.hpp"

namespace skp::simd {

enum class Isa { Scalar, Sse2, Avx2 };

const char* to_string(Isa isa) noexcept;

// The ISA every kernel below dispatches to. Resolved once on first use
// from CPU detection + the SKP_SIMD override; stable for process life.
Isa active_isa() noexcept;

// Widest ISA this CPU supports (ignores the SKP_SIMD override).
Isa detected_isa() noexcept;

// out[k] = P[ids[k]] * r[ids[k]] for k in [0, ids.size()).
// `out` must hold ids.size() doubles and not alias P/r.
void gather_products(std::span<const double> P, std::span<const double> r,
                     std::span<const ItemId> ids, double* out);

// out[k] = values[ids[k]].
void gather_values(std::span<const double> values,
                   std::span<const ItemId> ids, double* out);

// Figure-3 tail sums: out[m] = 0, out[j] = out[j+1] + P[ids[j]] for
// j = m-1 .. 0 (m = ids.size()); `out` must hold m + 1 doubles. The
// gather is vectorized; the running sum is accumulated right-to-left in
// scalar order, so the result is bit-identical to the naive loop.
void suffix_sums(std::span<const double> P, std::span<const ItemId> ids,
                 double* out);

// sum of P[i] * r[i] over every catalog item with present[i] == 0,
// accumulated in ascending-i scalar order (bit-identical to the naive
// skip loop). P, r, present must have equal sizes.
double masked_time_sum(std::span<const double> P, std::span<const double> r,
                       std::span<const char> present);

// Per-ISA entry points (same contracts), for the bit-identity tests and
// the -march CI matrix. Calling an ISA the CPU lacks is undefined; guard
// with detected_isa().
void gather_products_isa(Isa isa, std::span<const double> P,
                         std::span<const double> r,
                         std::span<const ItemId> ids, double* out);
void gather_values_isa(Isa isa, std::span<const double> values,
                       std::span<const ItemId> ids, double* out);
void suffix_sums_isa(Isa isa, std::span<const double> P,
                     std::span<const ItemId> ids, double* out);
double masked_time_sum_isa(Isa isa, std::span<const double> P,
                           std::span<const double> r,
                           std::span<const char> present);

}  // namespace skp::simd
