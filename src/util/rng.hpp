// Deterministic random number generation for reproducible Monte Carlo.
//
// The library never uses std::mt19937 directly in experiment code: every
// simulation takes an skp::Rng (xoshiro256** behind a SplitMix64 seeder) so
// that a (seed, stream) pair fully determines an experiment, and parallel
// sweep points can derive independent streams cheaply via split().
//
// References: Blackman & Vigna, "Scrambled linear pseudorandom number
// generators" (xoshiro256**); Steele et al. (SplitMix64).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/require.hpp"

namespace skp {

// SplitMix64: used to expand a 64-bit seed into xoshiro state and to derive
// child seeds. Passes BigCrush when used as a generator on its own.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: the library-wide PRNG. Satisfies UniformRandomBitGenerator
// so it can also feed <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four 64-bit words of state from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x5ee01e55ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
    // All-zero state is the one forbidden state; SplitMix64 cannot produce
    // four zero outputs in a row, but keep the guard explicit.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  // Unbiased uniform integer in [0, bound) via Lemire's method.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    SKP_ASSERT(bound > 0);
    // 128-bit multiply-shift with rejection to remove modulo bias.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    SKP_ASSERT(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return next_double() < p; }

  // Exponential variate with rate lambda (> 0).
  double exponential(double lambda = 1.0) noexcept {
    // 1 - U in (0,1] avoids log(0).
    double u = 1.0 - next_double();
    return -std::log(u) / lambda;
  }

  // Derive an independent child generator; used for per-task streams in
  // parallel sweeps. Deterministic in (parent state, salt).
  Rng split(std::uint64_t salt) noexcept {
    SplitMix64 sm(s_[0] ^ rotl(s_[3], 13) ^ (salt * 0x9e3779b97f4a7c15ULL));
    Rng child(sm.next());
    return child;
  }

  // Uniform time draw on [lo, hi]: integer-valued (the paper draws its
  // viewing/retrieval times as integers) or real. One definition shared
  // by every workload generator so the drawing semantics cannot diverge.
  double uniform_time(double lo, double hi, bool integer_times) noexcept {
    if (integer_times) {
      return static_cast<double>(
          uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(hi)));
    }
    return uniform(lo, hi);
  }

  // Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace skp
