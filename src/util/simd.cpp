#include "util/simd.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define SKP_SIMD_X86 1
#include <immintrin.h>
#else
#define SKP_SIMD_X86 0
#endif

namespace skp::simd {

namespace {

// ---- scalar reference paths ---------------------------------------------

void gather_products_scalar(std::span<const double> P,
                            std::span<const double> r,
                            std::span<const ItemId> ids, double* out) {
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const auto i = static_cast<std::size_t>(ids[k]);
    out[k] = P[i] * r[i];
  }
}

void gather_values_scalar(std::span<const double> values,
                          std::span<const ItemId> ids, double* out) {
  for (std::size_t k = 0; k < ids.size(); ++k) {
    out[k] = values[static_cast<std::size_t>(ids[k])];
  }
}

void suffix_sums_scalar(std::span<const double> P,
                        std::span<const ItemId> ids, double* out) {
  const std::size_t m = ids.size();
  out[m] = 0.0;
  for (std::size_t j = m; j-- > 0;) {
    out[j] = out[j + 1] + P[static_cast<std::size_t>(ids[j])];
  }
}

double masked_time_sum_scalar(std::span<const double> P,
                              std::span<const double> r,
                              std::span<const char> present) {
  double sum = 0.0;
  for (std::size_t i = 0; i < P.size(); ++i) {
    if (present[i] == 0) sum += P[i] * r[i];
  }
  return sum;
}

#if SKP_SIMD_X86

// ---- SSE2 (x86-64 baseline) ---------------------------------------------
// No hardware gather: assemble pairs with set_pd, vectorize the multiply.
// Each product is a single IEEE mulpd lane — bit-identical to scalar.

void gather_products_sse2(std::span<const double> P,
                          std::span<const double> r,
                          std::span<const ItemId> ids, double* out) {
  std::size_t k = 0;
  const std::size_t m = ids.size();
  for (; k + 2 <= m; k += 2) {
    const auto i0 = static_cast<std::size_t>(ids[k]);
    const auto i1 = static_cast<std::size_t>(ids[k + 1]);
    const __m128d p = _mm_set_pd(P[i1], P[i0]);
    const __m128d rr = _mm_set_pd(r[i1], r[i0]);
    _mm_storeu_pd(out + k, _mm_mul_pd(p, rr));
  }
  for (; k < m; ++k) {
    const auto i = static_cast<std::size_t>(ids[k]);
    out[k] = P[i] * r[i];
  }
}

void gather_values_sse2(std::span<const double> values,
                        std::span<const ItemId> ids, double* out) {
  std::size_t k = 0;
  const std::size_t m = ids.size();
  for (; k + 2 <= m; k += 2) {
    const __m128d v = _mm_set_pd(
        values[static_cast<std::size_t>(ids[k + 1])],
        values[static_cast<std::size_t>(ids[k])]);
    _mm_storeu_pd(out + k, v);
  }
  for (; k < m; ++k) out[k] = values[static_cast<std::size_t>(ids[k])];
}

void suffix_sums_sse2(std::span<const double> P, std::span<const ItemId> ids,
                      double* out) {
  // Vectorized gather pass writes P[ids[j]] into out[j]; the dependent
  // right-to-left accumulation stays scalar (bit-exact order).
  gather_values_sse2(P, ids, out);
  const std::size_t m = ids.size();
  out[m] = 0.0;
  for (std::size_t j = m; j-- > 0;) out[j] += out[j + 1];
}

double masked_time_sum_sse2(std::span<const double> P,
                            std::span<const double> r,
                            std::span<const char> present) {
  // Products are computed two lanes at a time into a chunk buffer; the
  // conditional accumulation runs over the buffer in ascending-i scalar
  // order, so the sum is bit-identical to the reference skip loop.
  constexpr std::size_t kChunk = 64;
  double buf[kChunk];
  double sum = 0.0;
  const std::size_t n = P.size();
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t len = std::min(kChunk, n - base);
    std::size_t k = 0;
    for (; k + 2 <= len; k += 2) {
      const __m128d p = _mm_loadu_pd(P.data() + base + k);
      const __m128d rr = _mm_loadu_pd(r.data() + base + k);
      _mm_storeu_pd(buf + k, _mm_mul_pd(p, rr));
    }
    for (; k < len; ++k) buf[k] = P[base + k] * r[base + k];
    for (std::size_t j = 0; j < len; ++j) {
      if (present[base + j] == 0) sum += buf[j];
    }
  }
  return sum;
}

// ---- AVX2 ----------------------------------------------------------------
// Hardware gathers (vgatherdpd) feed 4-wide multiplies; accumulations stay
// scalar-ordered as above.

// gcc lowers the unmasked _mm256_i32gather_pd through the masked builtin
// with an intentionally-undefined source vector, which -Wmaybe-uninitialized
// flags inside avx2intrin.h itself (false positive: the all-ones mask
// overwrites every lane). Scoped to the gather users below.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx2"))) void gather_products_avx2(
    std::span<const double> P, std::span<const double> r,
    std::span<const ItemId> ids, double* out) {
  std::size_t k = 0;
  const std::size_t m = ids.size();
  for (; k + 4 <= m; k += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(ids.data() + k));
    const __m256d p = _mm256_i32gather_pd(P.data(), idx, 8);
    const __m256d rr = _mm256_i32gather_pd(r.data(), idx, 8);
    _mm256_storeu_pd(out + k, _mm256_mul_pd(p, rr));
  }
  for (; k < m; ++k) {
    const auto i = static_cast<std::size_t>(ids[k]);
    out[k] = P[i] * r[i];
  }
}

__attribute__((target("avx2"))) void gather_values_avx2(
    std::span<const double> values, std::span<const ItemId> ids,
    double* out) {
  std::size_t k = 0;
  const std::size_t m = ids.size();
  for (; k + 4 <= m; k += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(ids.data() + k));
    _mm256_storeu_pd(out + k, _mm256_i32gather_pd(values.data(), idx, 8));
  }
  for (; k < m; ++k) out[k] = values[static_cast<std::size_t>(ids[k])];
}

__attribute__((target("avx2"))) void suffix_sums_avx2(
    std::span<const double> P, std::span<const ItemId> ids, double* out) {
  gather_values_avx2(P, ids, out);
  const std::size_t m = ids.size();
  out[m] = 0.0;
  for (std::size_t j = m; j-- > 0;) out[j] += out[j + 1];
}

__attribute__((target("avx2"))) double masked_time_sum_avx2(
    std::span<const double> P, std::span<const double> r,
    std::span<const char> present) {
  constexpr std::size_t kChunk = 64;
  double buf[kChunk];
  double sum = 0.0;
  const std::size_t n = P.size();
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t len = std::min(kChunk, n - base);
    std::size_t k = 0;
    for (; k + 4 <= len; k += 4) {
      const __m256d p = _mm256_loadu_pd(P.data() + base + k);
      const __m256d rr = _mm256_loadu_pd(r.data() + base + k);
      _mm256_storeu_pd(buf + k, _mm256_mul_pd(p, rr));
    }
    for (; k < len; ++k) buf[k] = P[base + k] * r[base + k];
    for (std::size_t j = 0; j < len; ++j) {
      if (present[base + j] == 0) sum += buf[j];
    }
  }
  return sum;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // SKP_SIMD_X86

Isa detect_isa() noexcept {
#if SKP_SIMD_X86
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Isa::Avx2;
#endif
  return Isa::Sse2;  // x86-64 baseline
#else
  return Isa::Scalar;
#endif
}

Isa resolve_isa() noexcept {
  const Isa widest = detect_isa();
  const char* env = std::getenv("SKP_SIMD");
  if (env == nullptr || *env == '\0') return widest;
  if (std::strcmp(env, "scalar") == 0) return Isa::Scalar;
  if (std::strcmp(env, "sse2") == 0 && widest >= Isa::Sse2) return Isa::Sse2;
  if (std::strcmp(env, "avx2") == 0 && widest >= Isa::Avx2) return Isa::Avx2;
  return widest;  // unknown or unsupported request: widest available
}

}  // namespace

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Sse2: return "sse2";
    case Isa::Avx2: return "avx2";
  }
  return "?";
}

Isa detected_isa() noexcept {
  static const Isa isa = detect_isa();
  return isa;
}

Isa active_isa() noexcept {
  static const Isa isa = resolve_isa();
  return isa;
}

void gather_products_isa(Isa isa, std::span<const double> P,
                         std::span<const double> r,
                         std::span<const ItemId> ids, double* out) {
#if SKP_SIMD_X86
  if (isa == Isa::Avx2) return gather_products_avx2(P, r, ids, out);
  if (isa == Isa::Sse2) return gather_products_sse2(P, r, ids, out);
#else
  (void)isa;
#endif
  gather_products_scalar(P, r, ids, out);
}

void gather_values_isa(Isa isa, std::span<const double> values,
                       std::span<const ItemId> ids, double* out) {
#if SKP_SIMD_X86
  if (isa == Isa::Avx2) return gather_values_avx2(values, ids, out);
  if (isa == Isa::Sse2) return gather_values_sse2(values, ids, out);
#else
  (void)isa;
#endif
  gather_values_scalar(values, ids, out);
}

void suffix_sums_isa(Isa isa, std::span<const double> P,
                     std::span<const ItemId> ids, double* out) {
#if SKP_SIMD_X86
  if (isa == Isa::Avx2) return suffix_sums_avx2(P, ids, out);
  if (isa == Isa::Sse2) return suffix_sums_sse2(P, ids, out);
#else
  (void)isa;
#endif
  suffix_sums_scalar(P, ids, out);
}

double masked_time_sum_isa(Isa isa, std::span<const double> P,
                           std::span<const double> r,
                           std::span<const char> present) {
#if SKP_SIMD_X86
  if (isa == Isa::Avx2) return masked_time_sum_avx2(P, r, present);
  if (isa == Isa::Sse2) return masked_time_sum_sse2(P, r, present);
#else
  (void)isa;
#endif
  return masked_time_sum_scalar(P, r, present);
}

void gather_products(std::span<const double> P, std::span<const double> r,
                     std::span<const ItemId> ids, double* out) {
  gather_products_isa(active_isa(), P, r, ids, out);
}

void gather_values(std::span<const double> values,
                   std::span<const ItemId> ids, double* out) {
  gather_values_isa(active_isa(), values, ids, out);
}

void suffix_sums(std::span<const double> P, std::span<const ItemId> ids,
                 double* out) {
  suffix_sums_isa(active_isa(), P, ids, out);
}

double masked_time_sum(std::span<const double> P, std::span<const double> r,
                       std::span<const char> present) {
  return masked_time_sum_isa(active_isa(), P, r, present);
}

}  // namespace skp::simd
