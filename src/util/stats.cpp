#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace skp {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::sem() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

BinnedMeans::BinnedMeans(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {
  SKP_REQUIRE(lo <= hi, "BinnedMeans range [" << lo << "," << hi << "]");
  bins_.resize(static_cast<std::size_t>(hi - lo + 1));
}

void BinnedMeans::add(std::int64_t x, double y) {
  SKP_REQUIRE(x >= lo_ && x <= hi_,
              "bin " << x << " outside [" << lo_ << "," << hi_ << "]");
  bins_[static_cast<std::size_t>(x - lo_)].add(y);
}

void BinnedMeans::merge(const BinnedMeans& other) {
  SKP_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_,
              "BinnedMeans range mismatch in merge");
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    bins_[i].merge(other.bins_[i]);
  }
}

const OnlineStats& BinnedMeans::bin(std::int64_t x) const {
  SKP_REQUIRE(x >= lo_ && x <= hi_,
              "bin " << x << " outside [" << lo_ << "," << hi_ << "]");
  return bins_[static_cast<std::size_t>(x - lo_)];
}

std::vector<std::pair<double, double>> BinnedMeans::series() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].count() > 0) {
      out.emplace_back(static_cast<double>(lo_ + static_cast<std::int64_t>(i)),
                       bins_[i].mean());
    }
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  SKP_REQUIRE(hi > lo, "Histogram range");
  SKP_REQUIRE(buckets > 0, "Histogram needs at least one bucket");
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
  ++counts_[idx];
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  SKP_REQUIRE(i < counts_.size(), "bucket index");
  return counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  SKP_REQUIRE(i < counts_.size(), "bucket index");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  SKP_REQUIRE(i < counts_.size(), "bucket index");
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  SKP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  SKP_REQUIRE(!sorted.empty(), "quantile of empty sample");
  SKP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::span<const double> data) {
  Summary s;
  s.count = data.size();
  if (data.empty()) return s;
  std::vector<double> v(data.begin(), data.end());
  std::sort(v.begin(), v.end());
  OnlineStats acc;
  for (double x : v) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = v.front();
  s.max = v.back();
  s.p25 = quantile_sorted(v, 0.25);
  s.median = quantile_sorted(v, 0.5);
  s.p75 = quantile_sorted(v, 0.75);
  s.p95 = quantile_sorted(v, 0.95);
  return s;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  SKP_REQUIRE(x.size() == y.size(), "pearson: length mismatch");
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  OnlineStats sx, sy;
  for (std::size_t i = 0; i < n; ++i) {
    sx.add(x[i]);
    sy.add(y[i]);
  }
  double cov = 0;
  for (std::size_t i = 0; i < n; ++i)
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  cov /= static_cast<double>(n - 1);
  const double denom = sx.stddev() * sy.stddev();
  return denom > 0 ? cov / denom : 0.0;
}

}  // namespace skp
