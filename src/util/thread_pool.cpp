#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace skp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lk(mu_);
    SKP_REQUIRE(!stop_, "submit on stopped ThreadPool");
    queue_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();  // exceptions are captured in the packaged_task's future
    {
      std::lock_guard lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_chunks(ThreadPool& pool, std::size_t n, std::size_t chunks,
                     const std::function<void(std::size_t, std::size_t,
                                              std::size_t)>& body) {
  SKP_REQUIRE(chunks > 0, "parallel_chunks requires chunks > 0");
  if (n == 0) return;
  chunks = std::min(chunks, n);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    const std::size_t end = begin + len;
    futs.push_back(pool.submit([=, &body] { body(begin, end, c); }));
    begin = end;
  }
  for (auto& f : futs) f.get();  // propagates the first exception
}

}  // namespace skp
