// Work-queue thread pool + parallel_for, the HPC-parallel substrate.
//
// Monte-Carlo experiments decompose into independent (sweep point ×
// iteration block) tasks; each task derives its own RNG stream so results
// are identical regardless of thread count or interleaving. The pool is a
// classic mutex/condvar work queue — on the evaluation machines used here
// core counts are small, so simplicity beats lock-free cleverness.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace skp {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  // Enqueues a task; the future reports completion / exception.
  std::future<void> submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

// Splits [0, n) into contiguous chunks and runs body(begin, end, chunk_index)
// across the pool. Blocks until all chunks complete; rethrows the first
// exception. chunk_index is stable, so callers can use it to derive
// deterministic per-chunk RNG streams.
void parallel_chunks(ThreadPool& pool, std::size_t n, std::size_t chunks,
                     const std::function<void(std::size_t, std::size_t,
                                              std::size_t)>& body);

}  // namespace skp
