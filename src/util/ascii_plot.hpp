// Terminal plotting: scatter and multi-series line charts rendered as text.
//
// The paper's evaluation is entirely graphical (Figs. 4, 5, 7). The repro
// band for this paper notes plotting tooling is the inconvenient part in
// C++, so each bench binary renders its figure directly in the terminal
// (plus CSV for external re-plotting). Rendering is deliberately simple:
// fixed-size character raster, linear axes, per-series glyphs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace skp {

struct PlotSeries {
  std::string name;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;  // (x, y)
};

struct PlotOptions {
  std::size_t width = 72;    // interior columns
  std::size_t height = 22;   // interior rows
  std::string title;
  std::string x_label = "x";
  std::string y_label = "y";
  // Axis ranges; when min > max the range is derived from the data.
  double x_min = 1, x_max = 0;
  double y_min = 1, y_max = 0;
  bool legend = true;
};

// Renders series onto a character raster with axes and tick labels.
// Later series overwrite earlier ones where glyphs collide.
std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& opts);

// Convenience single-scatter wrapper.
std::string render_scatter(const std::vector<std::pair<double, double>>& pts,
                           const PlotOptions& opts, char glyph = '*');

}  // namespace skp
