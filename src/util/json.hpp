// Minimal JSON reader for declarative tool inputs (simctl --spec files).
//
// Scope: strict RFC-8259 parsing of documents small enough to hold in
// memory, with two deliberate representation choices for lossless
// round-tripping into CLI flags:
//   * numbers keep their raw literal text (number_text()) — a seed like
//     2^63 or a threshold like 0.05 reaches the flag parser exactly as
//     written, never through a double round-trip;
//   * object members preserve document order (members()), so anything
//     derived from a spec file is deterministic in the file's bytes.
// No writer, no comments, no extensions. Errors throw
// std::invalid_argument naming the byte offset.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace skp {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  // Parses exactly one document (leading/trailing whitespace permitted);
  // throws std::invalid_argument on any syntax error or trailing input.
  static JsonValue parse(std::string_view text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }

  // Typed accessors; each throws std::invalid_argument when the value is
  // of a different kind (the message names both kinds).
  bool as_bool() const;
  // Raw number literal, exactly as written in the document.
  const std::string& number_text() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  // Array
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const;  // Object, document order

  // Object lookup; nullptr when absent (or when not an object).
  const JsonValue* find(std::string_view key) const;

  static const char* kind_name(Kind kind);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  // Number literal or string payload, depending on kind.
  std::string text_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace skp
