// Pool/arena allocation substrate for the million-session capacity work.
//
// The real per-session memory hogs are pointer-chased node structures:
// the LZ78/PPM tries used one std::unordered_map per trie node (hundreds
// of bytes of bucket arrays and heap nodes to store a handful of edges),
// and the canonical-order table one pair of vectors per state. These
// three building blocks replace that with contiguous, 32-bit-index-based
// storage:
//
//  * PoolArena<T>    — a growable contiguous pool addressed by 32-bit
//                      indices. Allocation order IS index order, so a
//                      structure that appends in insertion order keeps
//                      exactly the iteration order of the code it
//                      replaces (the bit-identity anchor for the arena
//                      predictor tries).
//  * Key64Map        — an open-addressing u64 -> u32 map with lazy,
//                      load-factor-0.5 growth. Keys must be nonzero
//                      (zero marks empty slots); lookups are one linear
//                      probe run over a flat array.
//  * StablePool<T>   — chunked block storage whose addresses never move
//                      once allocated (no element destructors run until
//                      the pool dies). Backs span-handing structures —
//                      CanonicalOrderTable rows — where a rebuild of one
//                      row must not invalidate spans into another.
//
// None of these are thread-safe; they are per-session state like the
// structures they back.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace skp {

// Contiguous pool of T addressed by 32-bit indices. Index 0xffffffff is
// the null sentinel (kNull), so intrusive linked structures over the pool
// need no out-of-band "no next" flag.
template <typename T>
class PoolArena {
 public:
  using Index = std::uint32_t;
  static constexpr Index kNull = 0xffffffffu;

  Index alloc(T value) {
    SKP_REQUIRE(items_.size() < kNull, "PoolArena exhausted 32-bit indices");
    const Index idx = static_cast<Index>(items_.size());
    items_.push_back(std::move(value));
    return idx;
  }

  T& operator[](Index idx) { return items_[idx]; }
  const T& operator[](Index idx) const { return items_[idx]; }

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  void clear() noexcept { items_.clear(); }  // keeps capacity for reuse
  void reserve(std::size_t n) { items_.reserve(n); }

  // Heap bytes currently held (capacity, not size — what the process
  // actually pays for).
  std::size_t footprint_bytes() const noexcept {
    return items_.capacity() * sizeof(T);
  }

 private:
  std::vector<T> items_;
};

// Open-addressing u64 -> u32 hash map with linear probing and lazy
// geometric growth at load factor 1/2. Keys must be NONZERO — key 0 is
// the empty-slot marker. Values are caller-managed 32-bit handles
// (PoolArena indices). No deletion: the backing structures only ever
// grow between explicit clear()s, exactly like the unordered_maps they
// replace.
class Key64Map {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  // kNotFound when absent.
  std::uint32_t find(std::uint64_t key) const noexcept {
    if (slots_.empty()) return kNotFound;
    std::size_t slot = static_cast<std::size_t>(mix(key)) & mask_;
    while (slots_[slot].key != 0) {
      if (slots_[slot].key == key) return slots_[slot].value;
      slot = (slot + 1) & mask_;
    }
    return kNotFound;
  }

  // Inserts key -> value; the key must not be present yet.
  void insert(std::uint64_t key, std::uint32_t value) {
    SKP_ASSERT(key != 0);
    if ((size_ + 1) * 2 > slots_.size()) grow();
    std::size_t slot = static_cast<std::size_t>(mix(key)) & mask_;
    while (slots_[slot].key != 0) {
      SKP_ASSERT(slots_[slot].key != key);
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = {key, value};
    ++size_;
  }

  std::size_t size() const noexcept { return size_; }
  void clear() noexcept {
    slots_.clear();
    slots_.shrink_to_fit();
    mask_ = 0;
    size_ = 0;
  }

  std::size_t footprint_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
  };

  // SplitMix64 finalizer: the PPM context keys are positional encodings
  // (highly structured), so a full mix pass is what keeps probe runs
  // short.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void grow() {
    const std::size_t next = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(next, Slot{});
    mask_ = next - 1;
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      std::size_t slot = static_cast<std::size_t>(mix(s.key)) & mask_;
      while (slots_[slot].key != 0) slot = (slot + 1) & mask_;
      slots_[slot] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

// Chunked storage with stable addresses: alloc(n) returns a pointer to n
// default-constructed Ts that stays valid until the pool is destroyed.
// There is no per-allocation free — callers reuse their block in place
// when a rebuild fits (CanonicalOrderTable rows), and abandoned blocks
// are bounded by the structure's own size limits.
template <typename T>
class StablePool {
 public:
  T* alloc(std::size_t n) {
    if (n == 0) return nullptr;
    if (chunks_.empty() || used_ + n > chunks_.back().size) {
      const std::size_t cap = std::max(n, next_chunk_);
      chunks_.push_back({std::make_unique<T[]>(cap), cap});
      next_chunk_ = std::min(cap * 2, kMaxChunk);
      used_ = 0;
    }
    T* out = chunks_.back().data.get() + used_;
    used_ += n;
    return out;
  }

  std::size_t footprint_bytes() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size * sizeof(T);
    return total;
  }

 private:
  static constexpr std::size_t kMaxChunk = std::size_t{1} << 16;
  struct Chunk {
    std::unique_ptr<T[]> data;
    std::size_t size;
  };
  std::vector<Chunk> chunks_;
  std::size_t next_chunk_ = 64;
  std::size_t used_ = 0;
};

}  // namespace skp
