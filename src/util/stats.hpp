// Statistics substrate: online accumulators, binned means, histograms and
// confidence intervals. Every experiment in bench/ reports through these.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace skp {

// Welford online accumulator: numerically stable mean/variance without
// storing samples. Mergeable so parallel shards can be combined.
class OnlineStats {
 public:
  void add(double x) noexcept;
  // Merges another accumulator (parallel reduction step).
  void merge(const OnlineStats& other) noexcept;

  // Reconstructs an accumulator from its raw state — the inverse of the
  // (count, mean, m2, min, max) accessors, so an accumulator can round-
  // trip a wire/persistence boundary exactly (the skpd protocol ships
  // session metrics this way). n == 0 yields a fresh accumulator.
  static OnlineStats restore(std::size_t n, double mean, double m2,
                             double min, double max) noexcept {
    OnlineStats s;
    if (n == 0) return s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }
  // Sum of squared deviations from the mean (restore()'s m2 input).
  double m2() const noexcept { return m2_; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  // Standard error of the mean; 0 when fewer than two samples.
  double sem() const noexcept;
  // Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const noexcept { return 1.959964 * sem(); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Mean of y conditioned on an integer-binned x — the paper's Fig. 5/7
// "average T against v" curves are exactly this.
class BinnedMeans {
 public:
  // Bins are the integers lo..hi inclusive.
  BinnedMeans(std::int64_t lo, std::int64_t hi);

  void add(std::int64_t x, double y);
  // Merges another BinnedMeans with identical range (parallel reduction).
  void merge(const BinnedMeans& other);
  std::int64_t lo() const noexcept { return lo_; }
  std::int64_t hi() const noexcept { return hi_; }
  std::size_t bin_count() const noexcept { return bins_.size(); }
  const OnlineStats& bin(std::int64_t x) const;

  // (x, mean) series over non-empty bins.
  std::vector<std::pair<double, double>> series() const;

 private:
  std::int64_t lo_, hi_;
  std::vector<OnlineStats> bins_;
};

// Fixed-width histogram over [lo, hi); values outside are clamped into the
// edge buckets and counted in underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  // Approximate quantile (q in [0,1]) by linear interpolation in buckets.
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

// Exact descriptive statistics over a stored sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0, stddev = 0, min = 0, p25 = 0, median = 0, p75 = 0,
         p95 = 0, max = 0;
};

// Computes a Summary (copies and sorts the data).
Summary summarize(std::span<const double> data);

// Linear-interpolated quantile of a *sorted* sample, q in [0,1].
double quantile_sorted(std::span<const double> sorted, double q);

// Pearson correlation of two equal-length series; 0 if degenerate.
double pearson(std::span<const double> x, std::span<const double> y);

}  // namespace skp
