#include "util/significance.hpp"

#include <cmath>

namespace skp {

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

namespace {

double two_sided_p(double statistic) {
  const double tail = 1.0 - normal_cdf(std::abs(statistic));
  return std::min(1.0, 2.0 * tail);
}

}  // namespace

TestResult welch_t_test(const OnlineStats& a, const OnlineStats& b) {
  SKP_REQUIRE(a.count() >= 2 && b.count() >= 2,
              "welch_t_test needs >= 2 samples per side");
  TestResult res;
  res.mean_diff = a.mean() - b.mean();
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double se = std::sqrt(va + vb);
  if (se == 0.0) {
    // Identical constants: difference is exact.
    res.statistic = res.mean_diff == 0.0 ? 0.0
                    : (res.mean_diff > 0.0 ? 1e9 : -1e9);
    res.p_value = res.mean_diff == 0.0 ? 1.0 : 0.0;
    return res;
  }
  res.statistic = res.mean_diff / se;
  res.p_value = two_sided_p(res.statistic);
  return res;
}

TestResult paired_t_test(const OnlineStats& differences) {
  SKP_REQUIRE(differences.count() >= 2,
              "paired_t_test needs >= 2 pairs");
  TestResult res;
  res.mean_diff = differences.mean();
  const double se = differences.sem();
  if (se == 0.0) {
    res.statistic = res.mean_diff == 0.0 ? 0.0
                    : (res.mean_diff > 0.0 ? 1e9 : -1e9);
    res.p_value = res.mean_diff == 0.0 ? 1.0 : 0.0;
    return res;
  }
  res.statistic = res.mean_diff / se;
  res.p_value = two_sided_p(res.statistic);
  return res;
}

}  // namespace skp
