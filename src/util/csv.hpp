// Minimal CSV emission. Every bench binary writes its figure's series as
// CSV (stdout or file) so the data can be re-plotted with external tools.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace skp {

// Streaming CSV writer with RFC-4180 quoting for string cells.
class CsvWriter {
 public:
  // Writes to an externally owned stream (not owned; must outlive writer).
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  // Writes a full row; quoting applied to any cell containing , " or \n.
  void row(const std::vector<std::string>& cells);

  // Convenience: heterogeneous row via streaming conversion.
  template <typename... Ts>
  void row_of(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vals));
    (cells.push_back(to_cell(vals)), ...);
    row(cells);
  }

  static std::string quote(const std::string& cell);

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }
  std::ostream* os_;
};

// Opens `path` for writing, throws on failure. Convenience for benches.
std::ofstream open_csv(const std::string& path);

}  // namespace skp
