// Electronic-newspaper browsing (the ETEL scenario from the paper's
// related work): a reader walks through a site of articles whose link
// structure induces a Markov access pattern. The client learns the access
// model online (PPM predictor), plans SKP prefetches during reading time,
// and serves requests through the DES network substrate.
//
// Compares three client configurations on the same reading session:
//   1. demand fetch only (cold cache, no prefetch)
//   2. SKP prefetching with the oracle link probabilities
//   3. SKP prefetching with an online-learned PPM access model
#include <iostream>
#include <memory>

#include "predict/ppm_predictor.hpp"
#include "sim/netsim.hpp"
#include "workload/markov_source.hpp"

namespace {

using namespace skp;

struct RunResult {
  double mean_T;
  double hit_rate;
  double net_per_req;
};

RunResult run_session(PrefetchPolicy policy, bool learned,
                      std::uint64_t seed) {
  // The "site": 60 articles, 3-8 links each, short dwell times.
  Rng build(seed);
  MarkovSourceConfig site;
  site.n_states = 60;
  site.out_degree_lo = 3;
  site.out_degree_hi = 8;
  site.v_lo = 5.0;
  site.v_hi = 40.0;   // reading time per article
  site.r_lo = 1.0;
  site.r_hi = 25.0;   // article transfer times over a slow link
  MarkovSource chain(site, build);
  chain.teleport(0);

  ServerCatalog catalog{std::vector<double>(
      chain.retrieval_times().begin(), chain.retrieval_times().end())};
  EngineConfig ecfg;
  ecfg.policy = policy;
  ecfg.arbitration.sub = SubArbitration::DS;
  ClientSession client(catalog, NetConfig{}, ecfg, /*cache=*/12);

  PpmPredictor predictor(site.n_states, /*order=*/2);
  predictor.observe(0);

  Rng walk = build.split(7);
  const int reads = 3000;
  for (int i = 0; i < reads; ++i) {
    const std::size_t s = chain.current_state();
    const Instance inst = chain.instance_at(s);
    const auto next = static_cast<ItemId>(chain.step(walk));
    const std::vector<double> P =
        learned ? predictor.predict() : inst.P;
    client.request(next, inst.v, P,
                   policy == PrefetchPolicy::Perfect
                       ? std::optional<ItemId>(next)
                       : std::nullopt);
    predictor.observe(next);
  }
  const auto& m = client.metrics();
  return {m.mean_access_time(), m.hit_rate(),
          m.network_time_per_request()};
}

void report(const char* label, const RunResult& r) {
  std::cout << "  " << label << "\n"
            << "      mean access time : " << r.mean_T << "\n"
            << "      hit rate         : " << r.hit_rate << "\n"
            << "      net time/request : " << r.net_per_req << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Electronic newspaper browsing (ETEL-style session) "
               "===\n"
            << "  60 articles, Markov link structure, 3000 page reads, "
               "12-article cache\n\n";
  const auto demand = run_session(PrefetchPolicy::None, false, 2024);
  const auto oracle = run_session(PrefetchPolicy::SKP, false, 2024);
  const auto learned = run_session(PrefetchPolicy::SKP, true, 2024);
  report("demand fetch only          ", demand);
  report("SKP prefetch, oracle model ", oracle);
  report("SKP prefetch, learned PPM  ", learned);
  std::cout << "\nReading latency drops with prefetching; the learned "
               "model closes most of\nthe gap to the oracle as the "
               "session progresses, at a higher network cost\nthan demand "
               "fetching (the Section-6 trade-off).\n";
  return 0;
}
