// Trace workbench: record a session, persist it, and replay it under
// every policy/predictor combination — the offline-evaluation workflow a
// deployment team would run against production access logs before turning
// speculative prefetching on.
//
// Usage:
//   example_trace_workbench                 # synthesize, save, evaluate
//   example_trace_workbench <trace-file>    # evaluate an existing trace
#include <iomanip>
#include <iostream>

#include "sim/trace_replay.hpp"
#include "workload/markov_source.hpp"

namespace {

using namespace skp;

Trace synthesize_session(std::uint64_t seed) {
  // A browsing session over 50 documents with bursty revisit structure.
  Rng build(seed);
  MarkovSourceConfig cfg;
  cfg.n_states = 50;
  cfg.out_degree_lo = 3;
  cfg.out_degree_hi = 9;
  cfg.v_lo = 2.0;
  cfg.v_hi = 60.0;
  MarkovSource src(cfg, build);
  src.teleport(0);
  Trace trace(cfg.n_states,
              std::vector<double>(src.retrieval_times().begin(),
                                  src.retrieval_times().end()));
  Rng walk = build.split(5);
  for (int i = 0; i < 5000; ++i) {
    const double v = src.viewing_time(src.current_state());
    trace.append(static_cast<ItemId>(src.step(walk)), v);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  Trace trace = [&] {
    if (argc > 1) {
      std::cout << "loading trace from " << argv[1] << "\n";
      return Trace::load_file(argv[1]);
    }
    std::cout << "synthesizing a 5000-request browsing session ...\n";
    Trace t = synthesize_session(77);
    const std::string path = "session.skptrace";
    t.save_file(path);
    std::cout << "saved to ./" << path << " (replayable with this tool)\n";
    return t;
  }();

  std::cout << "\ntrace: " << trace.size() << " requests over "
            << trace.n_items() << " items\n\n";
  std::cout << "  policy      predictor  mean T     hit rate   net "
               "time/req\n";

  struct Row {
    PrefetchPolicy policy;
    PredictorKind predictor;
  };
  const Row rows[] = {
      {PrefetchPolicy::None, PredictorKind::Markov1},
      {PrefetchPolicy::KP, PredictorKind::Markov1},
      {PrefetchPolicy::SKP, PredictorKind::Markov1},
      {PrefetchPolicy::SKP, PredictorKind::Ppm},
      {PrefetchPolicy::SKP, PredictorKind::Lz78},
      {PrefetchPolicy::SKP, PredictorKind::DependencyWindow},
  };
  for (const auto& row : rows) {
    TraceReplayConfig cfg;
    cfg.cache_size = 12;
    cfg.policy = row.policy;
    cfg.predictor = row.predictor;
    cfg.warmup = trace.size() / 10;
    const SimMetrics m = replay_trace(trace, cfg);
    std::cout << "  " << std::setw(8) << to_string(row.policy) << "  "
              << std::setw(9) << to_string(row.predictor) << "  "
              << std::setw(9) << m.mean_access_time() << "  "
              << std::setw(9) << m.hit_rate() << "  "
              << m.network_time_per_request() << "\n";
  }
  std::cout << "\nReplay is paired (every row sees the identical request "
               "sequence), so the\ndifferences are attributable to "
               "policy and access model alone.\n";
  return 0;
}
