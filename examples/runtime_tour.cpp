// Tour of the unified simulation runtime (src/sim/runtime.hpp): one
// SimSpec per registered driver, dispatched through the registry, plus a
// look at the two newest workloads (Zipf catalog, phase-shifting Markov
// drift). This is the smallest end-to-end demonstration of the
// descriptor-driven surface the benches, the scenario matrix and the
// simctl CLI are built on.
#include <iomanip>
#include <iostream>

#include "sim/runtime.hpp"

int main() {
  using namespace skp;

  std::cout << "=== sim runtime tour: one spec per registered driver ===\n"
            << "  driver          hit rate  mean T   net/req  solver nodes\n";

  for (const SimDriver& driver : driver_registry()) {
    // skpd_loopback serves the netsim_des path from a separate daemon
    // process (SKPD_BIN/SKPD_ADDR); the in-process tour skips it.
    if (driver.kind == SimDriverKind::SkpdLoopback) continue;
    SimSpec spec;
    spec.driver = driver.kind;
    spec.requests = 1'500;
    spec.seed = 7;
    switch (driver.kind) {
      case SimDriverKind::PrefetchOnly:
        spec.workload.kind = SimWorkloadKind::Iid;
        spec.workload.n_items = 10;
        break;
      case SimDriverKind::PrefetchCache:
        spec.cache_size = 20;  // paper-default Markov source
        break;
      case SimDriverKind::TraceReplay:
        spec.predictor = PredictorKind::Markov1;
        spec.cache_size = 20;
        break;
      case SimDriverKind::NetsimDes:
        spec.cache_size = 20;  // oracle rows over the modeled link
        break;
      case SimDriverKind::Scenario:
        spec.workload.n_items = 24;
        spec.workload.out_degree_lo = 4;
        spec.workload.out_degree_hi = 8;
        spec.workload.v_lo = 10.0;
        spec.workload.v_hi = 60.0;
        spec.predictor = PredictorKind::Ppm;
        spec.predictor_min_prob = 0.02;
        spec.predictor_warmup = 64;
        spec.cache_size = 6;
        break;
      case SimDriverKind::MultiClientDes:
        spec.multi_client.clients = 4;  // four chains, one shared link
        spec.cache_size = 10;
        spec.requests = 400;  // per client
        break;
      case SimDriverKind::SkpdLoopback:
        continue;  // unreachable: skipped above
    }
    const SimResult res = run_sim(spec);
    std::cout << "  " << std::left << std::setw(15) << driver.name
              << std::right << std::setw(9) << res.metrics.hit_rate()
              << std::setw(9) << res.metrics.mean_access_time()
              << std::setw(9) << res.metrics.network_time_per_request()
              << std::setw(13) << res.metrics.solver_nodes << "\n";
  }

  // The same prefetch+cache driver under the two new first-class
  // workloads: i.i.d. Zipf popularity and a drifting chain whose
  // transition structure re-randomizes every 500 requests.
  std::cout << "\n=== workload spotlight (prefetch_cache driver) ===\n";
  for (const SimWorkloadKind kind :
       {SimWorkloadKind::Zipf, SimWorkloadKind::MarkovDrift}) {
    SimSpec spec;
    spec.workload.kind = kind;
    spec.workload.zipf_exponent = 1.2;
    spec.workload.drift_period = 500;
    spec.cache_size = 20;
    spec.requests = 3'000;
    spec.seed = 7;
    const SimResult res = run_sim(spec);
    std::cout << "  " << std::left << std::setw(13) << to_string(kind)
              << std::right << "hit rate " << std::setw(9)
              << res.metrics.hit_rate() << "   mean T " << std::setw(8)
              << res.metrics.mean_access_time() << "   plan-cache hits "
              << res.plan_cache.plans.hit_rate() << "\n";
  }
  std::cout << "\nAny of these rows is reproducible from the simctl CLI,\n"
               "e.g.: simctl run --driver prefetch_cache --workload zipf "
               "--zipf-s 1.2 --cache-size 20 --requests 3000 --seed 7\n";
  return 0;
}
