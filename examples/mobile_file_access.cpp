// Mobile file access over a low-bandwidth link (the setting of the
// authors' earlier wireless-multimedia work [15] and Tait's mobile file
// system [14]): a field device synchronizes working-set files over a thin
// pipe. File sizes vary widely, so retrieval times are latency + size/bw;
// the SKP engine decides which files to stage during think time.
//
// Demonstrates the DES substrate with non-trivial latency and bandwidth,
// Zipf-ian file popularity, and the cancel-pending extension.
#include <iostream>
#include <sstream>

#include "sim/netsim.hpp"
#include "workload/prob_gen.hpp"
#include "workload/request_stream.hpp"

namespace {

using namespace skp;

struct Config {
  double bandwidth;     // KB per second
  double latency;       // seconds per request
  bool cancel_pending;
  PrefetchPolicy policy;
  double threshold = 0.0;  // min P*r profit to bother prefetching
};

struct Outcome {
  double mean_T;
  double net_per_req;
};

Outcome run(const Config& c, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n_files = 40;

  // File sizes: mixture of small configs and large media, in KB.
  std::vector<double> sizes(n_files);
  for (auto& s : sizes) {
    s = rng.bernoulli(0.3) ? rng.uniform(200.0, 800.0)  // media
                           : rng.uniform(4.0, 60.0);    // documents
  }
  ServerCatalog catalog{sizes};
  NetConfig net;
  net.bandwidth = c.bandwidth;
  net.latency = c.latency;
  net.cancel_pending_on_demand = c.cancel_pending;

  EngineConfig ecfg;
  ecfg.policy = c.policy;
  ecfg.arbitration.sub = SubArbitration::DS;
  ecfg.min_profit_threshold = c.threshold;
  ClientSession device(catalog, net, ecfg, /*cache=*/10);

  // Zipf popularity with bursts: the working set drifts by re-shuffling
  // the popularity ranks every 200 accesses.
  std::vector<double> P = zipf_probabilities(n_files, 1.1, rng);
  Rng walk = rng.split(3);
  const int accesses = 1500;
  for (int i = 0; i < accesses; ++i) {
    if (i % 200 == 199) P = zipf_probabilities(n_files, 1.1, rng);
    const ItemId file = sample_categorical(P, walk);
    // Bursty usage: mostly quick glances, so prefetch queues regularly
    // spill past the think time (where the cancel knob matters).
    const double think = walk.bernoulli(0.7) ? walk.uniform(0.5, 3.0)
                                             : walk.uniform(10.0, 40.0);
    device.request(file, think, P);
  }
  return {device.metrics().mean_access_time(),
          device.metrics().network_time_per_request()};
}

}  // namespace

int main() {
  std::cout << "=== Mobile file staging over a thin link ===\n"
            << "  40 files (4 KB - 800 KB), 10-slot cache, 1500 accesses\n"
            << "  cells show: mean access time (s) / network seconds per "
               "access\n\n";
  std::cout << "  link profile                               no prefetch"
               "        SKP            SKP+threshold\n";
  struct Link {
    const char* name;
    double bw, lat, threshold;
  };
  const Link links[] = {
      {"9.6 kbit cellular (1.2 KB/s, 1.5 s RTT)", 1.2, 1.5, 8.0},
      {"56k modem         (7 KB/s, 0.3 s RTT)  ", 7.0, 0.3, 2.0},
      {"early WLAN        (80 KB/s, 0.05 s RTT)", 80.0, 0.05, 0.2},
  };
  for (const auto& link : links) {
    const auto none =
        run({link.bw, link.lat, false, PrefetchPolicy::None}, 11);
    const auto skp =
        run({link.bw, link.lat, false, PrefetchPolicy::SKP}, 11);
    const auto frugal = run(
        {link.bw, link.lat, true, PrefetchPolicy::SKP, link.threshold},
        11);
    auto cell = [](const Outcome& o) {
      std::ostringstream os;
      os << o.mean_T << " / " << o.net_per_req;
      return os.str();
    };
    std::cout << "  " << link.name << "  " << cell(none) << "   "
              << cell(skp) << "   " << cell(frugal) << "\n";
  }
  std::cout
      << "\nSpeculative staging pays most on the slowest links, where a "
         "demand fetch of\na media file stalls the user for minutes. The "
         "thresholded variant (which\nalso cancels still-queued "
         "prefetches on a miss) keeps most of the latency\nwin while "
         "spending far less of the thin pipe - the Section-6 trade-off "
         "the\npaper leaves open.\n";
  return 0;
}
