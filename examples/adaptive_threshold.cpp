// Adaptive network-usage governor (paper Section 6: "A policy is needed
// to weigh the opposing goals of maximising access improvement and
// minimising network usage").
//
// This example closes that loop: a controller monitors the wasted-prefetch
// rate over a sliding window and adapts the engine's profit threshold —
// raising it when speculation wastes bandwidth, lowering it when
// prefetches are paying off. Run on the Fig. 7 Markov workload.
#include <deque>
#include <iostream>

#include "cache/cache.hpp"
#include "cache/freq_tracker.hpp"
#include "core/access_model.hpp"
#include "core/prefetch_engine.hpp"
#include "util/stats.hpp"
#include "workload/markov_source.hpp"

namespace {

using namespace skp;

struct Outcome {
  double mean_T;
  double net_per_req;
  double final_threshold;
};

Outcome run(bool adaptive, double fixed_threshold, std::uint64_t seed) {
  Rng build(seed);
  MarkovSourceConfig mcfg;
  mcfg.n_states = 80;
  mcfg.out_degree_lo = 8;
  mcfg.out_degree_hi = 16;
  MarkovSource source(mcfg, build);
  source.teleport(0);
  Rng walk = build.split(1);

  SlotCache cache(mcfg.n_states, 16);
  FreqTracker freq(mcfg.n_states);

  double threshold = adaptive ? 0.0 : fixed_threshold;
  OnlineStats T_stats;
  double net_time = 0.0;
  std::deque<bool> window;  // true = prefetched item was used
  std::vector<char> unused(mcfg.n_states, 0);

  const int requests = 6000;
  std::size_t state = 0;
  for (int i = 0; i < requests; ++i) {
    EngineConfig ecfg;
    ecfg.policy = PrefetchPolicy::SKP;
    ecfg.arbitration.sub = SubArbitration::DS;
    ecfg.min_profit_threshold = threshold;
    const PrefetchEngine engine(ecfg);

    const Instance inst = source.instance_at(state);
    const auto next = static_cast<ItemId>(source.step(walk));
    const auto before = std::vector<ItemId>(cache.contents().begin(),
                                            cache.contents().end());
    const auto plan = engine.plan_with_cache(inst, cache, &freq);
    std::size_t vi = 0;
    for (ItemId f : plan.fetch) {
      if (cache.full()) {
        cache.replace(plan.evict[vi++], f);
      } else {
        cache.insert(f);
      }
      unused[Instance::idx(f)] = 1;
      net_time += inst.r[Instance::idx(f)];
    }
    const double T = realized_access_time_cached(inst, plan.fetch,
                                                 plan.evict, before, next);
    T_stats.add(T);
    freq.record(next);

    // Controller feedback: was each prefetched item from this cycle the
    // one requested?
    for (ItemId f : plan.fetch) {
      window.push_back(f == next);
      if (window.size() > 200) window.pop_front();
    }
    if (unused[Instance::idx(next)]) unused[Instance::idx(next)] = 0;
    if (!cache.contains(next)) {
      net_time += source.retrieval_time(next);
      if (cache.full()) {
        const ItemId d =
            choose_victim(source.instance_at(
                              static_cast<std::size_t>(next)),
                          cache.contents(), &freq, ecfg.arbitration);
        cache.replace(d, next);
      } else {
        cache.insert(next);
      }
    }

    if (adaptive && i % 50 == 49 && window.size() >= 100) {
      double used = 0;
      for (bool b : window) used += b ? 1.0 : 0.0;
      const double hit_frac = used / static_cast<double>(window.size());
      if (hit_frac < 0.15) {
        threshold = std::min(threshold + 0.5, 12.0);
      } else if (hit_frac > 0.35) {
        threshold = std::max(threshold - 0.5, 0.0);
      }
    }
    state = static_cast<std::size_t>(next);
  }
  return {T_stats.mean(), net_time / requests, threshold};
}

}  // namespace

int main() {
  std::cout << "=== Adaptive prefetch governor (Section-6 extension) "
               "===\n"
            << "  80-state Markov workload, 16-slot cache, 6000 "
               "requests\n\n";
  std::cout << "  configuration          mean T    net time/req   final "
               "threshold\n";
  const auto eager = run(false, 0.0, 31);
  const auto frugal = run(false, 6.0, 31);
  const auto adaptive = run(true, 0.0, 31);
  std::cout << "  always prefetch (th=0)  " << eager.mean_T << "    "
            << eager.net_per_req << "        0\n";
  std::cout << "  fixed threshold (th=6)  " << frugal.mean_T << "    "
            << frugal.net_per_req << "        6\n";
  std::cout << "  adaptive governor       " << adaptive.mean_T << "    "
            << adaptive.net_per_req << "        "
            << adaptive.final_threshold << "\n";
  std::cout << "\nThe governor lands between the extremes: most of the "
               "latency win of eager\nspeculation at materially lower "
               "network usage.\n";
  return 0;
}
