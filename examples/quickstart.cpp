// Quickstart: the library in ~60 lines.
//
// A client knows, during the user's "viewing time", the probability P_i
// that each remote item is requested next and the time r_i to retrieve it.
// The SKP solver picks the list of items to prefetch that maximizes the
// expected improvement in access time (Eq. 3 of Tuah et al., IPPS/SPDP
// 1999), allowing the last prefetch to "stretch" past the viewing time
// when the gamble pays.
//
// Build & run:  ./example_quickstart
#include <iostream>

#include "core/access_model.hpp"
#include "core/kp_solver.hpp"
#include "core/skp_solver.hpp"

int main() {
  using namespace skp;

  // Five candidate items: next-access probabilities, retrieval times, and
  // a viewing time of 12 time units available for speculative work.
  // The most likely item (P = .55) takes 14 units to retrieve — longer
  // than the viewing time. A classic knapsack can never select it; the
  // stretch knapsack gambles the 2-unit overrun and wins in expectation.
  Instance inst;
  inst.P = {0.55, 0.20, 0.12, 0.08, 0.05};
  inst.r = {14.0, 3.0, 6.0, 5.0, 2.0};
  inst.v = 12.0;

  std::cout << "catalog:  i    P_i    r_i   P_i*r_i\n";
  for (std::size_t i = 0; i < inst.n(); ++i) {
    std::cout << "          " << i << "    " << inst.P[i] << "   "
              << inst.r[i] << "   " << inst.profit(static_cast<ItemId>(i))
              << "\n";
  }
  std::cout << "viewing time v = " << inst.v << "\n\n";

  // Expected access time with no prefetching at all.
  std::cout << "E(T | no prefetch)   = "
            << expected_access_time_no_prefetch(inst) << "\n";

  // Classic knapsack baseline: fill v, never stretch.
  const KpSolution kp = solve_kp_bb(inst);
  std::cout << "KP baseline          = items {";
  for (ItemId i : kp.items) std::cout << ' ' << i;
  std::cout << " }, expected improvement " << kp.value << "\n";

  // The paper's stretch-knapsack solution.
  const SkpSolution skp = solve_skp(inst);
  std::cout << "SKP optimal prefetch = items {";
  for (ItemId i : skp.F) std::cout << ' ' << i;
  std::cout << " }, expected improvement " << skp.g << ", stretch "
            << skp.stretch << "\n";
  std::cout << "E(T | prefetch SKP)  = "
            << expected_access_time_prefetch(inst, skp.F) << "\n\n";

  // What the user actually experiences for each possible next request.
  std::cout << "realized access times (Figure 2 cases):\n";
  for (std::size_t i = 0; i < inst.n(); ++i) {
    std::cout << "  request " << i << " -> T = "
              << realized_access_time(inst, skp.F,
                                      static_cast<ItemId>(i))
              << "\n";
  }

  // The Eq.-(7) upper bound certifies optimality headroom.
  std::cout << "\nEq.-(7) upper bound on any prefetch: "
            << skp_upper_bound(inst) << "\n";
  return 0;
}
