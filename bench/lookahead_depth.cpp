// E9 (extension; paper Section 6): effect of lookahead depth.
//
// "The SKP algorithm considers only one access ahead. Obviously, looking
// ahead deeper will improve the performance. However, the complexity of
// the problem can be daunting." We test the cheap variant: plan the same
// one-access SKP against probabilities blended over an h-step horizon
// (core/lookahead.hpp). Sweeps horizon x cache size on the Fig. 7
// workload and reports mean access time and network usage.
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "sim/prefetch_cache.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace skp;
  const auto args = skp::bench::parse_args(argc, argv);
  const std::size_t requests = args.full ? 50'000 : 6'000;
  std::cout << "=== E9: lookahead depth (horizon-blended probabilities) "
               "===\n"
            << "    " << requests << " requests per cell; seed "
            << args.seed << "\n\n";

  std::optional<std::ofstream> csv;
  if (args.csv_dir) {
    csv = open_csv(*args.csv_dir + "/lookahead_depth.csv");
    CsvWriter(*csv).row({"horizon", "cache_size", "mean_T", "hit_rate",
                         "net_time_per_req"});
  }

  std::cout << "  horizon  cache  mean T    hit rate  net time/req\n";
  for (const std::size_t horizon : {1u, 2u, 3u, 4u}) {
    for (const std::size_t cache_size : {10u, 30u, 60u}) {
      PrefetchCacheConfig cfg;  // paper-default Markov source
      cfg.cache_size = cache_size;
      cfg.policy = PrefetchPolicy::SKP;
      cfg.sub = SubArbitration::DS;
      cfg.requests = requests;
      cfg.seed = args.seed;
      cfg.lookahead_horizon = horizon;
      cfg.lookahead_decay = 0.5;
      const auto res = run_prefetch_cache(cfg);
      std::cout << "  " << std::setw(7) << horizon << "  " << std::setw(5)
                << cache_size << "  " << std::setw(8)
                << res.metrics.mean_access_time() << "  " << std::setw(8)
                << res.metrics.hit_rate() << "  "
                << res.metrics.network_time_per_request() << "\n";
      if (csv) {
        CsvWriter(*csv).row_of(horizon, cache_size,
                               res.metrics.mean_access_time(),
                               res.metrics.hit_rate(),
                               res.metrics.network_time_per_request());
      }
    }
  }
  std::cout
      << "\n  horizon 1 = the paper's one-access lookahead. On this "
         "workload blending\n  dilutes the near-term signal about as much "
         "as the extra cache residency\n  helps: deeper horizons are "
         "mildly useful at small caches and neutral to\n  harmful at "
         "large ones — evidence that the paper's greedy one-access\n  "
         "formulation is already near-optimal for Markov browsing "
         "workloads.\n";
  return 0;
}
