// Figure 7 reproduction: access time per request against cache size for
// the five prefetch-cache policies:
//   No+Pr, KP+Pr, SKP+Pr, SKP+Pr+LFU, SKP+Pr+DS.
// Workload per the paper's caption: 100-state Markov source, 10-20
// transitions per state, viewing times 1..100, retrieval times 1..30,
// 50 000 requests per point, cache size swept 1..100.
//
// Expected shape: all curves fall with cache size and converge once the
// cache approaches the catalog size; SKP+Pr+DS lowest, then SKP+Pr+LFU,
// SKP+Pr, KP+Pr, No+Pr highest.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <iterator>

#include "bench_util.hpp"
#include "sim/runtime.hpp"
#include "sim/sweep.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace skp;

struct Policy {
  const char* name;
  PrefetchPolicy policy;
  SubArbitration sub;
  char glyph;
};

const Policy kPolicies[] = {
    {"No+Pr", PrefetchPolicy::None, SubArbitration::None, 'n'},
    {"KP+Pr", PrefetchPolicy::KP, SubArbitration::None, 'k'},
    {"SKP+Pr", PrefetchPolicy::SKP, SubArbitration::None, 's'},
    {"SKP+Pr+LFU", PrefetchPolicy::SKP, SubArbitration::LFU, 'l'},
    {"SKP+Pr+DS", PrefetchPolicy::SKP, SubArbitration::DS, 'd'},
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = skp::bench::parse_args(argc, argv);
  const std::size_t requests = args.full ? 50'000 : 4'000;
  const std::size_t step = args.full ? 1 : 5;  // cache sizes 1,1+step,...
  ThreadPool pool(args.threads);
  std::cout << "=== Figure 7: access time per request vs cache size ===\n"
            << "    " << (args.full ? "full" : "reduced") << " scale ("
            << requests << " requests/point, cache step " << step
            << "); seed " << args.seed << "; " << pool.thread_count()
            << " sweep thread(s)\n\n";

  std::vector<std::size_t> sizes;
  sizes.push_back(1);
  for (std::size_t c = step; c <= 100; c += step) sizes.push_back(c);

  // Every (policy, cache size) cell is one SimSpec — an independently
  // seeded sim — so the registry-dispatched parallel fan-out reproduces
  // the serial numbers bit-for-bit (each point owns its PlanCache, so
  // memoization does not couple points either).
  std::vector<SimSpec> specs;
  for (const Policy& pol : kPolicies) {
    for (const std::size_t cache_size : sizes) {
      SimSpec spec;  // prefetch_cache driver, paper-default Markov source
      spec.cache_size = cache_size;
      spec.policy = pol.policy;
      spec.sub = pol.sub;
      // ExactComplement reproduces the paper's "SKP prefetch performs
      // better than KP prefetch"; the verbatim Figure-3 tail-sum delta
      // inverts that ordering (see EXPERIMENTS.md / ablation_delta).
      spec.delta_rule = DeltaRule::ExactComplement;
      spec.requests = requests;
      spec.seed = args.seed;  // same chain + walk for every policy
      spec.use_plan_cache = !args.no_plan_cache;
      specs.push_back(spec);
    }
  }
  struct PointResult {
    double mean_T;
    PlanMemoStats plan_cache;
  };
  const std::size_t n_points = specs.size();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<PointResult> points(n_points);
  if (args.no_batch) {
    points = sweep_configs(pool, specs, [&](const SimSpec& spec) {
      const SimResult res = run_sim(spec);
      return PointResult{res.metrics.mean_access_time(), res.plan_cache};
    });
  } else {
    // Lockstep batched execution (the default): each policy row is one
    // run_sim_batch call — every spec in the row shares the workload, so
    // the Markov source steps once per request for the whole row and
    // same-candidate-set SKP solves batch (results bit-identical to the
    // solo sweep; --no-batch is the A/B baseline). Rows still fan out
    // across the pool.
    std::vector<std::future<void>> rows;
    for (std::size_t p = 0; p < std::size(kPolicies); ++p) {
      rows.push_back(pool.submit([&, p] {
        const std::span<const SimSpec> row(specs.data() + p * sizes.size(),
                                           sizes.size());
        const std::vector<SimResult> res = run_sim_batch(row);
        for (std::size_t c = 0; c < res.size(); ++c) {
          points[p * sizes.size() + c] = PointResult{
              res[c].metrics.mean_access_time(), res[c].plan_cache};
        }
      }));
    }
    for (auto& f : rows) f.get();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::vector<double> mean_T;
  mean_T.reserve(points.size());
  PlanMemoStats plan_cache_total;
  for (const auto& p : points) {
    mean_T.push_back(p.mean_T);
    plan_cache_total.merge(p.plan_cache);
  }

  std::vector<PlotSeries> series;
  for (std::size_t p = 0; p < std::size(kPolicies); ++p) {
    PlotSeries s;
    s.name = kPolicies[p].name;
    s.glyph = kPolicies[p].glyph;
    for (std::size_t c = 0; c < sizes.size(); ++c) {
      s.points.emplace_back(static_cast<double>(sizes[c]),
                            mean_T[p * sizes.size() + c]);
    }
    std::cout << "  finished " << kPolicies[p].name << " (last point: T = "
              << s.points.back().second << ")\n";
    series.push_back(std::move(s));
  }
  const double total_requests =
      static_cast<double>(requests) * static_cast<double>(n_points);
  std::cout << "  sweep: " << n_points << " sim points, "
            << static_cast<std::uint64_t>(total_requests) << " requests in "
            << elapsed << " s  ("
            << static_cast<std::uint64_t>(total_requests / elapsed)
            << " requests/s)\n";
  if (plan_cache_total.plans.lookups() > 0) {
    std::cout << "  plan cache: plans "
              << plan_cache_total.plans.hit_rate() * 100.0 << "% of "
              << plan_cache_total.plans.lookups() << " lookups hit"
              << ", selections "
              << plan_cache_total.selections.hit_rate() * 100.0 << "% of "
              << plan_cache_total.selections.lookups() << "\n";
  } else if (args.no_plan_cache) {
    std::cout << "  plan cache: disabled (--no-plan-cache)\n";
  }
  std::cout << "\n";

  PlotOptions opts;
  opts.title = "Fig 7  access time per request vs cache size";
  opts.x_label = "cache size";
  opts.y_label = "T/req";
  opts.x_min = 0;
  opts.x_max = 100;
  opts.y_min = 0;
  opts.y_max = 14;
  opts.width = 76;
  opts.height = 24;
  std::cout << render_plot(series, opts) << "\n";

  // Tabulated rows for a few representative cache sizes.
  std::cout << "  cache";
  for (const auto& pol : kPolicies) std::cout << "\t" << pol.name;
  std::cout << "\n";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] != 1 && sizes[i] % 20 != 0) continue;
    std::cout << "  " << sizes[i];
    for (const auto& s : series) std::cout << "\t" << s.points[i].second;
    std::cout << "\n";
  }

  if (args.csv_dir) {
    auto f = open_csv(*args.csv_dir + "/fig7_prefetch_cache.csv");
    CsvWriter w(f);
    w.row({"cache_size", "No+Pr", "KP+Pr", "SKP+Pr", "SKP+Pr+LFU",
           "SKP+Pr+DS"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      w.row_of(sizes[i], series[0].points[i].second,
               series[1].points[i].second, series[2].points[i].second,
               series[3].points[i].second, series[4].points[i].second);
    }
  }
  return 0;
}
