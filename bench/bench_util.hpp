// Shared command-line handling for the figure-reproduction binaries.
//
// Every bench accepts:
//   --full          paper-scale run (50 000 iterations etc.); default is a
//                   reduced-scale run that finishes in seconds
//   --seed <u64>    RNG seed (default 1)
//   --csv <dir>     also write each series as CSV files into <dir>
//   --threads <n>   worker threads for the sweep drivers (0 = one per
//                   hardware thread, the default; 1 = serial). Sweep
//                   results are bit-identical for every thread count —
//                   each sim point is independently seeded — so this only
//                   changes wall-clock.
//   --no-plan-cache disable cross-request plan memoization in sims that
//                   support it (A/B switch; results are bit-identical
//                   either way, only wall-clock changes)
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

namespace skp::bench {

struct BenchArgs {
  bool full = false;
  std::uint64_t seed = 1;
  std::optional<std::string> csv_dir;
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool no_plan_cache = false;
  // Opt out of lockstep batched execution (run_sim_batch) in the benches
  // that default to it; the solo path is the A/B baseline.
  bool no_batch = false;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--full") {
      args.full = true;
    } else if (a == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--csv" && i + 1 < argc) {
      args.csv_dir = argv[++i];
    } else if (a == "--threads" && i + 1 < argc) {
      args.threads = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (a == "--no-plan-cache") {
      args.no_plan_cache = true;
    } else if (a == "--no-batch") {
      args.no_batch = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--full] [--seed <u64>] [--csv <dir>]"
                   " [--threads <n>] [--no-plan-cache] [--no-batch]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      std::exit(2);
    }
  }
  return args;
}

}  // namespace skp::bench
