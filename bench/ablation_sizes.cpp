// E10 (extension; paper Section 6): lifting the equal-item-size
// assumption. "However, we assume uniform size for all items. We are
// currently addressing this limitation."
//
// Compares, at matched byte budgets on the Fig. 7 workload:
//   slot model      — the paper's equal-size protocol (capacity = k items)
//   sized/uniform   — byte cache, all items the same size (sanity: must
//                     track the slot model)
//   sized/coupled   — item size proportional to retrieval time (the
//                     natural bandwidth coupling), density arbitration
#include <iomanip>
#include <iostream>
#include <iterator>

#include "bench_util.hpp"
#include "sim/runtime.hpp"
#include "sim/sweep.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace skp;
  const auto args = skp::bench::parse_args(argc, argv);
  const std::size_t requests = args.full ? 50'000 : 5'000;
  ThreadPool pool(args.threads);
  std::cout << "=== E10: heterogeneous item sizes (slot vs byte cache) "
               "===\n"
            << "    " << requests << " requests per cell; seed "
            << args.seed << "; " << pool.thread_count()
            << " sweep thread(s)\n"
            << "    mean item size ~ 15.5 units; capacities matched as "
               "slots x 15.5\n\n";

  std::optional<std::ofstream> csv;
  if (args.csv_dir) {
    csv = open_csv(*args.csv_dir + "/ablation_sizes.csv");
    CsvWriter(*csv).row({"slots", "slot_T", "uniform_T", "coupled_T",
                         "coupled_waste_rate"});
  }

  std::cout << "  slots  slot model  sized uniform  sized coupled  "
               "coupled waste\n";
  const std::size_t slot_counts[] = {5, 10, 20, 40, 80};
  constexpr std::size_t kCells = 3;  // slot model / uniform / coupled
  // Enumerate the 5x3 grid as SimSpecs (cell kind = idx % 3: slot model,
  // sized uniform, sized coupled) and fan them out as independent sims.
  std::vector<SimSpec> specs;
  for (const std::size_t slots : slot_counts) {
    for (std::size_t cell = 0; cell < kCells; ++cell) {
      SimSpec spec;  // prefetch_cache driver, paper-default source
      spec.policy = PrefetchPolicy::SKP;
      spec.sub = SubArbitration::DS;
      spec.requests = requests;
      spec.seed = args.seed;
      if (cell == 0) {
        spec.cache_size = slots;
      } else {
        const double mean_size = 15.5;  // E[U{1..30}]
        spec.sized_capacity = static_cast<double>(slots) * mean_size;
        spec.size_per_r = cell == 1 ? 0.0 : 1.0;  // uniform vs coupled
        spec.size_lo = spec.size_hi = mean_size;
      }
      specs.push_back(spec);
    }
  }
  const auto results = sweep_configs(
      pool, specs, [&](const SimSpec& spec) { return run_sim(spec); });

  for (std::size_t s = 0; s < std::size(slot_counts); ++s) {
    const std::size_t slots = slot_counts[s];
    const auto& slot_res = results[s * kCells + 0];
    const auto& uni_res = results[s * kCells + 1];
    const auto& coupled_res = results[s * kCells + 2];
    std::cout << "  " << std::setw(5) << slots << "  " << std::setw(10)
              << slot_res.metrics.mean_access_time() << "  "
              << std::setw(13) << uni_res.metrics.mean_access_time()
              << "  " << std::setw(13)
              << coupled_res.metrics.mean_access_time() << "  "
              << coupled_res.metrics.waste_rate() << "\n";
    if (csv) {
      CsvWriter(*csv).row_of(slots, slot_res.metrics.mean_access_time(),
                             uni_res.metrics.mean_access_time(),
                             coupled_res.metrics.mean_access_time(),
                             coupled_res.metrics.waste_rate());
    }
  }
  std::cout << "\n  sized-uniform must track the slot model (same "
               "protocol, byte bookkeeping);\n  sized-coupled shows the "
               "equal-size assumption's real-world cost/benefit: big\n  "
               "items are exactly the ones worth caching (r large) but "
               "crowd out many small\n  ones — density arbitration "
               "resolves the tension.\n";
  return 0;
}
