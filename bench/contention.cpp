// E11 (extension): shared-link contention — the system-level cost of
// speculation in a *distributed* information system. K clients share one
// server link; each extra speculative transfer delays everyone's demand
// fetches (the paper's no-abort assumption now couples the clients).
// Sweeps client count x prefetch profit threshold.
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "sim/multi_client.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace skp;
  const auto args = skp::bench::parse_args(argc, argv);
  const std::size_t requests = args.full ? 10'000 : 1'500;
  std::cout << "=== E11: shared-link contention (multi-client DES) ===\n"
            << "    " << requests
            << " requests per client; 40-state chains; 10-slot caches; "
               "seed "
            << args.seed << "\n\n";

  std::optional<std::ofstream> csv;
  if (args.csv_dir) {
    csv = open_csv(*args.csv_dir + "/contention.csv");
    CsvWriter(*csv).row({"clients", "threshold", "mean_T",
                         "link_utilization", "net_time_per_req"});
  }

  std::cout << "  clients  threshold  mean T     link util  "
               "net time/req\n";
  for (const std::size_t clients : {1u, 2u, 4u, 8u}) {
    for (const double threshold : {0.0, 2.0, 6.0, 1e9}) {
      MultiClientConfig cfg;
      cfg.n_clients = clients;
      cfg.source.n_states = 40;
      cfg.source.out_degree_lo = 5;
      cfg.source.out_degree_hi = 10;
      cfg.cache_size = 10;
      cfg.engine.policy = PrefetchPolicy::SKP;
      cfg.engine.arbitration.sub = SubArbitration::DS;
      cfg.engine.min_profit_threshold = threshold;
      // Keep per-client offered load constant: the link serves all
      // clients, so scale its speed with the population.
      cfg.link_speedup = static_cast<double>(clients);
      cfg.requests_per_client = requests;
      cfg.seed = args.seed;
      const MultiClientResult res = run_multi_client(cfg);
      std::cout << "  " << std::setw(7) << clients << "  " << std::setw(9)
                << threshold << "  " << std::setw(9)
                << res.aggregate.mean_access_time() << "  "
                << std::setw(9) << res.link_utilization() << "  "
                << res.aggregate.network_time_per_request() << "\n";
      if (csv) {
        CsvWriter(*csv).row_of(clients, threshold,
                               res.aggregate.mean_access_time(),
                               res.link_utilization(),
                               res.aggregate.network_time_per_request());
      }
    }
  }
  std::cout << "\n  threshold 1e9 disables speculation (demand only). "
               "With few clients eager\n  speculation wins; as the "
               "population grows, queueing behind other clients'\n  "
               "speculative transfers erodes the win — the Section-6 "
               "policy question at\n  system scale. Thresholding recovers "
               "most of the single-client benefit.\n";
  return 0;
}
