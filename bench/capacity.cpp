// Capacity bench: bytes per resident session, the denominator of the
// million-session goal.
//
// Counts live heap bytes through global operator new/delete and reports
// how much one session costs in three configurations:
//
//   CAP_NetsimIdle_shared   N NetsimSteppers of ONE spec group sharing a
//                           SharedCatalog (sizes, r, cycle script held
//                           once) — the bulk-hosting path skpd preload
//                           uses.
//   CAP_NetsimIdle_private  N steppers of N distinct spec groups, so
//                           every session owns a full grounding — the
//                           pre-catalog cost model, kept as the
//                           reduction baseline.
//   CAP_NetsimActive_shared the shared sessions after stepping, so the
//                           predictor/plan-cache growth shows up.
//   CAP_SkpdIdle            sessions resident in the sharded
//                           SkpdSessionStore, store overhead included.
//
// Emits a google-benchmark-compatible JSON snapshot (counters only;
// cpu_time is zero and skipped by the comparer) so compare_bench.py can
// gate bytes_per_session growth against bench/BENCH_seed.json, and
// enforces the headline acceptance in-process: shared idle sessions must
// be at least 4x smaller than private ones, or the bench exits nonzero.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "sim/catalog.hpp"
#include "sim/netsim_stepper.hpp"
#include "sim/runtime.hpp"
#include "sim/session_store.hpp"
#include "sim/skpd_session.hpp"

namespace {

// ---------------------------------------------------------------------
// Live-byte accounting. Every plain (default-aligned) new/delete in the
// process routes through a small size header, so `live()` is the exact
// number of requested-and-not-yet-freed bytes. Over-aligned allocations
// fall through to the library operators (uncounted but internally
// consistent), which is fine: both sides of every ratio here lose the
// same term.
std::atomic<std::uint64_t> g_live{0};
constexpr std::size_t kHeader = alignof(std::max_align_t);

std::uint64_t live() noexcept {
  return g_live.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) noexcept {
  void* base = std::malloc(kHeader + size);
  if (base == nullptr) return nullptr;
  std::memcpy(base, &size, sizeof(size));
  g_live.fetch_add(size, std::memory_order_relaxed);
  return static_cast<char*>(base) + kHeader;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  void* base = static_cast<char*>(p) - kHeader;
  std::size_t size = 0;
  std::memcpy(&size, base, sizeof(size));
  g_live.fetch_sub(size, std::memory_order_relaxed);
  std::free(base);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace {

struct Row {
  std::string name;
  double bytes_per_session = 0.0;
  double sessions_per_gb = 0.0;
};

Row make_row(std::string name, std::size_t sessions, std::uint64_t bytes) {
  Row row;
  const double per =
      static_cast<double>(bytes) / static_cast<double>(sessions);
  row.name = std::move(name) + "/" + std::to_string(sessions);
  row.bytes_per_session = per;
  row.sessions_per_gb = per > 0.0 ? (1024.0 * 1024.0 * 1024.0) / per : 0.0;
  return row;
}

// The measured group: learned-predictor netsim_des sessions, where the
// materialized cycle script (requests x 16-byte records) is the part a
// private grounding duplicates per session.
skp::SimSpec capacity_spec(std::uint64_t seed) {
  skp::SimSpec spec;
  spec.driver = skp::SimDriverKind::NetsimDes;
  spec.workload.kind = skp::SimWorkloadKind::Markov;
  spec.workload.n_items = 200;
  spec.predictor = skp::PredictorKind::Lz78;
  spec.cache_size = 10;
  spec.requests = 10'000;
  spec.seed = seed;
  return spec;
}

void write_json(std::ostream& out, const std::vector<Row>& rows) {
  out << "{\n \"context\": {\n"
      << "  \"executable\": \"capacity\",\n"
      << "  \"caches\": []\n },\n \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\n"
        << "   \"name\": \"" << r.name << "\",\n"
        << "   \"run_name\": \"" << r.name << "\",\n"
        << "   \"run_type\": \"iteration\",\n"
        << "   \"iterations\": 1,\n"
        << "   \"real_time\": 0.0,\n"
        << "   \"cpu_time\": 0.0,\n"
        << "   \"time_unit\": \"ns\",\n"
        << "   \"bytes_per_session\": " << r.bytes_per_session << ",\n"
        << "   \"sessions_per_gb\": " << r.sessions_per_gb << "\n"
        << "  }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << " ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 256;
  std::size_t active_steps = 200;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--full") {
      sessions = 4096;
    } else if (a == "--sessions" && i + 1 < argc) {
      sessions = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (a == "--steps" && i + 1 < argc) {
      active_steps = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--full] [--sessions <n>] [--steps <n>]"
                   " [--json <path>]\n";
      return 0;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return 2;
    }
  }
  if (sessions == 0) {
    std::cerr << "--sessions must be > 0\n";
    return 2;
  }

  std::vector<Row> rows;
  const skp::SimSpec spec = capacity_spec(1);

  // Shared idle: the group's catalog is acquired once, outside the
  // measured window, exactly like skpd's bulk preload.
  double idle_shared = 0.0;
  {
    const std::shared_ptr<const skp::SharedCatalog> catalog =
        skp::SharedCatalog::acquire(spec);
    std::vector<std::unique_ptr<skp::NetsimStepper>> pool;
    pool.reserve(sessions);
    const std::uint64_t before = live();
    for (std::size_t i = 0; i < sessions; ++i) {
      pool.push_back(std::make_unique<skp::NetsimStepper>(spec, catalog));
    }
    rows.push_back(
        make_row("CAP_NetsimIdle_shared", sessions, live() - before));
    idle_shared = rows.back().bytes_per_session;

    // Active: run every session forward so predictor tries, plan-cache
    // tables, and replay state reach steady shape. Reported bytes are
    // TOTAL resident per active session (idle footprint included).
    for (auto& stepper : pool) {
      for (std::size_t s = 0; s < active_steps && !stepper->done(); ++s) {
        stepper->step();
      }
    }
    rows.push_back(
        make_row("CAP_NetsimActive_shared", sessions, live() - before));
  }

  // Private idle: one spec group per session (distinct seeds), so each
  // stepper's acquire() builds and owns a whole grounding — the
  // per-session cost model this refactor retired.
  double idle_private = 0.0;
  {
    std::vector<std::unique_ptr<skp::NetsimStepper>> pool;
    pool.reserve(sessions);
    const std::uint64_t before = live();
    for (std::size_t i = 0; i < sessions; ++i) {
      pool.push_back(std::make_unique<skp::NetsimStepper>(
          capacity_spec(1000 + static_cast<std::uint64_t>(i))));
    }
    rows.push_back(
        make_row("CAP_NetsimIdle_private", sessions, live() - before));
    idle_private = rows.back().bytes_per_session;
  }

  // Daemon-resident idle sessions: store sharding and replay buffers
  // included, i.e. what one skpd process pays per preloaded session.
  {
    const std::shared_ptr<const skp::SharedCatalog> catalog =
        skp::SharedCatalog::acquire(spec);
    skp::SkpdSessionStore store(skp::recommended_shard_count(sessions));
    const std::uint64_t before = live();
    for (std::size_t i = 0; i < sessions; ++i) {
      store.create(spec, catalog);
    }
    rows.push_back(make_row("CAP_SkpdIdle", sessions, live() - before));
  }

  for (const Row& r : rows) {
    std::fprintf(stderr, "%-32s %12.0f bytes/session %12.0f sessions/GB\n",
                 r.name.c_str(), r.bytes_per_session, r.sessions_per_gb);
  }
  const double reduction =
      idle_shared > 0.0 ? idle_private / idle_shared : 0.0;
  std::fprintf(stderr, "idle reduction (private/shared): %.1fx\n",
               reduction);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    write_json(out, rows);
  } else {
    write_json(std::cout, rows);
  }

  // Headline acceptance: sharing the catalog must shrink an idle
  // netsim_des session by at least 4x versus a private grounding.
  if (reduction < 4.0) {
    std::fprintf(stderr,
                 "FAIL: idle shared session is only %.1fx smaller than "
                 "private (need >= 4x)\n",
                 reduction);
    return 1;
  }
  return 0;
}
