// Figure 4 reproduction: scatter plots of access time T against viewing
// time v for the SKP prefetch and the KP prefetch, under the skewy and
// flat probability methods (panels a-d). n = 10, v ~ U{1..100},
// r ~ U{1..30}; the paper plots 500 of 50 000 iterations.
//
// Expected shapes (paper Section 4.4):
//   (a) SKP/skewy: points ABOVE T = 30 = max r exist (stretch intrusion);
//   (c) KP/skewy: dense triangular region above the line T = v for small v
//       (high-probability items whose r exceeds v are never prefetched);
//   (b)/(d) flat: SKP and KP look almost identical.
#include <iostream>

#include "bench_util.hpp"
#include "sim/prefetch_only.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"

namespace {

using namespace skp;

struct Panel {
  const char* label;
  PrefetchPolicy policy;
  ProbMethod method;
};

void run_panel(const Panel& panel, const bench::BenchArgs& args) {
  PrefetchOnlyConfig cfg;
  cfg.n_items = 10;
  cfg.policy = panel.policy;
  cfg.method = panel.method;
  cfg.delta_rule = DeltaRule::PaperTail;  // paper-faithful Figure-3 rule
  cfg.iterations = args.full ? 50'000 : 8'000;
  cfg.scatter_limit = 500;  // the paper plots 500 points
  cfg.seed = args.seed;
  const PrefetchOnlyResult res = run_prefetch_only(cfg);

  PlotOptions opts;
  opts.title = std::string("Fig 4") + panel.label + "  " +
               to_string(panel.policy) + " prefetch, " +
               to_string(panel.method) + " method, n = 10";
  opts.x_label = "v";
  opts.y_label = "T";
  opts.x_min = 0;
  opts.x_max = 100;
  opts.y_min = 0;
  opts.y_max = 50;
  opts.width = 76;
  opts.height = 24;
  std::cout << render_scatter(res.scatter, opts, '*') << "\n";

  // Shape diagnostics the paper calls out.
  std::size_t above_max_r = 0, above_line_T_eq_v = 0;
  for (const auto& [v, T] : res.scatter) {
    if (T > 30.0) ++above_max_r;
    if (T > v) ++above_line_T_eq_v;
  }
  std::cout << "  points with T > max r (30): " << above_max_r
            << "   points above T = v: " << above_line_T_eq_v
            << "   mean T: " << res.metrics.mean_access_time() << "\n\n";

  if (args.csv_dir) {
    auto f = open_csv(*args.csv_dir + "/fig4" + panel.label + "_" +
                      to_string(panel.policy) + "_" +
                      to_string(panel.method) + ".csv");
    CsvWriter w(f);
    w.row({"v", "T"});
    for (const auto& [v, T] : res.scatter) w.row_of(v, T);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = skp::bench::parse_args(argc, argv);
  std::cout << "=== Figure 4: scatter of T against v ('prefetch only') ===\n"
            << "    " << (args.full ? "full" : "reduced")
            << " scale; seed " << args.seed << "\n\n";
  const Panel panels[] = {
      {"a", skp::PrefetchPolicy::SKP, skp::ProbMethod::Skewy},
      {"b", skp::PrefetchPolicy::SKP, skp::ProbMethod::Flat},
      {"c", skp::PrefetchPolicy::KP, skp::ProbMethod::Skewy},
      {"d", skp::PrefetchPolicy::KP, skp::ProbMethod::Flat},
  };
  for (const auto& p : panels) run_panel(p, args);
  return 0;
}
