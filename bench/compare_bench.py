#!/usr/bin/env python3
"""Diff two google-benchmark JSON snapshots and fail on regressions.

Subcommands:

  compare BASELINE.json CURRENT.json [--threshold 0.15]
      For every benchmark present in both snapshots:
        * cpu_time        — fail when CURRENT is more than `threshold`
                            slower than BASELINE (relative).
        * items_per_second — fail when CURRENT is more than `threshold`
                            below BASELINE (throughput; emitted by
                            sim_throughput as requests/second).
        * nodes / solver_nodes counters — fail on ANY difference: these
                            are deterministic search-effort counts, so a
                            drift is an algorithmic change, not noise
                            (pass --allow-node-drift while intentionally
                            landing one).
        * *_hit_rate counters (plan-memoization hit rates, emitted by
                            sim_throughput) — fail when CURRENT drops
                            more than --hit-rate-drop (absolute, default
                            0.02) below BASELINE: the rates are
                            deterministic per machine-independent seed,
                            so a real drop means stored plans stopped
                            being reusable.
        * bytes_per_session counters (capacity bench) — fail when
                            CURRENT grows more than --bytes-growth
                            (relative, default 0.10) above BASELINE:
                            session footprint is an allocator-exact
                            count, so growth is a real capacity
                            regression, not measurement noise.
      Benchmarks present on only one side are reported but do not fail
      the gate (new benchmarks must be able to land).

  merge OUT.json IN1.json [IN2.json ...]
      Concatenate the `benchmarks` arrays of several snapshots (context
      taken from the first input). Used by CI to fold solver_micro and
      sim_throughput into one BENCH_seed.json.

Exit codes: 0 ok, 1 regression found, 2 usage/IO error.
"""

import argparse
import json
import sys

COUNTER_EXACT = ("nodes", "solver_nodes")
HIT_RATE_SUFFIX = "_hit_rate"
BYTES_COUNTER = "bytes_per_session"


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def by_name(snapshot):
    raw, median = {}, {}
    for b in snapshot.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            # repetition runs: compare the median aggregate, which is far
            # less noise-sensitive than any single repetition
            if b.get("aggregate_name") == "median":
                median[b["run_name"]] = b
        else:
            raw[b["name"]] = b
    out = raw
    out.update(median)
    return out


def cmd_merge(args):
    merged = load(args.inputs[0])
    for path in args.inputs[1:]:
        merged.setdefault("benchmarks", []).extend(
            load(path).get("benchmarks", []))
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=1)
    print(f"merged {len(args.inputs)} snapshot(s) -> {args.out} "
          f"({len(merged.get('benchmarks', []))} benchmarks)")
    return 0


def cmd_compare(args):
    base = by_name(load(args.baseline))
    cur = by_name(load(args.current))
    failures = []
    checked = 0

    for name in sorted(base.keys() | cur.keys()):
        if name not in base:
            print(f"  [new ] {name} (not in baseline, skipped)")
            continue
        if name not in cur:
            print(f"  [gone] {name} (not in current, skipped)")
            continue
        b, c = base[name], cur[name]
        checked += 1

        bt, ct = b.get("cpu_time"), c.get("cpu_time")
        if bt and ct:
            ratio = ct / bt
            status = "FAIL" if ratio > 1.0 + args.threshold else "ok"
            print(f"  [{status:4}] {name}: cpu_time {bt:.0f} -> {ct:.0f} "
                  f"{b.get('time_unit', 'ns')} ({ratio - 1.0:+.1%})")
            if status == "FAIL":
                failures.append(f"{name}: cpu_time {ratio:.2f}x baseline")

        bi, ci = b.get("items_per_second"), c.get("items_per_second")
        if bi and ci:
            ratio = ci / bi
            # Symmetric with the time check (cur > base*(1+t) fails):
            # throughput fails when cur < base/(1+t). Unlike 1-t this
            # stays a real bound for any threshold (1-t is vacuous at
            # t >= 1, e.g. CI's loose cross-machine backstop).
            status = "FAIL" if ratio < 1.0 / (1.0 + args.threshold) else "ok"
            print(f"  [{status:4}] {name}: items/s {bi:.0f} -> {ci:.0f} "
                  f"({ratio:.2f}x baseline)")
            if status == "FAIL":
                failures.append(f"{name}: items/s {ratio:.2f}x baseline")

        for counter in COUNTER_EXACT:
            bn, cn = b.get(counter), c.get(counter)
            if bn is None or cn is None:
                continue
            if bn != cn:
                msg = (f"{name}: {counter} {bn:.0f} -> {cn:.0f} "
                       f"(deterministic counter drifted)")
                if args.allow_node_drift:
                    print(f"  [warn] {msg}")
                else:
                    print(f"  [FAIL] {msg}")
                    failures.append(msg)

        bb, cb = b.get(BYTES_COUNTER), c.get(BYTES_COUNTER)
        if isinstance(bb, (int, float)) and isinstance(cb, (int, float)) \
                and bb > 0:
            ratio = cb / bb
            status = "FAIL" if ratio > 1.0 + args.bytes_growth else "ok"
            print(f"  [{status:4}] {name}: {BYTES_COUNTER} "
                  f"{bb:.0f} -> {cb:.0f} ({ratio - 1.0:+.1%})")
            if status == "FAIL":
                failures.append(
                    f"{name}: {BYTES_COUNTER} grew {ratio - 1.0:.1%} "
                    f"(> {args.bytes_growth:.0%})")

        for counter in sorted(set(b) | set(c)):
            if not counter.endswith(HIT_RATE_SUFFIX):
                continue
            bh, ch = b.get(counter), c.get(counter)
            if not isinstance(bh, (int, float)):
                if isinstance(ch, (int, float)):
                    print(f"  [new ] {name}: {counter} appeared ({ch:.3f})")
                continue
            if not isinstance(ch, (int, float)):
                # The emitter only writes the counter when the tier was
                # consulted at all, so a vanished counter IS the
                # regression this gate exists for — do not fail open.
                msg = (f"{name}: {counter} disappeared "
                       f"(baseline {bh:.3f}; memoization no longer "
                       f"consulted?)")
                print(f"  [FAIL] {msg}")
                failures.append(msg)
                continue
            drop = bh - ch
            status = "FAIL" if drop > args.hit_rate_drop else "ok"
            print(f"  [{status:4}] {name}: {counter} {bh:.3f} -> {ch:.3f} "
                  f"({-drop:+.3f})")
            if status == "FAIL":
                failures.append(
                    f"{name}: {counter} dropped {drop:.3f} "
                    f"(> {args.hit_rate_drop})")

    print(f"\nchecked {checked} benchmark(s), "
          f"{len(failures)} regression(s) "
          f"(threshold {args.threshold:.0%})")
    for f in failures:
        print(f"  regression: {f}")
    if checked == 0:
        # Nothing overlapped (renamed benchmarks, wrong file, flag
        # mismatch): a gate that compared nothing must not pass.
        print("error: no benchmark appears in both snapshots — "
              "the gate compared nothing", file=sys.stderr)
        return 1
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_cmp = sub.add_parser("compare", help="diff two snapshots")
    p_cmp.add_argument("baseline")
    p_cmp.add_argument("current")
    p_cmp.add_argument("--threshold", type=float, default=0.15,
                       help="relative time/throughput tolerance "
                            "(default 0.15 = 15%%)")
    p_cmp.add_argument("--allow-node-drift", action="store_true",
                       help="downgrade deterministic-counter mismatches "
                            "to warnings")
    p_cmp.add_argument("--hit-rate-drop", type=float, default=0.02,
                       help="max absolute drop tolerated on *_hit_rate "
                            "counters (default 0.02)")
    p_cmp.add_argument("--bytes-growth", type=float, default=0.10,
                       help="max relative growth tolerated on "
                            "bytes_per_session counters (default 0.10)")
    p_cmp.set_defaults(func=cmd_compare)

    p_merge = sub.add_parser("merge", help="concatenate snapshots")
    p_merge.add_argument("out")
    p_merge.add_argument("inputs", nargs="+")
    p_merge.set_defaults(func=cmd_merge)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
