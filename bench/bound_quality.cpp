// E4: quality of the Eq.-(7) upper bound (Theorem 2) and its effect on the
// branch-and-bound search. For random instances we report the bound gap
// (U - g*) / U and the fraction of search nodes pruned, across catalog
// sizes and time regimes.
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "core/brute_force.hpp"
#include "core/skp_solver.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "workload/prob_gen.hpp"

namespace {

using namespace skp;

Instance draw(std::size_t n, double v_hi, ProbMethod method, Rng& rng) {
  Instance inst;
  inst.P = generate_probabilities(n, method, rng);
  inst.r.resize(n);
  for (auto& x : inst.r) x = rng.uniform(1.0, 30.0);
  inst.v = rng.uniform(1.0, v_hi);
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = skp::bench::parse_args(argc, argv);
  const int trials = args.full ? 2000 : 400;
  std::cout << "=== E4: Eq.-(7) upper bound quality & pruning power ===\n"
            << "    " << trials << " random instances per row; seed "
            << args.seed << "\n\n";
  std::cout << "  n     v_hi  method  mean rel gap  p95 rel gap  "
               "mean prune frac  bound>=g violations\n";

  std::optional<std::ofstream> csv;
  if (args.csv_dir) {
    csv = open_csv(*args.csv_dir + "/bound_quality.csv");
    CsvWriter(*csv).row({"n", "v_hi", "method", "mean_rel_gap",
                         "p95_rel_gap", "mean_prune_frac", "violations"});
  }

  Rng rng(args.seed);
  for (const std::size_t n : {6u, 10u, 14u, 18u}) {
    for (const double v_hi : {20.0, 100.0}) {
      for (const ProbMethod method :
           {ProbMethod::Skewy, ProbMethod::Flat}) {
        std::vector<double> gaps;
        OnlineStats prune_frac;
        int violations = 0;
        for (int t = 0; t < trials; ++t) {
          const Instance inst = draw(n, v_hi, method, rng);
          const double ub = skp_upper_bound(inst);
          const SkpSolution sol = solve_skp(inst);
          if (sol.g > ub + 1e-9) ++violations;
          if (ub > 1e-12) gaps.push_back((ub - sol.g) / ub);
          const double total =
              static_cast<double>(sol.forward_steps + sol.bound_prunes);
          if (total > 0) {
            prune_frac.add(static_cast<double>(sol.bound_prunes) / total);
          }
        }
        const Summary s = summarize(gaps);
        std::cout << "  " << std::setw(3) << n << "  " << std::setw(6)
                  << v_hi << "  " << std::setw(6) << to_string(method)
                  << "  " << std::setw(12) << s.mean << "  "
                  << std::setw(11) << s.p95 << "  " << std::setw(15)
                  << prune_frac.mean() << "  " << violations << "\n";
        if (csv) {
          CsvWriter(*csv).row_of(n, v_hi, to_string(method), s.mean, s.p95,
                                 prune_frac.mean(), violations);
        }
      }
    }
  }
  std::cout << "\n  (violations must be 0: Theorem 2 guarantees U >= g*)\n";
  return 0;
}
