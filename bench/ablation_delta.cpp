// E6: ablation of the Figure-3 delta accounting (DESIGN.md D1).
//
// The paper's forward move charges the stretch penalty with the tail
// probability sum_{i=j..n} P_i, dropping items excluded earlier in the
// search; Theorem 3 requires the complement 1 - sum_{i in K} P_i. This
// bench quantifies, over random instances, how often the two rules return
// different lists, how often the PaperTail list is strictly worse in true
// g, and the size of the loss. It also reports how often BOTH rules fall
// short of the unrestricted-order optimum (the Theorem-1 validity gap,
// DESIGN.md D8).
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "core/access_model.hpp"
#include "core/brute_force.hpp"
#include "core/skp_solver.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "workload/prob_gen.hpp"

namespace {

using namespace skp;

double true_g(const Instance& inst, const PrefetchList& F) {
  return F.empty() ? 0.0 : access_improvement(inst, F);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = skp::bench::parse_args(argc, argv);
  const int trials = args.full ? 20000 : 4000;
  std::cout << "=== E6: Figure-3 delta-rule ablation (PaperTail vs "
               "ExactComplement) ===\n"
            << "    " << trials << " random instances per row; seed "
            << args.seed << "\n\n";
  std::cout << "  n     v_hi  diff lists  papertail worse  mean loss  "
               "max loss  canon<full (D8)\n";

  std::optional<std::ofstream> csv;
  if (args.csv_dir) {
    csv = open_csv(*args.csv_dir + "/ablation_delta.csv");
    CsvWriter(*csv).row({"n", "v_hi", "diff_lists", "papertail_worse",
                         "mean_loss", "max_loss", "canonical_suboptimal"});
  }

  Rng rng(args.seed);
  for (const std::size_t n : {6u, 10u, 14u}) {
    for (const double v_hi : {15.0, 40.0, 100.0}) {
      int diff_lists = 0, worse = 0, canon_subopt = 0;
      OnlineStats loss;
      double max_loss = 0.0;
      for (int t = 0; t < trials; ++t) {
        Instance inst;
        inst.P = generate_probabilities(n, ProbMethod::Flat, rng);
        inst.r.resize(n);
        for (auto& x : inst.r) x = rng.uniform(1.0, 30.0);
        inst.v = rng.uniform(1.0, v_hi);

        SkpOptions exact;
        SkpOptions tail;
        tail.delta_rule = DeltaRule::PaperTail;
        const SkpSolution se = solve_skp(inst, exact);
        const SkpSolution st = solve_skp(inst, tail);
        if (se.F != st.F) ++diff_lists;
        const double ge = true_g(inst, se.F);
        const double gt = true_g(inst, st.F);
        if (gt < ge - 1e-9) {
          ++worse;
          loss.add(ge - gt);
          max_loss = std::max(max_loss, ge - gt);
        }
        // The exhaustive D8 check is exponential; sample every 8th trial.
        if (t % 8 == 0) {
          const BruteForceResult full = brute_force_skp(inst);
          if (full.g > ge + 1e-9) ++canon_subopt;
        }
      }
      std::cout << "  " << std::setw(3) << n << "  " << std::setw(6)
                << v_hi << "  " << std::setw(10) << diff_lists << "  "
                << std::setw(15) << worse << "  " << std::setw(9)
                << loss.mean() << "  " << std::setw(8) << max_loss << "  "
                << canon_subopt << "\n";
      if (csv) {
        CsvWriter(*csv).row_of(n, v_hi, diff_lists, worse, loss.mean(),
                               max_loss, canon_subopt);
      }
    }
  }
  std::cout
      << "\n  diff lists        = instances where the two rules return "
         "different F\n"
      << "  papertail worse   = instances where PaperTail's F has strictly "
         "lower true g\n"
      << "  canon<full (D8)   = instances (1-in-8 sample) where even the "
         "exact canonical\n"
      << "                      optimum trails the unrestricted-order "
         "optimum (Theorem-1\n"
      << "                      validity gap)\n";
  return 0;
}
