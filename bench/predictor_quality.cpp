// E7 (paper Section 6 extension): replace the oracle transition row with a
// learned access model and measure the cost. The paper presupposes the
// probabilities are known; this bench shows how the SKP+Pr pipeline
// degrades under Markov-count, PPM and dependency-graph predictors on the
// Fig. 7 workload, and how it recovers as the predictor trains.
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "sim/prefetch_cache.hpp"
#include "util/csv.hpp"

namespace {

using namespace skp;

}  // namespace

int main(int argc, char** argv) {
  const auto args = skp::bench::parse_args(argc, argv);
  const std::size_t requests = args.full ? 50'000 : 6'000;
  std::cout << "=== E7: oracle vs learned access models (SKP+Pr, Fig. 7 "
               "workload) ===\n"
            << "    " << requests << " requests per cell; seed "
            << args.seed << "\n\n";

  const PredictorKind kinds[] = {
      PredictorKind::Oracle, PredictorKind::Markov1, PredictorKind::Ppm,
      PredictorKind::Lz78, PredictorKind::DependencyWindow};
  const std::size_t cache_sizes[] = {5, 20, 50};

  std::optional<std::ofstream> csv;
  if (args.csv_dir) {
    csv = open_csv(*args.csv_dir + "/predictor_quality.csv");
    CsvWriter(*csv).row({"predictor", "cache_size", "mean_T", "hit_rate",
                         "net_time_per_req"});
  }

  std::cout << "  predictor  cache  mean T    hit rate  net time/req\n";
  for (const auto kind : kinds) {
    for (const std::size_t cache_size : cache_sizes) {
      PrefetchCacheConfig cfg;
      cfg.cache_size = cache_size;
      cfg.policy = PrefetchPolicy::SKP;
      cfg.sub = SubArbitration::DS;
      cfg.requests = requests;
      cfg.warmup = requests / 5;  // let the predictor train
      cfg.seed = args.seed;
      cfg.predictor = kind;
      const auto res = run_prefetch_cache(cfg);
      std::cout << "  " << std::setw(9) << to_string(kind) << "  "
                << std::setw(5) << cache_size << "  " << std::setw(8)
                << res.metrics.mean_access_time() << "  " << std::setw(8)
                << res.metrics.hit_rate() << "  "
                << res.metrics.network_time_per_request() << "\n";
      if (csv) {
        CsvWriter(*csv).row_of(to_string(kind), cache_size,
                               res.metrics.mean_access_time(),
                               res.metrics.hit_rate(),
                               res.metrics.network_time_per_request());
      }
    }
  }
  std::cout << "\n  expected shape: oracle lowest; learned predictors "
               "approach it with training;\n"
            << "  all predictors beat No+Pr at equal cache size (compare "
               "with fig7 bench).\n";
  return 0;
}
