// E5: solver microbenchmarks (google-benchmark).
//
// The paper claims the Figure-3 algorithm "uses theoretically proven
// apparatus to reduce the search space"; these benchmarks quantify that:
// SKP branch-and-bound vs exhaustive subset search across n, plus the KP
// solvers for context, under both probability shapes.
//
// Every row performs one untimed warmup solve before its timed loop (cold
// first-call effects — lazy allocations, cold caches — stay out of the
// numbers) and reports items_per_second with items = solves, so per-solve
// ns is 1e9 / items_per_second straight from the snapshot next to the
// batched-solve rows in sim_throughput.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/brute_force.hpp"
#include "core/kp_solver.hpp"
#include "core/skp_solver.hpp"
#include "workload/prob_gen.hpp"

namespace {

using namespace skp;

Instance make_instance(std::size_t n, ProbMethod method,
                       std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  inst.P = generate_probabilities(n, method, rng);
  inst.r.resize(n);
  for (auto& x : inst.r) {
    x = static_cast<double>(rng.uniform_int(1, 30));
  }
  inst.v = static_cast<double>(rng.uniform_int(1, 100));
  return inst;
}

void BM_SkpSolve_Skewy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, ProbMethod::Skewy, 42 + n);
  std::uint64_t nodes = 0;
  benchmark::DoNotOptimize(solve_skp(inst).g);  // warmup (untimed)
  for (auto _ : state) {
    const auto sol = solve_skp(inst);
    nodes = sol.forward_steps;
    benchmark::DoNotOptimize(sol.g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_SkpSolve_Skewy)->Arg(10)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_SkpSolve_Flat(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, ProbMethod::Flat, 43 + n);
  std::uint64_t nodes = 0;
  benchmark::DoNotOptimize(solve_skp(inst).g);  // warmup (untimed)
  for (auto _ : state) {
    const auto sol = solve_skp(inst);
    nodes = sol.forward_steps;
    benchmark::DoNotOptimize(sol.g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_SkpSolve_Flat)->Arg(10)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_SkpSolve_PaperTail(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, ProbMethod::Skewy, 42 + n);
  SkpOptions opts;
  opts.delta_rule = DeltaRule::PaperTail;
  benchmark::DoNotOptimize(solve_skp(inst, opts).g);  // warmup (untimed)
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_skp(inst, opts).g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SkpSolve_PaperTail)->Arg(10)->Arg(50)->Arg(100);

void BM_SkpBruteForce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, ProbMethod::Flat, 44 + n);
  benchmark::DoNotOptimize(brute_force_skp(inst).g);  // warmup (untimed)
  for (auto _ : state) {
    benchmark::DoNotOptimize(brute_force_skp(inst).g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SkpBruteForce)->Arg(10)->Arg(14)->Arg(18);

void BM_KpBranchAndBound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, ProbMethod::Flat, 45 + n);
  benchmark::DoNotOptimize(solve_kp_bb(inst).value);  // warmup (untimed)
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_kp_bb(inst).value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KpBranchAndBound)->Arg(10)->Arg(50)->Arg(100);

void BM_KpDynamicProgram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, ProbMethod::Flat, 46 + n);
  benchmark::DoNotOptimize(solve_kp_dp(inst).value);  // warmup (untimed)
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_kp_dp(inst).value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KpDynamicProgram)->Arg(10)->Arg(50)->Arg(100);

void BM_UpperBound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, ProbMethod::Skewy, 47 + n);
  benchmark::DoNotOptimize(skp_upper_bound(inst));  // warmup (untimed)
  for (auto _ : state) {
    benchmark::DoNotOptimize(skp_upper_bound(inst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UpperBound)->Arg(10)->Arg(100)->Arg(1000);

// The Fig. 7 planning step: sparse Markov row (<= 20 positive entries) as
// candidates — the workload the engine actually faces per request.
void BM_SkpSolve_MarkovRow(benchmark::State& state) {
  Rng rng(48);
  // Emulate a paper-default row: 100-item catalog, 20 successors.
  const std::size_t n = 100;
  Instance inst;
  inst.P.assign(n, 0.0);
  inst.r.resize(n);
  for (auto& x : inst.r) x = static_cast<double>(rng.uniform_int(1, 30));
  std::vector<ItemId> cand;
  double mass = 0;
  std::vector<double> w(20);
  for (auto& x : w) {
    x = rng.exponential(1.0);
    mass += x;
  }
  for (std::size_t k = 0; k < 20; ++k) {
    const auto id = static_cast<ItemId>(k * 5);
    inst.P[Instance::idx(id)] = w[k] / mass;
    cand.push_back(id);
  }
  inst.v = 50.0;
  benchmark::DoNotOptimize(solve_skp(inst, cand).g);  // warmup (untimed)
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_skp(inst, cand).g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SkpSolve_MarkovRow);

}  // namespace
