// E8 (paper Section 6 extension): the access-improvement vs network-usage
// trade-off. "Even if the most probable items are already in the cache,
// [the algorithm] will prefetch the lesser candidates if, by doing so, it
// can improve the expected access time even by an insignificant amount. A
// policy is needed to weigh the opposing goals."
//
// The engine's min_profit_threshold implements the simplest such policy:
// suppress prefetches with P*r below the threshold. This bench sweeps the
// threshold and reports the frontier (mean T, network time per request,
// wasted prefetch fraction) on the Fig. 7 workload.
#include <iomanip>
#include <iostream>
#include <iterator>

#include "bench_util.hpp"
#include "sim/runtime.hpp"
#include "sim/sweep.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace skp;
  const auto args = skp::bench::parse_args(argc, argv);
  const std::size_t requests = args.full ? 50'000 : 6'000;
  ThreadPool pool(args.threads);
  std::cout << "=== E8: access improvement vs network usage "
               "(threshold sweep) ===\n"
            << "    " << requests << " requests per point; seed "
            << args.seed << "; " << pool.thread_count()
            << " sweep thread(s)\n\n";

  std::optional<std::ofstream> csv;
  if (args.csv_dir) {
    csv = open_csv(*args.csv_dir + "/network_usage.csv");
    CsvWriter(*csv).row({"threshold", "mean_T", "net_time_per_req",
                         "prefetches", "waste_rate"});
  }

  std::cout << "  threshold  mean T    net time/req  prefetches  "
               "waste rate\n";
  const double thresholds[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 1e9};
  // One SimSpec per threshold — independent sims: fan out, report in
  // order.
  std::vector<SimSpec> specs;
  for (const double threshold : thresholds) {
    SimSpec spec;  // prefetch_cache driver, paper-default source
    spec.cache_size = 20;
    spec.policy = PrefetchPolicy::SKP;
    spec.sub = SubArbitration::DS;
    spec.requests = requests;
    spec.seed = args.seed;
    spec.min_profit_threshold = threshold;
    specs.push_back(spec);
  }
  const auto results = sweep_configs(
      pool, specs, [&](const SimSpec& spec) { return run_sim(spec); });
  for (std::size_t i = 0; i < std::size(thresholds); ++i) {
    const double th = thresholds[i];
    const auto& res = results[i];
    std::cout << "  " << std::setw(9) << th << "  " << std::setw(8)
              << res.metrics.mean_access_time() << "  " << std::setw(12)
              << res.metrics.network_time_per_request() << "  "
              << std::setw(10) << res.metrics.prefetch_fetches << "  "
              << res.metrics.waste_rate() << "\n";
    if (csv) {
      CsvWriter(*csv).row_of(th, res.metrics.mean_access_time(),
                             res.metrics.network_time_per_request(),
                             res.metrics.prefetch_fetches,
                             res.metrics.waste_rate());
    }
  }
  std::cout << "\n  threshold 0 = the paper's algorithm (maximal "
               "improvement, maximal usage);\n"
            << "  threshold 1e9 = no prefetching (demand traffic only). "
               "The rows in between\n"
            << "  trace the trade-off frontier the paper's Section 6 "
               "calls for.\n";
  return 0;
}
