// Figure 5 reproduction: average access time against viewing time for the
// four policies {no prefetch, perfect prefetch, KP prefetch, SKP prefetch}
// under (a) skewy/n=10, (b) flat/n=10, (c) skewy/n=25, (d) flat/n=25.
// v ranges 1..100 but the plot is clipped at v = 50, as in the paper.
//
// Expected shapes: perfect lowest; SKP slightly below KP under skewy
// (except very small v, where SKP dips below no-prefetch quality); SKP and
// KP indistinguishable under flat; n = 25 raises all curves.
//
// Reproduction note (DESIGN.md D1, EXPERIMENTS.md): the paper's two SKP
// claims are split across the two delta accountings. The verbatim
// Figure-3 rule ("SKP paper") reproduces the small-v exception — at tiny
// v it always stretches on some item (the tail-sum delta of the last
// candidate is P_n * v-hat > 0) and loses to no-prefetch — but
// overshoots it, making SKP visibly worse than KP under the flat method.
// The corrected rule ("SKP exact") reproduces "slightly better than KP"
// and the near-identical flat panels, but provably never crosses the
// no-prefetch curve. Both are plotted.
#include <iostream>
#include <iterator>
#include <span>

#include "bench_util.hpp"
#include "sim/prefetch_only.hpp"  // PrefetchOnlyResult curve type
#include "sim/runtime.hpp"
#include "sim/sweep.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace skp;

struct Policy {
  const char* name;
  PrefetchPolicy policy;
  DeltaRule rule;
  char glyph;
};

const Policy kPolicies[] = {
    {"no prefetch", PrefetchPolicy::None, DeltaRule::ExactComplement, 'n'},
    {"perfect prefetch", PrefetchPolicy::Perfect,
     DeltaRule::ExactComplement, 'p'},
    {"KP prefetch", PrefetchPolicy::KP, DeltaRule::ExactComplement, 'k'},
    {"SKP prefetch (paper delta)", PrefetchPolicy::SKP,
     DeltaRule::PaperTail, 's'},
    {"SKP prefetch (exact delta)", PrefetchPolicy::SKP,
     DeltaRule::ExactComplement, 'x'},
};

// One panel's five policy runs, already simulated by the sweep below.
void run_panel(const char* label, std::size_t n, ProbMethod method,
               const bench::BenchArgs& args,
               std::span<const SimResult> results) {
  std::vector<PlotSeries> series;
  std::vector<std::vector<std::pair<double, double>>> raw;
  for (std::size_t k = 0; k < std::size(kPolicies); ++k) {
    const auto& res = results[k];
    PlotSeries s;
    s.name = kPolicies[k].name;
    s.glyph = kPolicies[k].glyph;
    for (const auto& [v, t] : res.avg_T_by_v->series()) {
      if (v <= 50.0) s.points.emplace_back(v, t);  // paper clips at 50
    }
    raw.push_back(s.points);
    series.push_back(std::move(s));
  }

  PlotOptions opts;
  opts.title = std::string("Fig 5") + label + "  n = " +
               std::to_string(n) + ", " + to_string(method) + " method";
  opts.x_label = "v";
  opts.y_label = "avg T";
  opts.x_min = 0;
  opts.x_max = 50;
  opts.y_min = 0;
  opts.y_max = 25;
  opts.width = 76;
  opts.height = 24;
  std::cout << render_plot(series, opts) << "\n";

  // Numeric summary row (overall means over the clipped window).
  std::cout << "  window v in [1,50] means:";
  for (std::size_t k = 0; k < series.size(); ++k) {
    double sum = 0;
    for (const auto& [v, t] : series[k].points) sum += t;
    std::cout << "  " << kPolicies[k].name << " = "
              << (series[k].points.empty()
                      ? 0.0
                      : sum / static_cast<double>(series[k].points.size()));
  }
  std::cout << "\n\n";

  if (args.csv_dir) {
    auto f = open_csv(*args.csv_dir + "/fig5" + std::string(label) + "_n" +
                      std::to_string(n) + "_" + to_string(method) + ".csv");
    CsvWriter w(f);
    w.row({"v", "none", "perfect", "KP", "SKP_paper", "SKP_exact"});
    // Series share the v grid (every integer v observed at this scale).
    for (std::size_t i = 0; i < raw[0].size(); ++i) {
      w.row_of(raw[0][i].first, raw[0][i].second,
               i < raw[1].size() ? raw[1][i].second : 0.0,
               i < raw[2].size() ? raw[2][i].second : 0.0,
               i < raw[3].size() ? raw[3][i].second : 0.0,
               i < raw[4].size() ? raw[4][i].second : 0.0);
    }
  }
}

}  // namespace

struct Panel {
  const char* label;
  std::size_t n;
  ProbMethod method;
};

int main(int argc, char** argv) {
  const auto args = skp::bench::parse_args(argc, argv);
  ThreadPool pool(args.threads);
  std::cout << "=== Figure 5: average T against v, four policies ===\n"
            << "    " << (args.full ? "full" : "reduced")
            << " scale; seed " << args.seed << "; " << pool.thread_count()
            << " sweep thread(s)\n\n";

  const Panel panels[] = {
      {"a", 10, ProbMethod::Skewy},
      {"b", 10, ProbMethod::Flat},
      {"c", 25, ProbMethod::Skewy},
      {"d", 25, ProbMethod::Flat},
  };

  // All 4 panels x 5 policies enumerate as one SimSpec sweep of
  // independently seeded serial sims dispatched through the driver
  // registry; results are therefore identical for any thread count (and
  // machine-independent, unlike a chunk-split run).
  const std::size_t per_panel = std::size(kPolicies);
  std::vector<SimSpec> specs;
  for (const Panel& panel : panels) {
    for (const Policy& pol : kPolicies) {
      SimSpec spec;
      spec.driver = SimDriverKind::PrefetchOnly;
      spec.workload.kind = SimWorkloadKind::Iid;
      spec.workload.n_items = panel.n;
      spec.workload.method = panel.method;
      spec.policy = pol.policy;
      spec.delta_rule = pol.rule;
      spec.requests = args.full ? 50'000 : 10'000;
      spec.seed = args.seed;
      specs.push_back(spec);
    }
  }
  const std::vector<SimResult> results = sweep_configs(
      pool, specs, [&](const SimSpec& spec) { return run_sim(spec); });

  for (std::size_t p = 0; p < std::size(panels); ++p) {
    run_panel(panels[p].label, panels[p].n, panels[p].method, args,
              std::span<const SimResult>(results)
                  .subspan(p * per_panel, per_panel));
  }
  return 0;
}
