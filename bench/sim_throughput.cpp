// Sim-throughput microbenchmarks (google-benchmark) for the CI perf
// snapshot.
//
// One reduced Figure-7 point per policy: a complete run_prefetch_cache sim
// (paper-default 100-state source, cache size 20) measured end to end.
// `items_per_second` in the JSON output is requests/second — the number
// the ROADMAP "Perf baseline" item asks to track next to the solver
// micro-benches — and the `solver_nodes` counter is deterministic, which
// gives bench/compare_bench.py a machine-independent regression signal on
// top of the timing. Memoizable rows additionally report their
// `plan_hit_rate` (also deterministic), which compare_bench.py gates
// against absolute regressions, and carry a _NoPlanCache twin so the
// snapshot records the on/off delta.
//
// On top of the per-policy points, one `BM_Driver_<name>` row per entry
// in the unified runtime's driver registry (sim/runtime.hpp) tracks
// requests/sec of every simulator surface — including the netsim DES
// path the per-policy rows never touched — so a regression in any driver
// shows up in the snapshot regardless of which figure exercises it.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/skp_solver.hpp"
#include "sim/prefetch_cache.hpp"
#include "sim/runtime.hpp"
#include "util/rng.hpp"
#include "workload/markov_source.hpp"

namespace {

using namespace skp;

constexpr std::size_t kRequests = 2'000;

void run_point(benchmark::State& state, PrefetchPolicy policy,
               SubArbitration sub, bool use_plan_cache = true) {
  PrefetchCacheConfig cfg;  // paper-default Markov source
  cfg.cache_size = 20;
  cfg.policy = policy;
  cfg.sub = sub;
  cfg.requests = kRequests;
  cfg.seed = 1;
  cfg.use_plan_cache = use_plan_cache;
  std::uint64_t nodes = 0;
  PlanMemoStats pc;
  for (auto _ : state) {
    const auto res = run_prefetch_cache(cfg);
    nodes = res.metrics.solver_nodes;
    pc = res.plan_cache;
    benchmark::DoNotOptimize(res.metrics.hits);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRequests));
  state.counters["solver_nodes"] = static_cast<double>(nodes);
  // Each tier's rate is emitted only when that tier was consulted at all:
  // under LFU/DS sub-arbitration the plans tier is structurally dead
  // (freqs move every request) and is no longer instantiated, so those
  // rows carry only select_hit_rate.
  if (use_plan_cache && pc.plans.lookups() > 0) {
    state.counters["plan_hit_rate"] = pc.plans.hit_rate();
  }
  if (use_plan_cache && pc.selections.lookups() > 0) {
    state.counters["select_hit_rate"] = pc.selections.hit_rate();
  }
}

void BM_Fig7Point_NoPr(benchmark::State& state) {
  run_point(state, PrefetchPolicy::None, SubArbitration::None);
}
BENCHMARK(BM_Fig7Point_NoPr);

void BM_Fig7Point_KpPr(benchmark::State& state) {
  run_point(state, PrefetchPolicy::KP, SubArbitration::None);
}
BENCHMARK(BM_Fig7Point_KpPr);

void BM_Fig7Point_SkpPr(benchmark::State& state) {
  run_point(state, PrefetchPolicy::SKP, SubArbitration::None);
}
BENCHMARK(BM_Fig7Point_SkpPr);

// On/off twins: the same point with memoization disabled, so the
// committed snapshot records the plan-cache delta on this machine.
void BM_Fig7Point_KpPr_NoPlanCache(benchmark::State& state) {
  run_point(state, PrefetchPolicy::KP, SubArbitration::None, false);
}
BENCHMARK(BM_Fig7Point_KpPr_NoPlanCache);

void BM_Fig7Point_SkpPr_NoPlanCache(benchmark::State& state) {
  run_point(state, PrefetchPolicy::SKP, SubArbitration::None, false);
}
BENCHMARK(BM_Fig7Point_SkpPr_NoPlanCache);

// Paper-scale points (the Fig.-7 per-point request count): recurring
// (state, cache) pairs are warm here, so this pair records the
// steady-state plan-cache speedup and hit rate the reduced points
// understate.
void run_full_point(benchmark::State& state, bool use_plan_cache) {
  PrefetchCacheConfig cfg;
  cfg.cache_size = 20;
  cfg.policy = PrefetchPolicy::SKP;
  cfg.requests = 50'000;
  cfg.seed = 1;
  cfg.use_plan_cache = use_plan_cache;
  PlanMemoStats pc;
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const auto res = run_prefetch_cache(cfg);
    nodes = res.metrics.solver_nodes;
    pc = res.plan_cache;
    benchmark::DoNotOptimize(res.metrics.hits);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * cfg.requests));
  state.counters["solver_nodes"] = static_cast<double>(nodes);
  if (use_plan_cache) {
    state.counters["plan_hit_rate"] = pc.plans.hit_rate();
    state.counters["select_hit_rate"] = pc.selections.hit_rate();
  }
}

void BM_Fig7FullPoint_SkpPr(benchmark::State& state) {
  run_full_point(state, true);
}
BENCHMARK(BM_Fig7FullPoint_SkpPr);

void BM_Fig7FullPoint_SkpPr_NoPlanCache(benchmark::State& state) {
  run_full_point(state, false);
}
BENCHMARK(BM_Fig7FullPoint_SkpPr_NoPlanCache);

// The sub-arbitrated rows carry the _SelOnly suffix since the plans tier
// stopped being instantiated under LFU/DS (frequency books move every
// request, so that tier could never hit and is now skipped wholesale) —
// these rows report select_hit_rate only. The rename retires the old
// rows' plan_hit_rate history instead of tripping the disappearance gate
// in compare_bench.py.
void BM_Fig7Point_SkpPrLfu_SelOnly(benchmark::State& state) {
  run_point(state, PrefetchPolicy::SKP, SubArbitration::LFU);
}
BENCHMARK(BM_Fig7Point_SkpPrLfu_SelOnly);

void BM_Fig7Point_SkpPrDs_SelOnly(benchmark::State& state) {
  run_point(state, PrefetchPolicy::SKP, SubArbitration::DS);
}
BENCHMARK(BM_Fig7Point_SkpPrDs_SelOnly);

// One representative SimSpec per registered driver, dispatched through
// run_sim. Reduced scale (kRequests cycles each); the scenario/netsim
// points use the scenario-matrix shape (24 items, cache 6, learned or
// oracle prediction as each pipeline requires).
SimSpec driver_spec(SimDriverKind kind) {
  SimSpec spec;
  spec.driver = kind;
  spec.requests = kRequests;
  spec.seed = 1;
  switch (kind) {
    case SimDriverKind::PrefetchOnly:
      spec.workload.kind = SimWorkloadKind::Iid;
      spec.workload.n_items = 10;
      break;
    case SimDriverKind::PrefetchCache:
      spec.cache_size = 20;  // paper-default Markov source
      break;
    case SimDriverKind::TraceReplay:
      spec.predictor = PredictorKind::Markov1;
      spec.cache_size = 20;
      break;
    case SimDriverKind::NetsimDes:
      spec.cache_size = 20;  // oracle rows over a unit link: r_i = size_i
      break;
    case SimDriverKind::Scenario:
      spec.workload.n_items = 24;
      spec.workload.out_degree_lo = 4;
      spec.workload.out_degree_hi = 8;
      spec.workload.v_lo = 10.0;
      spec.workload.v_hi = 60.0;
      spec.predictor = PredictorKind::Markov1;
      spec.predictor_min_prob = 0.02;
      spec.predictor_warmup = 64;
      spec.cache_size = 6;
      break;
    case SimDriverKind::MultiClientDes:
      // Four oracle chains contending for one shared link; `requests`
      // counts per client, so the point still serves kRequests cycles.
      spec.multi_client.clients = 4;
      spec.requests = kRequests / 4;
      spec.cache_size = 10;
      break;
    case SimDriverKind::SkpdLoopback:
      // Same decision path as netsim_des, served over a socket; the
      // registry walk below skips it (needs a running skpd daemon).
      spec.cache_size = 20;
      break;
  }
  return spec;
}

void run_driver_point(benchmark::State& state, const SimSpec& spec) {
  std::uint64_t nodes = 0;
  PlanMemoStats pc;
  for (auto _ : state) {
    const SimResult res = run_sim(spec);
    nodes = res.metrics.solver_nodes;
    pc = res.plan_cache;
    benchmark::DoNotOptimize(res.metrics.hits);
  }
  // multi_client serves `requests` cycles on EACH client per run.
  const std::size_t per_run =
      spec.requests * (spec.driver == SimDriverKind::MultiClientDes
                           ? spec.multi_client.clients
                           : 1);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * per_run));
  state.counters["solver_nodes"] = static_cast<double>(nodes);
  if (pc.plans.lookups() > 0) {
    state.counters["plan_hit_rate"] = pc.plans.hit_rate();
  }
  if (pc.selections.lookups() > 0) {
    state.counters["select_hit_rate"] = pc.selections.hit_rate();
  }
}

// Registered at static-init time by walking the registry, so a driver
// added to the runtime is tracked in the snapshot without touching this
// file (benchmark names follow the registry's stable tokens).
const int kRegisterDriverPoints = [] {
  for (const SimDriver& driver : driver_registry()) {
    // skpd_loopback needs a daemon process (SKPD_BIN/SKPD_ADDR); the
    // in-process snapshot cannot time it meaningfully anyway — its cost
    // is the wire, not the decision path it shares with netsim_des.
    if (driver.kind == SimDriverKind::SkpdLoopback) continue;
    const SimSpec spec = driver_spec(driver.kind);
    benchmark::RegisterBenchmark(
        (std::string("BM_Driver_") + driver.name).c_str(),
        [spec](benchmark::State& state) { run_driver_point(state, spec); });
  }
  return 0;
}();

// ---- Raw-speed round 3: batched solving + pipelined execution -----------

// Batched SKP solving (core/skp_solver.hpp solve_skp_batch_into): k lanes
// share one canonical order and one Figure-3 tail-sum build. k = 1 is the
// baseline (the batch API at its degenerate size, directly comparable to
// BM_SkpSolve rows in solver_micro); items/sec counts SOLVES, so the
// k = 4 / k = 16 rows show the per-solve setup amortization.
void run_solve_batch(benchmark::State& state, std::size_t lanes) {
  Rng build(1);
  MarkovSourceConfig scfg;  // paper-default chain
  MarkovSource source(scfg, build);
  CanonicalOrderTable canon(scfg.n_states);
  const std::size_t state_id = 0;
  const InstanceView base = source.view_at(state_id);
  const CanonicalOrderTable::Row row =
      canon.row(state_id, base, source.successors(state_id));

  std::vector<SkpSolution> sols(lanes);
  std::vector<SkpBatchItem> items;
  for (std::size_t k = 0; k < lanes; ++k) {
    InstanceView inst = base;
    // Spread v across lanes (the lockstep sweep's shape: same P/r row,
    // different cache state / viewing budget per lane).
    inst.v = base.v * (0.5 + static_cast<double>(k) /
                                 static_cast<double>(lanes));
    items.push_back({inst, &sols[k]});
  }
  SkpOptions opts;
  opts.delta_rule = DeltaRule::PaperTail;  // exercises the shared tail sums
  SkpWorkspace ws;
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    solve_skp_batch_into(items, row.order, opts, ws);
    nodes = 0;
    for (const SkpSolution& s : sols) nodes += s.forward_steps;
    benchmark::DoNotOptimize(nodes);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * lanes));
  state.counters["solver_nodes"] = static_cast<double>(nodes);
}

void BM_SolveBatch_k1(benchmark::State& state) { run_solve_batch(state, 1); }
BENCHMARK(BM_SolveBatch_k1);
void BM_SolveBatch_k4(benchmark::State& state) { run_solve_batch(state, 4); }
BENCHMARK(BM_SolveBatch_k4);
void BM_SolveBatch_k16(benchmark::State& state) {
  run_solve_batch(state, 16);
}
BENCHMARK(BM_SolveBatch_k16);

// Lockstep batched sim execution (run_prefetch_cache_batch): a 16-lane
// cache-size sweep sharing one walk, vs 16 solo runs. items/sec counts
// lane-requests, so the two rows are directly comparable.
void run_sweep(benchmark::State& state, bool batched) {
  std::vector<PrefetchCacheConfig> configs;
  for (std::size_t k = 0; k < 16; ++k) {
    PrefetchCacheConfig cfg;
    cfg.cache_size = 5 + 5 * k;
    cfg.policy = PrefetchPolicy::SKP;
    cfg.requests = kRequests;
    cfg.seed = 1;
    configs.push_back(cfg);
  }
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    nodes = 0;
    if (batched) {
      for (const auto& res : run_prefetch_cache_batch(configs)) {
        nodes += res.metrics.solver_nodes;
      }
    } else {
      for (const auto& cfg : configs) {
        nodes += run_prefetch_cache(cfg).metrics.solver_nodes;
      }
    }
    benchmark::DoNotOptimize(nodes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * kRequests * configs.size()));
  state.counters["solver_nodes"] = static_cast<double>(nodes);
}

void BM_SimSweep16_Solo(benchmark::State& state) { run_sweep(state, false); }
BENCHMARK(BM_SimSweep16_Solo);
void BM_SimSweep16_Batched(benchmark::State& state) {
  run_sweep(state, true);
}
BENCHMARK(BM_SimSweep16_Batched);

// Pipelined single-sim execution (PrefetchCacheConfig::pipeline_workers):
// the same Fig.-7 point with the selection stage pre-solved by worker
// threads. Counters are bit-identical to BM_Fig7Point_SkpPr by contract;
// only the timing differs (and only on multi-core hosts — a 1-CPU box
// shows the coordination overhead instead).
void run_pipelined_point(benchmark::State& state, std::size_t workers) {
  PrefetchCacheConfig cfg;
  cfg.cache_size = 20;
  cfg.policy = PrefetchPolicy::SKP;
  cfg.requests = kRequests;
  cfg.seed = 1;
  cfg.pipeline_workers = workers;
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const auto res = run_prefetch_cache(cfg);
    nodes = res.metrics.solver_nodes;
    benchmark::DoNotOptimize(res.metrics.hits);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRequests));
  state.counters["solver_nodes"] = static_cast<double>(nodes);
}

void BM_Fig7Point_SkpPr_Pipelined2(benchmark::State& state) {
  run_pipelined_point(state, 2);
}
BENCHMARK(BM_Fig7Point_SkpPr_Pipelined2);

// The learned-predictor variant exercises predict_into + the dense-row
// candidate filter, the other per-request hot path.
void BM_Fig7Point_SkpMarkov1(benchmark::State& state) {
  PrefetchCacheConfig cfg;
  cfg.cache_size = 20;
  cfg.policy = PrefetchPolicy::SKP;
  cfg.predictor = PredictorKind::Markov1;
  cfg.requests = kRequests;
  cfg.seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_prefetch_cache(cfg).metrics.hits);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRequests));
}
BENCHMARK(BM_Fig7Point_SkpMarkov1);

}  // namespace
