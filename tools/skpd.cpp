// skpd — the prefetch service daemon: crash-tolerant, resumable, drainable.
//
// A single-process poll() event loop serving the netsim_des decision path
// over loopback TCP. Each client session is a daemon-hosted NetsimStepper
// (sim/netsim_stepper.hpp) behind the exactly-once replay discipline of
// SkpdSessionStore, so a client may crash, reconnect with its session
// token and replay from its last acked sequence number — and the decision
// path stays bit-identical to an uninterrupted run.
//
// Robustness machinery, all deadline-driven off one EventQueue (the DES
// timer core from sim/event_queue.hpp, here run against the wall clock):
//
//   keepalive   Peers idle for keepalive/2 get a PING; peers still silent
//               at the full keepalive deadline are evicted. The SESSION
//               survives eviction — only the connection dies.
//   linger      A session with no attached connection (client crashed, or
//               evicted) is reaped after --session-linger seconds.
//   backpressure  Per-connection write queues are bounded. Crossing the
//               soft limit forces the session's overload controller one
//               rung down (cheaper plans for a reader that cannot keep
//               up); crossing the hard limit evicts the connection
//               outright. Again: the session survives for resume.
//   drain       SIGTERM/SIGINT stops accepting, answers every request
//               already buffered, flushes write queues (bounded by a
//               deadline), writes the final per-session stats CSV, and
//               exits 0. The skpd_loopback driver requires exactly that
//               exit status from a spawned daemon.
//
// Startup banner: "SKPD_PORT=<n>" on stdout once the listener is bound
// (with --port=0 the kernel picks; the banner is how a parent learns the
// port). All logging goes to stderr.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/catalog.hpp"
#include "sim/event_queue.hpp"
#include "sim/netsim_stepper.hpp"
#include "sim/session_store.hpp"
#include "sim/skpd_protocol.hpp"
#include "sim/skpd_session.hpp"
#include "util/csv.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_stop_signal(int) { g_stop = 1; }

struct Options {
  int port = 0;                           // 0 = kernel-assigned
  double keepalive = 30.0;                // seconds of peer silence
  double session_linger = 120.0;          // detached-session lifetime
  std::size_t write_queue_soft = 1u << 16;  // bytes: degrade rung
  std::size_t write_queue_hard = 1u << 18;  // bytes: evict connection
  double drain_timeout = 5.0;             // flush budget after SIGTERM
  int sndbuf = 0;                         // SO_SNDBUF cap (0 = kernel)
  std::string stats_csv;                  // final stats path ("" = skip)
  // Capacity hosting: create this many idle sessions at startup, all of
  // one spec group sharing a single SharedCatalog. They hold no
  // connection, so the linger reaper (which watches DETACHED sessions,
  // i.e. ones a client abandoned) never touches them — they sit resident
  // until drain, which is exactly the 100k-idle-session posture the
  // capacity work gates on.
  std::size_t preload_sessions = 0;
  std::string preload_spec;               // encoded spec file ("" = builtin)
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: skpd [--port=N] [--keepalive=SEC]\n"
               "            [--session-linger=SEC] [--write-queue-soft=BYTES]\n"
               "            [--write-queue-hard=BYTES] [--drain-timeout=SEC]\n"
               "            [--sndbuf=BYTES] [--stats-csv=PATH]\n"
               "            [--preload-sessions=N] [--preload-spec=FILE]\n"
               "\n"
               "Serves netsim_des sessions over loopback TCP (see\n"
               "src/sim/skpd_protocol.hpp for the wire contract). Prints\n"
               "SKPD_PORT=<n> on stdout once listening. SIGTERM/SIGINT\n"
               "drain gracefully and exit 0.\n");
}

bool parse_flag(const std::string& arg, const char* name,
                std::string* value) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    try {
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        std::exit(0);
      } else if (parse_flag(arg, "--port", &v)) {
        opt.port = std::stoi(v);
      } else if (parse_flag(arg, "--keepalive", &v)) {
        opt.keepalive = std::stod(v);
      } else if (parse_flag(arg, "--session-linger", &v)) {
        opt.session_linger = std::stod(v);
      } else if (parse_flag(arg, "--write-queue-soft", &v)) {
        opt.write_queue_soft = std::stoull(v);
      } else if (parse_flag(arg, "--write-queue-hard", &v)) {
        opt.write_queue_hard = std::stoull(v);
      } else if (parse_flag(arg, "--drain-timeout", &v)) {
        opt.drain_timeout = std::stod(v);
      } else if (parse_flag(arg, "--sndbuf", &v)) {
        // Caps each connection's kernel send buffer so the userspace
        // write-queue limits (not kernel autotuning) govern when a slow
        // reader is detected. 0 keeps the kernel default.
        opt.sndbuf = std::stoi(v);
      } else if (parse_flag(arg, "--stats-csv", &v)) {
        opt.stats_csv = v;
      } else if (parse_flag(arg, "--preload-sessions", &v)) {
        opt.preload_sessions = std::stoull(v);
      } else if (parse_flag(arg, "--preload-spec", &v)) {
        opt.preload_spec = v;
      } else {
        std::fprintf(stderr, "skpd: unknown argument '%s'\n", arg.c_str());
        return std::nullopt;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "skpd: bad value in '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (opt.port < 0 || opt.port > 65535 || opt.sndbuf < 0 ||
      opt.keepalive <= 0.0 ||
      opt.session_linger <= 0.0 || opt.drain_timeout <= 0.0 ||
      opt.write_queue_soft == 0 ||
      opt.write_queue_hard < opt.write_queue_soft) {
    std::fprintf(stderr,
                 "skpd: invalid flag values (need 0<=port<=65535, positive "
                 "durations, 0 < soft <= hard write-queue limits)\n");
    return std::nullopt;
  }
  return opt;
}

struct Conn {
  int fd = -1;
  std::uint64_t token = 0;  // attached session, 0 before HELLO
  std::string rx;
  std::size_t rx_off = 0;
  std::string tx;
  std::size_t tx_off = 0;
  double last_rx = 0.0;        // daemon-clock time of last inbound byte
  bool ping_outstanding = false;
  bool above_soft = false;     // edge detector for the degrade ladder
  bool closing = false;        // flush tx, then close
  std::size_t tx_pending() const noexcept { return tx.size() - tx_off; }
};

class Daemon {
 public:
  explicit Daemon(Options opt)
      : opt_(std::move(opt)),
        store_(skp::recommended_shard_count(
            std::max<std::size_t>(opt_.preload_sessions, 1024))) {}

  int run() {
    if (!preload_sessions()) return 1;
    if (!open_listener()) return 1;
    // The maintenance tick drives keepalive and linger deadlines; a
    // quarter of the keepalive interval bounds deadline overshoot.
    tick_ = std::min(opt_.keepalive, opt_.session_linger) / 4.0;
    if (tick_ < 0.01) tick_ = 0.01;
    timers_.schedule_in(tick_, [this] { maintenance(); });

    while (!(draining_ && conns_.empty())) {
      const double now = wall_now();
      timers_.run_until(now);
      if (g_stop && !draining_) begin_drain();
      if (draining_ && wall_now() >= drain_deadline_) {
        log("drain deadline passed with %zu connection(s) unflushed",
            conns_.size());
        break;
      }
      poll_once();
    }
    for (auto& [fd, conn] : conns_) ::close(conn.fd);
    conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (!write_stats_csv()) return 1;
    log("drained: %zu session(s) at exit", store_.size());
    return 0;
  }

 private:
  double wall_now() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(d).count();
  }

  void log(const char* fmt, ...) {
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "[skpd] ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
  }

  // The built-in preload spec: a small oracle netsim_des group, sized so
  // an idle session is a few KB (n=25 catalog, lazy plan caches) while
  // still exercising the full decision path if a client ever drove it.
  static skp::SimSpec default_preload_spec() {
    skp::SimSpec spec;
    spec.driver = skp::SimDriverKind::NetsimDes;
    spec.workload.kind = skp::SimWorkloadKind::Markov;
    spec.workload.n_items = 25;
    spec.workload.out_degree_lo = 5;
    spec.workload.out_degree_hi = 10;
    spec.cache_size = 5;
    spec.requests = 100;
    spec.seed = 42;
    return spec;
  }

  bool preload_sessions() {
    if (opt_.preload_sessions == 0) return true;
    skp::SimSpec spec;
    try {
      if (!opt_.preload_spec.empty()) {
        std::ifstream in(opt_.preload_spec);
        if (!in) {
          log("cannot read preload spec '%s'", opt_.preload_spec.c_str());
          return false;
        }
        std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
        spec = skp::decode_sim_spec(text);
      } else {
        spec = default_preload_spec();
      }
      // One catalog acquire for the whole batch: every preloaded session
      // references the same grounding (sizes, r, master chain).
      const std::shared_ptr<const skp::SharedCatalog> catalog =
          skp::SharedCatalog::acquire(spec);
      for (std::size_t i = 0; i < opt_.preload_sessions; ++i) {
        store_.create(spec, catalog);
      }
    } catch (const std::exception& e) {
      log("preload failed: %s", e.what());
      return false;
    }
    log("preloaded %zu idle session(s) across %zu shard(s)",
        store_.size(),
        skp::recommended_shard_count(opt_.preload_sessions));
    return true;
  }

  bool open_listener() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      log("socket: %s", std::strerror(errno));
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const int lflags = ::fcntl(listen_fd_, F_GETFL, 0);
    ::fcntl(listen_fd_, F_SETFL, lflags | O_NONBLOCK);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      log("bind/listen on 127.0.0.1:%d: %s", opt_.port,
          std::strerror(errno));
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    const int port = ntohs(bound.sin_port);
    log("listening on 127.0.0.1:%d (keepalive=%gs linger=%gs "
        "write-queue soft=%zu hard=%zu)",
        port, opt_.keepalive, opt_.session_linger, opt_.write_queue_soft,
        opt_.write_queue_hard);
    // The readiness banner: parents (SkpdDaemonProcess) block on this.
    std::printf("SKPD_PORT=%d\n", port);
    std::fflush(stdout);
    return true;
  }

  void poll_once() {
    std::vector<pollfd> pfds;
    pfds.reserve(conns_.size() + 1);
    if (!draining_) pfds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = 0;
      if (!conn.closing) events |= POLLIN;
      if (conn.tx_pending() > 0) events |= POLLOUT;
      if (events == 0) {
        // Closing with nothing left to flush: close now, poll next round.
        continue;
      }
      pfds.push_back({fd, events, 0});
    }

    int timeout_ms = static_cast<int>(tick_ * 1000.0);
    if (!timers_.empty()) {
      const double until = timers_.next_when() - wall_now();
      timeout_ms = until <= 0.0 ? 0 : static_cast<int>(until * 1000.0) + 1;
    }
    if (draining_) timeout_ms = std::min(timeout_ms, 50);

    const int pr = ::poll(pfds.data(),
                          static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (pr < 0 && errno != EINTR) {
      log("poll: %s", std::strerror(errno));
      return;
    }

    for (const pollfd& p : pfds) {
      if (p.fd == listen_fd_ && !draining_) {
        if (p.revents & POLLIN) accept_new();
        continue;
      }
      // A handler earlier in this round may have evicted this fd.
      auto it = conns_.find(p.fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if (p.revents & (POLLERR | POLLNVAL)) {
        close_conn(p.fd, "socket error");
        continue;
      }
      if (p.revents & POLLIN) {
        if (!read_ready(conn)) continue;  // connection was closed
      }
      if (p.revents & (POLLOUT | POLLHUP)) flush_tx(conn);
      // flush_tx may have closed the connection: re-resolve before use.
      it = conns_.find(p.fd);
      if (it != conns_.end() && it->second.closing &&
          it->second.tx_pending() == 0) {
        close_conn(p.fd, nullptr);
      }
    }
    // Connections that finished flushing while not in pfds this round.
    std::vector<int> done;
    for (auto& [fd, conn] : conns_) {
      if (conn.closing && conn.tx_pending() == 0) done.push_back(fd);
    }
    for (int fd : done) close_conn(fd, nullptr);
  }

  void accept_new() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient failure: next poll round retries
      }
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (opt_.sndbuf > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opt_.sndbuf,
                     sizeof(opt_.sndbuf));
      }
      Conn conn;
      conn.fd = fd;
      conn.last_rx = wall_now();
      conns_.emplace(fd, std::move(conn));
    }
  }

  // Returns false when the connection was closed.
  bool read_ready(Conn& conn) {
    const int fd = conn.fd;
    for (;;) {
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.rx.append(buf, static_cast<std::size_t>(n));
        conn.last_rx = wall_now();
        conn.ping_outstanding = false;
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        close_conn(fd, "peer closed");
        return false;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(fd, std::strerror(errno));
      return false;
    }
    return drain_rx(conn);
  }

  // Parses and handles every complete frame buffered on `conn`. Returns
  // false when the connection was closed as a consequence.
  bool drain_rx(Conn& conn) {
    const int fd = conn.fd;
    for (;;) {
      std::optional<skp::SkpdFrame> frame;
      try {
        frame = skp::parse_skpd_frame(conn.rx, conn.rx_off);
      } catch (const std::invalid_argument& e) {
        // Unframeable garbage: the stream cannot be re-synchronized.
        protocol_error(conn, e.what());
        return conns_.count(fd) != 0;
      }
      if (!frame) break;
      try {
        handle_frame(conn, *frame);
      } catch (const std::invalid_argument& e) {
        protocol_error(conn, e.what());
      }
      if (conns_.count(fd) == 0) return false;
      if (conn.closing) break;  // BYE or error: ignore trailing frames
    }
    if (conn.rx_off == conn.rx.size()) {
      conn.rx.clear();
      conn.rx_off = 0;
    }
    return true;
  }

  void handle_frame(Conn& conn, const skp::SkpdFrame& frame) {
    using skp::SkpdFrameType;
    switch (frame.type) {
      case SkpdFrameType::kHello:
        handle_hello(conn, skp::decode_hello(frame.payload));
        return;
      case SkpdFrameType::kStep: {
        skp::SkpdSession& session = require_session(conn);
        const skp::SkpdStep step = skp::decode_step(frame.payload);
        const skp::NetsimStepSnapshot snap =
            session.step(step.seq, step.ack);
        send_frame(conn, SkpdFrameType::kStepResult,
                   skp::encode_step_result(snap));
        return;
      }
      case SkpdFrameType::kPing:
        send_frame(conn, SkpdFrameType::kPong,
                   skp::encode_ping(skp::decode_ping(frame.payload)));
        return;
      case SkpdFrameType::kPong:
        skp::decode_ping(frame.payload);
        return;  // liveness already recorded by the read path
      case SkpdFrameType::kStats: {
        skp::SkpdSession& session = require_session(conn);
        if (!session.done()) {
          throw std::invalid_argument(
              "STATS before the run completed (" +
              std::to_string(session.executed()) + "/" +
              std::to_string(session.stepper().total()) + " cycles)");
        }
        send_frame(conn, SkpdFrameType::kStatsResult,
                   skp::encode_sim_result(session.stepper().result()));
        return;
      }
      case SkpdFrameType::kBye: {
        if (conn.token != 0) {
          log("session %llu retired (BYE)",
              static_cast<unsigned long long>(conn.token));
          attached_.erase(conn.token);
          detached_at_.erase(conn.token);
          store_.erase(conn.token);
          conn.token = 0;
        }
        conn.closing = true;
        return;
      }
      case SkpdFrameType::kWelcome:
      case SkpdFrameType::kStepResult:
      case SkpdFrameType::kStatsResult:
      case SkpdFrameType::kError:
        break;
    }
    throw std::invalid_argument(std::string("unexpected ") +
                                skp::to_string(frame.type) +
                                " frame from a client");
  }

  void handle_hello(Conn& conn, const skp::SkpdHello& hello) {
    if (hello.version != skp::kSkpdProtocolVersion) {
      throw std::invalid_argument(
          "unsupported protocol version " + std::to_string(hello.version) +
          " (daemon speaks " + std::to_string(skp::kSkpdProtocolVersion) +
          ")");
    }
    if (conn.token != 0) {
      throw std::invalid_argument("duplicate HELLO on an attached connection");
    }
    skp::SkpdWelcome welcome;
    if (hello.token == 0) {
      skp::SkpdSession& session = store_.create(hello.spec_text);
      attach(conn, session.token());
      welcome.token = session.token();
      welcome.executed = session.executed();
      welcome.resumed = false;
      log("session %llu created (%llu cycles)",
          static_cast<unsigned long long>(session.token()),
          static_cast<unsigned long long>(session.stepper().total()));
    } else {
      skp::SkpdSession* session = store_.find(hello.token);
      if (session == nullptr) {
        throw std::invalid_argument("unknown session token " +
                                    std::to_string(hello.token));
      }
      session->acknowledge(hello.last_ack);
      // Latest connection wins: a stale connection still attached (the
      // client crashed without a FIN we have seen yet) is evicted so the
      // resuming one owns the session.
      const auto prev = attached_.find(hello.token);
      if (prev != attached_.end() && prev->second != conn.fd) {
        close_conn(prev->second, "superseded by a resuming connection");
      }
      attach(conn, hello.token);
      welcome.token = hello.token;
      welcome.executed = session->executed();
      welcome.resumed = true;
      log("session %llu resumed at cycle %llu (ack %llu)",
          static_cast<unsigned long long>(hello.token),
          static_cast<unsigned long long>(session->executed()),
          static_cast<unsigned long long>(hello.last_ack));
    }
    send_frame(conn, skp::SkpdFrameType::kWelcome,
               skp::encode_welcome(welcome));
  }

  skp::SkpdSession& require_session(Conn& conn) {
    if (conn.token == 0) {
      throw std::invalid_argument("request before HELLO");
    }
    skp::SkpdSession* session = store_.find(conn.token);
    if (session == nullptr) {
      throw std::invalid_argument("session expired");
    }
    return *session;
  }

  void attach(Conn& conn, std::uint64_t token) {
    conn.token = token;
    attached_[token] = conn.fd;
    detached_at_.erase(token);
  }

  // Queues a frame and applies the backpressure ladder: soft limit forces
  // the session one overload rung down (degraded but correct service for
  // a slow reader), hard limit evicts the connection (session survives).
  void send_frame(Conn& conn, skp::SkpdFrameType type,
                  std::string_view payload) {
    const int fd = conn.fd;  // conn may dangle after any close below
    skp::append_skpd_frame(conn.tx, type, payload);
    flush_tx(conn);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& live = it->second;
    const std::size_t pending = live.tx_pending();
    if (pending > opt_.write_queue_hard) {
      close_conn(fd, "write queue overflow");
      return;
    }
    if (pending > opt_.write_queue_soft) {
      if (!live.above_soft && live.token != 0) {
        if (skp::SkpdSession* session = store_.find(live.token)) {
          if (session->stepper().force_degrade()) {
            log("session %llu degraded to rung %d (slow reader, %zu "
                "bytes queued)",
                static_cast<unsigned long long>(live.token),
                static_cast<int>(session->stepper().rung()), pending);
          }
        }
      }
      live.above_soft = true;
    }
  }

  void flush_tx(Conn& conn) {
    const int fd = conn.fd;
    while (conn.tx_off < conn.tx.size()) {
      const ssize_t n =
          ::send(fd, conn.tx.data() + conn.tx_off,
                 conn.tx.size() - conn.tx_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.tx_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      close_conn(fd, "send failed");
      return;
    }
    conn.tx.clear();
    conn.tx_off = 0;
    conn.above_soft = false;  // re-arm the degrade ladder edge detector
  }

  // Sends an ERROR frame and schedules the connection for close-after-
  // flush. The session (if any) detaches but survives for resume.
  void protocol_error(Conn& conn, const std::string& message) {
    const int fd = conn.fd;  // conn may dangle if send_frame evicts it
    log("fd %d protocol error: %s", fd, message.c_str());
    send_frame(conn, skp::SkpdFrameType::kError, message);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    detach_only(it->second);
    it->second.closing = true;
  }

  void detach_only(Conn& conn) {
    if (conn.token == 0) return;
    const auto it = attached_.find(conn.token);
    if (it != attached_.end() && it->second == conn.fd) {
      attached_.erase(it);
      detached_at_[conn.token] = wall_now();
    }
    conn.token = 0;
  }

  void close_conn(int fd, const char* reason) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    if (reason != nullptr) log("fd %d closed: %s", fd, reason);
    detach_only(it->second);
    ::close(fd);
    conns_.erase(it);
  }

  void maintenance() {
    const double now = timers_.now();
    // Keepalive: ping the quiet, evict the silent. Collect first — the
    // actions mutate conns_.
    std::vector<int> to_ping, to_evict;
    for (auto& [fd, conn] : conns_) {
      if (conn.closing) continue;
      const double idle = now - conn.last_rx;
      if (idle >= opt_.keepalive) {
        to_evict.push_back(fd);
      } else if (idle >= opt_.keepalive / 2.0 && !conn.ping_outstanding) {
        to_ping.push_back(fd);
      }
    }
    for (int fd : to_evict) close_conn(fd, "keepalive expired");
    for (int fd : to_ping) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      it->second.ping_outstanding = true;
      send_frame(it->second, skp::SkpdFrameType::kPing,
                 skp::encode_ping(++ping_nonce_));
    }
    // Linger: reap sessions nobody has claimed for too long.
    std::vector<std::uint64_t> dead;
    for (const auto& [token, since] : detached_at_) {
      if (now - since >= opt_.session_linger) dead.push_back(token);
    }
    for (std::uint64_t token : dead) {
      log("session %llu reaped after %gs detached",
          static_cast<unsigned long long>(token), opt_.session_linger);
      detached_at_.erase(token);
      store_.erase(token);
    }
    timers_.schedule_in(tick_, [this] { maintenance(); });
  }

  void begin_drain() {
    draining_ = true;
    drain_deadline_ = wall_now() + opt_.drain_timeout;
    ::close(listen_fd_);
    listen_fd_ = -1;
    log("drain: listener closed, %zu connection(s), %zu session(s)",
        conns_.size(), store_.size());
    // Answer everything already buffered (the in-flight work), then mark
    // every connection close-after-flush.
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (!drain_rx(it->second)) continue;
      it->second.closing = true;
    }
  }

  // The final stats CSV: one row per surviving session, written on drain.
  // An empty table still gets its header — "daemon drained cleanly" must
  // be distinguishable from "daemon never got that far".
  bool write_stats_csv() {
    if (opt_.stats_csv.empty()) return true;
    std::ofstream os(opt_.stats_csv);
    if (!os) {
      log("cannot write stats csv '%s'", opt_.stats_csv.c_str());
      return false;
    }
    skp::CsvWriter csv(os);
    csv.row({"token", "executed", "total", "done", "requests", "hits",
             "demand_fetches", "prefetch_fetches", "solver_nodes", "plans",
             "deadline_hits", "rung"});
    store_.for_each([&](std::uint64_t token, skp::SkpdSession& session) {
      const skp::NetsimStepSnapshot snap = session.stepper().snapshot();
      csv.row_of(token, session.executed(), session.stepper().total(),
                 session.done() ? 1 : 0, snap.requests, snap.hits,
                 snap.demand_fetches, snap.prefetch_fetches,
                 snap.solver_nodes, snap.plans, snap.deadline_hits,
                 static_cast<int>(session.stepper().rung()));
    });
    os.flush();
    return os.good();
  }

  Options opt_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  int listen_fd_ = -1;
  double tick_ = 1.0;
  skp::EventQueue timers_;
  skp::SkpdSessionStore store_;
  std::map<int, Conn> conns_;
  std::map<std::uint64_t, int> attached_;       // token -> owning fd
  std::map<std::uint64_t, double> detached_at_;  // token -> detach time
  std::uint64_t ping_nonce_ = 0;
  bool draining_ = false;
  double drain_deadline_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> opt = parse_args(argc, argv);
  if (!opt) {
    usage(stderr);
    return 2;
  }
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, &on_stop_signal);
  std::signal(SIGINT, &on_stop_signal);
  Daemon daemon(*opt);
  return daemon.run();
}
