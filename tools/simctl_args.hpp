// Shared argument-parsing helpers for the simctl CLI, factored out of
// the binary so the axis grammar and the JSON spec-file lowering are
// unit-testable (tests/test_simctl_args.cpp). Everything throws
// std::invalid_argument on bad input; simctl's main turns that into a
// "simctl: ..." diagnostic and a nonzero exit.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/link_schedule.hpp"
#include "util/json.hpp"

namespace skp::simctl {

[[noreturn]] inline void bad_arg(const std::string& message) {
  throw std::invalid_argument(message);
}

inline std::vector<std::string> split(const std::string& value, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(value);
  while (std::getline(is, part, sep)) parts.push_back(part);
  return parts;
}

inline std::uint64_t parse_u64(const std::string& value, const char* flag) {
  // Digits only: std::stoull would parse a leading '-' and wrap it into
  // a huge value, turning a typo into a near-infinite sweep.
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    bad_arg(std::string(flag) + " expects an unsigned integer, got '" +
            value + "'");
  }
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    bad_arg(std::string(flag) + " expects an unsigned integer, got '" +
            value + "'");
  }
}

inline double parse_double(const std::string& value, const char* flag) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || value.empty()) {
    bad_arg(std::string(flag) + " expects a number, got '" + value + "'");
  }
  // std::stod happily accepts "inf"/"nan" (any sign/case), and every
  // numeric spec field treats non-finite values as nonsense — a
  // `--threshold inf` would otherwise run a whole sweep of garbage
  // before anything notices. Reject once here, for every caller.
  if (!std::isfinite(parsed)) {
    bad_arg(std::string(flag) + " expects a finite number, got '" + value +
            "'");
  }
  return parsed;
}

// Numeric axis: "1,5,10" or "1:100:5" (inclusive bounds). Range
// expansion is index-based (lo + i*step) over a count fixed up front by
// rounding (hi-lo)/step to the nearest integer, ties DOWN — a half-step
// endpoint tolerance. Repeated `x += step` accumulated floating-point
// error that could skip the HI endpoint outright (0:1:0.1 used to yield
// 10 points, not 11) and emitted drifted 0.30000000000000004-style grid
// values; a single multiply keeps each value within one rounding of
// exact, and deciding the count once keeps the inclusive upper bound
// robust to that rounding (a HI within half a step of the grid snaps to
// the nearest grid point instead of falling off the axis). Ties round
// down so an exact half-step remainder — 1:10:2 — never emits a value a
// full step/2 past HI.
inline std::vector<double> parse_numeric_axis(const std::string& value,
                                              const char* flag) {
  std::vector<double> axis;
  for (const std::string& token : split(value, ',')) {
    const std::vector<std::string> range = split(token, ':');
    if (range.size() == 3) {
      const double lo = parse_double(range[0], flag);
      const double hi = parse_double(range[1], flag);
      const double step = parse_double(range[2], flag);
      if (step <= 0.0 || hi < lo) {
        bad_arg(std::string(flag) + ": bad range '" + token + "'");
      }
      const auto count = static_cast<std::size_t>(
          std::max(0.0, std::ceil((hi - lo) / step - 0.5)));
      for (std::size_t i = 0; i <= count; ++i) {
        axis.push_back(lo + static_cast<double>(i) * step);
      }
    } else if (range.size() == 1) {
      axis.push_back(parse_double(token, flag));
    } else {
      bad_arg(std::string(flag) + ": bad token '" + token + "'");
    }
  }
  if (axis.empty()) bad_arg(std::string(flag) + ": empty axis");
  return axis;
}

// Integer axis: "1,5,10" or "1:9:2" (inclusive bounds). Seeds must not go
// through the double-valued axis — values above 2^53 (or fractional ones)
// would be silently corrupted by the round-trip.
inline std::vector<std::uint64_t> parse_integer_axis(
    const std::string& value, const char* flag) {
  std::vector<std::uint64_t> axis;
  for (const std::string& token : split(value, ',')) {
    const std::vector<std::string> range = split(token, ':');
    if (range.size() == 3) {
      const std::uint64_t lo = parse_u64(range[0], flag);
      const std::uint64_t hi = parse_u64(range[1], flag);
      const std::uint64_t step = parse_u64(range[2], flag);
      if (step == 0 || hi < lo) {
        bad_arg(std::string(flag) + ": bad range '" + token + "'");
      }
      for (std::uint64_t x = lo; x <= hi; x += step) {
        axis.push_back(x);
        if (x > hi - step) break;  // guard wrap-around at the top
      }
    } else if (range.size() == 1) {
      axis.push_back(parse_u64(token, flag));
    } else {
      bad_arg(std::string(flag) + ": bad token '" + token + "'");
    }
  }
  if (axis.empty()) bad_arg(std::string(flag) + ": empty axis");
  return axis;
}

inline void parse_range_pair(const std::string& value, const char* flag,
                             double& lo, double& hi) {
  const std::vector<std::string> parts = split(value, ':');
  if (parts.size() != 2) bad_arg(std::string(flag) + " expects LO:HI");
  lo = parse_double(parts[0], flag);
  hi = parse_double(parts[1], flag);
}

// Link schedule: comma list of DUR:BW:LAT phases, e.g.
// "200:1:0,50:0.25:2" = 200 time units at full quality, then a 50-unit
// degraded window, cycling (sim/link_schedule.hpp).
inline std::vector<LinkPhase> parse_link_schedule(const std::string& value,
                                                  const char* flag) {
  std::vector<LinkPhase> schedule;
  for (const std::string& token : split(value, ',')) {
    const std::vector<std::string> parts = split(token, ':');
    if (parts.size() != 3) {
      bad_arg(std::string(flag) + ": phase '" + token +
              "' expects DUR:BW:LAT");
    }
    LinkPhase phase;
    phase.duration = parse_double(parts[0], flag);
    phase.bandwidth = parse_double(parts[1], flag);
    phase.latency = parse_double(parts[2], flag);
    if (phase.duration <= 0.0 || phase.bandwidth <= 0.0 ||
        phase.latency < 0.0) {
      bad_arg(std::string(flag) + ": phase '" + token +
              "' needs duration > 0, bandwidth > 0, latency >= 0");
    }
    schedule.push_back(phase);
  }
  if (schedule.empty()) bad_arg(std::string(flag) + ": empty schedule");
  return schedule;
}

// Retry policy: "MAX[:BASE[:FACTOR[:JITTER]]]", e.g. "3:0.5:2:0.1" =
// up to 3 attempts, re-attempt k waiting 0.5 * 2^(k-1), inflated by up
// to 10% deterministic jitter (sim/fault.hpp). Omitted fields keep the
// RetryPolicy defaults; range checks live in validate_fault_spec so the
// CLI and the JSON path reject the same inputs the runtime would.
inline RetryPolicy parse_retry_policy(const std::string& value,
                                      const char* flag) {
  const std::vector<std::string> parts = split(value, ':');
  if (parts.empty() || parts.size() > 4) {
    bad_arg(std::string(flag) + " expects MAX[:BASE[:FACTOR[:JITTER]]], "
            "got '" + value + "'");
  }
  RetryPolicy policy;
  policy.max_attempts =
      static_cast<std::size_t>(parse_u64(parts[0], flag));
  if (parts.size() > 1) policy.backoff_base = parse_double(parts[1], flag);
  if (parts.size() > 2) {
    policy.backoff_factor = parse_double(parts[2], flag);
  }
  if (parts.size() > 3) policy.jitter = parse_double(parts[3], flag);
  return policy;
}

// ---- JSON spec files ----------------------------------------------------
//
// A sweep definition as a document instead of a hand-assembled flag
// string:
//
//   {
//     "base":  {"driver": "netsim_des", "n_items": 24, "requests": 300,
//               "predictor_warmup": 32, "min_prob": 0.02},
//     "axes":  {"predictors": ["oracle", "markov1"], "seeds": "1:3:1",
//               "cache_sizes": [6, 12]},
//     "shard": "0/2",
//     "csv":   "shard0.csv",
//     "threads": 4
//   }
//
// Lowering is purely syntactic: every "base" member becomes the
// single-value flag of the same name (underscores spelled as dashes),
// every "axes" member the axis flag of the same name, and "shard" /
// "csv" / "threads" their execution flags. Values keep their literal
// text (numbers are never round-tripped through double), arrays join
// with commas, `true` lowers a bare switch (e.g. "pr", "no_plan_cache"),
// and `false`/`null` omit it. Unknown member names simply lower to
// unknown flags, which the flag parser then rejects with its usual
// message — one grammar, one validator. Flags given on the command line
// AFTER --spec override the file (last assignment wins).
inline std::vector<std::string> spec_file_to_flags(
    const std::string& json_text) {
  const JsonValue doc = JsonValue::parse(json_text);
  if (doc.kind() != JsonValue::Kind::Object) {
    bad_arg("--spec: document must be a JSON object");
  }
  std::vector<std::string> flags;
  auto flag_name = [](const std::string& key) {
    std::string name = "--" + key;
    for (char& c : name) {
      if (c == '_') c = '-';
    }
    return name;
  };
  auto scalar_text = [&](const std::string& key,
                         const JsonValue& v) -> std::string {
    switch (v.kind()) {
      case JsonValue::Kind::String: return v.as_string();
      case JsonValue::Kind::Number: return v.number_text();
      default:
        bad_arg("--spec: member '" + key + "' must be a " +
                "string or number, got " + JsonValue::kind_name(v.kind()));
    }
  };
  auto lower_member = [&](const std::string& key, const JsonValue& v) {
    switch (v.kind()) {
      case JsonValue::Kind::Bool:
        if (v.as_bool()) flags.push_back(flag_name(key));
        break;
      case JsonValue::Kind::Null:
        break;
      case JsonValue::Kind::Array: {
        std::string joined;
        for (const JsonValue& item : v.items()) {
          if (!joined.empty()) joined += ',';
          joined += scalar_text(key, item);
        }
        if (joined.empty()) {
          bad_arg("--spec: member '" + key + "' is an empty array");
        }
        flags.push_back(flag_name(key));
        flags.push_back(joined);
        break;
      }
      default:
        flags.push_back(flag_name(key));
        flags.push_back(scalar_text(key, v));
        break;
    }
  };

  for (const auto& [key, value] : doc.members()) {
    if (key == "base" || key == "axes") {
      if (value.kind() != JsonValue::Kind::Object) {
        bad_arg("--spec: '" + key + "' must be a JSON object");
      }
      for (const auto& [name, member] : value.members()) {
        lower_member(name, member);
      }
    } else if (key == "shard" || key == "csv") {
      flags.push_back(flag_name(key));
      flags.push_back(value.as_string());
    } else if (key == "threads") {
      flags.push_back("--threads");
      flags.push_back(scalar_text(key, value));
    } else {
      bad_arg("--spec: unknown top-level member '" + key +
              "' (expected base | axes | shard | csv | threads)");
    }
  }
  return flags;
}

}  // namespace skp::simctl
