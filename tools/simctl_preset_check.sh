#!/usr/bin/env bash
# Preset-equivalence gate for simctl: `simctl run --preset NAME --csv DIR`
# must reproduce the corresponding bench binary's CSV files byte for
# byte at the same (scale, seed). Covers all four presets at reduced
# scale. Usage: tools/simctl_preset_check.sh [BUILD_DIR] (default
# "build").
set -euo pipefail

build_dir="${1:-build}"
if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 2
fi
simctl="$build_dir/tools/simctl"
if [[ ! -x "$simctl" ]]; then
  echo "error: $simctl not found — build the simctl target first" >&2
  exit 2
fi
for bench in fig5_prefetch_only fig7_prefetch_cache ablation_sizes \
             network_usage; do
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "error: $build_dir/bench/$bench not found — build benches" >&2
    exit 2
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/bench" "$tmp/preset"

"$build_dir/bench/fig5_prefetch_only" --seed 1 --csv "$tmp/bench" > /dev/null
"$build_dir/bench/fig7_prefetch_cache" --seed 1 --csv "$tmp/bench" > /dev/null
"$build_dir/bench/ablation_sizes" --seed 1 --csv "$tmp/bench" > /dev/null
"$build_dir/bench/network_usage" --seed 1 --csv "$tmp/bench" > /dev/null

for preset in fig5 fig7 ablation_sizes network_usage; do
  "$simctl" run --preset "$preset" --seed 1 --csv "$tmp/preset"
done

diff -r "$tmp/bench" "$tmp/preset"
echo "simctl presets reproduce the bench CSV files byte-for-byte" \
     "($(ls "$tmp/bench" | wc -l) files)"
