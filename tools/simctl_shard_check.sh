#!/usr/bin/env bash
# Shard-equivalence gate for simctl: a sweep split across shards and
# merged must be byte-identical to the same sweep run in one process.
# Usage: tools/simctl_shard_check.sh [BUILD_DIR] (default "build").
set -euo pipefail

build_dir="${1:-build}"
if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 2
fi
bin="$build_dir/tools/simctl"
if [[ ! -x "$bin" ]]; then
  echo "error: $bin not found — build the simctl target first" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# A sweep crossing three axes (2 policies x 2 subs x 3 cache sizes = 12
# specs) at reduced scale; every spec is seed-determined, so shard count
# must not matter.
args=(run --driver prefetch_cache --policies kp,skp --subs none,ds
      --cache-sizes 4,8,12 --requests 400 --seed 7)

"$bin" "${args[@]}" --csv "$tmp/single.csv"
"$bin" "${args[@]}" --shard 0/2 --csv "$tmp/shard0.csv" 2>/dev/null
"$bin" "${args[@]}" --shard 1/2 --csv "$tmp/shard1.csv" 2>/dev/null
"$bin" merge "$tmp/merged2.csv" "$tmp/shard0.csv" "$tmp/shard1.csv"

# A 3-way split (merge must also be order-insensitive in its inputs).
"$bin" "${args[@]}" --shard 0/3 --csv "$tmp/a.csv" 2>/dev/null
"$bin" "${args[@]}" --shard 1/3 --csv "$tmp/b.csv" 2>/dev/null
"$bin" "${args[@]}" --shard 2/3 --csv "$tmp/c.csv" 2>/dev/null
"$bin" merge "$tmp/merged3.csv" "$tmp/c.csv" "$tmp/a.csv" "$tmp/b.csv"

diff "$tmp/single.csv" "$tmp/merged2.csv"
diff "$tmp/single.csv" "$tmp/merged3.csv"
echo "simctl shard merge is byte-identical to the single-process run" \
     "($(($(wc -l < "$tmp/single.csv") - 1)) specs, 2-way and 3-way splits)"
