#!/usr/bin/env bash
# Shard-equivalence gate for simctl: a sweep split across shards and
# merged must be byte-identical to the same sweep run in one process.
# Usage: tools/simctl_shard_check.sh [BUILD_DIR] (default "build").
set -euo pipefail

build_dir="${1:-build}"
if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 2
fi
bin="$build_dir/tools/simctl"
if [[ ! -x "$bin" ]]; then
  echo "error: $bin not found — build the simctl target first" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# A sweep crossing three axes (2 policies x 2 subs x 3 cache sizes = 12
# specs) at reduced scale; every spec is seed-determined, so shard count
# must not matter.
args=(run --driver prefetch_cache --policies kp,skp --subs none,ds
      --cache-sizes 4,8,12 --requests 400 --seed 7)

"$bin" "${args[@]}" --csv "$tmp/single.csv"
"$bin" "${args[@]}" --shard 0/2 --csv "$tmp/shard0.csv" 2>/dev/null
"$bin" "${args[@]}" --shard 1/2 --csv "$tmp/shard1.csv" 2>/dev/null
"$bin" merge "$tmp/merged2.csv" "$tmp/shard0.csv" "$tmp/shard1.csv"

# A 3-way split (merge must also be order-insensitive in its inputs).
"$bin" "${args[@]}" --shard 0/3 --csv "$tmp/a.csv" 2>/dev/null
"$bin" "${args[@]}" --shard 1/3 --csv "$tmp/b.csv" 2>/dev/null
"$bin" "${args[@]}" --shard 2/3 --csv "$tmp/c.csv" 2>/dev/null
"$bin" merge "$tmp/merged3.csv" "$tmp/c.csv" "$tmp/a.csv" "$tmp/b.csv"

diff "$tmp/single.csv" "$tmp/merged2.csv"
diff "$tmp/single.csv" "$tmp/merged3.csv"

# Overlapping inputs must be rejected, not silently concatenated: the
# same shard file twice, and a shard overlapping the full run. The error
# must name the colliding spec index and the offending input.
for bad in "$tmp/shard0.csv $tmp/shard0.csv" \
           "$tmp/single.csv $tmp/shard1.csv"; do
  # shellcheck disable=SC2086
  if "$bin" merge "$tmp/never.csv" $bad 2> "$tmp/err.txt"; then
    echo "error: overlapping merge inputs were accepted: $bad" >&2
    exit 1
  fi
  grep -q "duplicate spec index" "$tmp/err.txt" || {
    echo "error: duplicate-index merge error not descriptive:" >&2
    cat "$tmp/err.txt" >&2
    exit 1
  }
done
[[ ! -e "$tmp/never.csv" ]] || { echo "error: merge output created on failure" >&2; exit 1; }

# The same guarantees through a JSON spec file (--spec): a sweep defined
# as a document, run 2-way sharded across the multi_client DES driver,
# must merge back to the single-process bytes.
cat > "$tmp/sweep.json" <<'EOF'
{
  "base": {"driver": "multi_client", "n_items": 24, "clients": 3,
           "requests": 150, "cache_size": 5, "predictor": "markov1",
           "predictor_warmup": 16, "min_prob": 0.02},
  "axes": {"seeds": "1:2:1", "cache_sizes": [5, 8]}
}
EOF
"$bin" run --spec "$tmp/sweep.json" --csv "$tmp/spec_single.csv" \
    --per-client-csv "$tmp/pc_single.csv"
"$bin" run --spec "$tmp/sweep.json" --shard 0/2 --csv "$tmp/spec0.csv" \
    --per-client-csv "$tmp/pc0.csv" 2>/dev/null
"$bin" run --spec "$tmp/sweep.json" --shard 1/2 --csv "$tmp/spec1.csv" \
    --per-client-csv "$tmp/pc1.csv" 2>/dev/null
"$bin" merge "$tmp/spec_merged.csv" "$tmp/spec0.csv" "$tmp/spec1.csv"
diff "$tmp/spec_single.csv" "$tmp/spec_merged.csv"

# Per-client companion documents shard and merge exactly like the main
# document: rows keyed by (spec index, client), byte-identical after
# interleaving the shards back together.
"$bin" merge "$tmp/pc_merged.csv" "$tmp/pc1.csv" "$tmp/pc0.csv"
diff "$tmp/pc_single.csv" "$tmp/pc_merged.csv"

echo "simctl shard merge is byte-identical to the single-process run" \
     "($(($(wc -l < "$tmp/single.csv") - 1)) flag specs, 2-way and 3-way" \
     "splits; $(($(wc -l < "$tmp/spec_single.csv") - 1)) spec-file specs," \
     "2-way split, plus $(($(wc -l < "$tmp/pc_single.csv") - 1)) per-client" \
     "companion rows; overlapping inputs rejected)"
