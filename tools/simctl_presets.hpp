// simctl figure presets: `simctl run --preset NAME --csv DIR` emits the
// same CSV files the corresponding bench binary writes, byte for byte
// (tools/simctl_preset_check.sh is the equivalence gate, registered as a
// ctest). A preset is a canned SimSpec enumeration + the legacy CSV
// pivot; the sweep itself fans out over sim/sweep.hpp exactly like the
// benches, so the numbers are thread-count independent.
//
//   fig5           four avg-T-vs-v panels (fig5{a..d}_n{10,25}_{skewy,flat}.csv)
//   fig7           access time vs cache size, five policies
//   ablation_sizes slot vs sized cache at matched byte budgets
//   network_usage  threshold sweep of the improvement/usage frontier
#pragma once

#include <cstdint>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "sim/runtime.hpp"
#include "sim/sweep.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace skp::simctl {

struct PresetArgs {
  bool full = false;
  std::uint64_t seed = 1;
  std::string csv_dir;  // required: presets write figure-named files
  std::size_t threads = 0;
  bool no_plan_cache = false;
};

inline const char* preset_names() {
  return "fig5 | fig7 | ablation_sizes | network_usage";
}

namespace detail {

// ---- fig7: access time per request vs cache size ------------------------

inline void preset_fig7(const PresetArgs& args, ThreadPool& pool) {
  struct Policy {
    const char* name;
    PrefetchPolicy policy;
    SubArbitration sub;
  };
  const Policy kPolicies[] = {
      {"No+Pr", PrefetchPolicy::None, SubArbitration::None},
      {"KP+Pr", PrefetchPolicy::KP, SubArbitration::None},
      {"SKP+Pr", PrefetchPolicy::SKP, SubArbitration::None},
      {"SKP+Pr+LFU", PrefetchPolicy::SKP, SubArbitration::LFU},
      {"SKP+Pr+DS", PrefetchPolicy::SKP, SubArbitration::DS},
  };
  const std::size_t requests = args.full ? 50'000 : 4'000;
  const std::size_t step = args.full ? 1 : 5;
  std::vector<std::size_t> sizes;
  sizes.push_back(1);
  for (std::size_t c = step; c <= 100; c += step) sizes.push_back(c);

  std::vector<SimSpec> specs;
  for (const Policy& pol : kPolicies) {
    for (const std::size_t cache_size : sizes) {
      SimSpec spec;  // prefetch_cache driver, paper-default Markov source
      spec.cache_size = cache_size;
      spec.policy = pol.policy;
      spec.sub = pol.sub;
      spec.delta_rule = DeltaRule::ExactComplement;
      spec.requests = requests;
      spec.seed = args.seed;
      spec.use_plan_cache = !args.no_plan_cache;
      specs.push_back(spec);
    }
  }
  const std::vector<double> mean_T =
      sweep_configs(pool, specs, [](const SimSpec& spec) {
        return run_sim(spec).metrics.mean_access_time();
      });

  auto f = open_csv(args.csv_dir + "/fig7_prefetch_cache.csv");
  CsvWriter w(f);
  w.row({"cache_size", "No+Pr", "KP+Pr", "SKP+Pr", "SKP+Pr+LFU",
         "SKP+Pr+DS"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    w.row_of(sizes[i], mean_T[0 * sizes.size() + i],
             mean_T[1 * sizes.size() + i], mean_T[2 * sizes.size() + i],
             mean_T[3 * sizes.size() + i], mean_T[4 * sizes.size() + i]);
  }
  std::cout << "preset fig7: " << specs.size()
            << " sim points -> fig7_prefetch_cache.csv\n";
}

// ---- fig5: average T against v, four policy panels ----------------------

inline void preset_fig5(const PresetArgs& args, ThreadPool& pool) {
  struct Policy {
    PrefetchPolicy policy;
    DeltaRule rule;
  };
  const Policy kPolicies[] = {
      {PrefetchPolicy::None, DeltaRule::ExactComplement},
      {PrefetchPolicy::Perfect, DeltaRule::ExactComplement},
      {PrefetchPolicy::KP, DeltaRule::ExactComplement},
      {PrefetchPolicy::SKP, DeltaRule::PaperTail},
      {PrefetchPolicy::SKP, DeltaRule::ExactComplement},
  };
  struct Panel {
    const char* label;
    std::size_t n;
    ProbMethod method;
  };
  const Panel panels[] = {
      {"a", 10, ProbMethod::Skewy},
      {"b", 10, ProbMethod::Flat},
      {"c", 25, ProbMethod::Skewy},
      {"d", 25, ProbMethod::Flat},
  };
  const std::size_t per_panel = std::size(kPolicies);
  std::vector<SimSpec> specs;
  for (const Panel& panel : panels) {
    for (const Policy& pol : kPolicies) {
      SimSpec spec;
      spec.driver = SimDriverKind::PrefetchOnly;
      spec.workload.kind = SimWorkloadKind::Iid;
      spec.workload.n_items = panel.n;
      spec.workload.method = panel.method;
      spec.policy = pol.policy;
      spec.delta_rule = pol.rule;
      spec.requests = args.full ? 50'000 : 10'000;
      spec.seed = args.seed;
      specs.push_back(spec);
    }
  }
  const std::vector<SimResult> results = sweep_configs(
      pool, specs, [](const SimSpec& spec) { return run_sim(spec); });

  for (std::size_t p = 0; p < std::size(panels); ++p) {
    const Panel& panel = panels[p];
    // The paper clips the plot (and the bench its CSV) at v = 50.
    std::vector<std::vector<std::pair<double, double>>> raw;
    for (std::size_t k = 0; k < per_panel; ++k) {
      const SimResult& res = results[p * per_panel + k];
      std::vector<std::pair<double, double>> series;
      for (const auto& [v, t] : res.avg_T_by_v->series()) {
        if (v <= 50.0) series.emplace_back(v, t);
      }
      raw.push_back(std::move(series));
    }
    auto f = open_csv(args.csv_dir + "/fig5" + std::string(panel.label) +
                      "_n" + std::to_string(panel.n) + "_" +
                      to_string(panel.method) + ".csv");
    CsvWriter w(f);
    w.row({"v", "none", "perfect", "KP", "SKP_paper", "SKP_exact"});
    for (std::size_t i = 0; i < raw[0].size(); ++i) {
      w.row_of(raw[0][i].first, raw[0][i].second,
               i < raw[1].size() ? raw[1][i].second : 0.0,
               i < raw[2].size() ? raw[2][i].second : 0.0,
               i < raw[3].size() ? raw[3][i].second : 0.0,
               i < raw[4].size() ? raw[4][i].second : 0.0);
    }
  }
  std::cout << "preset fig5: " << specs.size()
            << " sim points -> fig5{a,b,c,d}_*.csv\n";
}

// ---- ablation_sizes: slot vs byte cache at matched budgets --------------

inline void preset_ablation_sizes(const PresetArgs& args,
                                  ThreadPool& pool) {
  const std::size_t requests = args.full ? 50'000 : 5'000;
  const std::size_t slot_counts[] = {5, 10, 20, 40, 80};
  constexpr std::size_t kCells = 3;  // slot model / uniform / coupled
  std::vector<SimSpec> specs;
  for (const std::size_t slots : slot_counts) {
    for (std::size_t cell = 0; cell < kCells; ++cell) {
      SimSpec spec;  // prefetch_cache driver, paper-default source
      spec.policy = PrefetchPolicy::SKP;
      spec.sub = SubArbitration::DS;
      spec.requests = requests;
      spec.seed = args.seed;
      if (cell == 0) {
        spec.cache_size = slots;
      } else {
        const double mean_size = 15.5;  // E[U{1..30}]
        spec.sized_capacity = static_cast<double>(slots) * mean_size;
        spec.size_per_r = cell == 1 ? 0.0 : 1.0;  // uniform vs coupled
        spec.size_lo = spec.size_hi = mean_size;
      }
      specs.push_back(spec);
    }
  }
  const std::vector<SimResult> results = sweep_configs(
      pool, specs, [](const SimSpec& spec) { return run_sim(spec); });

  auto f = open_csv(args.csv_dir + "/ablation_sizes.csv");
  CsvWriter(f).row({"slots", "slot_T", "uniform_T", "coupled_T",
                    "coupled_waste_rate"});
  for (std::size_t s = 0; s < std::size(slot_counts); ++s) {
    const auto& slot_res = results[s * kCells + 0];
    const auto& uni_res = results[s * kCells + 1];
    const auto& coupled_res = results[s * kCells + 2];
    CsvWriter(f).row_of(slot_counts[s],
                        slot_res.metrics.mean_access_time(),
                        uni_res.metrics.mean_access_time(),
                        coupled_res.metrics.mean_access_time(),
                        coupled_res.metrics.waste_rate());
  }
  std::cout << "preset ablation_sizes: " << specs.size()
            << " sim points -> ablation_sizes.csv\n";
}

// ---- network_usage: profit-threshold frontier ---------------------------

inline void preset_network_usage(const PresetArgs& args, ThreadPool& pool) {
  const std::size_t requests = args.full ? 50'000 : 6'000;
  const double thresholds[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 1e9};
  std::vector<SimSpec> specs;
  for (const double threshold : thresholds) {
    SimSpec spec;  // prefetch_cache driver, paper-default source
    spec.cache_size = 20;
    spec.policy = PrefetchPolicy::SKP;
    spec.sub = SubArbitration::DS;
    spec.requests = requests;
    spec.seed = args.seed;
    spec.min_profit_threshold = threshold;
    specs.push_back(spec);
  }
  const std::vector<SimResult> results = sweep_configs(
      pool, specs, [](const SimSpec& spec) { return run_sim(spec); });

  auto f = open_csv(args.csv_dir + "/network_usage.csv");
  CsvWriter(f).row({"threshold", "mean_T", "net_time_per_req",
                    "prefetches", "waste_rate"});
  for (std::size_t i = 0; i < std::size(thresholds); ++i) {
    const auto& res = results[i];
    CsvWriter(f).row_of(thresholds[i], res.metrics.mean_access_time(),
                        res.metrics.network_time_per_request(),
                        res.metrics.prefetch_fetches,
                        res.metrics.waste_rate());
  }
  std::cout << "preset network_usage: " << specs.size()
            << " sim points -> network_usage.csv\n";
}

}  // namespace detail

// Runs a named preset; throws std::invalid_argument on an unknown name
// or a missing --csv directory.
inline void run_preset(const std::string& name, const PresetArgs& args) {
  if (args.csv_dir.empty()) {
    throw std::invalid_argument(
        "--preset emits figure-named CSV files; give --csv DIR");
  }
  ThreadPool pool(args.threads);
  if (name == "fig5") {
    detail::preset_fig5(args, pool);
  } else if (name == "fig7") {
    detail::preset_fig7(args, pool);
  } else if (name == "ablation_sizes") {
    detail::preset_ablation_sizes(args, pool);
  } else if (name == "network_usage") {
    detail::preset_network_usage(args, pool);
  } else {
    throw std::invalid_argument("unknown preset '" + name + "' (" +
                                preset_names() + ")");
  }
}

}  // namespace skp::simctl
