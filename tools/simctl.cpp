// simctl — one binary for any SimSpec the unified runtime can execute,
// with multi-process sharding and byte-identical CSV merging.
//
//   simctl run [spec flags] [sweep flags] [--shard I/N] [--csv PATH]
//   simctl run --spec FILE [overriding flags]
//   simctl run --preset NAME --csv DIR [--full] [--seed N]
//   simctl merge OUT IN1 [IN2 ...]
//   simctl drivers
//
// `run` enumerates the cross-product of every sweep flag (fixed nesting
// order, so each spec has a stable index), keeps the indices owned by the
// requested shard (index % N == I), fans them onto the thread pool via
// sim/sweep.hpp, and emits one CSV row per spec. Because every spec is
// fully determined by its fields — never by which process/thread ran
// it — `merge` of any shard partition reproduces the single-process
// document byte for byte; the CI shard check and
// tools/simctl_shard_check.sh lock that down.
//
// `--spec FILE` reads the same flags from a JSON sweep definition
// (tools/simctl_args.hpp documents the schema) so cluster runs are a
// committed document, not a hand-assembled flag string; flags after
// --spec override the file. `--preset NAME` short-circuits into a canned
// figure enumeration that reproduces the corresponding bench binary's
// CSV files byte for byte (tools/simctl_presets.hpp).
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/runtime.hpp"
#include "sim/sweep.hpp"
#include "simctl_args.hpp"
#include "simctl_presets.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace skp;
using simctl::parse_double;
using simctl::parse_integer_axis;
using simctl::parse_numeric_axis;
using simctl::parse_range_pair;
using simctl::parse_u64;
using simctl::split;

// SIGINT/SIGTERM mid-sweep: finish the specs already running, skip the
// rest, and emit a VALID partial document (header + completed rows + a
// "# interrupted at spec N" trailer) instead of a torn file. The merge
// path rejects trailered documents, so a partial shard cannot silently
// produce an incomplete sweep.
volatile std::sig_atomic_t g_interrupted = 0;

void on_interrupt(int) { g_interrupted = 1; }

[[noreturn]] void usage(int exit_code) {
  std::ostream& os = exit_code == 0 ? std::cout : std::cerr;
  os << R"(usage:
  simctl run [flags]         execute a spec sweep, emit CSV
  simctl run --spec FILE     read base/axes/shard from a JSON sweep file
                             (later flags override the file)
  simctl run --preset NAME --csv DIR
                             emit a figure bench's CSV files byte-for-byte
                             (fig5 | fig7 | ablation_sizes | network_usage;
                             also accepts --full --seed --threads
                             --no-plan-cache)
  simctl merge OUT IN...     merge shard CSVs into the single-run document
                             (rejects duplicate/overlapping spec indices)
  simctl drivers             list registered drivers and enum tokens

run flags (single-value spec fields):
  --driver NAME          prefetch_only | prefetch_cache | trace_replay |
                         netsim_des | scenario | multi_client
                                                       (default prefetch_cache)
  --workload NAME        markov | iid | zipf | markov_drift | trace_text |
                         adversarial
  --n-items N            catalog/state count
  --policy P             none | kp | skp | perfect
  --sub S                none | lfu | ds
  --delta D              exact | paper
  --predictor K          oracle | markov1 | ppm | lz78 | depgraph
  --replacement R        lru | fifo | lfu | random     (scenario driver)
  --pr                   scenario driver: Figure-6 Pr-arbitration planning
  --cache-size N         slot-cache capacity
  --sized-capacity X     byte-cache capacity (prefetch_cache driver)
  --size-per-r X         sized-cache size coupling (0 = uniform draw)
  --requests N           requests / iterations per spec (multi_client:
                         per client)
  --warmup N             leading requests excluded from metrics
  --seed N               root RNG seed
  --bandwidth X          net grounding (netsim_des / scenario / multi_client)
  --latency X
  --threshold X          min-profit prefetch suppression threshold
  --min-prob X           predictor shortlist floor
  --predictor-warmup N   observe-only prefix (scenario / netsim_des /
                         multi_client)
  --clients N            multi_client driver: client count
  --link-speedup X       multi_client driver: shared-link speed multiplier
  --phase-align X        multi_client driver: flash-crowd alignment in [0,1]
  --churn-period X       multi_client driver: simulated time between client
                         departures (0 = no churn)
  --churn-downtime X     multi_client driver: offline span per departure
  --client-predictors LIST
                         multi_client driver: one predictor token per
                         client (oracle | markov1 | ppm | lz78 |
                         depgraph | inherit), lowering to per-client
                         overrides for mixed-predictor fleets. Count
                         must equal --clients. NOTE: any use switches
                         every client to its private override-derived
                         streams (the documented override seeding), so
                         results are not comparable with a no-override
                         run even when every token is "inherit".
  --link-phases LIST     time-varying link (netsim_des / multi_client):
                         comma list of DUR:BW:LAT phases, cycling
  --fail-rate X          fault injection (netsim_des / multi_client):
                         P(prefetch attempt fails outright), in [0,1]
  --stall-rate X         P(attempt runs --stall-factor x slower)
  --stall-factor X       stall slowdown multiplier (default 4)
  --timeout X            abort prefetch attempts longer than X (0 = off)
  --retry SPEC           MAX[:BASE[:FACTOR[:JITTER]]] retry policy for
                         failed prefetch attempts (default 1 = no retries)
  --overload             enable the adaptive overload controller
                         (netsim_des / multi_client)
  --overload-window N    realized-time sample window (default 64)
  --overload-degrade X   descend a rung at sample/baseline >= X
  --overload-recover X   calm window at sample/baseline <= X
  --overload-recover-windows N
                         consecutive calm windows before ascending
  --overload-depth N     rung-1 lookahead candidate cap
  --overload-budget N    rung-2 prefetch budget cap
  --deadline X           count requests served within X time units
                         (netsim_des / multi_client)
  --method M             iid row: skewy | flat
  --skew-exponent X      iid skewy exponent
  --zipf-s X             Zipf tail exponent
  --no-zipf-shuffle      keep item id == popularity rank
  --drift-period N       markov_drift changepoint period
  --adv-hot-set N        adversarial clique size (2 cliques of N items)
  --adv-escape X         adversarial clique-escape probability
  --out-degree LO:HI     chain out-degree bounds
  --viewing LO:HI        viewing-time range
  --retrieval LO:HI      retrieval-time range
  --no-plan-cache        disable cross-request plan memoization

run flags (sweep axes; comma lists, numeric axes accept LO:HI:STEP):
  --cache-sizes LIST --policies LIST --subs LIST --predictors LIST
  --seeds LIST --thresholds LIST --replacements LIST (scenario)
  --client-counts LIST --link-speedups LIST (multi_client)
  --fail-rates LIST (netsim_des / multi_client)

run flags (execution):
  --spec FILE            JSON sweep definition (base/axes/shard/csv/threads)
  --shard I/N            run only the specs with index % N == I
  --csv PATH             write CSV to PATH instead of stdout
  --per-client-csv PATH  multi_client driver: companion CSV with one row
                         per (spec, client); shard companions merge like
                         the main document (simctl merge)
  --threads N            sweep threads (0 = hardware concurrency)
)";
  std::exit(exit_code);
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "simctl: " << message << "\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot read " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// Collects argv into strings, expanding each `--spec FILE` in place into
// the flags its JSON document lowers to — so flags AFTER --spec override
// the file, and everything funnels through one flag grammar/validator.
std::vector<std::string> expand_args(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec") {
      if (i + 1 >= argc) fail("--spec needs a file path");
      const std::string path = argv[++i];
      const std::vector<std::string> lowered =
          simctl::spec_file_to_flags(read_file(path));
      out.insert(out.end(), lowered.begin(), lowered.end());
    } else {
      out.push_back(arg);
    }
  }
  return out;
}

int preset_command(const std::vector<std::string>& args) {
  std::string name;
  simctl::PresetArgs preset;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto need_value = [&](const char* f) -> const std::string& {
      if (i + 1 >= args.size()) fail(std::string(f) + " needs a value");
      return args[++i];
    };
    if (flag == "--preset") {
      name = need_value("--preset");
    } else if (flag == "--full") {
      preset.full = true;
    } else if (flag == "--seed") {
      preset.seed = parse_u64(need_value("--seed"), "--seed");
    } else if (flag == "--csv") {
      preset.csv_dir = need_value("--csv");
    } else if (flag == "--threads") {
      preset.threads = parse_u64(need_value("--threads"), "--threads");
    } else if (flag == "--no-plan-cache") {
      preset.no_plan_cache = true;
    } else if (flag == "--help" || flag == "-h") {
      usage(0);
    } else {
      fail("flag '" + flag +
           "' does not apply to --preset (a preset is a canned "
           "enumeration; use a plain run for custom sweeps)");
    }
  }
  simctl::run_preset(name, preset);
  return 0;
}

int run_command(const std::vector<std::string>& args) {
  SimSpec base;
  // Sweep axes (empty = use the base spec's single value).
  std::vector<double> thresholds, link_speedups, fail_rates;
  std::vector<std::uint64_t> cache_sizes, seeds, client_counts;
  std::vector<PrefetchPolicy> policies;
  std::vector<SubArbitration> subs;
  std::vector<PredictorKind> predictors;
  std::vector<ReplacementKind> replacements;
  // --client-predictors: one predictor per client, "inherit" keeping the
  // base spec's choice; lowered into multi_client overrides after the
  // whole command line is parsed (so --clients may come later).
  std::vector<std::optional<PredictorKind>> client_predictors;
  std::size_t shard_index = 0, shard_count = 1;
  std::optional<std::string> csv_path;
  std::optional<std::string> per_client_csv_path;
  std::size_t threads = 0;
  // Workload-/driver-scoped flags: remember they were given so a flag the
  // selected workload or driver never consults fails the run instead of
  // silently producing a sweep the CSV mislabels (reject-don't-drop, as
  // in the runtime's drivers).
  bool drift_flag = false, zipf_flag = false, iid_flag = false;
  bool adv_flag = false;
  bool multi_client_flag = false;
  bool link_schedule_flag = false;
  bool robustness_flag = false;

  auto need_value = [&](std::size_t& i, const char* flag) ->
      const std::string& {
    if (i + 1 >= args.size()) fail(std::string(flag) + " needs a value");
    return args[++i];
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--driver") {
      const std::string v = need_value(i, "--driver");
      const auto kind = parse_driver_kind(v);
      if (!kind) fail("unknown driver '" + v + "'");
      base.driver = *kind;
    } else if (flag == "--workload") {
      const std::string v = need_value(i, "--workload");
      const auto kind = parse_workload_kind(v);
      if (!kind) fail("unknown workload '" + v + "'");
      base.workload.kind = *kind;
    } else if (flag == "--n-items") {
      base.workload.n_items = parse_u64(need_value(i, flag.c_str()),
                                        "--n-items");
    } else if (flag == "--policy") {
      const std::string v = need_value(i, "--policy");
      const auto p = parse_policy(v);
      if (!p) fail("unknown policy '" + v + "'");
      base.policy = *p;
    } else if (flag == "--sub") {
      const std::string v = need_value(i, "--sub");
      const auto s = parse_sub_arbitration(v);
      if (!s) fail("unknown sub-arbitration '" + v + "'");
      base.sub = *s;
    } else if (flag == "--delta") {
      const std::string v = need_value(i, "--delta");
      const auto d = parse_delta_rule(v);
      if (!d) fail("unknown delta rule '" + v + "'");
      base.delta_rule = *d;
    } else if (flag == "--predictor") {
      const std::string v = need_value(i, "--predictor");
      const auto p = parse_predictor_kind(v);
      if (!p) fail("unknown predictor '" + v + "'");
      base.predictor = *p;
    } else if (flag == "--replacement") {
      const std::string v = need_value(i, "--replacement");
      const auto r = parse_replacement_kind(v);
      if (!r) fail("unknown replacement policy '" + v + "'");
      base.replacement = *r;
    } else if (flag == "--pr") {
      base.pr_planning = true;
    } else if (flag == "--cache-size") {
      base.cache_size = parse_u64(need_value(i, flag.c_str()),
                                  "--cache-size");
    } else if (flag == "--sized-capacity") {
      base.sized_capacity = parse_double(need_value(i, flag.c_str()),
                                         "--sized-capacity");
    } else if (flag == "--size-per-r") {
      base.size_per_r = parse_double(need_value(i, flag.c_str()),
                                     "--size-per-r");
    } else if (flag == "--requests") {
      base.requests = parse_u64(need_value(i, flag.c_str()), "--requests");
    } else if (flag == "--warmup") {
      base.warmup = parse_u64(need_value(i, flag.c_str()), "--warmup");
    } else if (flag == "--seed") {
      base.seed = parse_u64(need_value(i, flag.c_str()), "--seed");
    } else if (flag == "--bandwidth") {
      base.bandwidth = parse_double(need_value(i, flag.c_str()),
                                    "--bandwidth");
    } else if (flag == "--latency") {
      base.latency = parse_double(need_value(i, flag.c_str()), "--latency");
    } else if (flag == "--threshold") {
      base.min_profit_threshold =
          parse_double(need_value(i, flag.c_str()), "--threshold");
    } else if (flag == "--min-prob") {
      base.predictor_min_prob =
          parse_double(need_value(i, flag.c_str()), "--min-prob");
    } else if (flag == "--predictor-warmup") {
      base.predictor_warmup =
          parse_u64(need_value(i, flag.c_str()), "--predictor-warmup");
    } else if (flag == "--clients") {
      base.multi_client.clients =
          parse_u64(need_value(i, flag.c_str()), "--clients");
      multi_client_flag = true;
    } else if (flag == "--link-speedup") {
      base.multi_client.link_speedup =
          parse_double(need_value(i, flag.c_str()), "--link-speedup");
      multi_client_flag = true;
    } else if (flag == "--phase-align") {
      base.multi_client.phase_align =
          parse_double(need_value(i, flag.c_str()), "--phase-align");
      multi_client_flag = true;
    } else if (flag == "--churn-period") {
      base.multi_client.churn_period =
          parse_double(need_value(i, flag.c_str()), "--churn-period");
      multi_client_flag = true;
    } else if (flag == "--churn-downtime") {
      base.multi_client.churn_downtime =
          parse_double(need_value(i, flag.c_str()), "--churn-downtime");
      multi_client_flag = true;
    } else if (flag == "--client-predictors") {
      client_predictors.clear();
      for (const std::string& token :
           split(need_value(i, "--client-predictors"), ',')) {
        if (token == "inherit") {
          client_predictors.push_back(std::nullopt);
          continue;
        }
        const auto p = parse_predictor_kind(token);
        if (!p) {
          fail("unknown client predictor '" + token +
               "' (expected a predictor token or 'inherit')");
        }
        client_predictors.push_back(*p);
      }
      if (client_predictors.empty()) fail("--client-predictors: empty list");
      multi_client_flag = true;
    } else if (flag == "--link-phases") {
      base.link_schedule = simctl::parse_link_schedule(
          need_value(i, flag.c_str()), "--link-phases");
      link_schedule_flag = true;
    } else if (flag == "--fail-rate") {
      base.fault.fail_rate =
          parse_double(need_value(i, flag.c_str()), "--fail-rate");
      robustness_flag = true;
    } else if (flag == "--stall-rate") {
      base.fault.stall_rate =
          parse_double(need_value(i, flag.c_str()), "--stall-rate");
      robustness_flag = true;
    } else if (flag == "--stall-factor") {
      base.fault.stall_factor =
          parse_double(need_value(i, flag.c_str()), "--stall-factor");
      robustness_flag = true;
    } else if (flag == "--timeout") {
      base.fault.timeout =
          parse_double(need_value(i, flag.c_str()), "--timeout");
      robustness_flag = true;
    } else if (flag == "--retry") {
      base.fault.retry =
          simctl::parse_retry_policy(need_value(i, "--retry"), "--retry");
      robustness_flag = true;
    } else if (flag == "--overload") {
      base.overload.enabled = true;
      robustness_flag = true;
    } else if (flag == "--overload-window") {
      base.overload.window = static_cast<std::size_t>(
          parse_u64(need_value(i, flag.c_str()), "--overload-window"));
      robustness_flag = true;
    } else if (flag == "--overload-degrade") {
      base.overload.degrade_ratio =
          parse_double(need_value(i, flag.c_str()), "--overload-degrade");
      robustness_flag = true;
    } else if (flag == "--overload-recover") {
      base.overload.recover_ratio =
          parse_double(need_value(i, flag.c_str()), "--overload-recover");
      robustness_flag = true;
    } else if (flag == "--overload-recover-windows") {
      base.overload.recover_windows = static_cast<std::size_t>(parse_u64(
          need_value(i, flag.c_str()), "--overload-recover-windows"));
      robustness_flag = true;
    } else if (flag == "--overload-depth") {
      base.overload.lookahead_depth = static_cast<std::size_t>(
          parse_u64(need_value(i, flag.c_str()), "--overload-depth"));
      robustness_flag = true;
    } else if (flag == "--overload-budget") {
      base.overload.budget_items = static_cast<std::size_t>(
          parse_u64(need_value(i, flag.c_str()), "--overload-budget"));
      robustness_flag = true;
    } else if (flag == "--deadline") {
      base.deadline =
          parse_double(need_value(i, flag.c_str()), "--deadline");
      robustness_flag = true;
    } else if (flag == "--method") {
      const std::string v = need_value(i, "--method");
      const auto m = parse_prob_method(v);
      if (!m) fail("unknown method '" + v + "'");
      base.workload.method = *m;
      iid_flag = true;
    } else if (flag == "--skew-exponent") {
      base.workload.skew_exponent =
          parse_double(need_value(i, flag.c_str()), "--skew-exponent");
      iid_flag = true;
    } else if (flag == "--zipf-s") {
      base.workload.zipf_exponent =
          parse_double(need_value(i, flag.c_str()), "--zipf-s");
      zipf_flag = true;
    } else if (flag == "--no-zipf-shuffle") {
      base.workload.zipf_shuffle = false;
      zipf_flag = true;
    } else if (flag == "--drift-period") {
      base.workload.drift_period =
          parse_u64(need_value(i, flag.c_str()), "--drift-period");
      drift_flag = true;
    } else if (flag == "--adv-hot-set") {
      base.workload.adv_hot_set =
          parse_u64(need_value(i, flag.c_str()), "--adv-hot-set");
      adv_flag = true;
    } else if (flag == "--adv-escape") {
      base.workload.adv_escape =
          parse_double(need_value(i, flag.c_str()), "--adv-escape");
      adv_flag = true;
    } else if (flag == "--out-degree") {
      // Integer bounds: the double-valued pair parser would truncate
      // fractions and make a negative bound undefined behavior.
      const std::vector<std::string> parts =
          split(need_value(i, "--out-degree"), ':');
      if (parts.size() != 2) fail("--out-degree expects LO:HI");
      base.workload.out_degree_lo =
          static_cast<std::size_t>(parse_u64(parts[0], "--out-degree"));
      base.workload.out_degree_hi =
          static_cast<std::size_t>(parse_u64(parts[1], "--out-degree"));
    } else if (flag == "--viewing") {
      parse_range_pair(need_value(i, flag.c_str()), "--viewing",
                       base.workload.v_lo, base.workload.v_hi);
    } else if (flag == "--retrieval") {
      parse_range_pair(need_value(i, flag.c_str()), "--retrieval",
                       base.workload.r_lo, base.workload.r_hi);
    } else if (flag == "--no-plan-cache") {
      base.use_plan_cache = false;
    } else if (flag == "--cache-sizes") {
      cache_sizes = parse_integer_axis(need_value(i, flag.c_str()),
                                       "--cache-sizes");
    } else if (flag == "--seeds") {
      seeds = parse_integer_axis(need_value(i, flag.c_str()), "--seeds");
    } else if (flag == "--thresholds") {
      thresholds = parse_numeric_axis(need_value(i, flag.c_str()),
                                      "--thresholds");
    } else if (flag == "--policies") {
      policies.clear();
      for (const std::string& token :
           split(need_value(i, "--policies"), ',')) {
        const auto p = parse_policy(token);
        if (!p) fail("unknown policy '" + token + "'");
        policies.push_back(*p);
      }
    } else if (flag == "--subs") {
      subs.clear();
      for (const std::string& token : split(need_value(i, "--subs"), ',')) {
        const auto s = parse_sub_arbitration(token);
        if (!s) fail("unknown sub-arbitration '" + token + "'");
        subs.push_back(*s);
      }
    } else if (flag == "--predictors") {
      predictors.clear();
      for (const std::string& token :
           split(need_value(i, "--predictors"), ',')) {
        const auto p = parse_predictor_kind(token);
        if (!p) fail("unknown predictor '" + token + "'");
        predictors.push_back(*p);
      }
    } else if (flag == "--replacements") {
      replacements.clear();
      for (const std::string& token :
           split(need_value(i, "--replacements"), ',')) {
        const auto r = parse_replacement_kind(token);
        if (!r) fail("unknown replacement policy '" + token + "'");
        replacements.push_back(*r);
      }
    } else if (flag == "--client-counts") {
      client_counts = parse_integer_axis(need_value(i, flag.c_str()),
                                         "--client-counts");
      multi_client_flag = true;
    } else if (flag == "--link-speedups") {
      link_speedups = parse_numeric_axis(need_value(i, flag.c_str()),
                                         "--link-speedups");
      multi_client_flag = true;
    } else if (flag == "--fail-rates") {
      fail_rates = parse_numeric_axis(need_value(i, flag.c_str()),
                                      "--fail-rates");
      robustness_flag = true;
    } else if (flag == "--shard") {
      const std::vector<std::string> parts =
          split(need_value(i, "--shard"), '/');
      if (parts.size() != 2) fail("--shard expects I/N");
      shard_index = parse_u64(parts[0], "--shard");
      shard_count = parse_u64(parts[1], "--shard");
      if (shard_count == 0 || shard_index >= shard_count) {
        fail("--shard index out of range");
      }
    } else if (flag == "--csv") {
      csv_path = need_value(i, "--csv");
    } else if (flag == "--per-client-csv") {
      per_client_csv_path = need_value(i, "--per-client-csv");
    } else if (flag == "--threads") {
      threads = parse_u64(need_value(i, flag.c_str()), "--threads");
    } else if (flag == "--help" || flag == "-h") {
      usage(0);
    } else {
      fail("unknown flag '" + flag + "' (see simctl --help)");
    }
  }

  if (drift_flag && base.workload.kind != SimWorkloadKind::MarkovDrift) {
    fail("--drift-period applies to --workload markov_drift only");
  }
  if (zipf_flag && base.workload.kind != SimWorkloadKind::Zipf) {
    fail("--zipf-s/--no-zipf-shuffle apply to --workload zipf only");
  }
  if (iid_flag && base.workload.kind != SimWorkloadKind::Iid) {
    fail("--method/--skew-exponent apply to --workload iid only");
  }
  if (adv_flag && base.workload.kind != SimWorkloadKind::Adversarial) {
    fail("--adv-hot-set/--adv-escape apply to --workload adversarial only");
  }
  if (multi_client_flag &&
      base.driver != SimDriverKind::MultiClientDes) {
    fail("--clients/--link-speedup/--phase-align/--churn-period/"
         "--churn-downtime/--client-predictors/--client-counts/"
         "--link-speedups apply to --driver multi_client only");
  }
  if (!client_predictors.empty()) {
    // The override vector must stay one-entry-per-client for EVERY spec
    // in the sweep, so a client-count axis is incompatible with a fixed
    // predictor list.
    if (!client_counts.empty()) {
      fail("--client-predictors cannot combine with --client-counts "
           "(the list is sized to one fixed client count)");
    }
    if (client_predictors.size() != base.multi_client.clients) {
      fail("--client-predictors lists " +
           std::to_string(client_predictors.size()) +
           " predictor(s) for " +
           std::to_string(base.multi_client.clients) + " client(s)");
    }
    base.multi_client.overrides.resize(client_predictors.size());
    for (std::size_t c = 0; c < client_predictors.size(); ++c) {
      base.multi_client.overrides[c].predictor = client_predictors[c];
    }
  }
  if (link_schedule_flag && base.driver != SimDriverKind::NetsimDes &&
      base.driver != SimDriverKind::MultiClientDes) {
    fail("--link-phases applies to --driver netsim_des or multi_client");
  }
  if (!replacements.empty() && base.driver != SimDriverKind::Scenario) {
    fail("--replacements applies to --driver scenario only");
  }
  if (robustness_flag && base.driver != SimDriverKind::NetsimDes &&
      base.driver != SimDriverKind::MultiClientDes) {
    fail("--fail-rate/--stall-rate/--stall-factor/--timeout/--retry/"
         "--fail-rates/--overload*/--deadline apply to --driver "
         "netsim_des or multi_client only");
  }
  if (per_client_csv_path && base.driver != SimDriverKind::MultiClientDes) {
    fail("--per-client-csv applies to --driver multi_client only");
  }

  // Enumerate the cross-product in a fixed nesting order — the spec
  // index this induces is the shard/merge key, so it must not depend on
  // anything but the flags.
  std::vector<SimSpec> sweep;
  for (const std::uint64_t seed :
       seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds) {
    for (const PrefetchPolicy policy :
         policies.empty() ? std::vector<PrefetchPolicy>{base.policy}
                          : policies) {
      for (const SubArbitration sub :
           subs.empty() ? std::vector<SubArbitration>{base.sub} : subs) {
        for (const PredictorKind predictor :
             predictors.empty() ? std::vector<PredictorKind>{base.predictor}
                                : predictors) {
          for (const double threshold :
               thresholds.empty()
                   ? std::vector<double>{base.min_profit_threshold}
                   : thresholds) {
            for (const std::uint64_t cache_size :
                 cache_sizes.empty()
                     ? std::vector<std::uint64_t>{base.cache_size}
                     : cache_sizes) {
              // Newer axes nest INSIDE the original six so a sweep that
              // leaves them singleton keeps its historical spec indices
              // (the shard/merge key must stay stable across releases).
              for (const ReplacementKind replacement :
                   replacements.empty()
                       ? std::vector<ReplacementKind>{base.replacement}
                       : replacements) {
                for (const std::uint64_t clients :
                     client_counts.empty()
                         ? std::vector<std::uint64_t>{
                               base.multi_client.clients}
                         : client_counts) {
                  for (const double link_speedup :
                       link_speedups.empty()
                           ? std::vector<double>{
                                 base.multi_client.link_speedup}
                           : link_speedups) {
                    for (const double fail_rate :
                         fail_rates.empty()
                             ? std::vector<double>{base.fault.fail_rate}
                             : fail_rates) {
                      SimSpec spec = base;
                      spec.seed = seed;
                      spec.policy = policy;
                      spec.sub = sub;
                      spec.predictor = predictor;
                      spec.min_profit_threshold = threshold;
                      spec.cache_size =
                          static_cast<std::size_t>(cache_size);
                      spec.replacement = replacement;
                      spec.multi_client.clients =
                          static_cast<std::size_t>(clients);
                      spec.multi_client.link_speedup = link_speedup;
                      spec.fault.fail_rate = fail_rate;

                      sweep.push_back(spec);
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  // Shard selection keeps (index, spec) pairs so rows carry their global
  // index into the merge.
  std::vector<std::pair<std::size_t, SimSpec>> owned;
  for (std::size_t index = 0; index < sweep.size(); ++index) {
    if (shard_owns(index, shard_index, shard_count)) {
      owned.emplace_back(index, sweep[index]);
    }
  }

  std::signal(SIGINT, &on_interrupt);
  std::signal(SIGTERM, &on_interrupt);
  ThreadPool pool(threads);
  // Each job checks the interrupt flag before starting: specs already
  // in flight run to completion (their rows are valid), specs not yet
  // started are skipped (nullopt).
  const std::vector<std::optional<SimResult>> results = sweep_points(
      pool, owned.size(),
      [&](std::size_t i) -> std::optional<SimResult> {
        if (g_interrupted) return std::nullopt;
        return run_sim(owned[i].second);
      });
  // First owned spec (global index) without a result — the interruption
  // point named by the trailer.
  std::optional<std::size_t> interrupted_at;
  for (std::size_t i = 0; i < owned.size(); ++i) {
    if (!results[i]) {
      interrupted_at = owned[i].first;
      break;
    }
  }

  std::ofstream file;
  if (csv_path) {
    file = open_csv(*csv_path);
  }
  std::ostream& os = csv_path ? static_cast<std::ostream&>(file)
                              : std::cout;
  CsvWriter writer(os);
  writer.row(sim_csv_header());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    if (!results[i]) continue;
    append_sim_csv_row(writer, owned[i].first, owned[i].second,
                       *results[i]);
  }
  if (interrupted_at) {
    os << "# interrupted at spec " << *interrupted_at << "\n";
  }
  os.flush();
  if (!os) fail("write failed: " + csv_path.value_or("stdout"));
  if (per_client_csv_path) {
    std::ofstream pc_file = open_csv(*per_client_csv_path);
    CsvWriter pc_writer(pc_file);
    pc_writer.row(per_client_csv_header());
    for (std::size_t i = 0; i < owned.size(); ++i) {
      if (!results[i]) continue;
      append_per_client_csv_rows(pc_writer, owned[i].first,
                                 owned[i].second, *results[i]);
    }
    if (interrupted_at) {
      pc_file << "# interrupted at spec " << *interrupted_at << "\n";
    }
    pc_file.flush();
    if (!pc_file) fail("write failed: " + *per_client_csv_path);
  }
  if (shard_count > 1) {
    std::cerr << "simctl: shard " << shard_index << "/" << shard_count
              << " ran " << owned.size() << " of " << sweep.size()
              << " specs\n";
  }
  if (g_interrupted) {
    std::cerr << "simctl: interrupted"
              << (interrupted_at
                      ? " at spec " + std::to_string(*interrupted_at)
                      : std::string(" after the final spec"))
              << "; partial document written\n";
    return 130;
  }
  return 0;
}

int run_dispatch(int argc, char** argv) {
  const std::vector<std::string> args = expand_args(argc, argv);
  for (const std::string& arg : args) {
    if (arg == "--preset") return preset_command(args);
  }
  return run_command(args);
}

int merge_command(int argc, char** argv) {
  if (argc < 2) usage(2);
  const std::string out_path = argv[0];
  std::vector<std::string> shards;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    names.push_back(argv[i]);
    shards.push_back(read_file(argv[i]));
  }
  const std::string merged = merge_sharded_csv(shards, names);
  if (out_path == "-") {
    std::cout << merged;
    std::cout.flush();
    if (!std::cout) fail("write failed: stdout");
  } else {
    std::ofstream os(out_path);
    if (!os) fail("cannot write " + out_path);
    os << merged;
    os.flush();
    if (!os) fail("write failed: " + out_path);
  }
  return 0;
}

int drivers_command() {
  std::cout << "registered drivers:\n";
  for (const SimDriver& driver : driver_registry()) {
    std::cout << "  " << driver.name << "\n";
  }
  std::cout << "workloads: markov iid zipf markov_drift trace_text "
               "adversarial\n"
            << "policies: none kp skp perfect | subs: none lfu ds\n"
            << "predictors: oracle markov1 ppm lz78 depgraph\n"
            << "replacements: lru fifo lfu random\n"
            << "presets: " << simctl::preset_names() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(2);
  const std::string command = argv[1];
  try {
    if (command == "run") return run_dispatch(argc - 2, argv + 2);
    if (command == "merge") return merge_command(argc - 2, argv + 2);
    if (command == "drivers") return drivers_command();
    if (command == "--help" || command == "-h") usage(0);
  } catch (const std::exception& e) {
    std::cerr << "simctl: " << e.what() << "\n";
    return 1;
  }
  usage(2);
}
