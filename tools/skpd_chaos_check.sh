#!/usr/bin/env bash
# Chaos gate for the skpd daemon: a sharded skpd_loopback sweep whose
# client is SIGKILLed mid-shard and restarted — with the surviving shards
# additionally self-dropping their connections (SKPD_DROP_EVERY) — must
# merge to bytes identical to the calm uninterrupted run, which in turn
# must match the in-process netsim_des goldens on every shared counter.
# Also checks the simctl SIGTERM contract: an interrupted sweep leaves a
# VALID partial document with a "# interrupted at spec N" trailer, exits
# non-zero, and the merge refuses the partial.
#
# Capacity phase: the daemon is started holding SKPD_CHAOS_PRELOAD
# (default 100000) preloaded idle sessions, so every kill/resume/drop in
# this script lands on a server already at bulk-hosting scale. Idle
# sessions must survive the keepalive/linger reaper (they never attach,
# so the linger clock never starts) and must all appear in the drain
# stats CSV.
# Usage: tools/skpd_chaos_check.sh [BUILD_DIR] (default "build").
set -euo pipefail

build_dir="${1:-build}"
simctl="$build_dir/tools/simctl"
skpd="$build_dir/tools/skpd"
for bin in "$simctl" "$skpd"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found — build the simctl and skpd targets" >&2
    exit 2
  fi
done

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

# One long-lived daemon shared by every run below, so kills and resumes
# land on a server that keeps sessions alive across client generations —
# and one that is ALREADY holding a bulk preload of idle sessions, so the
# chaos phases double as a capacity regression check.
preload="${SKPD_CHAOS_PRELOAD:-100000}"
"$skpd" --port=0 --keepalive=5 --session-linger=30 \
    --preload-sessions="$preload" \
    --stats-csv="$tmp/skpd_stats.csv" > "$tmp/skpd_port.txt" \
    2> "$tmp/skpd_log.txt" &
daemon_pid=$!
# Preloading 100k sessions takes a few seconds before the port banner.
for _ in $(seq 1 600); do
  grep -q '^SKPD_PORT=' "$tmp/skpd_port.txt" 2>/dev/null && break
  sleep 0.05
done
port="$(sed -n 's/^SKPD_PORT=//p' "$tmp/skpd_port.txt" | head -1)"
[[ -n "$port" ]] || { echo "error: skpd never announced a port" >&2; exit 1; }
export SKPD_ADDR="127.0.0.1:$port"

# A 6-spec sweep (3 seeds x 2 cache sizes) over the daemon-served driver.
args=(run --driver skpd_loopback --seeds 1:3:1 --cache-sizes 10,20
      --requests 250)

# Golden reference: the same sweep in process via netsim_des. The driver
# column is the ONLY difference allowed.
"$simctl" run --driver netsim_des --seeds 1:3:1 --cache-sizes 10,20 \
    --requests 250 --csv "$tmp/golden.csv"

# Calm full run through the daemon.
"$simctl" "${args[@]}" --csv "$tmp/calm.csv"
sed 's/,skpd_loopback,/,netsim_des,/' "$tmp/calm.csv" \
    | diff - "$tmp/golden.csv" \
    || { echo "error: daemon rows diverge from netsim_des goldens" >&2; exit 1; }

# Chaos shard 0: start, SIGKILL the client mid-sweep, then re-run the
# shard to completion with forced connection drops layered on top.
"$simctl" "${args[@]}" --shard 0/2 --csv "$tmp/shard0.csv" &
victim=$!
sleep 0.2
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
SKPD_DROP_EVERY=17 "$simctl" "${args[@]}" --shard 0/2 \
    --csv "$tmp/shard0.csv" 2>/dev/null
# Chaos shard 1: no kill, but every 23rd step tears the connection down.
SKPD_DROP_EVERY=23 "$simctl" "${args[@]}" --shard 1/2 \
    --csv "$tmp/shard1.csv" 2>/dev/null

"$simctl" merge "$tmp/merged.csv" "$tmp/shard0.csv" "$tmp/shard1.csv"
diff "$tmp/calm.csv" "$tmp/merged.csv" \
    || { echo "error: chaos merge is not byte-identical to calm run" >&2; exit 1; }

# SIGTERM mid-sweep: simctl must finish in-flight specs, write a valid
# partial document with the interruption trailer, and exit non-zero.
# (100 single-threaded specs of 20k DES cycles: several seconds of work,
# so the signal always lands mid-sweep.)
"$simctl" run --driver netsim_des --seeds 1:100:1 --requests 20000 \
    --threads 1 --csv "$tmp/partial.csv" 2> "$tmp/partial_err.txt" &
sweep=$!
sleep 0.4
kill -TERM "$sweep" 2>/dev/null || true
rc=0
wait "$sweep" || rc=$?
[[ "$rc" -ne 0 ]] || { echo "error: interrupted sweep exited 0" >&2; exit 1; }
grep -q '^# interrupted at spec ' "$tmp/partial.csv" \
    || { echo "error: partial document missing interruption trailer" >&2
         cat "$tmp/partial_err.txt" >&2; exit 1; }
head -1 "$tmp/partial.csv" | grep -q '^index,' \
    || { echo "error: partial document lost its header" >&2; exit 1; }
# And the merge gate refuses the trailered partial.
if "$simctl" merge "$tmp/never.csv" "$tmp/partial.csv" 2> "$tmp/merge_err.txt"
then
  echo "error: merge accepted an interrupted partial document" >&2
  exit 1
fi
grep -q "interrupted partial" "$tmp/merge_err.txt" \
    || { echo "error: partial-merge rejection not descriptive:" >&2
         cat "$tmp/merge_err.txt" >&2; exit 1; }

# The preloaded idle sessions must still be resident after every chaos
# phase above: they never attach, so the keepalive/linger reaper has no
# business touching them.
grep -q "preloaded $preload idle session" "$tmp/skpd_log.txt" \
    || { echo "error: daemon log missing preload confirmation" >&2
         cat "$tmp/skpd_log.txt" >&2; exit 1; }

# Graceful drain: SIGTERM the daemon, require exit 0 and a complete
# stats CSV (header present, no torn rows, one row per idle session).
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
[[ "$rc" -eq 0 ]] || { echo "error: skpd drain exited $rc" >&2
                       cat "$tmp/skpd_log.txt" >&2; exit 1; }
head -1 "$tmp/skpd_stats.csv" | grep -q '^token,executed,total,done,' \
    || { echo "error: drain stats CSV missing or torn" >&2; exit 1; }
stats_rows="$(($(wc -l < "$tmp/skpd_stats.csv") - 1))"
[[ "$stats_rows" -ge "$preload" ]] \
    || { echo "error: drain stats hold $stats_rows rows," \
              "expected >= $preload preloaded idle sessions" >&2; exit 1; }

echo "skpd chaos gate passed: killed+resumed sweep merged byte-identical" \
     "to the calm run, calm run matches netsim_des goldens, interrupted" \
     "simctl left a valid trailered partial, daemon held $preload idle" \
     "sessions throughout and drained all $stats_rows with exit 0"
