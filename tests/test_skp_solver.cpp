#include "core/skp_solver.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/access_model.hpp"
#include "core/brute_force.hpp"
#include "core/kp_solver.hpp"
#include "test_util.hpp"

namespace skp {
namespace {

TEST(SkpSolver, HandCheckedStretchSolution) {
  // small_instance: P {.5,.3,.15,.05}, r {10,20,5,8}, v = 12.
  // Candidate lists: {0} -> g = 5; {0,2} -> 5.75 - .5*3 = 4.25;
  // {0,1} -> 11 - .5*18 = 2; {0,2,...}. Optimum is {0} with g = 5?
  // Check {0,3}: 5.4 - .5*6 = 2.4. {0,2} = 4.25. So F = {0}.
  const Instance inst = testing::small_instance();
  const SkpSolution sol = solve_skp(inst);
  EXPECT_EQ(sol.F, (PrefetchList{0}));
  EXPECT_DOUBLE_EQ(sol.g, 5.0);
  EXPECT_DOUBLE_EQ(sol.stretch, 0.0);
}

TEST(SkpSolver, StretchingBeatsNotStretching) {
  // One dominant item whose retrieval exceeds v: prefetching it with
  // stretch still wins. P = {.9, .1}, r = {20, 2}, v = 10.
  // F = {0}: g = .9*20 - 1*10 = 8. F = {1}: g = .2. F = {1,0}: g = 18.2
  // - (1 - .1)*12 = 7.4. F = {0,1}? K={0} sum 20 >= 10 invalid.
  Instance inst;
  inst.P = {0.9, 0.1};
  inst.r = {20.0, 2.0};
  inst.v = 10.0;
  const SkpSolution sol = solve_skp(inst);
  EXPECT_EQ(sol.F, (PrefetchList{0}));
  EXPECT_DOUBLE_EQ(sol.g, 8.0);
  EXPECT_DOUBLE_EQ(sol.stretch, 10.0);
}

TEST(SkpSolver, EmptyWhenViewingTimeZero) {
  Instance inst = testing::small_instance();
  inst.v = 0.0;
  const SkpSolution sol = solve_skp(inst);
  EXPECT_TRUE(sol.F.empty());
  EXPECT_DOUBLE_EQ(sol.g, 0.0);
}

TEST(SkpSolver, TakesAllWhenTimeAbounds) {
  Instance inst = testing::small_instance();
  inst.v = 1000.0;
  const SkpSolution sol = solve_skp(inst);
  EXPECT_EQ(sol.F.size(), 4u);
  EXPECT_NEAR(sol.g, 12.15, 1e-12);
}

TEST(SkpSolver, ReturnedListIsValidAndCanonical) {
  Rng rng(201);
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng);
    const SkpSolution sol = solve_skp(inst);
    EXPECT_TRUE(is_valid_prefetch_list(inst, sol.F));
    EXPECT_TRUE(is_canonically_sorted(inst, sol.F));
  }
}

TEST(SkpSolver, ReportedGMatchesEq3) {
  Rng rng(203);
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng);
    const SkpSolution sol = solve_skp(inst);
    if (sol.F.empty()) {
      EXPECT_DOUBLE_EQ(sol.g, 0.0);
    } else {
      EXPECT_NEAR(sol.g, access_improvement(inst, sol.F), 1e-9)
          << "trial " << trial;
    }
  }
}

TEST(SkpSolver, GIsNeverNegative) {
  // Prefetching nothing always achieves g = 0, so the optimum is >= 0.
  Rng rng(205);
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng);
    EXPECT_GE(solve_skp(inst).g, 0.0);
  }
}

TEST(SkpSolver, AtLeastAsGoodAsKp) {
  // Every KP-feasible selection is SKP-feasible with zero stretch, so the
  // SKP optimum dominates the KP optimum.
  Rng rng(207);
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng);
    const double kp = solve_kp_bb(inst).value;
    const double skp = solve_skp(inst).g;
    EXPECT_GE(skp, kp - 1e-9) << "trial " << trial;
  }
}

TEST(SkpSolver, BoundedByUpperBound) {
  Rng rng(209);
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng);
    const double ub = skp_upper_bound(inst);
    const double g = solve_skp(inst).g;
    EXPECT_LE(g, ub + 1e-9) << "trial " << trial;
  }
}

TEST(SkpSolver, RespectsCandidateSubset) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> cand{2, 3};
  const SkpSolution sol = solve_skp(inst, cand);
  for (ItemId i : sol.F) {
    EXPECT_TRUE(i == 2 || i == 3);
  }
}

TEST(SkpSolver, ZeroProbabilityItemsNeverSelected) {
  Instance inst;
  inst.P = {0.6, 0.0, 0.4, 0.0};
  inst.r = {5.0, 1.0, 5.0, 1.0};
  inst.v = 20.0;
  const SkpSolution sol = solve_skp(inst);
  for (ItemId i : sol.F) {
    EXPECT_GT(inst.P[Instance::idx(i)], 0.0);
  }
}

TEST(SkpSolver, NodeLimitReturnsIncumbent) {
  Rng rng(211);
  testing::RandomInstanceOptions opt;
  opt.n = 16;
  const Instance inst = testing::random_instance(rng, opt);
  SkpOptions opts;
  opts.max_nodes = 3;
  const SkpSolution sol = solve_skp(inst, opts);
  EXPECT_TRUE(sol.node_limit_hit);
  // Whatever it returns must still be a valid list consistent with its g.
  EXPECT_TRUE(is_valid_prefetch_list(inst, sol.F));
}

TEST(SkpSolver, StatisticsPopulated) {
  Rng rng(213);
  testing::RandomInstanceOptions opt;
  opt.n = 12;
  const Instance inst = testing::random_instance(rng, opt);
  const SkpSolution sol = solve_skp(inst);
  EXPECT_GT(sol.forward_steps, 0u);
}

TEST(SkpSolver, PaperTailRuleAlsoValidList) {
  Rng rng(215);
  SkpOptions opts;
  opts.delta_rule = DeltaRule::PaperTail;
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng);
    const SkpSolution sol = solve_skp(inst, opts);
    EXPECT_TRUE(is_valid_prefetch_list(inst, sol.F));
    EXPECT_TRUE(is_canonically_sorted(inst, sol.F));
  }
}

TEST(SkpSolver, TotalProbMassScalesPenalty) {
  // With a smaller penalty base the same stretch costs less, so g grows.
  Instance inst;
  inst.P = {0.4, 0.2};
  inst.r = {20.0, 2.0};
  inst.v = 10.0;
  SkpOptions full;  // mass 1.0
  SkpOptions reduced;
  reduced.total_prob_mass = 0.6;
  const double g_full = solve_skp(inst, full).g;
  const double g_reduced = solve_skp(inst, reduced).g;
  EXPECT_GE(g_reduced, g_full);
}

TEST(SkpSolver, SingleItem) {
  Instance inst;
  inst.P = {1.0};
  inst.r = {5.0};
  inst.v = 3.0;
  // g = 5 - 1 * 2 = 3 (prefetch with stretch 2) vs 0; prefetch wins.
  const SkpSolution sol = solve_skp(inst);
  EXPECT_EQ(sol.F, (PrefetchList{0}));
  EXPECT_DOUBLE_EQ(sol.g, 3.0);
  EXPECT_DOUBLE_EQ(sol.stretch, 2.0);
}

TEST(SkpSolver, RejectsBadTotalMass) {
  const Instance inst = testing::small_instance();
  SkpOptions opts;
  opts.total_prob_mass = 0.0;
  EXPECT_THROW(solve_skp(inst, opts), std::invalid_argument);
}

TEST(SkpUpperBound, MatchesEq7HandComputation) {
  // Canonical order 0,1,2,3; v = 12: item 0 fits (10), item 1 does not.
  // U = P_0 r_0 + (12 - 10) * P_1 = 5 + 2 * .3 = 5.6.
  const Instance inst = testing::small_instance();
  EXPECT_DOUBLE_EQ(skp_upper_bound(inst), 5.6);
}

}  // namespace
}  // namespace skp
