#include "workload/request_stream.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace skp {
namespace {

TEST(SampleCategorical, RespectsPointMass) {
  Rng rng(1);
  const std::vector<double> p{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_categorical(p, rng), 1);
  }
}

TEST(SampleCategorical, FrequenciesMatchProbabilities) {
  Rng rng(2);
  const std::vector<double> p{0.1, 0.2, 0.3, 0.4};
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sample_categorical(p, rng)];
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, p[j], 0.01);
  }
}

TEST(SampleCategorical, SkipsZeroProbabilityItems) {
  Rng rng(3);
  const std::vector<double> p{0.5, 0.0, 0.5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(sample_categorical(p, rng), 1);
  }
}

TEST(SampleCategorical, RejectsDegenerateInput) {
  Rng rng(4);
  EXPECT_THROW(sample_categorical(std::vector<double>{}, rng),
               std::invalid_argument);
  EXPECT_THROW(sample_categorical(std::vector<double>{0.0, 0.0}, rng),
               std::invalid_argument);
}

TEST(SampleCategorical, SubUnitMassStillReturnsValidItem) {
  // fp round-off fallback: mass sums to 0.9; result is a positive-P item.
  Rng rng(5);
  const std::vector<double> p{0.45, 0.45, 0.0};
  for (int i = 0; i < 1000; ++i) {
    const ItemId x = sample_categorical(p, rng);
    EXPECT_TRUE(x == 0 || x == 1);
  }
}

TEST(IidStream, EventsCarryTheFixedInstance) {
  const Instance inst = testing::small_instance();
  IidStream stream(inst);
  Rng rng(6);
  const RequestEvent ev = stream.next(rng);
  EXPECT_EQ(ev.instance.n(), inst.n());
  EXPECT_DOUBLE_EQ(ev.instance.v, inst.v);
  EXPECT_GE(ev.item, 0);
  EXPECT_LT(static_cast<std::size_t>(ev.item), inst.n());
}

TEST(IidStream, RequestFrequenciesMatchP) {
  const Instance inst = testing::small_instance();
  IidStream stream(inst);
  Rng rng(7);
  std::vector<int> counts(inst.n(), 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[stream.next(rng).item];
  for (std::size_t j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, inst.P[j], 0.01);
  }
}

TEST(IidStream, ValidatesInstance) {
  Instance bad;
  bad.P = {0.9, 0.9};
  bad.r = {1.0, 1.0};
  EXPECT_THROW(IidStream{bad}, std::invalid_argument);
}

TEST(MarkovStream, EventInstanceReflectsPreStepState) {
  Rng build(8);
  MarkovSourceConfig cfg;
  cfg.n_states = 12;
  cfg.out_degree_lo = 3;
  cfg.out_degree_hi = 5;
  auto src = std::make_shared<MarkovSource>(cfg, build);
  src->teleport(4);
  MarkovStream stream(src);
  Rng walk(9);
  const RequestEvent ev = stream.next(walk);
  // Instance P must equal the row of state 4, and the item must be one of
  // state 4's successors.
  const auto row = src->transition_row(4);
  EXPECT_GT(row[static_cast<std::size_t>(ev.item)], 0.0);
  EXPECT_DOUBLE_EQ(ev.instance.v, src->viewing_time(4));
}

TEST(MarkovStream, NItemsMatchesSource) {
  Rng build(10);
  MarkovSourceConfig cfg;
  cfg.n_states = 16;
  cfg.out_degree_lo = 2;
  cfg.out_degree_hi = 4;
  auto src = std::make_shared<MarkovSource>(cfg, build);
  MarkovStream stream(src);
  EXPECT_EQ(stream.n_items(), 16u);
}

TEST(MarkovStream, NullSourceThrows) {
  EXPECT_THROW(MarkovStream(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace skp
