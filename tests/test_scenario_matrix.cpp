// Scenario-matrix regression suite (see scenario_harness.hpp).
//
// Three layers of protection:
//   1. Invariants over the FULL 3x4x3x4 = 144-combination cross-product:
//      metrics conservation (hits + demand fetches == requests), network
//      accounting consistency, and the stretch-knapsack bandwidth budget
//      (no plan schedules more than the viewing time allows, modulo the
//      single stretching tail fetch).
//   2. Bit-level determinism: the same (scenario, seed) must reproduce the
//      same counters run-to-run.
//   3. Golden hit-rates on the full matrix plus the Pr-arbitration,
//      DES-backed (NetsimDes), shared-link contention (MultiClientDes),
//      hostile-world (flash crowd / churn / time-varying link) and
//      robustness (fault injection / overload controller)
//      variants. Tolerance: +/- 0.03 absolute. The
//      runs are
//      deterministic, so on one toolchain the match is exact; the slack
//      absorbs standard-library differences (the predictors hold counts in
//      unordered_maps, whose iteration order is implementation-defined and
//      can perturb tie-breaking in the last floating-point bits). Refresh
//      workflow after an intentional behavior change:
//        ./build/tests/test_scenario_matrix --gtest_also_run_disabled_tests
//            --gtest_filter='*PrintGoldenTable*'
//      and paste the emitted rows over kGolden below.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <vector>

#include "scenario_harness.hpp"

namespace skp::testing {
namespace {

const PredictorKind kPredictors[] = {PredictorKind::Markov1,
                                     PredictorKind::Lz78, PredictorKind::Ppm};
const CachePolicyKind kCachePolicies[] = {
    CachePolicyKind::LRU, CachePolicyKind::FIFO, CachePolicyKind::LFU,
    CachePolicyKind::Random};
const NetProfile kNets[] = {kLan, kWan, kModem};
const ScenarioWorkload kWorkloads[] = {
    ScenarioWorkload::MarkovChain, ScenarioWorkload::IidSkewy,
    ScenarioWorkload::TraceReplay, ScenarioWorkload::Adversarial};

ScenarioConfig make_config(PredictorKind p, CachePolicyKind c,
                           const NetProfile& n, ScenarioWorkload w,
                           PlanMode m = PlanMode::EmptyCache) {
  ScenarioConfig cfg;
  cfg.predictor = p;
  cfg.cache_policy = c;
  cfg.net = n;
  cfg.workload = w;
  cfg.plan_mode = m;
  return cfg;
}

std::vector<ScenarioConfig> full_matrix() {
  std::vector<ScenarioConfig> all;
  for (const auto p : kPredictors)
    for (const auto c : kCachePolicies)
      for (const auto& n : kNets)
        for (const auto w : kWorkloads)
          all.push_back(make_config(p, c, n, w));
  return all;
}

// Pr-arbitration (Figure-6) variant: predictors x nets x workloads under
// LRU demand eviction — the deployment shape the ROADMAP asks to lock
// (plan_with_cache under learned predictors).
std::vector<ScenarioConfig> pr_arbitration_matrix() {
  std::vector<ScenarioConfig> all;
  for (const auto p : kPredictors)
    for (const auto& n : kNets)
      for (const auto w : kWorkloads)
        all.push_back(make_config(p, CachePolicyKind::LRU, n, w,
                                  PlanMode::PrArbitration));
  return all;
}

// DES-backed variant: the same predictor x net x workload points executed
// on sim/netsim's ClientSession through the runtime's netsim_des driver —
// prefetches and demand fetches serialize over the modeled link, locking
// the netsim path into the golden matrix (ROADMAP "DES-backed variant").
std::vector<ScenarioConfig> netsim_des_matrix() {
  std::vector<ScenarioConfig> all;
  for (const auto p : kPredictors)
    for (const auto& n : kNets)
      for (const auto w : kWorkloads)
        all.push_back(make_config(p, CachePolicyKind::LRU, n, w,
                                  PlanMode::NetsimDes));
  return all;
}

// Multi-client contention variant: the same predictor x net x workload
// points served by three clients over ONE shared link through the
// runtime's multi_client driver (aggregate cycle count matched to the
// single-client rows) — hit rates here are contention-grounded.
std::vector<ScenarioConfig> multi_client_des_matrix() {
  std::vector<ScenarioConfig> all;
  for (const auto p : kPredictors)
    for (const auto& n : kNets)
      for (const auto w : kWorkloads)
        all.push_back(make_config(p, CachePolicyKind::LRU, n, w,
                                  PlanMode::MultiClientDes));
  return all;
}

// Hostile-world variant: the three non-stationary modes (flash-crowd
// phase alignment, client churn, piecewise time-varying link) at every
// predictor x net point, on the default Markov workload under LRU —
// locking the hostile scenario engine into the golden matrix.
std::vector<ScenarioConfig> hostile_matrix() {
  const PlanMode kHostileModes[] = {PlanMode::FlashCrowd, PlanMode::Churn,
                                    PlanMode::LinkSchedule};
  std::vector<ScenarioConfig> all;
  for (const auto m : kHostileModes)
    for (const auto p : kPredictors)
      for (const auto& n : kNets)
        all.push_back(make_config(p, CachePolicyKind::LRU, n,
                                  ScenarioWorkload::MarkovChain, m));
  return all;
}

// Robustness variant: the fault-injected NetsimDes mode and the
// fault+overload-controller MultiClientDes mode at every predictor x net
// point, on the default Markov workload under LRU — locking the fault
// model and the degradation ladder into the golden matrix.
std::vector<ScenarioConfig> robustness_matrix() {
  const PlanMode kRobustModes[] = {PlanMode::Faulty, PlanMode::Overload};
  std::vector<ScenarioConfig> all;
  for (const auto m : kRobustModes)
    for (const auto p : kPredictors)
      for (const auto& n : kNets)
        all.push_back(make_config(p, CachePolicyKind::LRU, n,
                                  ScenarioWorkload::MarkovChain, m));
  return all;
}

class ScenarioMatrixTest : public ::testing::TestWithParam<ScenarioConfig> {};

TEST_P(ScenarioMatrixTest, InvariantsHold) {
  const ScenarioConfig cfg = GetParam();
  const ScenarioResult res = run_scenario(cfg);

  // Every cycle is accounted for exactly once.
  EXPECT_EQ(res.requests, cfg.requests);
  EXPECT_EQ(res.hits + res.demand_fetches, res.requests)
      << "metrics conservation violated";

  // Network accounting is consistent and strictly positive (a cold cache
  // must demand-fetch at least the first request).
  EXPECT_NEAR(res.network_time,
              res.prefetch_network_time + res.demand_network_time, 1e-9);
  EXPECT_GT(res.demand_fetches, 0u);
  EXPECT_GT(res.demand_network_time, 0.0);

  // The planner never schedules past the viewing-time budget (Eq. 1: only
  // the final fetch may stretch).
  EXPECT_EQ(res.budget_violations, 0u)
      << "worst overrun: " << res.worst_budget_overrun;

  // The pipeline is actually exercising prefetch + cache: some plans fire
  // and some requests hit. Every predictor concentrates enough mass on
  // these workloads for both to hold at the default scale.
  EXPECT_GT(res.plans, 0u);
  EXPECT_GT(res.prefetch_fetches, 0u);
  EXPECT_GT(res.hits, 0u);
  EXPECT_LE(res.hit_rate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Full, ScenarioMatrixTest, ::testing::ValuesIn(full_matrix()),
    [](const ::testing::TestParamInfo<ScenarioConfig>& info) {
      return scenario_name(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    PrArbitration, ScenarioMatrixTest,
    ::testing::ValuesIn(pr_arbitration_matrix()),
    [](const ::testing::TestParamInfo<ScenarioConfig>& info) {
      return scenario_name(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    NetsimDes, ScenarioMatrixTest, ::testing::ValuesIn(netsim_des_matrix()),
    [](const ::testing::TestParamInfo<ScenarioConfig>& info) {
      return scenario_name(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    MultiClientDes, ScenarioMatrixTest,
    ::testing::ValuesIn(multi_client_des_matrix()),
    [](const ::testing::TestParamInfo<ScenarioConfig>& info) {
      return scenario_name(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    Hostile, ScenarioMatrixTest, ::testing::ValuesIn(hostile_matrix()),
    [](const ::testing::TestParamInfo<ScenarioConfig>& info) {
      return scenario_name(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    Robustness, ScenarioMatrixTest,
    ::testing::ValuesIn(robustness_matrix()),
    [](const ::testing::TestParamInfo<ScenarioConfig>& info) {
      return scenario_name(info.param);
    });

TEST(ScenarioDeterminism, SameSeedSameCounters) {
  // One combo per workload x predictor pairing (cache/net varied too);
  // default-equality on ScenarioResult covers every counter incl. doubles.
  const ScenarioConfig picks[] = {
      make_config(PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
                  ScenarioWorkload::MarkovChain),
      make_config(PredictorKind::Lz78, CachePolicyKind::Random, kWan,
                  ScenarioWorkload::IidSkewy),
      make_config(PredictorKind::Ppm, CachePolicyKind::LFU, kModem,
                  ScenarioWorkload::TraceReplay),
      make_config(PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
                  ScenarioWorkload::MarkovChain, PlanMode::NetsimDes),
      make_config(PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
                  ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes),
      make_config(PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
                  ScenarioWorkload::Adversarial, PlanMode::FlashCrowd),
      make_config(PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
                  ScenarioWorkload::MarkovChain, PlanMode::Churn),
      make_config(PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
                  ScenarioWorkload::Adversarial, PlanMode::LinkSchedule),
      make_config(PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
                  ScenarioWorkload::MarkovChain, PlanMode::Faulty),
      make_config(PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
                  ScenarioWorkload::MarkovChain, PlanMode::Overload),
  };
  for (const auto& cfg : picks) {
    const ScenarioResult a = run_scenario(cfg);
    const ScenarioResult b = run_scenario(cfg);
    EXPECT_EQ(a, b) << scenario_name(cfg);
  }
}

TEST(ScenarioDeterminism, SeedChangesTrajectory) {
  ScenarioConfig cfg;  // defaults: markov1 / lru / lan / markov chain
  const ScenarioResult a = run_scenario(cfg);
  cfg.seed = 77;
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_NE(a.network_time, b.network_time);
}

TEST(ScenarioShape, SlowerNetworksCostMoreWirePerRequest) {
  // Demand time per miss grows with the profile's per-item retrieval time;
  // holds pairwise on the same workload trajectory.
  auto demand_per_miss = [](const NetProfile& n) {
    const ScenarioResult r = run_scenario(
        make_config(PredictorKind::Markov1, CachePolicyKind::LRU, n,
                    ScenarioWorkload::MarkovChain));
    return r.demand_network_time / static_cast<double>(r.demand_fetches);
  };
  const double lan = demand_per_miss(kLan);
  const double wan = demand_per_miss(kWan);
  const double modem = demand_per_miss(kModem);
  EXPECT_LT(lan, wan);
  EXPECT_LT(wan, modem);
}

TEST(ScenarioShape, MultiClientSplitServesEveryRequestedCycle) {
  // Regression: the harness used to floor-divide cfg.requests across the
  // three clients, silently dropping the remainder cycles (1201 requests
  // served only 1200). The override-based split hands the first
  // (requests % clients) clients one extra cycle each.
  for (const std::size_t total : {1201u, 1202u, 1200u}) {
    ScenarioConfig cfg;
    cfg.plan_mode = PlanMode::MultiClientDes;
    cfg.requests = total;
    const ScenarioResult res = run_scenario(cfg);
    EXPECT_EQ(res.requests, total);
    EXPECT_EQ(res.hits + res.demand_fetches, res.requests);
  }
}

// ---- Golden slice -------------------------------------------------------

struct GoldenRow {
  PredictorKind p;
  CachePolicyKind c;
  NetProfile n;
  ScenarioWorkload w;
  PlanMode m;
  double hit_rate;
};

// The full 144-combination EmptyCache matrix plus the 36-combination
// Pr-arbitration, NetsimDes and MultiClientDes variants, the
// 27-combination hostile-world variant and the 18-combination
// fault/overload robustness variant (297 rows). Values produced by
// PrintGoldenTable (below) at seed 2026, 1200 aggregate requests;
// tolerance documented in the file header. Refresh with
// tests/refresh_goldens.sh --apply.
constexpr double kGoldenTol = 0.03;

const std::vector<GoldenRow> kGolden = {
    // clang-format off
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.750833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.830000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.822500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.592500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.601667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.835833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.530833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.643333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.398333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.897500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.316667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.631667},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.770000},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.813333},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.847500},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.635000},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.601667},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.818333},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.545000},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.625833},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.401667},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.875833},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.312500},
    {PredictorKind::Markov1, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.624167},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.530000},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.953333},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.569167},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.439167},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.583333},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.952500},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.647500},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.460000},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.534167},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.944167},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.450000},
    {PredictorKind::Markov1, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.430000},
    {PredictorKind::Markov1, CachePolicyKind::Random, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.619167},
    {PredictorKind::Markov1, CachePolicyKind::Random, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.785833},
    {PredictorKind::Markov1, CachePolicyKind::Random, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.730000},
    {PredictorKind::Markov1, CachePolicyKind::Random, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.611667},
    {PredictorKind::Markov1, CachePolicyKind::Random, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.587500},
    {PredictorKind::Markov1, CachePolicyKind::Random, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.826667},
    {PredictorKind::Markov1, CachePolicyKind::Random, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.567500},
    {PredictorKind::Markov1, CachePolicyKind::Random, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.635833},
    {PredictorKind::Markov1, CachePolicyKind::Random, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.403333},
    {PredictorKind::Markov1, CachePolicyKind::Random, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.859167},
    {PredictorKind::Markov1, CachePolicyKind::Random, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.310833},
    {PredictorKind::Markov1, CachePolicyKind::Random, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.611667},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.404167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.879167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.505833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.428333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.439167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.894167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.380833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.429167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.348333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.910833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.265833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.518333},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.407500},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.853333},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.515000},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.444167},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.450000},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.873333},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.389167},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.460833},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.330833},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.880833},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.263333},
    {PredictorKind::Lz78, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.493333},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.490833},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.954167},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.464167},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.407500},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.516667},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.955000},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.519167},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.420833},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.486667},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.940000},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.403333},
    {PredictorKind::Lz78, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.386667},
    {PredictorKind::Lz78, CachePolicyKind::Random, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.370833},
    {PredictorKind::Lz78, CachePolicyKind::Random, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.870000},
    {PredictorKind::Lz78, CachePolicyKind::Random, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.465000},
    {PredictorKind::Lz78, CachePolicyKind::Random, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.406667},
    {PredictorKind::Lz78, CachePolicyKind::Random, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.430833},
    {PredictorKind::Lz78, CachePolicyKind::Random, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.870000},
    {PredictorKind::Lz78, CachePolicyKind::Random, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.415000},
    {PredictorKind::Lz78, CachePolicyKind::Random, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.454167},
    {PredictorKind::Lz78, CachePolicyKind::Random, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.346667},
    {PredictorKind::Lz78, CachePolicyKind::Random, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.877500},
    {PredictorKind::Lz78, CachePolicyKind::Random, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.265833},
    {PredictorKind::Lz78, CachePolicyKind::Random, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.472500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.686667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.615000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.782500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.545000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.574167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.766667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.546667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.605000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.390833},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.879167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.325000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.587500},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.718333},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.588333},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.801667},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.559167},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.570833},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.719167},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.556667},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.605833},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.386667},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.858333},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.315000},
    {PredictorKind::Ppm, CachePolicyKind::FIFO, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.577500},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.535000},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.933333},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.555000},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.440000},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.579167},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.943333},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.647500},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.465833},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.523333},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.933333},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.441667},
    {PredictorKind::Ppm, CachePolicyKind::LFU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.410000},
    {PredictorKind::Ppm, CachePolicyKind::Random, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.583333},
    {PredictorKind::Ppm, CachePolicyKind::Random, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.600000},
    {PredictorKind::Ppm, CachePolicyKind::Random, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.680000},
    {PredictorKind::Ppm, CachePolicyKind::Random, kLan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.579167},
    {PredictorKind::Ppm, CachePolicyKind::Random, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.556667},
    {PredictorKind::Ppm, CachePolicyKind::Random, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.730000},
    {PredictorKind::Ppm, CachePolicyKind::Random, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.568333},
    {PredictorKind::Ppm, CachePolicyKind::Random, kWan,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.588333},
    {PredictorKind::Ppm, CachePolicyKind::Random, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::EmptyCache, 0.396667},
    {PredictorKind::Ppm, CachePolicyKind::Random, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::EmptyCache, 0.840000},
    {PredictorKind::Ppm, CachePolicyKind::Random, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::EmptyCache, 0.333333},
    {PredictorKind::Ppm, CachePolicyKind::Random, kModem,
     ScenarioWorkload::Adversarial, PlanMode::EmptyCache, 0.562500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::PrArbitration, 0.878333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::PrArbitration, 0.945833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::PrArbitration, 0.910000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::PrArbitration, 0.780833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::PrArbitration, 0.698333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::PrArbitration, 0.949167},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::PrArbitration, 0.605000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::PrArbitration, 0.765000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::PrArbitration, 0.455000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::PrArbitration, 0.934167},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::PrArbitration, 0.340833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::PrArbitration, 0.655833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::PrArbitration, 0.554167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::PrArbitration, 0.950833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::PrArbitration, 0.630000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::PrArbitration, 0.505000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::PrArbitration, 0.536667},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::PrArbitration, 0.950000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::PrArbitration, 0.494167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::PrArbitration, 0.523333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::PrArbitration, 0.405833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::PrArbitration, 0.931667},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::PrArbitration, 0.295000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::PrArbitration, 0.545000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::PrArbitration, 0.865833},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::PrArbitration, 0.884167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::PrArbitration, 0.909167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::PrArbitration, 0.756667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::PrArbitration, 0.690000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::PrArbitration, 0.905000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::PrArbitration, 0.607500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::PrArbitration, 0.736667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::PrArbitration, 0.444167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::PrArbitration, 0.927500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::PrArbitration, 0.347500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::PrArbitration, 0.628333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::NetsimDes, 0.880833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::NetsimDes, 0.946667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::NetsimDes, 0.905000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::NetsimDes, 0.785833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::NetsimDes, 0.688333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::NetsimDes, 0.950000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::NetsimDes, 0.579167},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::NetsimDes, 0.756667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::NetsimDes, 0.431667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::NetsimDes, 0.947500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::NetsimDes, 0.243333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::NetsimDes, 0.618333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::NetsimDes, 0.555000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::NetsimDes, 0.950833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::NetsimDes, 0.625000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::NetsimDes, 0.512500},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::NetsimDes, 0.538333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::NetsimDes, 0.950833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::NetsimDes, 0.502500},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::NetsimDes, 0.523333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::NetsimDes, 0.471667},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::NetsimDes, 0.947500},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::NetsimDes, 0.354167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::NetsimDes, 0.529167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::NetsimDes, 0.866667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::NetsimDes, 0.884167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::NetsimDes, 0.905000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::NetsimDes, 0.761667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::NetsimDes, 0.682500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::NetsimDes, 0.905000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::NetsimDes, 0.592500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::NetsimDes, 0.749167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::NetsimDes, 0.473333},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::NetsimDes, 0.945000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::NetsimDes, 0.294167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::NetsimDes, 0.613333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::MultiClientDes, 0.762500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes, 0.930000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::MultiClientDes, 0.807500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::MultiClientDes, 0.756667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::MultiClientDes, 0.645000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes, 0.938333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::MultiClientDes, 0.645000},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::MultiClientDes, 0.747500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::MultiClientDes, 0.416667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes, 0.946667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::MultiClientDes, 0.372500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::MultiClientDes, 0.647500},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::MultiClientDes, 0.478333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes, 0.946667},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::MultiClientDes, 0.500000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::MultiClientDes, 0.536667},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::MultiClientDes, 0.471667},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes, 0.945833},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::MultiClientDes, 0.465000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::MultiClientDes, 0.535000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::MultiClientDes, 0.420000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes, 0.945000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::MultiClientDes, 0.373333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::MultiClientDes, 0.496667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::MultiClientDes, 0.754167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes, 0.910000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::TraceReplay, PlanMode::MultiClientDes, 0.800000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::Adversarial, PlanMode::MultiClientDes, 0.685000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::MultiClientDes, 0.635833},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes, 0.919167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::TraceReplay, PlanMode::MultiClientDes, 0.641667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::Adversarial, PlanMode::MultiClientDes, 0.679167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::MultiClientDes, 0.453333},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::IidSkewy, PlanMode::MultiClientDes, 0.945833},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::TraceReplay, PlanMode::MultiClientDes, 0.403333},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::Adversarial, PlanMode::MultiClientDes, 0.596667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::FlashCrowd, 0.760833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::FlashCrowd, 0.632500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::FlashCrowd, 0.423333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::FlashCrowd, 0.477500},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::FlashCrowd, 0.474167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::FlashCrowd, 0.423333},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::FlashCrowd, 0.754167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::FlashCrowd, 0.615000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::FlashCrowd, 0.462500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::Churn, 0.267500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::Churn, 0.247500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::Churn, 0.087500},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::Churn, 0.265000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::Churn, 0.232500},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::Churn, 0.085833},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::Churn, 0.270000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::Churn, 0.242500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::Churn, 0.091667},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::LinkSchedule, 0.880833},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::LinkSchedule, 0.688333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::LinkSchedule, 0.431667},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::LinkSchedule, 0.555000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::LinkSchedule, 0.538333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::LinkSchedule, 0.471667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::LinkSchedule, 0.866667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::LinkSchedule, 0.682500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::LinkSchedule, 0.473333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::Faulty, 0.879167},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::Faulty, 0.687500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::Faulty, 0.431667},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::Faulty, 0.555000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::Faulty, 0.538333},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::Faulty, 0.472500},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::Faulty, 0.865000},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::Faulty, 0.680833},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::Faulty, 0.473333},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::Overload, 0.534167},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::Overload, 0.297500},
    {PredictorKind::Markov1, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::Overload, 0.304167},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::Overload, 0.487500},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::Overload, 0.300000},
    {PredictorKind::Lz78, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::Overload, 0.343333},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kLan,
     ScenarioWorkload::MarkovChain, PlanMode::Overload, 0.469167},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kWan,
     ScenarioWorkload::MarkovChain, PlanMode::Overload, 0.326667},
    {PredictorKind::Ppm, CachePolicyKind::LRU, kModem,
     ScenarioWorkload::MarkovChain, PlanMode::Overload, 0.331667},
    // clang-format on
};

TEST(ScenarioGolden, HitRatesWithinTolerance) {
  ASSERT_GT(kGolden.size(), 0u) << "golden table not populated";
  for (const auto& g : kGolden) {
    const ScenarioConfig cfg = make_config(g.p, g.c, g.n, g.w, g.m);
    const ScenarioResult res = run_scenario(cfg);
    EXPECT_NEAR(res.hit_rate(), g.hit_rate, kGoldenTol)
        << scenario_name(cfg) << " drifted: golden " << g.hit_rate
        << " actual " << res.hit_rate();
  }
}

// Manual golden refresh: prints the kGolden initializer rows. Disabled so
// ctest never depends on it; see the file header for the invocation.
TEST(ScenarioGolden, DISABLED_PrintGoldenTable) {
  auto enum_name = [](PredictorKind p) {
    switch (p) {
      case PredictorKind::Markov1: return "Markov1";
      case PredictorKind::Lz78: return "Lz78";
      case PredictorKind::Ppm: return "Ppm";
      default: return "?";
    }
  };
  auto cache_name = [](CachePolicyKind c) {
    switch (c) {
      case CachePolicyKind::LRU: return "LRU";
      case CachePolicyKind::FIFO: return "FIFO";
      case CachePolicyKind::LFU: return "LFU";
      case CachePolicyKind::Random: return "Random";
    }
    return "?";
  };
  auto workload_name = [](ScenarioWorkload w) {
    switch (w) {
      case ScenarioWorkload::MarkovChain: return "MarkovChain";
      case ScenarioWorkload::IidSkewy: return "IidSkewy";
      case ScenarioWorkload::TraceReplay: return "TraceReplay";
      case ScenarioWorkload::Adversarial: return "Adversarial";
    }
    return "?";
  };
  auto mode_name = [](PlanMode m) {
    switch (m) {
      case PlanMode::EmptyCache: return "EmptyCache";
      case PlanMode::PrArbitration: return "PrArbitration";
      case PlanMode::NetsimDes: return "NetsimDes";
      case PlanMode::MultiClientDes: return "MultiClientDes";
      case PlanMode::FlashCrowd: return "FlashCrowd";
      case PlanMode::Churn: return "Churn";
      case PlanMode::LinkSchedule: return "LinkSchedule";
      case PlanMode::Faulty: return "Faulty";
      case PlanMode::Overload: return "Overload";
    }
    return "?";
  };
  auto print_row = [&](const ScenarioConfig& cfg) {
    const ScenarioResult res = run_scenario(cfg);
    std::printf(
        "    {PredictorKind::%s, CachePolicyKind::%s, k%c%s,\n"
        "     ScenarioWorkload::%s, PlanMode::%s, %.6f},\n",
        enum_name(cfg.predictor), cache_name(cfg.cache_policy),
        static_cast<char>(std::toupper(cfg.net.name[0])), cfg.net.name + 1,
        workload_name(cfg.workload), mode_name(cfg.plan_mode),
        res.hit_rate());
  };
  for (const auto& cfg : full_matrix()) print_row(cfg);
  for (const auto& cfg : pr_arbitration_matrix()) print_row(cfg);
  for (const auto& cfg : netsim_des_matrix()) print_row(cfg);
  for (const auto& cfg : multi_client_des_matrix()) print_row(cfg);
  for (const auto& cfg : hostile_matrix()) print_row(cfg);
  for (const auto& cfg : robustness_matrix()) print_row(cfg);
}

}  // namespace
}  // namespace skp::testing
