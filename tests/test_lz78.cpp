#include "predict/lz78_predictor.hpp"

#include <gtest/gtest.h>

#include "workload/markov_source.hpp"

namespace skp {
namespace {

double sum(const std::vector<double>& p) {
  double s = 0;
  for (double x : p) s += x;
  return s;
}

TEST(Lz78, ConstructionValidation) {
  EXPECT_THROW(Lz78Predictor(0), std::invalid_argument);
  EXPECT_NO_THROW(Lz78Predictor(5));
}

TEST(Lz78, ColdStartUniform) {
  Lz78Predictor pred(4);
  const auto p = pred.predict();
  for (double x : p) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(Lz78, DistributionInvariant) {
  Lz78Predictor pred(8);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto p = pred.predict();
    EXPECT_NEAR(sum(p), 1.0, 1e-9);
    for (double x : p) EXPECT_GE(x, 0.0);
    pred.observe(static_cast<ItemId>(rng.next_below(8)));
  }
}

TEST(Lz78, TreeGrowsByPhrases) {
  Lz78Predictor pred(3);
  EXPECT_EQ(pred.node_count(), 1u);  // root only
  pred.observe(0);                   // new phrase "0"
  EXPECT_EQ(pred.node_count(), 2u);
  EXPECT_EQ(pred.phrase_count(), 1u);
  EXPECT_EQ(pred.current_depth(), 0u);  // back at root
  pred.observe(0);                      // descends into "0"
  EXPECT_EQ(pred.current_depth(), 1u);
  pred.observe(1);  // new phrase "01"
  EXPECT_EQ(pred.node_count(), 3u);
  EXPECT_EQ(pred.current_depth(), 0u);
}

TEST(Lz78, LearnsDeterministicCycle) {
  // LZ78 restarts at the tree root after each new phrase, so pointwise
  // predictions at phrase boundaries stay weak (the marginal); the right
  // measure — as in Vitter & Krishnan's analysis — is the *average* mass
  // assigned to the realized next symbol, which must rise well above the
  // uniform 1/3 on a deterministic cycle.
  Lz78Predictor pred(3);
  const int syms[3] = {0, 1, 2};
  double mass = 0.0;
  int scored = 0;
  for (int step = 0; step < 900; ++step) {
    const ItemId next = syms[step % 3];
    if (step > 450) {
      mass += pred.predict()[static_cast<std::size_t>(next)];
      ++scored;
    }
    pred.observe(next);
  }
  EXPECT_GT(mass / scored, 0.45);
}

TEST(Lz78, ResetRestoresColdState) {
  Lz78Predictor pred(3);
  for (int i = 0; i < 50; ++i) pred.observe(i % 3);
  pred.reset();
  EXPECT_EQ(pred.node_count(), 1u);
  EXPECT_EQ(pred.phrase_count(), 0u);
  const auto p = pred.predict();
  for (double x : p) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(Lz78, OutOfRangeThrows) {
  Lz78Predictor pred(3);
  EXPECT_THROW(pred.observe(3), std::invalid_argument);
  EXPECT_THROW(pred.observe(-1), std::invalid_argument);
}

TEST(Lz78, BeatsUniformOnMarkovSource) {
  // Vitter–Krishnan's setting: the LZ78 predictor must assign the
  // realized next state materially more mass than uniform on average.
  Rng build(9);
  MarkovSourceConfig cfg;
  cfg.n_states = 20;
  cfg.out_degree_lo = 3;
  cfg.out_degree_hi = 5;
  MarkovSource src(cfg, build);
  src.teleport(0);
  Lz78Predictor pred(cfg.n_states);
  pred.observe(0);
  Rng walk(10);
  double mass = 0;
  const int steps = 8000;
  int scored = 0;
  for (int i = 0; i < steps; ++i) {
    const auto next = static_cast<ItemId>(src.step(walk));
    if (i > steps / 2) {
      mass += pred.predict()[static_cast<std::size_t>(next)];
      ++scored;
    }
    pred.observe(next);
  }
  EXPECT_GT(mass / scored, 2.0 / cfg.n_states);
}

}  // namespace
}  // namespace skp
