// Overload-controller tests (core/overload.hpp + the netsim_des /
// multi_client drivers honoring SimSpec::overload and SimSpec::deadline).
//
// The controller contract under test:
//   * step pressure walks the rung ladder down MONOTONICALLY, one rung
//     per closed window, and holds at the floor without oscillating;
//   * recovery needs recover_windows CONSECUTIVE calm windows per rung —
//     a middle-band window resets the streak (hysteresis);
//   * degrade_row applies the rung's top-k restriction exactly;
//   * a controller that never trips leaves the run bit-identical to a
//     controller-less run;
//   * under sustained fault pressure, degrading beats not degrading:
//     controller-on serves strictly more requests within the deadline
//     than controller-off at the same fault rate (the acceptance bar).
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/overload.hpp"
#include "sim/runtime.hpp"

namespace skp {
namespace {

OverloadConfig quick_config() {
  OverloadConfig cfg;
  cfg.enabled = true;
  cfg.window = 4;
  cfg.degrade_ratio = 2.0;
  cfg.recover_ratio = 1.2;
  cfg.recover_windows = 2;
  cfg.lookahead_depth = 2;
  cfg.budget_items = 1;
  return cfg;
}

// Feeds one full window of identical observations; returns whether any
// of them changed the rung.
bool feed_window(OverloadController& ctrl, double value,
                 std::size_t window) {
  bool changed = false;
  for (std::size_t i = 0; i < window; ++i) changed |= ctrl.observe(value);
  return changed;
}

TEST(OverloadController, DisabledControllerIsInert) {
  OverloadController ctrl{OverloadConfig{}};
  EXPECT_FALSE(ctrl.enabled());
  for (int i = 0; i < 500; ++i) EXPECT_FALSE(ctrl.observe(1e9));
  EXPECT_EQ(ctrl.rung(), DegradationRung::kNormal);
  EXPECT_EQ(ctrl.stats(), OverloadStats{});
  std::vector<double> row{0.5, 0.5};
  ctrl.degrade_row(row);
  EXPECT_EQ(row, (std::vector<double>{0.5, 0.5}));
}

TEST(OverloadController, ValidationRejectsBadConfig) {
  OverloadConfig cfg = quick_config();
  cfg.window = 0;
  EXPECT_THROW(OverloadController{cfg}, std::invalid_argument);
  cfg = quick_config();
  cfg.degrade_ratio = 1.0;
  EXPECT_THROW(OverloadController{cfg}, std::invalid_argument);
  cfg = quick_config();
  cfg.recover_ratio = cfg.degrade_ratio;  // must stay strictly below
  EXPECT_THROW(OverloadController{cfg}, std::invalid_argument);
  cfg = quick_config();
  cfg.headroom = 0.0;
  EXPECT_THROW(OverloadController{cfg}, std::invalid_argument);
}

TEST(OverloadController, StepPressureDescendsMonotonicallyToTheFloor) {
  const OverloadConfig cfg = quick_config();
  OverloadController ctrl{cfg};
  // First window seeds the baseline (no verdict yet).
  EXPECT_FALSE(feed_window(ctrl, 1.0, cfg.window));
  EXPECT_EQ(ctrl.rung(), DegradationRung::kNormal);
  EXPECT_DOUBLE_EQ(ctrl.baseline(), 1.0);

  // Each hot window descends exactly one rung: 1 -> 2 -> 3 -> 4.
  for (int expect = 1; expect < kDegradationRungs; ++expect) {
    EXPECT_TRUE(feed_window(ctrl, 10.0, cfg.window));
    EXPECT_EQ(static_cast<int>(ctrl.rung()), expect);
  }
  EXPECT_EQ(ctrl.rung(), DegradationRung::kPrefetchOff);
  EXPECT_EQ(ctrl.stats().transitions, 4u);
  EXPECT_EQ(ctrl.stats().max_rung, 4);

  // Sustained pressure holds the floor — no oscillation, no further
  // transitions.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(feed_window(ctrl, 10.0, cfg.window));
  }
  EXPECT_EQ(ctrl.rung(), DegradationRung::kPrefetchOff);
  EXPECT_EQ(ctrl.stats().transitions, 4u);
}

TEST(OverloadController, RecoveryNeedsConsecutiveCalmWindows) {
  const OverloadConfig cfg = quick_config();
  OverloadController ctrl{cfg};
  feed_window(ctrl, 1.0, cfg.window);  // baseline = 1
  feed_window(ctrl, 10.0, cfg.window);
  feed_window(ctrl, 10.0, cfg.window);
  ASSERT_EQ(ctrl.rung(), DegradationRung::kTrimBudget);

  // One calm window makes no recovery progress yet (recover_windows = 2).
  EXPECT_FALSE(feed_window(ctrl, 1.0, cfg.window));
  EXPECT_EQ(ctrl.rung(), DegradationRung::kTrimBudget);
  // A middle-band window (gradient between the thresholds) resets the
  // calm streak: with baseline 1 and headroom 1, a 2.0 window scores
  // gradient 1.5 — neither hot nor calm.
  EXPECT_FALSE(feed_window(ctrl, 2.0, cfg.window));
  // Two MORE consecutive calm windows are now needed per rung.
  EXPECT_FALSE(feed_window(ctrl, 1.0, cfg.window));
  EXPECT_TRUE(feed_window(ctrl, 1.0, cfg.window));
  EXPECT_EQ(ctrl.rung(), DegradationRung::kTrimLookahead);
  EXPECT_FALSE(feed_window(ctrl, 1.0, cfg.window));
  EXPECT_TRUE(feed_window(ctrl, 1.0, cfg.window));
  EXPECT_EQ(ctrl.rung(), DegradationRung::kNormal);

  // Fully recovered: further calm windows are no-ops.
  EXPECT_FALSE(feed_window(ctrl, 1.0, cfg.window));
  EXPECT_EQ(ctrl.stats().transitions, 4u);  // 2 down + 2 up
}

TEST(OverloadController, BaselineTracksTheCalmestWindowEverSeen) {
  const OverloadConfig cfg = quick_config();
  OverloadController ctrl{cfg};
  feed_window(ctrl, 4.0, cfg.window);  // seeds baseline = 4
  EXPECT_DOUBLE_EQ(ctrl.baseline(), 4.0);
  // A calmer window lowers the baseline after being judged against the
  // old one ((2+1)/(4+1) = 0.6: calm).
  feed_window(ctrl, 2.0, cfg.window);
  EXPECT_DOUBLE_EQ(ctrl.baseline(), 2.0);
  // Pressure is now measured against the demonstrated best: an 8.0
  // window scores (8+1)/(2+1) = 3 >= degrade_ratio.
  EXPECT_TRUE(feed_window(ctrl, 8.0, cfg.window));
  EXPECT_EQ(ctrl.rung(), DegradationRung::kTrimLookahead);
}

TEST(OverloadController, TimeInRungBooksEveryObservation) {
  const OverloadConfig cfg = quick_config();
  OverloadController ctrl{cfg};
  feed_window(ctrl, 1.0, cfg.window);
  feed_window(ctrl, 10.0, cfg.window);  // -> rung 1
  feed_window(ctrl, 10.0, cfg.window);  // -> rung 2
  const OverloadStats& s = ctrl.stats();
  const std::uint64_t total = std::accumulate(
      s.requests_at_rung.begin(), s.requests_at_rung.end(),
      std::uint64_t{0});
  EXPECT_EQ(total, 3u * cfg.window);
  EXPECT_EQ(s.requests_at_rung[0], 2u * cfg.window);
  EXPECT_EQ(s.requests_at_rung[1], cfg.window);
  EXPECT_EQ(s.degraded_requests, cfg.window);
}

// Drives a fresh controller to exactly `rung` via single-observation
// windows (window = 1 makes every observation close a window).
OverloadController at_rung(int rung, std::size_t depth = 2,
                           std::size_t budget = 1) {
  OverloadConfig cfg = quick_config();
  cfg.window = 1;
  cfg.lookahead_depth = depth;
  cfg.budget_items = budget;
  OverloadController ctrl{cfg};
  ctrl.observe(1.0);  // seed baseline
  for (int i = 0; i < rung; ++i) ctrl.observe(10.0);
  EXPECT_EQ(static_cast<int>(ctrl.rung()), rung);
  return ctrl;
}

TEST(OverloadController, DegradeRowKeepsTopCandidatesByRung) {
  // A fresh copy per rung (instead of one reused vector assigned in a
  // loop) sidesteps a gcc-12 -O3 stringop-overflow false positive on
  // vector operator= that -Werror would otherwise trip on.
  const std::vector<double> row{0.1, 0.4, 0.2, 0.3};

  // kTrimLookahead keeps the lookahead_depth (2) largest probabilities.
  auto trim = at_rung(1);
  std::vector<double> trimmed = row;
  trim.degrade_row(trimmed);
  EXPECT_EQ(trimmed, (std::vector<double>{0.0, 0.4, 0.0, 0.3}));

  // kTrimBudget and kStrictAdmission cap at budget_items (1).
  for (int rung : {2, 3}) {
    auto ctrl = at_rung(rung);
    std::vector<double> capped = row;
    ctrl.degrade_row(capped);
    EXPECT_EQ(capped, (std::vector<double>{0.0, 0.4, 0.0, 0.0})) << rung;
  }

  // kPrefetchOff zeroes everything — the warmup mechanism.
  auto off = at_rung(4);
  std::vector<double> zeroed = row;
  off.degrade_row(zeroed);
  EXPECT_EQ(zeroed, (std::vector<double>{0.0, 0.0, 0.0, 0.0}));
}

TEST(OverloadController, DegradeRowBreaksTiesTowardLowerItemIds) {
  auto ctrl = at_rung(1, /*depth=*/2);
  std::vector<double> row{0.25, 0.25, 0.25, 0.25};
  ctrl.degrade_row(row);
  EXPECT_EQ(row, (std::vector<double>{0.25, 0.25, 0.0, 0.0}));
}

// ---- Driver integration -------------------------------------------------

SimSpec des_spec(SimDriverKind driver) {
  SimSpec spec;
  spec.driver = driver;
  spec.workload.n_items = 20;
  spec.requests = driver == SimDriverKind::MultiClientDes ? 300 : 800;
  spec.cache_size = 5;
  spec.bandwidth = 1.0;
  spec.latency = 1.0;
  spec.seed = 11;
  return spec;
}

TEST(OverloadRuntime, UntrippedControllerIsBitIdenticalToNone) {
  for (const SimDriverKind driver :
       {SimDriverKind::NetsimDes, SimDriverKind::MultiClientDes}) {
    SimSpec calm = des_spec(driver);
    calm.overload.enabled = true;
    calm.overload.degrade_ratio = 1e9;  // unreachable: never transitions
    calm.overload.recover_ratio = 1.0;
    const SimResult a = run_sim(des_spec(driver));
    const SimResult b = run_sim(calm);
    EXPECT_EQ(a.metrics.hits, b.metrics.hits);
    EXPECT_EQ(a.metrics.network_time, b.metrics.network_time);
    EXPECT_EQ(a.metrics.solver_nodes, b.metrics.solver_nodes);
    EXPECT_EQ(a.metrics.mean_access_time(), b.metrics.mean_access_time());
    EXPECT_EQ(b.overload.transitions, 0u);
    EXPECT_EQ(b.overload.max_rung, 0);
    EXPECT_EQ(b.overload.requests_at_rung[0], b.metrics.requests);
  }
}

TEST(OverloadRuntime, SameSeedReproducesRungTrajectory) {
  SimSpec spec = des_spec(SimDriverKind::MultiClientDes);
  spec.fault.fail_rate = 0.4;
  spec.fault.stall_rate = 0.3;
  spec.fault.stall_factor = 6.0;
  spec.fault.retry.max_attempts = 3;
  spec.overload.enabled = true;
  spec.overload.window = 16;
  spec.overload.degrade_ratio = 1.5;
  const SimResult a = run_sim(spec);
  const SimResult b = run_sim(spec);
  EXPECT_EQ(a.overload, b.overload);
  EXPECT_EQ(a.fault, b.fault);
  EXPECT_EQ(a.metrics.network_time, b.metrics.network_time);
}

TEST(OverloadRuntime, NonDesDriversRejectOverloadAndDeadline) {
  for (const SimDriverKind driver :
       {SimDriverKind::PrefetchOnly, SimDriverKind::PrefetchCache,
        SimDriverKind::Scenario}) {
    SimSpec spec;
    spec.driver = driver;
    spec.overload.enabled = true;
    EXPECT_THROW(run_sim(spec), std::invalid_argument);
    spec.overload.enabled = false;
    spec.deadline = 10.0;
    EXPECT_THROW(run_sim(spec), std::invalid_argument);
  }
}

// The acceptance bar from the issue: under sustained fault pressure on a
// slow shared link, shedding planning effort must beat business as usual
// — the controller-on run serves strictly more requests within the
// deadline than the controller-off run at the same fault rate.
TEST(OverloadRuntime, ControllerBeatsNoControllerUnderFaultPressure) {
  SimSpec off = des_spec(SimDriverKind::MultiClientDes);
  off.multi_client.clients = 4;
  off.requests = 400;
  off.bandwidth = 0.25;  // modem-grade shared link
  off.latency = 5.0;
  off.fault.fail_rate = 0.35;
  off.fault.stall_rate = 0.3;
  off.fault.stall_factor = 6.0;
  off.fault.retry.max_attempts = 3;
  off.fault.retry.backoff_base = 2.0;
  off.deadline = 30.0;

  SimSpec on = off;
  on.overload.enabled = true;
  on.overload.window = 16;
  on.overload.degrade_ratio = 1.5;
  on.overload.recover_ratio = 1.1;
  on.overload.recover_windows = 2;

  const SimResult without = run_sim(off);
  const SimResult with = run_sim(on);
  EXPECT_GT(with.overload.transitions, 0u)
      << "controller never engaged: the scenario is not hot enough to "
         "test anything";
  EXPECT_GT(with.deadline_hits, without.deadline_hits)
      << "degrading under pressure must serve more requests within the "
         "deadline than full-effort planning";
}

}  // namespace
}  // namespace skp
