#include "util/significance.hpp"

#include <gtest/gtest.h>

#include "sim/prefetch_only.hpp"
#include "util/rng.hpp"

namespace skp {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959964), 0.975, 1e-4);
  EXPECT_NEAR(normal_cdf(-1.959964), 0.025, 1e-4);
  EXPECT_NEAR(normal_cdf(5.0), 1.0, 1e-6);
}

TEST(WelchTTest, RequiresTwoSamplesPerSide) {
  OnlineStats a, b;
  a.add(1.0);
  b.add(2.0);
  b.add(3.0);
  EXPECT_THROW(welch_t_test(a, b), std::invalid_argument);
}

TEST(WelchTTest, SeparatedSamplesAreSignificant) {
  Rng rng(1);
  OnlineStats a, b;
  for (int i = 0; i < 200; ++i) {
    a.add(rng.uniform(0.0, 1.0));
    b.add(rng.uniform(2.0, 3.0));
  }
  const TestResult r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant());
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_NEAR(r.mean_diff, -2.0, 0.1);
}

TEST(WelchTTest, SameDistributionUsuallyNotSignificant) {
  // 100 repetitions at alpha = .05: expect ~5 false positives; bound 20.
  Rng rng(2);
  int false_positives = 0;
  for (int rep = 0; rep < 100; ++rep) {
    OnlineStats a, b;
    for (int i = 0; i < 100; ++i) {
      a.add(rng.uniform(0.0, 1.0));
      b.add(rng.uniform(0.0, 1.0));
    }
    if (welch_t_test(a, b).significant()) ++false_positives;
  }
  EXPECT_LT(false_positives, 20);
}

TEST(WelchTTest, IdenticalConstantsNotSignificant) {
  OnlineStats a, b;
  for (int i = 0; i < 10; ++i) {
    a.add(4.0);
    b.add(4.0);
  }
  const TestResult r = welch_t_test(a, b);
  EXPECT_FALSE(r.significant());
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WelchTTest, DifferentConstantsMaximallySignificant) {
  OnlineStats a, b;
  for (int i = 0; i < 10; ++i) {
    a.add(4.0);
    b.add(5.0);
  }
  EXPECT_DOUBLE_EQ(welch_t_test(a, b).p_value, 0.0);
}

TEST(PairedTTest, DetectsConsistentSmallDifference) {
  // Differences with mean .05 and noise .5: paired design finds it.
  Rng rng(3);
  OnlineStats d;
  for (int i = 0; i < 2000; ++i) {
    d.add(0.05 + rng.uniform(-0.5, 0.5));
  }
  EXPECT_TRUE(paired_t_test(d).significant());
}

TEST(PairedTTest, ZeroMeanNotSignificant) {
  Rng rng(4);
  OnlineStats d;
  for (int i = 0; i < 500; ++i) d.add(rng.uniform(-1.0, 1.0));
  // Mean near zero: p should be comfortably above .001 most of the time.
  EXPECT_GT(paired_t_test(d).p_value, 1e-3);
}

TEST(Significance, SkpVsNoPrefetchIsSignificantOnFig5Workload) {
  // The library's own headline comparison, now with a p-value: SKP vs no
  // prefetch on the skewy prefetch-only workload.
  PrefetchOnlyConfig cfg;
  cfg.iterations = 5000;
  cfg.seed = 9;
  cfg.method = ProbMethod::Skewy;
  cfg.policy = PrefetchPolicy::SKP;
  const auto skp = run_prefetch_only(cfg);
  cfg.policy = PrefetchPolicy::None;
  const auto none = run_prefetch_only(cfg);
  const TestResult r =
      welch_t_test(skp.metrics.access_time, none.metrics.access_time);
  EXPECT_TRUE(r.significant(0.001));
  EXPECT_LT(r.mean_diff, 0.0);  // SKP faster
}

TEST(Significance, SkpVsKpGapUnderFlatIsSmall) {
  // The Fig.-5 flat-panel claim, quantified: the SKP(exact)/KP difference
  // under flat P is a small fraction of the no-prefetch/KP difference.
  PrefetchOnlyConfig cfg;
  cfg.iterations = 20000;
  cfg.seed = 10;
  cfg.method = ProbMethod::Flat;
  cfg.policy = PrefetchPolicy::SKP;
  const auto skp = run_prefetch_only(cfg);
  cfg.policy = PrefetchPolicy::KP;
  const auto kp = run_prefetch_only(cfg);
  cfg.policy = PrefetchPolicy::None;
  const auto none = run_prefetch_only(cfg);
  const double gap_skp_kp = std::abs(
      skp.metrics.mean_access_time() - kp.metrics.mean_access_time());
  const double gap_none_kp =
      none.metrics.mean_access_time() - kp.metrics.mean_access_time();
  EXPECT_LT(gap_skp_kp, 0.15 * gap_none_kp);
}

}  // namespace
}  // namespace skp
