#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace skp {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ExplicitThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  pool.submit([&] { x = 42; }).get();
  EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ParallelChunks, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> touched(n);
  parallel_chunks(pool, n, 7,
                  [&](std::size_t b, std::size_t e, std::size_t) {
                    for (std::size_t i = b; i < e; ++i) ++touched[i];
                  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ParallelChunks, ChunkIndicesAreStable) {
  ThreadPool pool(2);
  std::vector<std::size_t> chunk_of(10, 999);
  std::mutex mu;
  parallel_chunks(pool, 10, 3,
                  [&](std::size_t b, std::size_t e, std::size_t c) {
                    const std::lock_guard lk(mu);
                    for (std::size_t i = b; i < e; ++i) chunk_of[i] = c;
                  });
  // Chunks are contiguous and ordered.
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_GE(chunk_of[i], chunk_of[i - 1]);
  }
  EXPECT_EQ(chunk_of.front(), 0u);
}

TEST(ParallelChunks, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_chunks(pool, 0, 4,
                  [&](std::size_t, std::size_t, std::size_t) {
                    called = true;
                  });
  EXPECT_FALSE(called);
}

TEST(ParallelChunks, MoreChunksThanItems) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_chunks(pool, 3, 10,
                  [&](std::size_t b, std::size_t e, std::size_t) {
                    total += static_cast<int>(e - b);
                  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelChunks, ZeroChunksThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(
      parallel_chunks(pool, 5, 0,
                      [](std::size_t, std::size_t, std::size_t) {}),
      std::invalid_argument);
}

TEST(ParallelChunks, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_chunks(pool, 10, 2,
                      [](std::size_t b, std::size_t, std::size_t) {
                        if (b == 0) throw std::runtime_error("chunk fail");
                      }),
      std::runtime_error);
}

}  // namespace
}  // namespace skp
