#include "sim/prefetch_only.hpp"

#include <gtest/gtest.h>

namespace skp {
namespace {

PrefetchOnlyConfig quick(PrefetchPolicy policy, ProbMethod method,
                         std::size_t iters = 4000) {
  PrefetchOnlyConfig cfg;
  cfg.policy = policy;
  cfg.method = method;
  cfg.iterations = iters;
  cfg.seed = 7;
  return cfg;
}

TEST(PrefetchOnlySim, DeterministicInSeed) {
  const auto a = run_prefetch_only(quick(PrefetchPolicy::SKP,
                                         ProbMethod::Skewy, 1000));
  const auto b = run_prefetch_only(quick(PrefetchPolicy::SKP,
                                         ProbMethod::Skewy, 1000));
  EXPECT_DOUBLE_EQ(a.metrics.mean_access_time(),
                   b.metrics.mean_access_time());
  EXPECT_EQ(a.metrics.hits, b.metrics.hits);
}

TEST(PrefetchOnlySim, RequestCountMatchesIterations) {
  const auto res = run_prefetch_only(quick(PrefetchPolicy::KP,
                                           ProbMethod::Flat, 1234));
  EXPECT_EQ(res.metrics.requests, 1234u);
  EXPECT_EQ(res.metrics.access_time.count(), 1234u);
}

TEST(PrefetchOnlySim, NoPrefetchMeanMatchesTheory) {
  // With no prefetching, E(T) = E(r) = 15.5 for r ~ U{1..30}.
  auto cfg = quick(PrefetchPolicy::None, ProbMethod::Flat, 30000);
  const auto res = run_prefetch_only(cfg);
  EXPECT_NEAR(res.metrics.mean_access_time(), 15.5, 0.4);
  EXPECT_EQ(res.metrics.hits, 0u);
  EXPECT_EQ(res.metrics.prefetch_fetches, 0u);
}

TEST(PrefetchOnlySim, PerfectPrefetchIsMaxZeroRMinusV) {
  // Perfect prefetch: T = max(0, r - v); with v >= 30 always 0.
  auto cfg = quick(PrefetchPolicy::Perfect, ProbMethod::Flat, 5000);
  cfg.v_lo = 30.0;
  cfg.v_hi = 100.0;
  const auto res = run_prefetch_only(cfg);
  EXPECT_DOUBLE_EQ(res.metrics.mean_access_time(), 0.0);
  EXPECT_EQ(res.metrics.hits, res.metrics.requests);
}

TEST(PrefetchOnlySim, PolicyOrderingUnderSkewyMethod) {
  // Fig. 5 shape: perfect <= SKP <= no-prefetch, and SKP <= KP + margin.
  const double t_perfect =
      run_prefetch_only(quick(PrefetchPolicy::Perfect, ProbMethod::Skewy))
          .metrics.mean_access_time();
  const double t_skp =
      run_prefetch_only(quick(PrefetchPolicy::SKP, ProbMethod::Skewy))
          .metrics.mean_access_time();
  const double t_kp =
      run_prefetch_only(quick(PrefetchPolicy::KP, ProbMethod::Skewy))
          .metrics.mean_access_time();
  const double t_none =
      run_prefetch_only(quick(PrefetchPolicy::None, ProbMethod::Skewy))
          .metrics.mean_access_time();
  EXPECT_LE(t_perfect, t_skp + 1e-9);
  EXPECT_LT(t_skp, t_none);
  EXPECT_LT(t_kp, t_none);
  EXPECT_LT(t_skp, t_kp + 0.5);  // SKP at least comparable to KP
}

TEST(PrefetchOnlySim, ScatterCollectsRequestedSamples) {
  auto cfg = quick(PrefetchPolicy::SKP, ProbMethod::Skewy, 2000);
  cfg.scatter_limit = 500;
  const auto res = run_prefetch_only(cfg);
  EXPECT_EQ(res.scatter.size(), 500u);
  for (const auto& [v, T] : res.scatter) {
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
    EXPECT_GE(T, 0.0);
  }
}

TEST(PrefetchOnlySim, SkpScatterShowsStretchTail) {
  // Fig. 4a: SKP points can exceed max r = 30 (stretch intrusion); KP
  // points cannot exceed st + r... with st = 0, T <= 30 always.
  auto skp_cfg = quick(PrefetchPolicy::SKP, ProbMethod::Skewy, 30000);
  skp_cfg.scatter_limit = 30000;
  const auto skp_res = run_prefetch_only(skp_cfg);
  bool skp_above_30 = false;
  for (const auto& [v, T] : skp_res.scatter) {
    if (T > 30.0) skp_above_30 = true;
  }
  EXPECT_TRUE(skp_above_30);

  auto kp_cfg = quick(PrefetchPolicy::KP, ProbMethod::Skewy, 10000);
  kp_cfg.scatter_limit = 10000;
  const auto kp_res = run_prefetch_only(kp_cfg);
  for (const auto& [v, T] : kp_res.scatter) {
    EXPECT_LE(T, 30.0);
  }
}

TEST(PrefetchOnlySim, BinnedMeansCoverVRange) {
  const auto res = run_prefetch_only(quick(PrefetchPolicy::SKP,
                                           ProbMethod::Flat, 20000));
  const auto series = res.avg_T_by_v.series();
  EXPECT_GT(series.size(), 90u);  // nearly every v in 1..100 hit
}

TEST(PrefetchOnlySim, MoreItemsRaiseAccessTime) {
  // Fig. 5 (a) vs (c): n = 25 has higher average T than n = 10.
  auto cfg10 = quick(PrefetchPolicy::SKP, ProbMethod::Skewy, 8000);
  auto cfg25 = cfg10;
  cfg25.n_items = 25;
  const double t10 = run_prefetch_only(cfg10).metrics.mean_access_time();
  const double t25 = run_prefetch_only(cfg25).metrics.mean_access_time();
  EXPECT_GT(t25, t10);
}

TEST(PrefetchOnlySim, FlatMethodNarrowsSkpKpGap) {
  // Fig. 5 (b)(d): under flat P the SKP and KP curves nearly coincide.
  const double skp =
      run_prefetch_only(quick(PrefetchPolicy::SKP, ProbMethod::Flat, 8000))
          .metrics.mean_access_time();
  const double kp =
      run_prefetch_only(quick(PrefetchPolicy::KP, ProbMethod::Flat, 8000))
          .metrics.mean_access_time();
  EXPECT_NEAR(skp, kp, 0.5);
}

TEST(PrefetchOnlySim, ParallelMatchesSequentialStatistically) {
  // Parallel chunking uses different RNG streams, so expect statistical
  // (not bitwise) agreement.
  auto cfg = quick(PrefetchPolicy::SKP, ProbMethod::Skewy, 20000);
  const auto seq = run_prefetch_only(cfg);
  ThreadPool pool(4);
  const auto par = run_prefetch_only_parallel(cfg, pool, 4);
  EXPECT_EQ(par.metrics.requests, cfg.iterations);
  EXPECT_NEAR(par.metrics.mean_access_time(),
              seq.metrics.mean_access_time(), 0.5);
}

TEST(PrefetchOnlySim, ParallelDeterministicInChunkCount) {
  auto cfg = quick(PrefetchPolicy::KP, ProbMethod::Flat, 5000);
  ThreadPool pool(4);
  const auto a = run_prefetch_only_parallel(cfg, pool, 3);
  const auto b = run_prefetch_only_parallel(cfg, pool, 3);
  EXPECT_DOUBLE_EQ(a.metrics.mean_access_time(),
                   b.metrics.mean_access_time());
}

TEST(PrefetchOnlySim, StretchIntrusionRaisesAccessTimes) {
  // Section 4.4: carrying the stretch into the next viewing window can
  // only reduce the prefetching asset, so mean T must not improve.
  auto base = quick(PrefetchPolicy::SKP, ProbMethod::Skewy, 20000);
  auto intruding = base;
  intruding.stretch_intrudes = true;
  const double plain = run_prefetch_only(base).metrics.mean_access_time();
  const double carry =
      run_prefetch_only(intruding).metrics.mean_access_time();
  EXPECT_GE(carry, plain - 0.05);
}

TEST(PrefetchOnlySim, StretchIntrusionNoopForKp) {
  // KP never stretches, so the carryover is identically zero and the two
  // modes draw identical random streams -> identical results.
  auto base = quick(PrefetchPolicy::KP, ProbMethod::Skewy, 5000);
  auto intruding = base;
  intruding.stretch_intrudes = true;
  EXPECT_DOUBLE_EQ(run_prefetch_only(base).metrics.mean_access_time(),
                   run_prefetch_only(intruding).metrics.mean_access_time());
}

TEST(PrefetchOnlySim, ConfigValidation) {
  PrefetchOnlyConfig cfg;
  cfg.n_items = 0;
  EXPECT_THROW(run_prefetch_only(cfg), std::invalid_argument);
  cfg = PrefetchOnlyConfig{};
  cfg.r_lo = 0.0;
  EXPECT_THROW(run_prefetch_only(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace skp
