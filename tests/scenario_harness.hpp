// Scenario-matrix regression harness.
//
// Drives the full pipeline — workload generation -> online predictor ->
// SKP/KP planning -> cache with a classical replacement policy -> realized
// network cost — across the cross-product of
//   {predictor}  x {replacement policy} x {network profile} x {workload}
// with every random stream derived from one fixed seed, so a scenario's
// counters are bit-reproducible. test_scenario_matrix.cpp asserts
// structural invariants over the whole matrix (metrics conservation,
// prefetch bandwidth budget) and pins golden hit-rates on a slice, giving
// future sharding/async/perf refactors a behavioral safety net.
//
// Unlike sim/prefetch_cache.cpp (oracle transition rows, Pr-arbitration
// victims) this harness runs the deployment configuration the paper's
// Section 6 sketches: probabilities come only from a learned predictor,
// and eviction is delegated to a pluggable ReplacementPolicy. Retrieval
// times are grounded through sim/netsim's ServerCatalog + NetConfig
// (r_i = latency + size_i / bandwidth) instead of being drawn directly.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/replacement.hpp"
#include "core/prefetch_engine.hpp"
#include "predict/lz78_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/ppm_predictor.hpp"
#include "sim/netsim.hpp"
#include "sim/prefetch_cache.hpp"  // PredictorKind + to_string
#include "util/rng.hpp"
#include "workload/markov_source.hpp"
#include "workload/prob_gen.hpp"
#include "workload/request_stream.hpp"
#include "workload/trace.hpp"

namespace skp::testing {

enum class CachePolicyKind { LRU, FIFO, LFU, Random };
enum class ScenarioWorkload { MarkovChain, IidSkewy, TraceReplay };

// How prefetches contend for cache space:
//   * EmptyCache    — plan over N \ C with PrefetchEngine::plan; the
//                     ReplacementPolicy evicts for both prefetches and
//                     demand misses (the original harness mode).
//   * PrArbitration — the Figure-6 path: PrefetchEngine::plan_with_cache
//                     runs Pr-arbitration against the live cache and
//                     names its own victims; the ReplacementPolicy still
//                     governs demand misses (and has its bookkeeping
//                     maintained for Pr-evicted victims).
enum class PlanMode { EmptyCache, PrArbitration };

inline const char* to_string(CachePolicyKind k) {
  switch (k) {
    case CachePolicyKind::LRU: return "lru";
    case CachePolicyKind::FIFO: return "fifo";
    case CachePolicyKind::LFU: return "lfu";
    case CachePolicyKind::Random: return "random";
  }
  return "?";
}

inline const char* to_string(ScenarioWorkload w) {
  switch (w) {
    case ScenarioWorkload::MarkovChain: return "markov";
    case ScenarioWorkload::IidSkewy: return "iid";
    case ScenarioWorkload::TraceReplay: return "trace";
  }
  return "?";
}

inline const char* to_string(PlanMode m) {
  switch (m) {
    case PlanMode::EmptyCache: return "empty";
    case PlanMode::PrArbitration: return "pr";
  }
  return "?";
}

// A named (bandwidth, latency) point fed to sim/netsim's NetConfig.
struct NetProfile {
  const char* name;
  double bandwidth;
  double latency;
};

// The three profiles the matrix sweeps: item sizes are 1..30 size units,
// so retrieval times span roughly 0.4-4 (lan), 3-32 (wan), 9-125 (modem)
// time units against viewing times of 10-60.
inline constexpr NetProfile kLan{"lan", 8.0, 0.25};
inline constexpr NetProfile kWan{"wan", 1.0, 2.0};
inline constexpr NetProfile kModem{"modem", 0.25, 5.0};

struct ScenarioConfig {
  PredictorKind predictor = PredictorKind::Markov1;  // Markov1 | Lz78 | Ppm
  CachePolicyKind cache_policy = CachePolicyKind::LRU;
  NetProfile net = kLan;
  ScenarioWorkload workload = ScenarioWorkload::MarkovChain;
  PlanMode plan_mode = PlanMode::EmptyCache;

  std::size_t n_items = 24;
  std::size_t cache_capacity = 6;
  std::size_t requests = 1200;
  // Observe-only prefix: the predictor trains before planning starts, so
  // early near-uniform distributions don't dominate the goldens.
  std::size_t predictor_warmup = 64;
  // Smoothed predictors put slivers of mass everywhere; entries below this
  // floor are dropped before planning (candidate shortlist).
  double min_prob = 0.02;
  PrefetchPolicy policy = PrefetchPolicy::SKP;
  std::uint64_t seed = 2026;
};

struct ScenarioResult {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;            // served from cache, zero access time
  std::uint64_t demand_fetches = 0;  // misses, fetched on demand
  std::uint64_t prefetch_fetches = 0;
  std::uint64_t plans = 0;           // planning rounds that fetched anything
  double prefetch_network_time = 0.0;
  double demand_network_time = 0.0;
  double network_time = 0.0;  // prefetch + demand, accumulated separately
  // Plans violating the stretch-knapsack bandwidth budget (all fetches but
  // the last must complete within the viewing time v; for KP the whole
  // plan must). The matrix asserts this stays 0.
  std::uint64_t budget_violations = 0;
  double worst_budget_overrun = 0.0;

  double hit_rate() const {
    return requests ? static_cast<double>(hits) /
                          static_cast<double>(requests)
                    : 0.0;
  }

  bool operator==(const ScenarioResult&) const = default;
};

inline std::string scenario_name(const ScenarioConfig& cfg) {
  std::string name = to_string(cfg.predictor);
  for (auto& c : name) c = static_cast<char>(std::tolower(c));
  name += '_';
  name += to_string(cfg.cache_policy);
  name += '_';
  name += cfg.net.name;
  name += '_';
  name += to_string(cfg.workload);
  if (cfg.plan_mode == PlanMode::PrArbitration) {
    name += "_pr";
  }
  return name;
}

inline std::unique_ptr<Predictor> make_scenario_predictor(
    PredictorKind kind, std::size_t n) {
  switch (kind) {
    case PredictorKind::Markov1:
      return std::make_unique<MarkovPredictor>(n);
    case PredictorKind::Lz78:
      return std::make_unique<Lz78Predictor>(n);
    case PredictorKind::Ppm:
      return std::make_unique<PpmPredictor>(n, 2);
    default:
      ADD_FAILURE() << "unsupported predictor kind in scenario harness";
      return std::make_unique<MarkovPredictor>(n);
  }
}

inline std::unique_ptr<ReplacementPolicy> make_scenario_policy(
    CachePolicyKind kind, std::uint64_t seed) {
  switch (kind) {
    case CachePolicyKind::LRU: return make_lru();
    case CachePolicyKind::FIFO: return make_fifo();
    case CachePolicyKind::LFU: return make_lfu();
    case CachePolicyKind::Random: return make_random(seed);
  }
  return make_lru();
}

// Materializes the request cycles (item, viewing_time) for a scenario.
// All three workloads are reduced to a flat record list so the simulation
// loop below is identical across them; the TraceReplay workload
// additionally round-trips through the skptrace text format, exercising
// workload/trace.hpp serialization end to end.
inline std::vector<TraceRecord> make_scenario_cycles(
    const ScenarioConfig& cfg, Rng& build, Rng& walk) {
  std::vector<TraceRecord> cycles;
  cycles.reserve(cfg.requests);
  switch (cfg.workload) {
    case ScenarioWorkload::MarkovChain: {
      MarkovSourceConfig mcfg;
      mcfg.n_states = cfg.n_items;
      mcfg.out_degree_lo = 4;
      mcfg.out_degree_hi = 8;
      mcfg.v_lo = 10.0;
      mcfg.v_hi = 60.0;
      MarkovSource src(mcfg, build);
      for (std::size_t i = 0; i < cfg.requests; ++i) {
        const double v = src.viewing_time(src.current_state());
        const auto item = static_cast<ItemId>(src.step(walk));
        cycles.push_back({item, v});
      }
      break;
    }
    case ScenarioWorkload::IidSkewy: {
      Instance inst;
      inst.P = skewy_probabilities(cfg.n_items, build);
      inst.r.assign(cfg.n_items, 1.0);  // placeholder; harness re-derives r
      inst.v = 30.0;
      IidStream stream(std::move(inst));
      for (std::size_t i = 0; i < cfg.requests; ++i) {
        const RequestEvent e = stream.next(walk);
        cycles.push_back({e.item, e.instance.v});
      }
      break;
    }
    case ScenarioWorkload::TraceReplay: {
      MarkovSourceConfig mcfg;
      mcfg.n_states = cfg.n_items;
      mcfg.out_degree_lo = 2;
      mcfg.out_degree_hi = 6;
      mcfg.v_lo = 5.0;
      mcfg.v_hi = 40.0;
      MarkovSource src(mcfg, build);
      Trace recorded(cfg.n_items,
                     std::vector<double>(src.retrieval_times().begin(),
                                         src.retrieval_times().end()));
      for (std::size_t i = 0; i < cfg.requests; ++i) {
        const double v = src.viewing_time(src.current_state());
        recorded.append(static_cast<ItemId>(src.step(walk)), v);
      }
      std::stringstream io;
      recorded.save(io);
      const Trace replayed = Trace::load(io);
      cycles.assign(replayed.records().begin(), replayed.records().end());
      break;
    }
  }
  return cycles;
}

inline ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  Rng root(cfg.seed);
  Rng build = root.split(1);
  Rng walk = root.split(2);
  Rng sizes_rng = root.split(3);

  // Ground retrieval times through the DES catalog: size_i in [1, 30]
  // size units, r_i = latency + size_i / bandwidth.
  ServerCatalog catalog;
  catalog.sizes.resize(cfg.n_items);
  for (auto& s : catalog.sizes) {
    s = static_cast<double>(sizes_rng.uniform_int(1, 30));
  }
  const NetConfig net{cfg.net.bandwidth, cfg.net.latency, false};
  const std::vector<double> r = catalog.retrieval_times(net);

  const std::vector<TraceRecord> cycles =
      make_scenario_cycles(cfg, build, walk);

  auto predictor = make_scenario_predictor(cfg.predictor, cfg.n_items);
  auto policy =
      make_scenario_policy(cfg.cache_policy, root.split(4).next_u64());
  SlotCache cache(cfg.n_items, cfg.cache_capacity);
  FreqTracker freq(cfg.n_items);  // Pr-arbitration sub-score substrate

  EngineConfig ecfg;
  ecfg.policy = cfg.policy;
  ecfg.delta_rule = DeltaRule::ExactComplement;
  const PrefetchEngine engine(ecfg);

  ScenarioResult res;
  constexpr double kEps = 1e-9;
  // Borrowed-view planning (allocation-free across cycles): P lives in the
  // scratch buffer, r in the catalog vector above.
  PlanScratch scratch;
  PrefetchPlan plan;
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    const ItemId item = cycles[i].item;
    const double v = cycles[i].viewing_time;

    if (i >= cfg.predictor_warmup) {
      predictor->predict_into(scratch.P);
      double mass = 0.0;
      for (std::size_t j = 0; j < scratch.P.size(); ++j) {
        // Shortlist: drop sliver mass; in EmptyCache mode additionally
        // zero cached items (planning over N \ C, Section 5 — the
        // Figure-6 planner does its own N \ C filtering).
        if (scratch.P[j] < cfg.min_prob ||
            (cfg.plan_mode == PlanMode::EmptyCache &&
             cache.contains(static_cast<ItemId>(j)))) {
          scratch.P[j] = 0.0;
        }
        mass += scratch.P[j];
      }
      if (mass > 0.0) {
        const InstanceView inst(scratch.P, r, v);
        if (cfg.plan_mode == PlanMode::PrArbitration) {
          engine.plan_with_cache(inst, cache, &freq, scratch, plan);
        } else {
          engine.plan(inst, scratch, plan);
        }
        // Bandwidth budget (Eq. 1): every fetch but the last must finish
        // within v; plain KP may not stretch at all.
        double prefix = 0.0;
        for (std::size_t k = 0; k + 1 < plan.fetch.size(); ++k) {
          prefix += r[Instance::idx(plan.fetch[k])];
        }
        double budget_used = prefix;
        if (cfg.policy == PrefetchPolicy::KP && !plan.fetch.empty()) {
          budget_used += r[Instance::idx(plan.fetch.back())];
        }
        if (budget_used > v + kEps) {
          ++res.budget_violations;
          res.worst_budget_overrun =
              std::max(res.worst_budget_overrun, budget_used - v);
        }
        if (!plan.fetch.empty()) ++res.plans;
        if (cfg.plan_mode == PlanMode::PrArbitration) {
          // Figure-6 execution: each admitted fetch claims its
          // Pr-arbitrated victim once the cache is full; the replacement
          // policy's books are kept consistent so demand misses still
          // work on accurate state.
          std::size_t victim_idx = 0;
          for (const ItemId f : plan.fetch) {
            if (cache.full()) {
              const ItemId victim = plan.evict[victim_idx++];
              cache.erase(victim);
              policy->on_evict(victim);
            }
            cache.insert(f);
            policy->on_insert(f);
            ++res.prefetch_fetches;
            res.prefetch_network_time += r[Instance::idx(f)];
          }
        } else {
          for (const ItemId f : plan.fetch) {
            if (cache.contains(f)) continue;  // zero-profit filler
            if (cache.full()) {
              const ItemId victim = policy->choose_victim(cache);
              cache.erase(victim);
              policy->on_evict(victim);
            }
            cache.insert(f);
            policy->on_insert(f);
            ++res.prefetch_fetches;
            res.prefetch_network_time += r[Instance::idx(f)];
          }
        }
      }
    }

    if (cache.contains(item)) {
      ++res.hits;
      policy->on_access(item);
    } else {
      ++res.demand_fetches;
      res.demand_network_time += r[Instance::idx(item)];
      access_with_policy(cache, *policy, item);
    }
    ++res.requests;
    freq.record(item);
    predictor->observe(item);
  }
  res.network_time = res.prefetch_network_time + res.demand_network_time;
  return res;
}

}  // namespace skp::testing
